//! A day in the life of a ShareBackup data center: a Poisson stream of
//! node and link failures (at a rate far above reality, to make the day
//! interesting) hits a k=8 deployment; the controller recovers each one,
//! diagnosis sorts the innocent from the guilty, repairs return switches
//! to the pool, and the network's capacity barely flickers.
//!
//! Run with: `cargo run --release --example datacenter_day`

use sharebackup::core::{Controller, ControllerConfig};
use sharebackup::flowsim::properties::total_usable_capacity;
use sharebackup::sim::{Duration, SimRng, Time};
use sharebackup::topo::{GroupKind, ShareBackup, ShareBackupConfig};

fn main() {
    let k = 8;
    let n = 2;
    let sb = ShareBackup::build(ShareBackupConfig::new(k, n));
    let full_capacity = total_usable_capacity(&sb.slots.net);
    let mut controller = Controller::new(sb, ControllerConfig::default());
    let mut rng = SimRng::seed_from_u64(20260706);

    let day = Time::from_secs(24 * 3600);
    let mtbf = Duration::from_secs(900); // one failure per 15 min — absurdly hostile
    println!("ShareBackup(k={k}, n={n}) — 24 h with MTBF {mtbf} (reality: days/weeks)");
    println!(
        "{} physical switches, {} groups, capacity {:.2e} bps\n",
        controller.sb.phys_count(),
        controller.sb.group_ids().len(),
        full_capacity
    );

    let mut now = Time::ZERO;
    let mut degraded_time = Duration::ZERO;
    let mut worst_capacity = full_capacity;
    let mut events = 0u64;
    while now < day {
        now += Duration::from_secs_f64(rng.exponential(mtbf.as_secs_f64()));
        if now >= day {
            break;
        }
        events += 1;
        controller.poll_repairs(now);

        // Pick a random occupied slot; 60% whole-switch death, 40% a single
        // interface (a link failure).
        let groups = controller.sb.group_ids();
        let group = *rng.choose(&groups);
        let slot = group.slot(rng.range(0..k / 2));
        let victim = controller.sb.occupant(slot);
        if !controller.sb.phys(victim).healthy {
            continue; // that slot is already down; the day moves on
        }
        let recovery = if rng.chance(0.6) {
            controller.sb.set_phys_healthy(victim, false);
            controller.handle_node_failure(victim, now)
        } else {
            // Break one fabric-facing interface and its far end.
            let half = k / 2;
            let (iface, other) = match group.kind {
                GroupKind::Edge => {
                    let m = rng.range(0..half);
                    let agg_slot = sharebackup::topo::GroupId::agg(group.index)
                        .slot((slot.slot + m) % half);
                    (half + m, (controller.sb.occupant(agg_slot), m))
                }
                GroupKind::Agg => {
                    let u = rng.range(0..half);
                    let core_slot = sharebackup::topo::GroupId::core(u).slot(slot.slot);
                    (half + u, (controller.sb.occupant(core_slot), group.index))
                }
                GroupKind::Core => {
                    let pod = rng.range(0..k);
                    let agg_slot = sharebackup::topo::GroupId::agg(pod).slot(slot.slot);
                    (pod, (controller.sb.occupant(agg_slot), half + group.index))
                }
            };
            controller.sb.set_iface_broken(victim, iface, true);
            controller.handle_link_failure((victim, iface), other, now)
        };
        let capacity = total_usable_capacity(&controller.sb.slots.net);
        worst_capacity = worst_capacity.min(capacity);
        if !recovery.fully_recovered() {
            degraded_time += Duration::from_secs(60); // coarse accounting
        }
        if events <= 8 {
            println!(
                "[{now}] {slot:?} victim={victim:?} -> replaced={} latency={} capacity={:.1}%",
                recovery.replaced.len(),
                recovery.latency,
                100.0 * capacity / full_capacity,
            );
        } else if events == 9 {
            println!("... (day continues)");
        }
    }
    controller.poll_repairs(day);

    let s = controller.stats;
    println!("\n=== end of day ===");
    println!("failures injected:     {events}");
    println!("node failures:         {}", s.node_failures);
    println!("link failures:         {}", s.link_failures);
    println!("replacements:          {}", s.replacements);
    println!("circuit reconfigs:     {}", s.circuit_reconfigs);
    println!("diagnoses:             {} (exonerated {}, convicted {})",
        s.diagnoses, s.exonerations, s.convictions);
    println!("pool-exhausted events: {}", s.fallbacks);
    println!(
        "worst instantaneous capacity: {:.2}% of full",
        100.0 * worst_capacity / full_capacity
    );
    println!(
        "approx degraded time:  {degraded_time} of 24 h ({:.4}%)",
        100.0 * degraded_time.as_secs_f64() / day.as_secs_f64()
    );
    println!("\neach recovery held the network whole within ~1.3 ms of detection;");
    println!("a rerouting fabric would have run degraded for every outage's duration.");
}
