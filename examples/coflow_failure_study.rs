//! A miniature of the paper's §2.2 failure study: run the same coflow
//! trace and the same single failure through fat-tree (global optimal
//! rerouting), F10 (local rerouting), and ShareBackup, and compare coflow
//! completion times.
//!
//! Run with: `cargo run --release --example coflow_failure_study`

#![allow(clippy::cast_possible_truncation)] // bounded rack/salt arithmetic
use sharebackup::flowsim::{FlowSim, FlowSpec};
use sharebackup::core::scenario::{
    sharebackup_timeline, F10World, FatTreeWorld, RecoveryMode, ShareBackupWorld, TopoEvent,
};
use sharebackup::core::{Controller, ControllerConfig};
use sharebackup::routing::FlowKey;
use sharebackup::sim::{SimRng, Time};
use sharebackup::topo::{
    F10Topology, FatTree, FatTreeConfig, GroupId, HostAddr, ShareBackup, ShareBackupConfig,
};
use sharebackup::workload::{CoflowTrace, TraceConfig};

const K: usize = 8;

fn trace(ft: &FatTree) -> CoflowTrace {
    let cfg = TraceConfig::fb_like(K * K / 2, Time::from_secs(60)).with_mean_interarrival_s(1.0);
    let mut rng = SimRng::seed_from_u64(2024);
    CoflowTrace::generate(&cfg, &mut rng, |rack, salt| {
        let half = K / 2;
        ft.host(HostAddr {
            pod: (rack / half) % K,
            edge: rack % half,
            host: (salt as usize) % half,
        })
    })
}

fn cct_stats(trace: &CoflowTrace, specs: &[FlowSpec], out: &sharebackup::flowsim::SimOutcome) -> (usize, f64, f64) {
    let mut done = 0;
    let mut sum = 0.0;
    let mut max = 0.0_f64;
    for cf in &trace.coflows {
        if let Some(d) = cf.cct(specs, out) {
            done += 1;
            sum += d.as_secs_f64();
            max = max.max(d.as_secs_f64());
        }
    }
    (done, sum / done.max(1) as f64, max)
}

fn main() {
    let ft_cfg = FatTreeConfig::new(K).with_oversubscription(10.0);
    let ft = FatTree::build(ft_cfg);
    let trace = trace(&ft);
    println!(
        "trace: {} coflows, {} flows, {:.1} GB total",
        trace.coflow_count(),
        trace.flow_count(),
        trace.total_bytes() as f64 / 1e9
    );

    // The failure: an aggregation switch dies 5 s in, repaired 60 s later.
    let fail_pod = 0;
    let fail_agg = 1;
    let fail_at = Time::from_secs(5);
    let repair_at = Time::from_secs(65);

    // --- fat-tree with global optimal rerouting ---
    let ft2 = FatTree::build(ft_cfg);
    let agg = ft2.agg(fail_pod, fail_agg);
    let mut world = FatTreeWorld::new(
        ft2,
        RecoveryMode::GlobalOptimal,
        vec![TopoEvent::FailNode(agg), TopoEvent::RepairNode(agg)],
    );
    let out = FlowSim::new().run(&mut world, &trace.specs, &[fail_at, repair_at]);
    let (done, mean, max) = cct_stats(&trace, &trace.specs, &out);
    println!("\nfat-tree + global optimal rerouting:");
    println!("  coflows finished {done}, mean CCT {mean:.3} s, max CCT {max:.3} s");

    // --- F10 with local rerouting ---
    let f10 = F10Topology::build(ft_cfg);
    let agg = f10.agg(fail_pod, fail_agg);
    let mut world = F10World::new(
        f10,
        vec![TopoEvent::FailNode(agg), TopoEvent::RepairNode(agg)],
    );
    let out = FlowSim::new().run(&mut world, &trace.specs, &[fail_at, repair_at]);
    let (done, mean, max) = cct_stats(&trace, &trace.specs, &out);
    println!("F10 + local rerouting:");
    println!("  coflows finished {done}, mean CCT {mean:.3} s, max CCT {max:.3} s");

    // --- ShareBackup ---
    let sb = ShareBackup::build(ShareBackupConfig::for_fattree(ft_cfg, 1));
    let controller = Controller::new(sb, ControllerConfig::default());
    let mut world = ShareBackupWorld::new(controller, vec![]);
    let victim = world.controller.sb.occupant(GroupId::agg(fail_pod).slot(fail_agg));
    let (events, times) = sharebackup_timeline(
        &world,
        &[(fail_at, sharebackup::core::scenario::SbEvent::NodeFail(victim))],
    );
    world.events = events;
    let out = FlowSim::new().run(&mut world, &trace.specs, &times);
    let (done, mean, max) = cct_stats(&trace, &trace.specs, &out);
    println!("ShareBackup:");
    println!("  coflows finished {done}, mean CCT {mean:.3} s, max CCT {max:.3} s");
    println!(
        "  controller: {} replacement(s), recovery latency {}",
        world.controller.stats.replacements,
        world.recoveries[0].latency
    );

    // Sanity: a flow that crossed the failed switch kept its exact path.
    let probe = FlowKey::new(
        world.controller.sb.slots.host(HostAddr { pod: 0, edge: 0, host: 0 }),
        world.controller.sb.slots.host(HostAddr { pod: 3, edge: 0, host: 0 }),
        1,
    );
    let p = sharebackup::routing::ecmp_path(&world.controller.sb.slots, &probe);
    assert!(world.controller.sb.slots.net.path_usable(&p));
    println!("\nShareBackup's coflows never saw more than a ~1.3 ms blip.");
}
