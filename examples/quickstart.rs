//! Quickstart: build a ShareBackup network, kill a switch, watch the
//! controller swap in a backup — and verify the paper's three properties
//! (no bandwidth loss, no path dilation, no upstream repair).
//!
//! Run with: `cargo run --example quickstart`

use sharebackup::core::{Controller, ControllerConfig};
use sharebackup::flowsim::properties::total_usable_capacity;
use sharebackup::routing::{ecmp_path, FlowKey};
use sharebackup::sim::Time;
use sharebackup::topo::{HostAddr, ShareBackup, ShareBackupConfig};

fn main() {
    // A k=8 fat-tree (128 hosts) wrapped in the ShareBackup architecture:
    // every failure group of 4 switches shares 1 backup switch through
    // electrical crosspoint circuit switches.
    let k = 8;
    let network = ShareBackup::build(ShareBackupConfig::new(k, 1));
    println!(
        "built ShareBackup(k={k}, n=1): {} hosts, {} physical switches, {} circuit switches",
        network.slots.hosts().len(),
        network.phys_count(),
        network.circuit_switch_count(),
    );
    let mut controller = Controller::new(network, ControllerConfig::default());

    // A flow between two pods, routed by ECMP over the slot fat-tree.
    let src = controller.sb.slots.host(HostAddr { pod: 0, edge: 0, host: 0 });
    let dst = controller.sb.slots.host(HostAddr { pod: 5, edge: 2, host: 1 });
    let flow = FlowKey::new(src, dst, 7);
    let path_before = ecmp_path(&controller.sb.slots, &flow);
    println!("flow path: {path_before:?}");

    let capacity_before = total_usable_capacity(&controller.sb.slots.net);

    // The aggregation switch on the flow's path dies.
    let agg_node = path_before[2];
    let slot = controller.sb.node_slot(agg_node).expect("agg slot");
    let victim = controller.sb.occupant(slot);
    controller.sb.set_phys_healthy(victim, false);
    println!(
        "\n!! {victim:?} (occupying {slot:?}) fails — path usable: {}",
        controller.sb.slots.net.path_usable(&path_before)
    );

    // The controller detects it (keep-alive timeout) and recovers: a backup
    // switch from the same failure group takes over the slot by circuit
    // reconfiguration; its routing tables were preloaded (live
    // impersonation, §4.3), so nothing is installed at recovery time.
    let recovery = controller.handle_node_failure(victim, Time::ZERO);
    let (slot, old, new) = recovery.replaced[0];
    println!(
        "controller: replaced {old:?} with backup {new:?} in {slot:?} \
         (latency {} incl. detection)",
        recovery.latency
    );

    // The paper's three properties, checked:
    let path_after = ecmp_path(&controller.sb.slots, &flow);
    let capacity_after = total_usable_capacity(&controller.sb.slots.net);
    assert!(controller.sb.slots.net.path_usable(&path_after));
    assert_eq!(path_after, path_before, "no path dilation, no rerouting");
    assert_eq!(capacity_after, capacity_before, "no bandwidth loss");
    println!("\nafter recovery:");
    println!("  same path, still usable  -> no path dilation, no upstream repair");
    println!("  capacity {capacity_after:.3e} bps == before -> no bandwidth loss");

    // Role swap (§4.2): once repaired, the old switch becomes the group's
    // backup — nothing switches back.
    controller.poll_repairs(controller.next_repair_due().expect("repair pending"));
    assert_eq!(controller.sb.spares(slot.group), vec![victim]);
    println!("  repaired {victim:?} rejoined the pool as the new backup (role swap)");
}
