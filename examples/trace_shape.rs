//! Workload substitution, audited: generate the synthetic coflow trace,
//! print its distributional fingerprint, export it in Coflow-Benchmark
//! format, re-import it, and verify the round trip. Point the optional
//! argument at a real `FB2010-1Hr-150-0.txt` to fingerprint the actual
//! Facebook trace instead.
//!
//! Run with: `cargo run --release --example trace_shape [trace.txt]`

#![allow(clippy::cast_possible_truncation)] // bounded rack/salt arithmetic
use sharebackup::sim::{SimRng, Time};
use sharebackup::topo::{FatTree, FatTreeConfig, HostAddr, NodeId};
use sharebackup::workload::{BenchmarkTrace, CoflowTrace, TraceConfig, TraceShape};

fn rack_to_host(ft: &FatTree, k: usize) -> impl FnMut(usize, u64) -> NodeId + '_ {
    let half = k / 2;
    move |rack, salt| {
        let racks = k * half;
        let rack = rack % racks;
        ft.host(HostAddr {
            pod: rack / half,
            edge: rack % half,
            host: (salt as usize) % half,
        })
    }
}

fn main() {
    let k = 16;
    let ft = FatTree::build(FatTreeConfig::new(k));

    if let Some(path) = std::env::args().nth(1) {
        // Fingerprint a real Coflow-Benchmark file.
        let text = std::fs::read_to_string(&path).expect("readable trace file");
        let bench = BenchmarkTrace::parse(&text).expect("valid Coflow-Benchmark format");
        println!(
            "{path}: {} racks, {} coflows",
            bench.racks,
            bench.coflows.len()
        );
        let trace = bench.instantiate(rack_to_host(&ft, k));
        println!("{}", TraceShape::of(&trace));
        return;
    }

    // Synthetic trace at the paper's scale.
    let cfg = TraceConfig::fb_like(k * k / 2, Time::from_secs(300));
    let mut rng = SimRng::seed_from_u64(42);
    let trace = CoflowTrace::generate(&cfg, &mut rng, rack_to_host(&ft, k));
    let shape = TraceShape::of(&trace);
    println!("synthetic 5-minute trace on {} racks:", k * k / 2);
    println!("{shape}");
    println!(
        "\nheavy-tailed fingerprint (the shape §2.2's findings depend on): {}",
        if shape.is_heavy_tailed() { "YES" } else { "NO" }
    );

    // Round-trip through the interchange format: rack-level export.
    // (Export uses one synthetic mapper/reducer per flow endpoint rack.)
    let bench = BenchmarkTrace {
        racks: k * k / 2,
        coflows: trace
            .coflows
            .iter()
            .map(|cf| {
                let first = cf.flows[0];
                sharebackup::workload::BenchmarkCoflow {
                    id: cf.id.0 as u64,
                    arrival_ms: trace.specs[first].arrival.as_nanos() / 1_000_000,
                    mappers: vec![0],
                    reducers: vec![(
                        1,
                        cf.flows
                            .iter()
                            .map(|&i| trace.specs[i].bytes)
                            .sum::<u64>() as f64
                            / 1e6,
                    )],
                }
            })
            .collect(),
    };
    let text = bench.to_text();
    let again = BenchmarkTrace::parse(&text).expect("round trip");
    assert_eq!(bench, again);
    println!(
        "\nexported {} coflows to Coflow-Benchmark text ({} KB) and re-imported losslessly",
        again.coflows.len(),
        text.len() / 1024
    );
}
