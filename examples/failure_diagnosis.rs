//! Walkthrough of a link failure and the offline diagnosis pipeline
//! (paper §4.1–§4.2): both suspects replaced instantly, the innocent side
//! exonerated through the side-port ring tests, the faulty side repaired
//! and reborn as a backup.
//!
//! Run with: `cargo run --example failure_diagnosis`

use sharebackup::core::{diagnose, Controller, ControllerConfig, Verdict};
use sharebackup::sim::Time;
use sharebackup::topo::{GroupId, ShareBackup, ShareBackupConfig};

fn main() {
    let k = 6;
    let sb = ShareBackup::build(ShareBackupConfig::new(k, 1));
    let mut controller = Controller::new(sb, ControllerConfig::default());
    let half = k / 2;

    // The link edge(0,0) <-> agg(0,0): the edge-side transceiver dies.
    let edge_slot = GroupId::edge(0).slot(0);
    let agg_slot = GroupId::agg(0).slot(0);
    let edge = controller.sb.occupant(edge_slot);
    let agg = controller.sb.occupant(agg_slot);
    let edge_iface = half; // edge up-port 0 (via CS_{2,0,0})
    let agg_iface = 0; // agg down-port 0 (same circuit switch)
    controller.sb.set_iface_broken(edge, edge_iface, true);
    println!("link E(0,0)<->A(0,0) fails; ground truth: {edge:?} iface {edge_iface} is broken");
    println!("(the controller does not know which side — yet)\n");

    // Fast recovery first (§4.1): both suspect switches are replaced.
    let recovery = controller.handle_link_failure(
        (edge, edge_iface),
        (agg, agg_iface),
        Time::ZERO,
    );
    println!("fast recovery ({}):", recovery.latency);
    for (slot, old, new) in &recovery.replaced {
        println!("  {slot:?}: {old:?} -> backup {new:?}");
    }

    // Offline diagnosis (§4.2), already run in the background by the
    // controller; rerun it explicitly to show the three configurations.
    println!("\noffline diagnosis over the circuit-switch side-port ring:");
    for (name, suspect, iface) in [("edge", edge, edge_iface), ("agg", agg, agg_iface)] {
        let configs = controller.sb.diagnosis_configs(suspect, iface);
        println!("  suspect {suspect:?} ({name}) iface {iface}:");
        for (i, cfg) in configs.iter().enumerate() {
            println!(
                "    config {}: connect to {:?} iface {} ({} side-port hop{})",
                i + 1,
                cfg.partner.0,
                cfg.partner.1,
                cfg.side_hops,
                if cfg.side_hops == 1 { "" } else { "s" },
            );
        }
        let report = diagnose(&mut controller.sb, suspect, iface);
        println!(
            "    -> {}/{} tests passed: {:?}",
            report.tests_passed, report.configs_tested, report.verdict
        );
        match report.verdict {
            Verdict::Healthy => println!("    exonerated: returns to the backup pool immediately"),
            _ => println!("    convicted: sent to repair"),
        }
    }

    // The verdicts the controller already acted on:
    println!("\ncontroller bookkeeping:");
    println!(
        "  exonerations={} convictions={} replacements={}",
        controller.stats.exonerations, controller.stats.convictions, controller.stats.replacements
    );
    assert!(controller.sb.spares(agg_slot.group).contains(&agg));
    println!("  {agg:?} is already back in {:?}'s pool", agg_slot.group);

    // Repair completes; the faulty edge switch becomes a backup (§4.2 —
    // nothing ever switches back).
    let due = controller.next_repair_due().expect("repair scheduled");
    controller.poll_repairs(due);
    assert!(controller.sb.spares(edge_slot.group).contains(&edge));
    println!(
        "  after repair at {due:?}, {edge:?} is {:?}'s backup — roles swapped, \
         no switch-back",
        edge_slot.group
    );
}
