//! Explore the deployment space: for a target host count, what do the
//! fault-tolerance options cost, and what does the circuit-switch port
//! budget allow?
//!
//! Run with: `cargo run --example cost_explorer [hosts]`
//! (default target: 25,000 hosts)

use sharebackup::cost::model::{relative_additional, total_cost, Architecture, Medium};
use sharebackup::cost::{CapacityAnalysis, ScalabilityLimits};
use sharebackup::topo::CircuitTech;

fn main() {
    let target_hosts: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("host count"))
        .unwrap_or(25_000);

    // Smallest even k whose fat-tree reaches the target.
    let mut k = 4;
    while k * k * k / 4 < target_hosts {
        k += 2;
    }
    println!(
        "target {target_hosts} hosts -> k={k} fat-tree ({} hosts)\n",
        k * k * k / 4
    );

    println!("fault-tolerance options for k={k}:");
    println!(
        "{:<22} {:>14} {:>14} {:>12}",
        "architecture", "E-DC total $", "O-DC total $", "vs fat-tree"
    );
    let options = [
        ("fat-tree (reroute)", Architecture::FatTree),
        ("ShareBackup n=1", Architecture::ShareBackup { n: 1 }),
        ("ShareBackup n=2", Architecture::ShareBackup { n: 2 }),
        ("ShareBackup n=4", Architecture::ShareBackup { n: 4 }),
        ("Aspen Tree", Architecture::AspenTree),
        ("1:1 backup", Architecture::OneToOneBackup),
    ];
    for (name, arch) in options {
        println!(
            "{:<22} {:>14.0} {:>14.0} {:>11.1}%",
            name,
            total_cost(arch, k, Medium::Electrical),
            total_cost(arch, k, Medium::Optical),
            100.0 * relative_additional(arch, k, Medium::Electrical),
        );
    }

    println!("\nwhat the circuit-switch port budget allows at k={k}:");
    for tech in [CircuitTech::Crosspoint, CircuitTech::Mems2D] {
        let lim = ScalabilityLimits::new(tech);
        let max_n = lim.max_n(k);
        if max_n == 0 {
            println!(
                "  {tech:?} ({} ports): k={k} NOT deployable (needs {} ports/side)",
                tech.max_ports(),
                ScalabilityLimits::ports_needed(k, 1),
            );
            continue;
        }
        let cap = CapacityAnalysis::new(k, max_n);
        println!(
            "  {tech:?} ({} ports): n up to {max_n} (backup ratio {:.1}%, {:.0}x the 0.01% failure rate)",
            tech.max_ports(),
            100.0 * cap.backup_ratio(),
            cap.headroom_over(0.0001),
        );
    }

    let n1 = CapacityAnalysis::new(k, 1);
    println!(
        "\nwith n=1: {} failure groups, tolerates 1 switch failure per group \
         ({} network-wide), backup ratio {:.2}%",
        n1.failure_groups(),
        n1.total_switch_failures(),
        100.0 * n1.backup_ratio(),
    );
}
