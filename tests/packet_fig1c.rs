//! Packet-level miniature of Fig. 1(c): the same transfer, the same
//! failure, three recovery schemes — at packet granularity. Cross-validates
//! the flow-level harness: the ordering (ShareBackup ≤ local reroute ≤
//! stranded) must match, with real queues, ACKs, retransmissions, and
//! timeouts in the loop.

use sharebackup::core::{RecoveryLatencyModel, RecoveryScheme};
use sharebackup::packet::{PacketNetConfig, PacketSim, PktEvent, PktFlowSpec};
use sharebackup::routing::{ecmp_path, FlowKey};
use sharebackup::sim::{Duration, Time};
use sharebackup::topo::{CircuitTech, FatTree, FatTreeConfig, HostAddr};

const BYTES: u64 = 25_000_000; // 20 ms at 10 Gbps
const FAIL_AT: Time = Time(5_000_000); // 5 ms

fn run(outage: Duration, recovery: Recovery) -> (Time, u64) {
    let ft = FatTree::build(FatTreeConfig::new(4));
    let src = ft.host(HostAddr { pod: 0, edge: 0, host: 0 });
    let dst = ft.host(HostAddr { pod: 2, edge: 1, host: 0 });
    let flow = FlowKey::new(src, dst, 9);
    let path = ecmp_path(&ft, &flow);
    let agg = path[2];
    let mut events = vec![(FAIL_AT, PktEvent::FailNode(agg))];
    match recovery {
        Recovery::SamePath => {
            events.push((FAIL_AT + outage, PktEvent::RepairNode(agg)));
        }
        Recovery::Reroute => {
            let alt = ft
                .host_paths(src, dst)
                .into_iter()
                .find(|p| !p.contains(&agg))
                .expect("alternate path");
            events.push((
                FAIL_AT + outage,
                PktEvent::SetPath { flow: 0, path: Some(alt) },
            ));
        }
        Recovery::None => {}
    }
    let cfg = PacketNetConfig {
        rto: Duration::from_millis(2),
        ..PacketNetConfig::default()
    };
    let (out, _) = PacketSim::new(cfg).run(
        &ft.net,
        &[PktFlowSpec { path, bytes: BYTES, start: Time::ZERO }],
        events,
        Time::from_secs(5),
    );
    (
        out[0].completed.unwrap_or(Time::MAX),
        out[0].delivered,
    )
}

enum Recovery {
    SamePath,
    Reroute,
    None,
}

#[test]
fn packet_level_ordering_matches_flow_level() {
    let m = RecoveryLatencyModel::default();
    let sb_outage = m.total(RecoveryScheme::ShareBackup(CircuitTech::Crosspoint));
    let local_outage = m.total(RecoveryScheme::LocalReroute);
    let global_outage = m.total(RecoveryScheme::GlobalReroute {
        switches_updated: 4,
        propagation_hops: 3,
    });

    let (t_sb, d_sb) = run(sb_outage, Recovery::SamePath);
    let (t_local, d_local) = run(local_outage, Recovery::Reroute);
    let (t_global, d_global) = run(global_outage, Recovery::Reroute);
    let (t_none, d_none) = run(Duration::ZERO, Recovery::None);

    // Everyone with a recovery path finishes and delivers everything.
    assert_eq!(d_sb, BYTES);
    assert_eq!(d_local, BYTES);
    assert_eq!(d_global, BYTES);
    // No recovery: stranded (delivered < total, never completed).
    assert_eq!(t_none, Time::MAX);
    assert!(d_none < BYTES);

    // Ordering: ShareBackup ≤ local reroute ≤ global reroute.
    assert!(t_sb <= t_local, "{t_sb:?} vs {t_local:?}");
    assert!(t_local <= t_global, "{t_local:?} vs {t_global:?}");
}

#[test]
fn sharebackup_failover_loses_only_in_flight_packets() {
    // The microscopic claim: during the ~1.25 ms blackout only the packets
    // in flight die; the transport retransmits them and total goodput is
    // preserved.
    let m = RecoveryLatencyModel::default();
    let outage = m.total(RecoveryScheme::ShareBackup(CircuitTech::Crosspoint));
    let (t, delivered) = run(outage, Recovery::SamePath);
    assert_eq!(delivered, BYTES);
    // Clean transfer is ~28 ms with slow start; the blip adds a few ms.
    let clean = {
        let ft = FatTree::build(FatTreeConfig::new(4));
        let src = ft.host(HostAddr { pod: 0, edge: 0, host: 0 });
        let dst = ft.host(HostAddr { pod: 2, edge: 1, host: 0 });
        let path = ecmp_path(&ft, &FlowKey::new(src, dst, 9));
        let (out, _) = PacketSim::new(PacketNetConfig {
            rto: Duration::from_millis(2),
            ..PacketNetConfig::default()
        })
        .run(
            &ft.net,
            &[PktFlowSpec { path, bytes: BYTES, start: Time::ZERO }],
            vec![],
            Time::from_secs(5),
        );
        out[0].completed.expect("clean run finishes")
    };
    let penalty = t.saturating_since(clean);
    assert!(
        penalty < Duration::from_millis(15),
        "failover penalty should be a few RTO/slow-start cycles, got {penalty}"
    );
}
