//! Determinism regression: the simulation must be a pure function of its
//! seeds. Two end-to-end recovery runs built from the same configuration and
//! the same seed must produce byte-identical timeline output, flow
//! completions, and controller counters.
//!
//! This is the regression net behind the `cargo xtask lint` determinism
//! rules (no `HashMap`/`HashSet` iteration, no ambient RNG or wall-clock
//! reads in simulation crates): any reintroduced nondeterminism that
//! affects observable behavior shows up here as a diff between the runs.

#![allow(clippy::cast_possible_truncation)] // bounded rack/salt arithmetic
use std::fmt::Write as _;

use sharebackup::core::scenario::{
    sharebackup_timeline, SbEvent, ShareBackupWorld,
};
use sharebackup::core::{simulate_recovery, Controller, ControllerConfig};
use sharebackup::flowsim::FlowSim;
use sharebackup::sim::{Duration, SimRng, Time};
use sharebackup::topo::{
    FatTree, FatTreeConfig, GroupId, HostAddr, ShareBackup, ShareBackupConfig,
};
use sharebackup::workload::{CoflowTrace, TraceConfig};

const K: usize = 4;
const SEED: u64 = 20170801; // HotNets'17 submission month, any value works

/// One complete seeded end-to-end recovery run, rendered as a transcript:
/// the recovery timeline, every flow's completion instant, per-link bits
/// carried, and the controller's counters.
fn recovery_transcript(seed: u64) -> String {
    let ft_cfg = FatTreeConfig::new(K).with_oversubscription(4.0);
    let ft = FatTree::build(ft_cfg);

    // Seeded workload.
    let trace_cfg =
        TraceConfig::fb_like(K * K / 2, Time::from_secs(20)).with_mean_interarrival_s(1.0);
    let mut rng = SimRng::seed_from_u64(seed);
    let half = K / 2;
    let trace = CoflowTrace::generate(&trace_cfg, &mut rng, |rack, salt| {
        ft.host(HostAddr {
            pod: (rack / half) % K,
            edge: rack % half,
            host: (salt as usize) % half,
        })
    });

    // Detailed single-recovery timeline (detection → circuit reset → acks).
    let sb = ShareBackup::build(ShareBackupConfig::for_fattree(ft_cfg, 1));
    let mut ctl = Controller::new(sb, ControllerConfig::default());
    let slot = GroupId::agg(0).slot(0);
    let timeline =
        simulate_recovery(&mut ctl, slot, Time::from_secs(1), Duration::from_micros(500));

    // End-to-end fluid run through a node failure and its repair.
    let sb = ShareBackup::build(ShareBackupConfig::for_fattree(ft_cfg, 1));
    let controller = Controller::new(sb, ControllerConfig::default());
    let mut world = ShareBackupWorld::new(controller, vec![]);
    let victim = world.controller.sb.occupant(GroupId::agg(0).slot(1));
    let (events, times) =
        sharebackup_timeline(&world, &[(Time::from_secs(2), SbEvent::NodeFail(victim))]);
    world.events = events;
    let out = FlowSim::new().run(&mut world, &trace.specs, &times);

    let mut t = String::new();
    let _ = writeln!(t, "== timeline ==");
    t.push_str(&timeline.render());
    let _ = writeln!(t, "recovered_at={:?}", timeline.recovered_at);
    let _ = writeln!(t, "== flows ==");
    for (i, f) in out.flows.iter().enumerate() {
        let _ = writeln!(
            t,
            "flow{i} delivered={:.1} completed={:?} stalled={} rerouted={}",
            f.delivered, f.completed, f.ever_stalled, f.rerouted
        );
    }
    let _ = writeln!(t, "== links ==");
    for (l, bits) in &out.link_bits {
        let _ = writeln!(t, "{l:?} {bits:.3}");
    }
    let _ = writeln!(t, "== controller ==");
    let _ = writeln!(t, "{:?}", world.controller.stats);
    t
}

#[test]
fn seeded_recovery_runs_are_bit_identical() {
    let a = recovery_transcript(SEED);
    let b = recovery_transcript(SEED);
    assert!(!a.is_empty() && a.contains("Recovered"), "transcript has substance");
    assert!(
        a.lines().count() > 20,
        "transcript covers timeline, flows, links, and counters"
    );
    assert_eq!(a, b, "identical seeds must give identical transcripts");
}

#[test]
fn different_seeds_change_the_workload_not_the_recovery() {
    let a = recovery_transcript(SEED);
    let b = recovery_transcript(SEED + 1);
    // The recovery timeline is seed-independent (the failure is injected
    // deterministically)…
    let timeline = |t: &str| {
        t.split("== flows ==").next().map(str::to_owned).unwrap_or_default()
    };
    assert_eq!(timeline(&a), timeline(&b));
    // …while the seeded workload actually differs, proving the transcript
    // is sensitive enough to catch divergence.
    assert_ne!(a, b, "different seeds must change the flow-level transcript");
}
