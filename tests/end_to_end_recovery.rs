//! End-to-end integration: the same trace and the same failure through all
//! three systems, asserting the paper's qualitative ordering.

#![allow(clippy::cast_possible_truncation)] // bounded rack/salt arithmetic
use sharebackup::core::scenario::{
    sharebackup_timeline, F10World, FatTreeWorld, RecoveryMode, SbEvent, ShareBackupWorld,
    TopoEvent,
};
use sharebackup::core::{Controller, ControllerConfig};
use sharebackup::flowsim::{FlowSim, FlowSpec};
use sharebackup::routing::FlowKey;
use sharebackup::sim::{SimRng, Time};
use sharebackup::topo::{
    F10Topology, FatTree, FatTreeConfig, GroupId, HostAddr, ShareBackup,
    ShareBackupConfig,
};
use sharebackup::workload::{CoflowTrace, TraceConfig};

const K: usize = 8;

fn build_trace(ft: &FatTree) -> CoflowTrace {
    let cfg = TraceConfig::fb_like(K * K / 2, Time::from_secs(40)).with_mean_interarrival_s(1.0);
    let mut rng = SimRng::seed_from_u64(99);
    CoflowTrace::generate(&cfg, &mut rng, |rack, salt| {
        let half = K / 2;
        ft.host(HostAddr {
            pod: (rack / half) % K,
            edge: rack % half,
            host: (salt as usize) % half,
        })
    })
}

fn total_cct(trace: &CoflowTrace, specs: &[FlowSpec], out: &sharebackup::flowsim::SimOutcome) -> f64 {
    trace
        .coflows
        .iter()
        .map(|cf| cf.cct(specs, out).map(|d| d.as_secs_f64()).unwrap_or(1e9))
        .sum()
}

#[test]
fn same_failure_three_systems_ordering() {
    let ft_cfg = FatTreeConfig::new(K).with_oversubscription(10.0);
    let base_ft = FatTree::build(ft_cfg);
    let trace = build_trace(&base_ft);
    assert!(trace.coflow_count() >= 20, "trace has substance");

    let fail_at = Time::from_secs(2);
    let repair_at = Time::from_secs(60);
    let (pod, a) = (0, 0);

    // Append a long-lived probe flow that deterministically crosses
    // agg(pod, a), so the rerouting-vs-replacement contrast is guaranteed
    // to be exercised.
    let mut trace = trace;
    let probe_src = base_ft.host(HostAddr { pod, edge: 0, host: 0 });
    let probe_dst = base_ft.host(HostAddr { pod: 4, edge: 2, host: 1 });
    let probe_id = (0..10_000u64)
        .find(|&id| {
            let p = sharebackup::routing::ecmp_path(
                &base_ft,
                &FlowKey::new(probe_src, probe_dst, id),
            );
            p[2] == base_ft.agg(pod, a)
        })
        .expect("some id hashes through the target agg");
    let probe_index = trace.specs.len();
    trace.specs.push(FlowSpec {
        key: FlowKey::new(probe_src, probe_dst, probe_id),
        bytes: 2_000_000_000, // outlives the failure epoch
        arrival: Time::ZERO,
    });
    trace.coflows.push(sharebackup::flowsim::Coflow {
        id: sharebackup::flowsim::CoflowId(trace.coflows.len() as u32),
        flows: vec![probe_index],
    });

    // Fat-tree, global optimal rerouting.
    let ft = FatTree::build(ft_cfg);
    let agg = ft.agg(pod, a);
    let mut world = FatTreeWorld::new(
        ft,
        RecoveryMode::GlobalOptimal,
        vec![TopoEvent::FailNode(agg), TopoEvent::RepairNode(agg)],
    );
    let out_ft = FlowSim::new().run(&mut world, &trace.specs, &[fail_at, repair_at]);

    // F10, local rerouting.
    let f10 = F10Topology::build(ft_cfg);
    let agg = f10.agg(pod, a);
    let mut world = F10World::new(
        f10,
        vec![TopoEvent::FailNode(agg), TopoEvent::RepairNode(agg)],
    );
    let out_f10 = FlowSim::new().run(&mut world, &trace.specs, &[fail_at, repair_at]);

    // ShareBackup.
    let sb = ShareBackup::build(ShareBackupConfig::for_fattree(ft_cfg, 1));
    let controller = Controller::new(sb, ControllerConfig::default());
    let mut world = ShareBackupWorld::new(controller, vec![]);
    let victim = world.controller.sb.occupant(GroupId::agg(pod).slot(a));
    let (events, times) = sharebackup_timeline(&world, &[(fail_at, SbEvent::NodeFail(victim))]);
    world.events = events;
    let out_sb = FlowSim::new().run(&mut world, &trace.specs, &times);

    // Everyone eventually finishes every flow (failure was repairable).
    for (name, out) in [("ft", &out_ft), ("f10", &out_f10), ("sb", &out_sb)] {
        assert!(
            out.flows.iter().all(|f| f.completed.is_some()),
            "{name}: all flows complete"
        );
    }

    // Compare each system against its *own* no-failure baseline (the Fig. 1c
    // methodology): cross-topology absolute CCTs differ by ECMP hashing
    // noise, but slowdowns isolate the failure's effect.
    let mut env = FatTreeWorld::new(FatTree::build(ft_cfg), RecoveryMode::GlobalOptimal, vec![]);
    let base_ft_run = FlowSim::new().run(&mut env, &trace.specs, &[]);
    let mut env = F10World::new(F10Topology::build(ft_cfg), vec![]);
    let base_f10_run = FlowSim::new().run(&mut env, &trace.specs, &[]);

    let max_slowdown = |fail: &sharebackup::flowsim::SimOutcome,
                        base: &sharebackup::flowsim::SimOutcome|
     -> f64 {
        trace
            .coflows
            .iter()
            .filter_map(|cf| {
                let f = cf.cct(&trace.specs, fail)?.as_secs_f64();
                let b = cf.cct(&trace.specs, base)?.as_secs_f64();
                (b > 0.0).then(|| f / b)
            })
            .fold(0.0, f64::max)
    };
    let worst_ft = max_slowdown(&out_ft, &base_ft_run);
    let worst_f10 = max_slowdown(&out_f10, &base_f10_run);
    let worst_sb = max_slowdown(&out_sb, &base_ft_run);
    // ShareBackup's worst coflow barely notices the millisecond blip; the
    // rerouting baselines' worst coflows pay for the lost bandwidth.
    // (Note: aggregate CCT can even *improve* under global optimal
    // rerouting — it rebalances all flows — which is why the comparison
    // must be on the affected tail, not totals.)
    assert!(
        worst_sb <= worst_ft + 1e-6,
        "ShareBackup worst slowdown ({worst_sb}) must not exceed fat-tree's ({worst_ft})"
    );
    assert!(
        worst_sb <= worst_f10 + 1e-6,
        "ShareBackup worst slowdown ({worst_sb}) must not exceed F10's ({worst_f10})"
    );
    assert!(
        worst_sb < 1.02,
        "ShareBackup's millisecond blip is invisible at coflow scale: {worst_sb}"
    );
    let _ = total_cct; // retained for ad-hoc inspection

    // ShareBackup never rerouted a single flow; the baselines had to move
    // the probe flow (it crossed the failed switch).
    assert!(out_sb.flows.iter().all(|f| !f.rerouted));
    assert!(
        out_ft.flows[probe_index].rerouted,
        "fat-tree must reroute the affected probe flow"
    );
    assert!(
        out_f10.flows[probe_index].rerouted,
        "F10 must locally reroute the affected probe flow"
    );
    assert_eq!(world.controller.stats.replacements, 1);
}

#[test]
fn edge_failure_strands_reroute_but_not_sharebackup() {
    // An edge-switch failure cannot be rerouted around — its hosts are cut
    // off until repair. ShareBackup replaces the switch in ~1 ms.
    let ft_cfg = FatTreeConfig::new(K).with_oversubscription(10.0);
    let fail_at = Time::from_millis(100);

    let ft = FatTree::build(ft_cfg);
    let src = ft.host(HostAddr { pod: 0, edge: 0, host: 0 });
    let dst = ft.host(HostAddr { pod: 1, edge: 0, host: 0 });
    let specs = vec![FlowSpec {
        key: FlowKey::new(src, dst, 1),
        bytes: 1_000_000_000, // ~8 s at the 1 Gbps oversubscribed uplinks
        arrival: Time::ZERO,
    }];

    // Fat-tree, no repair within the horizon: the flow never finishes.
    let edge = ft.edge(0, 0);
    let mut world = FatTreeWorld::new(
        ft,
        RecoveryMode::GlobalOptimal,
        vec![TopoEvent::FailNode(edge)],
    );
    let out = FlowSim::with_horizon(Time::from_secs(60)).run(&mut world, &specs, &[fail_at]);
    assert_eq!(out.flows[0].completed, None, "stranded under rerouting");

    // ShareBackup: recovered within milliseconds, flow finishes on time.
    let sb = ShareBackup::build(ShareBackupConfig::for_fattree(ft_cfg, 1));
    let controller = Controller::new(sb, ControllerConfig::default());
    let mut world = ShareBackupWorld::new(controller, vec![]);
    let src = world.controller.sb.slots.host(HostAddr { pod: 0, edge: 0, host: 0 });
    let dst = world.controller.sb.slots.host(HostAddr { pod: 1, edge: 0, host: 0 });
    let specs = vec![FlowSpec {
        key: FlowKey::new(src, dst, 1),
        bytes: 1_000_000_000,
        arrival: Time::ZERO,
    }];
    let victim = world.controller.sb.occupant(GroupId::edge(0).slot(0));
    let (events, times) = sharebackup_timeline(&world, &[(fail_at, SbEvent::NodeFail(victim))]);
    world.events = events;
    let out = FlowSim::with_horizon(Time::from_secs(60)).run(&mut world, &specs, &times);
    let done = out.flows[0].completed.expect("ShareBackup saves the flow");
    assert!(done < Time::from_secs(10), "{done:?}");
}

#[test]
fn global_hash_mode_also_recovers_fabric_failures() {
    // The weaker (hash-based) rerouting baseline: flows re-hash onto
    // surviving shortest paths without load awareness.
    let ft_cfg = FatTreeConfig::new(4);
    let ft = FatTree::build(ft_cfg);
    let src = ft.host(HostAddr { pod: 0, edge: 0, host: 0 });
    let dst = ft.host(HostAddr { pod: 2, edge: 0, host: 0 });
    let core = ft.core(0);
    let flows: Vec<FlowSpec> = (0..8)
        .map(|id| FlowSpec {
            key: FlowKey::new(src, dst, id),
            bytes: 125_000_000,
            arrival: Time::ZERO,
        })
        .collect();
    let mut world = FatTreeWorld::new(
        ft,
        RecoveryMode::GlobalHash,
        vec![TopoEvent::FailNode(core)],
    );
    let out = FlowSim::new().run(&mut world, &flows, &[Time::from_millis(1)]);
    assert!(out.flows.iter().all(|f| f.completed.is_some()));
    // Hash-based rerouting re-hashes over the *surviving* path set, so even
    // unaffected flows can move (the classic ECMP-rehash artifact — one
    // more disruption ShareBackup avoids by never rerouting at all).
    let moved = out.flows.iter().filter(|f| f.rerouted).count();
    assert!(moved >= 1, "the affected flows must move");
}

#[test]
fn beyond_pool_failures_degrade_gracefully() {
    // Two concurrent failures in one group with n=1: the second is not
    // masked, but the first is, and repair eventually restores everything.
    let sb = ShareBackup::build(ShareBackupConfig::new(4, 1));
    let mut ctl = Controller::new(sb, ControllerConfig::default());
    let g = GroupId::agg(0);
    let v0 = ctl.sb.occupant(g.slot(0));
    let v1 = ctl.sb.occupant(g.slot(1));
    ctl.sb.set_phys_healthy(v0, false);
    ctl.sb.set_phys_healthy(v1, false);
    let r0 = ctl.handle_node_failure(v0, Time::ZERO);
    let r1 = ctl.handle_node_failure(v1, Time::ZERO);
    assert!(r0.fully_recovered());
    assert!(!r1.fully_recovered());
    assert_eq!(ctl.stats.fallbacks, 1);
    // First repair comes back: the controller can then fix the open slot.
    let due = ctl.next_repair_due().expect("repairs pending");
    ctl.poll_repairs(due);
    let open_slot = r1.unrecovered[0];
    let spare = ctl.sb.spares(g)[0];
    ctl.sb.replace(open_slot, spare);
    assert!(ctl.sb.slots.net.node(ctl.sb.slot_node(open_slot)).up);
}
