//! Property-based integration tests: random failure/recovery sequences
//! must preserve the ShareBackup architecture's structural invariants.

#![allow(clippy::cast_possible_truncation)] // bounded rack/salt arithmetic
use proptest::prelude::*;

use sharebackup::core::{Controller, ControllerConfig};
use sharebackup::routing::{ecmp_path, FlowKey};
use sharebackup::sim::Time;
use sharebackup::topo::{
    GroupId, GroupKind, NodeId, ShareBackup, ShareBackupConfig,
};

/// Every slot always has exactly one occupant; every physical switch
/// occupies at most one slot; spares + occupants = all members per group.
///
/// These checks are now library code — [`ShareBackup::check_invariants`]
/// covers occupancy bijectivity, crossbar matching validity, and circuit
/// realization of the slot fat-tree (and under the `strict-invariants`
/// feature runs automatically after every reconfiguration); this wrapper
/// keeps the property tests exercising them explicitly in default builds.
fn occupancy_invariants(sb: &ShareBackup) {
    sb.check_invariants();
}

/// The circuit layer must realize exactly the slot fat-tree's links.
fn circuit_realization_invariant(sb: &ShareBackup) {
    sb.check_invariants();
}

fn group_for(idx: usize, k: usize) -> GroupId {
    let half = k / 2;
    match idx % 3 {
        0 => GroupId::edge(idx % k),
        1 => GroupId::agg(idx % k),
        _ => GroupId::core(idx % half),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random node-failure sequences with interleaved repairs never break
    /// occupancy or circuit-realization invariants, and recovery always
    /// succeeds while the group pool lasts.
    #[test]
    fn random_failure_sequences_preserve_invariants(
        seq in prop::collection::vec((0usize..30, 0usize..2, any::<bool>()), 1..20)
    ) {
        let k = 4;
        let sb = ShareBackup::build(ShareBackupConfig::new(k, 1));
        let mut ctl = Controller::new(sb, ControllerConfig::default());
        let mut now = Time::ZERO;
        for (g_idx, slot_idx, repair_first) in seq {
            now += sharebackup::sim::Duration::from_secs(1);
            if repair_first {
                if let Some(due) = ctl.next_repair_due() {
                    ctl.poll_repairs(due.max(now));
                }
            }
            let g = group_for(g_idx, k);
            let slot = g.slot(slot_idx % (k / 2));
            let victim = ctl.sb.occupant(slot);
            if !ctl.sb.phys(victim).healthy {
                continue;
            }
            let pool_nonempty = !ctl.sb.spares(g).is_empty();
            ctl.sb.set_phys_healthy(victim, false);
            let r = ctl.handle_node_failure(victim, now);
            if pool_nonempty {
                prop_assert!(r.fully_recovered());
                prop_assert!(ctl.sb.slots.net.node(ctl.sb.slot_node(slot)).up);
            }
            occupancy_invariants(&ctl.sb);
            circuit_realization_invariant(&ctl.sb);
        }
        // Drain all repairs: the network must return to full health.
        while let Some(due) = ctl.next_repair_due() {
            ctl.poll_repairs(due);
        }
        for g in ctl.sb.group_ids() {
            // Any slot that stayed down can now be fixed manually.
            for s in 0..k / 2 {
                let slot = g.slot(s);
                if !ctl.sb.phys(ctl.sb.occupant(slot)).healthy {
                    let spare = ctl.sb.spares(g)[0];
                    ctl.sb.replace(slot, spare);
                }
            }
        }
        occupancy_invariants(&ctl.sb);
        circuit_realization_invariant(&ctl.sb);
        for node in ctl.sb.slots.net.node_ids() {
            prop_assert!(ctl.sb.slots.net.node(node).up);
        }
    }

    /// ECMP paths over the slot network are invariant under occupant swaps:
    /// routing sees slots, not physical switches.
    #[test]
    fn routing_is_occupancy_independent(
        swaps in prop::collection::vec((0usize..30, 0usize..2), 1..8),
        flow_id in 0u64..1000
    ) {
        let k = 4;
        let mut sb = ShareBackup::build(ShareBackupConfig::new(k, 2));
        let src = sb.slots.host(sharebackup::topo::HostAddr { pod: 0, edge: 0, host: 0 });
        let dst = sb.slots.host(sharebackup::topo::HostAddr { pod: 3, edge: 1, host: 1 });
        let flow = FlowKey::new(src, dst, flow_id);
        let before = ecmp_path(&sb.slots, &flow);
        for (g_idx, slot_idx) in swaps {
            let g = group_for(g_idx, k);
            let slot = g.slot(slot_idx % (k / 2));
            let spares = sb.spares(g);
            if let Some(&spare) = spares.first() {
                sb.replace(slot, spare);
            }
        }
        let after = ecmp_path(&sb.slots, &flow);
        prop_assert_eq!(before, after);
        circuit_realization_invariant(&sb);
    }

    /// The impact metric is monotone: adding failures never decreases the
    /// affected-flow or affected-coflow fraction.
    #[test]
    fn impact_is_monotone_in_failures(
        n_failures in 1usize..6,
        seed in 0u64..500
    ) {
        use sharebackup::flowsim::{impact, Coflow, CoflowId};
        use sharebackup::sim::SimRng;
        use sharebackup::topo::{FatTree, FatTreeConfig};

        let ft = FatTree::build(FatTreeConfig::new(4));
        let mut rng = SimRng::seed_from_u64(seed);
        let hosts = ft.hosts().to_vec();
        let paths: Vec<Vec<NodeId>> = (0..40u64)
            .map(|id| {
                let s = *rng.choose(&hosts);
                let mut d = *rng.choose(&hosts);
                while d == s {
                    d = *rng.choose(&hosts);
                }
                ecmp_path(&ft, &FlowKey::new(s, d, id))
            })
            .collect();
        let coflows: Vec<Coflow> = (0..8)
            .map(|i| Coflow {
                id: CoflowId(i as u32),
                flows: (0..40).filter(|f| f % 8 == i).collect(),
            })
            .collect();

        let mut net = ft.net.clone();
        let switches: Vec<NodeId> = net
            .node_ids()
            .filter(|&n| net.node(n).kind.is_switch())
            .collect();
        let mut last_flow = 0.0;
        let mut last_coflow = 0.0;
        for i in 0..n_failures {
            let victim = switches[(seed as usize + i * 7) % switches.len()];
            net.set_node_up(victim, false);
            let rep = impact::impact(&net, &paths, &coflows);
            prop_assert!(rep.flow_fraction() >= last_flow);
            prop_assert!(rep.coflow_fraction() >= last_coflow);
            prop_assert!(rep.coflow_fraction() >= rep.flow_fraction() * 0.999);
            last_flow = rep.flow_fraction();
            last_coflow = rep.coflow_fraction();
        }
    }
}

#[test]
fn group_kinds_cover_all_switches() {
    let sb = ShareBackup::build(ShareBackupConfig::new(6, 1));
    let mut edge = 0;
    let mut agg = 0;
    let mut core = 0;
    for g in sb.group_ids() {
        match g.kind {
            GroupKind::Edge => edge += sb.group_members(g).len(),
            GroupKind::Agg => agg += sb.group_members(g).len(),
            GroupKind::Core => core += sb.group_members(g).len(),
        }
    }
    assert_eq!(edge, 6 * 4);
    assert_eq!(agg, 6 * 4);
    assert_eq!(core, 3 * 4);
}
