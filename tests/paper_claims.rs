//! The paper's quantitative claims, pinned as integration tests. Each test
//! cites the section it checks.

use sharebackup::cost::model::{relative_additional, Architecture, Medium};
use sharebackup::cost::{CapacityAnalysis, ScalabilityLimits};
use sharebackup::core::{RecoveryLatencyModel, RecoveryScheme};
use sharebackup::routing::impersonation::GroupTables;
use sharebackup::sim::Duration;
use sharebackup::topo::{CircuitTech, ShareBackup, ShareBackupConfig};

#[test]
fn s3_inventory_formulas() {
    // §3 / §5.2: 5k/2 failure groups, 3k²/2 circuit switches, (k/2+n)·5k/2
    // packet switches.
    for (k, n) in [(4, 1), (6, 1), (8, 2)] {
        let sb = ShareBackup::build(ShareBackupConfig::new(k, n));
        assert_eq!(sb.group_ids().len(), 5 * k / 2);
        assert_eq!(sb.circuit_switch_count(), 3 * k * k / 2);
        assert_eq!(sb.phys_count(), (5 * k / 2) * (k / 2 + n));
    }
}

#[test]
fn s4_3_impersonation_table_fits_tcam() {
    // §4.3: "the table contains 1056 entries for a k=64 fat-tree with over
    // 65k hosts".
    assert_eq!(GroupTables::edge_entry_count(64), 1056);
    assert!(64usize.pow(3) / 4 > 65_000);
    // And the built table matches the closed form at every k.
    for k in [4usize, 8, 16, 32] {
        let gt = GroupTables::build(k);
        assert_eq!(
            gt.edge_group(0).entry_count(),
            GroupTables::edge_entry_count(k)
        );
    }
}

#[test]
fn s5_1_backup_ratio_headroom() {
    // §5.1: k=48, n=1 → ratio 4.17%, >400× the 0.01% failure rate; 27k+
    // hosts.
    let c = CapacityAnalysis::new(48, 1);
    assert!((c.backup_ratio() - 1.0 / 24.0).abs() < 1e-12);
    assert!(c.headroom_over(0.0001) > 400.0);
    assert!(c.hosts() > 27_000);
}

#[test]
fn s5_2_cost_headlines() {
    // §5.2: ShareBackup adds 6.7% (E-DC) / 13.3% (O-DC) at k=48, n=1;
    // 1:1 backup is 4× fat-tree; ShareBackup n=4 still beats Aspen.
    let sb_e = relative_additional(Architecture::ShareBackup { n: 1 }, 48, Medium::Electrical);
    let sb_o = relative_additional(Architecture::ShareBackup { n: 1 }, 48, Medium::Optical);
    assert!((sb_e - 0.067).abs() < 0.001, "{sb_e}");
    assert!((sb_o - 0.133).abs() < 0.001, "{sb_o}");
    assert!(
        (relative_additional(Architecture::OneToOneBackup, 48, Medium::Electrical) - 3.0).abs()
            < 1e-9
    );
    for m in [Medium::Electrical, Medium::Optical] {
        assert!(
            relative_additional(Architecture::ShareBackup { n: 4 }, 48, m)
                < relative_additional(Architecture::AspenTree, 48, m)
        );
    }
}

#[test]
fn s5_3_scalability_limits() {
    // §5.3: 32-port MEMS → k=58 at n=1 (48k+ hosts, 3.45% ratio); n=6 at
    // k=48 (25%).
    let s = ScalabilityLimits::new(CircuitTech::Mems2D);
    assert_eq!(s.max_k(1), 58);
    assert!(s.max_hosts(1) > 48_000);
    assert_eq!(s.max_n(48), 6);
    assert!((CapacityAnalysis::new(48, 6).backup_ratio() - 0.25).abs() < 1e-12);
}

#[test]
fn s5_3_recovery_as_fast_as_local_rerouting() {
    // §5.3: same probing interval as F10/Aspen; circuit resets 70 ns /
    // 40 µs; sub-ms control → total within a whisker of local rerouting.
    let m = RecoveryLatencyModel::default();
    let local = m.total(RecoveryScheme::LocalReroute);
    for tech in [CircuitTech::Crosspoint, CircuitTech::Mems2D] {
        let sb = m.total(RecoveryScheme::ShareBackup(tech));
        assert!(sb <= local, "{tech:?}: {sb} vs local {local}");
        assert!(sb >= m.detection(), "cannot beat detection");
    }
    assert_eq!(
        CircuitTech::Crosspoint.reconfiguration_delay(),
        Duration::from_nanos(70)
    );
    assert_eq!(
        CircuitTech::Mems2D.reconfiguration_delay(),
        Duration::from_micros(40)
    );
}

#[test]
fn s5_2_inventory_formulas_match_the_built_fabric() {
    // The cost model's device counts must describe the topology we actually
    // build: 5k/2·n extra switches, 3k²/2 circuit switches; the cabling
    // audit's switch-cable count equals (total switches)·k.
    use sharebackup::cost::model::sharebackup_inventory;
    use sharebackup::topo::CablingReport;
    for (k, n) in [(4usize, 1usize), (6, 1), (6, 2)] {
        let sb = ShareBackup::build(ShareBackupConfig::new(k, n));
        let (extra_switches, _cables, _cports) = sharebackup_inventory(k, n);
        let fat_tree_switches = 2 * k * (k / 2) + (k / 2) * (k / 2);
        assert_eq!(
            sb.phys_count(),
            fat_tree_switches + extra_switches,
            "k={k} n={n}"
        );
        assert_eq!(sb.circuit_switch_count(), 3 * k * k / 2);
        let bill = CablingReport::of(&sb);
        assert_eq!(bill.switch_cables, sb.phys_count() * k);
        assert_eq!(bill.circuit_switches, sb.circuit_switch_count());
    }
}

#[test]
fn s5_1_link_failure_consumes_one_backup_after_diagnosis() {
    // §5.1: "With failure diagnosis, we can identify the interface at
    // fault, so we consume only one backup switch at the faulty end."
    use sharebackup::core::{Controller, ControllerConfig};
    use sharebackup::sim::Time;
    use sharebackup::topo::GroupId;
    let sb = ShareBackup::build(ShareBackupConfig::new(6, 1));
    let mut ctl = Controller::new(sb, ControllerConfig::default());
    let edge = ctl.sb.occupant(GroupId::edge(0).slot(0));
    let agg = ctl.sb.occupant(GroupId::agg(0).slot(0));
    ctl.sb.set_iface_broken(edge, 3, true);
    ctl.handle_link_failure((edge, 3), (agg, 0), Time::ZERO);
    // Immediately after recovery+diagnosis: the agg side was exonerated and
    // is the agg group's spare again — net backup consumption is 1 (edge).
    assert_eq!(ctl.sb.spares(GroupId::agg(0)), vec![agg]);
    assert!(ctl.sb.spares(GroupId::edge(0)).is_empty());
}
