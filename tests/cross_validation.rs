//! Cross-validation between the flow-level (max-min fluid) and the
//! packet-level (queues + Reno) simulators: on simple scenarios the two
//! must agree on completion times within the slack AIMD dynamics allow.

use sharebackup::flowsim::{Environment, FlowSim, FlowSpec};
use sharebackup::packet::{PacketNetConfig, PacketSim, PktFlowSpec};
use sharebackup::routing::{ecmp_path, FlowKey};
use sharebackup::sim::Time;
use sharebackup::topo::{FatTree, FatTreeConfig, HostAddr, LinkId, NodeId};

/// A trivial environment: static ECMP over a healthy fat-tree.
struct StaticFt {
    ft: FatTree,
}

impl Environment for StaticFt {
    fn capacity(&self, l: LinkId) -> f64 {
        self.ft.net.link(l).capacity_bps
    }
    fn link_between(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
        self.ft.net.link_between(a, b)
    }
    fn route(&mut self, flow: &FlowKey) -> Option<Vec<NodeId>> {
        Some(ecmp_path(&self.ft, flow))
    }
    fn on_epoch(&mut self, _index: usize, _now: Time) {}
}

#[test]
fn single_flow_completion_agrees() {
    let ft = FatTree::build(FatTreeConfig::new(4));
    let src = ft.host(HostAddr { pod: 0, edge: 0, host: 0 });
    let dst = ft.host(HostAddr { pod: 2, edge: 1, host: 0 });
    let key = FlowKey::new(src, dst, 1);
    let bytes = 50_000_000u64; // 40 ms at 10 Gbps

    // Fluid model: exactly bytes·8/rate.
    let specs = vec![FlowSpec { key, bytes, arrival: Time::ZERO }];
    let mut env = StaticFt { ft: FatTree::build(FatTreeConfig::new(4)) };
    let fluid = FlowSim::new().run(&mut env, &specs, &[]);
    let t_fluid = fluid.flows[0].completed.expect("fluid finishes").as_secs_f64();

    // Packet model: slow start + header overhead make it slower, but the
    // same order.
    let path = ecmp_path(&ft, &key);
    let (pkt, _) = PacketSim::new(PacketNetConfig::default()).run(
        &ft.net,
        &[PktFlowSpec { path, bytes, start: Time::ZERO }],
        vec![],
        Time::from_secs(30),
    );
    let t_pkt = pkt[0].completed.expect("packet finishes").as_secs_f64();

    assert!(t_pkt >= t_fluid * 0.95, "packet sim can't beat the fluid bound");
    assert!(
        t_pkt <= t_fluid * 2.0,
        "packet sim within 2x of fluid: {t_pkt} vs {t_fluid}"
    );
}

#[test]
fn shared_bottleneck_fairness_agrees() {
    // Two flows from hosts under the same edge to hosts under one remote
    // edge: both cross the same edge uplinks region; with ECMP they may or
    // may not collide, so force a single shared host link by using the same
    // destination host — the receiver link is the bottleneck either way.
    let ft = FatTree::build(FatTreeConfig::new(4));
    let src_a = ft.host(HostAddr { pod: 0, edge: 0, host: 0 });
    let src_b = ft.host(HostAddr { pod: 0, edge: 1, host: 0 });
    let dst = ft.host(HostAddr { pod: 2, edge: 1, host: 0 });
    let bytes = 25_000_000u64;
    let keys = [FlowKey::new(src_a, dst, 1), FlowKey::new(src_b, dst, 2)];

    let specs: Vec<FlowSpec> = keys
        .iter()
        .map(|&key| FlowSpec { key, bytes, arrival: Time::ZERO })
        .collect();
    let mut env = StaticFt { ft: FatTree::build(FatTreeConfig::new(4)) };
    let fluid = FlowSim::new().run(&mut env, &specs, &[]);
    let t_fluid: Vec<f64> = (0..2)
        .map(|i| fluid.flows[i].completed.expect("finishes").as_secs_f64())
        .collect();

    let pkt_specs: Vec<PktFlowSpec> = keys
        .iter()
        .map(|key| PktFlowSpec {
            path: ecmp_path(&ft, key),
            bytes,
            start: Time::ZERO,
        })
        .collect();
    let (pkt, _) = PacketSim::new(PacketNetConfig::default()).run(
        &ft.net,
        &pkt_specs,
        vec![],
        Time::from_secs(30),
    );
    let t_pkt: Vec<f64> = (0..2)
        .map(|i| pkt[i].completed.expect("finishes").as_secs_f64())
        .collect();

    // Both models: the two flows share the receiver link, so each sees
    // roughly half throughput — their completions are close to each other.
    let fluid_ratio = t_fluid[0].max(t_fluid[1]) / t_fluid[0].min(t_fluid[1]);
    let pkt_ratio = t_pkt[0].max(t_pkt[1]) / t_pkt[0].min(t_pkt[1]);
    assert!(fluid_ratio < 1.01, "fluid is exactly fair: {t_fluid:?}");
    assert!(pkt_ratio < 2.0, "AIMD is approximately fair: {t_pkt:?}");
    // And the models agree on the absolute scale.
    for i in 0..2 {
        assert!(
            t_pkt[i] <= t_fluid[i] * 2.5 && t_pkt[i] >= t_fluid[i] * 0.8,
            "flow {i}: packet {} vs fluid {}",
            t_pkt[i],
            t_fluid[i]
        );
    }
}

#[test]
fn failover_blip_agrees_between_models() {
    // A 1.25 ms outage (ShareBackup crosspoint recovery) in the middle of a
    // transfer: both models show a completion delay of the same order as
    // the outage, not the transfer length.
    use sharebackup::packet::PktEvent;
    let ft = FatTree::build(FatTreeConfig::new(4));
    let src = ft.host(HostAddr { pod: 0, edge: 0, host: 0 });
    let dst = ft.host(HostAddr { pod: 2, edge: 1, host: 0 });
    let key = FlowKey::new(src, dst, 1);
    let path = ecmp_path(&ft, &key);
    let core = path[3];
    let bytes = 125_000_000u64; // 100 ms at 10 Gbps
    let fail = Time::from_millis(20);
    let back = fail + sharebackup::sim::Duration::from_micros(1250);

    let (pkt, _) = PacketSim::new(PacketNetConfig {
        rto: sharebackup::sim::Duration::from_millis(2),
        ..PacketNetConfig::default()
    })
    .run(
        &ft.net,
        &[PktFlowSpec { path: path.clone(), bytes, start: Time::ZERO }],
        vec![
            (fail, PktEvent::FailNode(core)),
            (back, PktEvent::RepairNode(core)),
        ],
        Time::from_secs(30),
    );
    let t = pkt[0].completed.expect("finishes").as_secs_f64();
    // Clean transfer ~0.104 s (slow start etc.); the blip adds a few ms.
    assert!(t < 0.2, "blip must not derail the transfer: {t}");
}
