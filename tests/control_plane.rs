//! Control-plane integration scenarios: controller-cluster failover during
//! recovery, circuit-switch escalation end-to-end, and rolling maintenance
//! under live traffic.

use sharebackup::core::{
    Controller, ControllerCluster, ControllerConfig, RollingUpgrade,
};
use sharebackup::flowsim::{Environment, FlowSim, FlowSpec};
use sharebackup::routing::FlowKey;
use sharebackup::sim::{Duration, Time};
use sharebackup::topo::{CsId, GroupId, HostAddr, ShareBackup, ShareBackupConfig};

#[test]
fn primary_controller_failure_delays_recovery_by_one_election() {
    // The paper §5.1: replicas all receive status reports; a new primary is
    // elected when the current one dies. Model: the data-plane failure and
    // the primary's death coincide; effective recovery latency gains the
    // election time.
    let sb = ShareBackup::build(ShareBackupConfig::new(4, 1));
    let mut ctl = Controller::new(sb, ControllerConfig::default());
    let mut cluster = ControllerCluster::new(3, Duration::from_millis(50));

    let slot = GroupId::agg(0).slot(0);
    let victim = ctl.sb.occupant(slot);
    ctl.sb.set_phys_healthy(victim, false);

    // Primary dies at the same instant.
    let election_delay = cluster.fail_replica(0).expect("replica 0 exists");
    assert!(cluster.available(), "replica 1 takes over");
    let recovery = ctl.handle_node_failure(victim, Time::ZERO);
    let effective = recovery.latency + election_delay;
    assert!(effective > recovery.latency);
    assert!(
        effective < Duration::from_millis(60),
        "sub-100ms even with failover: {effective}"
    );
    assert!(recovery.fully_recovered());
}

#[test]
fn total_controller_loss_blocks_recovery_until_restore() {
    let sb = ShareBackup::build(ShareBackupConfig::new(4, 1));
    let mut ctl = Controller::new(sb, ControllerConfig::default());
    let mut cluster = ControllerCluster::new(2, Duration::from_millis(10));
    cluster.fail_replica(0).expect("replica 0 exists");
    cluster.fail_replica(1).expect("replica 1 exists");
    assert!(!cluster.available());

    // With no primary, the harness must not invoke the controller — model
    // the wait, then restore and recover.
    let slot = GroupId::core(0).slot(1);
    let victim = ctl.sb.occupant(slot);
    ctl.sb.set_phys_healthy(victim, false);
    assert!(!ctl.sb.slots.net.node(ctl.sb.slot_node(slot)).up);

    cluster.restore_replica(0).expect("replica 0 exists");
    assert!(cluster.available());
    let recovery = ctl.handle_node_failure(victim, Time::from_secs(1));
    assert!(recovery.fully_recovered());
    assert!(ctl.sb.slots.net.node(ctl.sb.slot_node(slot)).up);
}

#[test]
fn circuit_switch_failure_escalates_and_humans_fix_it() {
    // §5.1: a circuit switch failing produces a burst of link-failure
    // reports attributable to it; over the threshold, recovery halts and
    // humans are paged. After intervention (reboot + config re-sync from
    // the controller), recovery resumes.
    let sb = ShareBackup::build(ShareBackupConfig::new(4, 1));
    let mut ctl = Controller::new(sb, ControllerConfig::default());
    let cs = CsId::EdgeAgg { pod: 1, m: 0 };

    // The circuit switch actually dies: its links go down.
    ctl.sb.set_circuit_switch_up(cs, false);
    let e = ctl.sb.slots.edge(1, 0);
    let a = ctl.sb.slots.agg(1, 0);
    let l = ctl.sb.slots.net.link_between(e, a).expect("link");
    assert!(!ctl.sb.slots.net.link_usable(l));

    // Every edge of the pod reports its link through this CS: 2 reports at
    // k=4... push past the threshold of 4.
    let halted = ctl.report_cs_suspicion(cs, 4);
    assert!(halted);
    assert_eq!(ctl.stats.escalations, 1);

    // While halted, an unrelated node failure is not recovered.
    let slot = GroupId::edge(0).slot(0);
    let victim = ctl.sb.occupant(slot);
    ctl.sb.set_phys_healthy(victim, false);
    let r = ctl.handle_node_failure(victim, Time::ZERO);
    assert!(!r.fully_recovered());

    // Humans reboot the circuit switch; it re-syncs configuration; resume.
    ctl.sb.set_circuit_switch_up(cs, true);
    ctl.resume_after_intervention();
    assert!(ctl.sb.slots.net.link_usable(l));
    let spare = ctl.sb.spares(slot.group);
    assert!(!spare.is_empty());
    // Retry the blocked recovery.
    let r = ctl.handle_node_failure(victim, Time::from_secs(1));
    assert!(r.fully_recovered());
}

/// Environment wrapper: static ECMP over the controller's slot network,
/// with an optional maintenance campaign stepped at each epoch.
struct SbStatic {
    ctl: Controller,
    campaign_slot: Option<RollingUpgrade>,
}

impl Environment for SbStatic {
    fn capacity(&self, l: sharebackup::topo::LinkId) -> f64 {
        self.ctl.sb.slots.net.link(l).capacity_bps
    }
    fn link_between(
        &self,
        a: sharebackup::topo::NodeId,
        b: sharebackup::topo::NodeId,
    ) -> Option<sharebackup::topo::LinkId> {
        self.ctl.sb.slots.net.link_between(a, b)
    }
    fn route(&mut self, flow: &FlowKey) -> Option<Vec<sharebackup::topo::NodeId>> {
        let p = sharebackup::routing::ecmp_path(&self.ctl.sb.slots, flow);
        self.ctl.sb.slots.net.path_usable(&p).then_some(p)
    }
    fn on_epoch(&mut self, index: usize, now: Time) {
        // Each epoch = one maintenance step.
        let mut campaign = std::mem::take(&mut self.campaign_slot);
        if let Some(c) = campaign.as_mut() {
            let _ = c.step(&mut self.ctl, now);
            let _ = index;
        }
        self.campaign_slot = campaign;
    }
}

impl SbStatic {
    fn new(ctl: Controller) -> SbStatic {
        SbStatic {
            ctl,
            campaign_slot: None,
        }
    }
}

#[test]
fn rolling_maintenance_under_live_traffic() {
    let sb = ShareBackup::build(ShareBackupConfig::new(4, 1));
    let ctl = Controller::new(sb, ControllerConfig::default());
    let mut env = SbStatic::new(ctl);
    env.campaign_slot = Some(RollingUpgrade::new(
        GroupId::agg(2),
        Duration::from_secs(2),
    ));

    // Long-lived flows crossing pod 2's aggs while the whole group cycles
    // through upgrades.
    let src = env.ctl.sb.slots.host(HostAddr { pod: 2, edge: 0, host: 0 });
    let dst = env.ctl.sb.slots.host(HostAddr { pod: 3, edge: 1, host: 1 });
    let flows: Vec<FlowSpec> = (0..4)
        .map(|id| FlowSpec {
            key: FlowKey::new(src, dst, id),
            bytes: 12_500_000_000, // 10 s at 10 Gbps aggregate
            arrival: Time::ZERO,
        })
        .collect();
    // Maintenance steps every 3 s.
    let epochs: Vec<Time> = (1..8).map(|i| Time::from_secs(i * 3)).collect();
    let out = FlowSim::with_horizon(Time::from_secs(120)).run(&mut env, &flows, &epochs);
    // All traffic completes despite every agg of the pod being swapped out.
    assert!(out.flows.iter().all(|f| f.completed.is_some()));
    let campaign = env.campaign_slot.expect("campaign exists");
    assert_eq!(campaign.upgraded().len(), 3, "k/2 + n members upgraded");
}
