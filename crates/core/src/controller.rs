//! The logically centralized recovery controller (paper §4.1–§4.2).
//!
//! Switches send keep-alives to the controller (node-failure detection) and
//! probe their neighbors F10-style (link-failure detection, reported to the
//! controller). On a failure the controller:
//!
//! 1. allocates an available backup switch in the failed switch's failure
//!    group (for link failures: on *both* sides — fast recovery cannot wait
//!    for diagnosis),
//! 2. reconfigures the group's circuit switches so the backup takes over
//!    the slot (the backup's tables are preloaded, §4.3, so no rules are
//!    installed), and
//! 3. runs offline diagnosis in the background; exonerated suspects return
//!    to the backup pool, convicted ones go to repair. Nothing ever
//!    switches back — roles swap (§4.2).
//!
//! If a group's pool is empty the failure is *not* recovered (the slot
//! stays down until repair) and the event is counted — the paper sizes `n`
//! so this never happens at realistic failure rates (§5.1). A burst of
//! link-failure reports converging on one circuit switch beyond a threshold
//! stops recovery and escalates to human intervention (§5.1).
//!
//! Under a [`ChaosConfig`] (see [`Controller::with_chaos`]) the recovery
//! machinery itself becomes fallible: backups can be dead on arrival
//! (detected at activation, retried with the next pool member), circuit
//! reconfigurations can fail (bounded retries with deterministic backoff,
//! all wasted rounds folded into [`Recovery::penalty`]), and diagnosis can
//! err in either direction. Slots the controller could not recover are
//! tracked in a degraded-slot set so the scenario layer can route around
//! them (or a repair-time retry can fix them, see
//! [`ControllerConfig::retry_exhausted_on_repair`]).

use std::collections::{BTreeMap, BTreeSet};

use sharebackup_sim::{Duration, SimRng, Time};
use sharebackup_telemetry::Tracer;
use sharebackup_topo::{CsId, NodeId, PhysId, ShareBackup, SlotId};

use crate::chaos::ChaosConfig;
use crate::diagnosis::{diagnose, DiagnosisReport, Verdict};
use crate::latency::{RecoveryLatencyModel, RecoveryScheme};

/// Controller tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ControllerConfig {
    /// The latency model (probe interval, control messages, circuit reset).
    pub latency: RecoveryLatencyModel,
    /// Time for technicians to repair a convicted switch.
    pub switch_repair_time: Duration,
    /// Time to trouble-shoot a host whose NIC is at fault.
    pub host_repair_time: Duration,
    /// Link-failure reports attributable to one circuit switch within the
    /// reporting window before recovery stops and humans are paged (§5.1).
    pub cs_report_threshold: u32,
    /// Whether offline diagnosis (§4.2) runs after link failures. Disabled
    /// only by the diagnosis ablation: without it, both suspects are
    /// convicted and sit out the full repair time.
    pub diagnosis_enabled: bool,
    /// When a repair completes and refills a pool, immediately retry
    /// replacement for slots that were left unrecovered by pool exhaustion
    /// or aborted reconfiguration. Off by default: the baseline harnesses
    /// predate this heal path and their digests must not move.
    pub retry_exhausted_on_repair: bool,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            latency: RecoveryLatencyModel::default(),
            switch_repair_time: Duration::from_secs(180), // "a few minutes"
            host_repair_time: Duration::from_secs(300),
            cs_report_threshold: 4,
            diagnosis_enabled: true,
            retry_exhausted_on_repair: false,
        }
    }
}

/// Counters the controller keeps (reported by the harness).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ControllerStats {
    /// Node failures handled.
    pub node_failures: u64,
    /// Link failures handled.
    pub link_failures: u64,
    /// Host-link failures handled.
    pub host_link_failures: u64,
    /// Slot replacements performed.
    pub replacements: u64,
    /// Failures left unrecovered because the pool was empty.
    pub fallbacks: u64,
    /// Offline diagnoses run.
    pub diagnoses: u64,
    /// Suspects exonerated (returned straight to the pool).
    pub exonerations: u64,
    /// Suspects convicted (sent to repair).
    pub convictions: u64,
    /// Circuit switches that received reconfiguration requests.
    pub circuit_reconfigs: u64,
    /// Escalations to human intervention.
    pub escalations: u64,
    /// Slot-replacement attempts (every call that either replaced a slot's
    /// occupant or recorded a fallback); see [`ControllerStats::assert_consistent`].
    pub recovery_attempts: u64,
    /// Backups found dead on arrival at activation (chaos).
    pub doa_backups: u64,
    /// Circuit-reconfiguration attempts that failed and were retried
    /// (chaos).
    pub reconfig_retries: u64,
    /// Slots abandoned after exhausting the reconfiguration retry budget
    /// (chaos); each is also counted as a fallback.
    pub reconfig_aborts: u64,
    /// Fallbacks caused by an empty backup pool.
    pub pool_exhausted: u64,
    /// Fallbacks refused because recovery was halted by an escalation.
    pub halted_fallbacks: u64,
    /// Node-failure reports about switches that were actually healthy
    /// (keep-alive loss).
    pub spurious_reports: u64,
    /// Healthy suspects wrongly convicted by diagnosis (chaos).
    pub false_convictions: u64,
    /// Faulty suspects wrongly exonerated by diagnosis (chaos); these
    /// poison the backup pool.
    pub false_exonerations: u64,
    /// Flows the scenario layer routed in degraded (reroute) mode at least
    /// once; maintained by `ShareBackupWorld`, not the controller.
    pub degraded_flows: u64,
    /// Controller replicas crashed (any replica, primary or follower);
    /// maintained by `FailoverPlane`, not the bare controller.
    pub controller_crashes: u64,
    /// Controller replicas restored; maintained by `FailoverPlane`.
    pub controller_restores: u64,
    /// Leader elections held after a crash or a restore (the initial
    /// bootstrap election is excluded); maintained by `FailoverPlane`.
    pub elections: u64,
    /// Failure reports submitted to the replicated control plane;
    /// maintained by `FailoverPlane`.
    pub control_reports: u64,
    /// Journaled recoveries re-driven by a successor primary after the
    /// primary that was processing them crashed; each journal entry is
    /// counted at most once. Maintained by `FailoverPlane`.
    pub recoveries_resumed: u64,
    /// Control-message transmissions lost in the control network (chaos);
    /// maintained by `FailoverPlane`.
    pub control_losses: u64,
    /// Control-message transmissions retried after a loss; maintained by
    /// `FailoverPlane`.
    pub control_retries: u64,
    /// Control messages abandoned after exhausting the per-message retry
    /// budget (the recovery stays journaled and is re-driven later);
    /// maintained by `FailoverPlane`.
    pub control_exhausted: u64,
    /// Delivered control messages that suffered an extra chaos delay;
    /// maintained by `FailoverPlane`.
    pub control_delays: u64,
}

impl ControllerStats {
    /// Verify the counter block's internal accounting: every replacement
    /// attempt either replaced the slot's occupant or was recorded as a
    /// fallback, and every fallback has exactly one recorded cause (empty
    /// pool, halted recovery, or an aborted reconfiguration). Diagnosis
    /// error counts can never exceed the verdicts they flipped.
    ///
    /// # Panics
    /// Panics with the violated equation if the counters are inconsistent.
    pub fn assert_consistent(&self) {
        assert_eq!(
            self.recovery_attempts,
            self.replacements + self.fallbacks,
            "every replacement attempt replaces or falls back"
        );
        assert_eq!(
            self.fallbacks,
            self.pool_exhausted + self.halted_fallbacks + self.reconfig_aborts,
            "every fallback has exactly one recorded cause"
        );
        assert!(
            self.false_convictions <= self.convictions,
            "false convictions are a subset of convictions"
        );
        assert!(
            self.false_exonerations <= self.exonerations,
            "false exonerations are a subset of exonerations"
        );
        assert_eq!(
            self.control_losses,
            self.control_retries + self.control_exhausted,
            "every lost control message is either retried or abandoned"
        );
        assert!(
            self.elections <= self.controller_crashes + self.controller_restores,
            "elections are triggered only by crashes or restores"
        );
        assert!(
            self.recoveries_resumed <= self.control_reports,
            "only journaled reports can be resumed, at most once each"
        );
    }
}

/// What one failure-handling call did.
#[derive(Clone, Debug)]
pub struct Recovery {
    /// Detection + repair latency of this recovery (per the §5.3 model),
    /// *including* [`Recovery::penalty`]; the data plane is whole again
    /// this long after the failure struck.
    pub latency: Duration,
    /// Extra latency charged by chaos: wasted reconfiguration rounds on
    /// dead-on-arrival backups, plus timeout + backoff per failed
    /// reconfiguration attempt. Zero when chaos is off.
    pub penalty: Duration,
    /// Slots whose occupant was replaced: (slot, old, new).
    pub replaced: Vec<(SlotId, PhysId, PhysId)>,
    /// Slots left unrecovered (pool empty, recovery halted, or the
    /// reconfiguration retry budget exhausted).
    pub unrecovered: Vec<SlotId>,
    /// Background diagnoses run (link failures only).
    pub diagnosis: Vec<DiagnosisReport>,
}

impl Recovery {
    /// Whether the data plane was fully restored.
    pub fn fully_recovered(&self) -> bool {
        self.unrecovered.is_empty()
    }
}

/// Pending repair work.
#[derive(Clone, Copy, Debug)]
enum RepairJob {
    Switch(PhysId),
    HostNic(NodeId),
}

/// The ShareBackup recovery controller. Owns the network.
pub struct Controller {
    /// The physical network under control.
    pub sb: ShareBackup,
    /// Tuning knobs.
    pub cfg: ControllerConfig,
    /// Running counters.
    pub stats: ControllerStats,
    /// Telemetry handle. Off by default; harnesses that record traces
    /// install a recording tracer and every failure handled then emits a
    /// backdated detection → diagnosis → reconfiguration span tree whose
    /// durations sum to [`Recovery::latency`].
    pub tracer: Tracer,
    /// Chaos rates for the recovery machinery; inert unless a chaos RNG
    /// stream was installed via [`Controller::with_chaos`].
    pub chaos: ChaosConfig,
    repairs: Vec<(Time, RepairJob)>,
    cs_reports: BTreeMap<CsId, u32>,
    halted: bool,
    chaos_rng: Option<SimRng>,
    degraded_slots: BTreeSet<SlotId>,
}

impl Controller {
    /// A controller over a freshly built network. No chaos: the recovery
    /// machinery is infallible and performs zero RNG draws.
    pub fn new(sb: ShareBackup, cfg: ControllerConfig) -> Controller {
        Controller {
            sb,
            cfg,
            stats: ControllerStats::default(),
            tracer: Tracer::off(),
            chaos: ChaosConfig::off(),
            repairs: Vec::new(),
            cs_reports: BTreeMap::new(),
            halted: false,
            chaos_rng: None,
            degraded_slots: BTreeSet::new(),
        }
    }

    /// A controller whose recovery machinery fails per `chaos`, with all
    /// rolls drawn from `rng` (pass a dedicated [`SimRng::child`] stream so
    /// chaos draws never perturb workload or failure sampling).
    pub fn with_chaos(
        sb: ShareBackup,
        cfg: ControllerConfig,
        chaos: ChaosConfig,
        rng: SimRng,
    ) -> Controller {
        let mut c = Controller::new(sb, cfg);
        c.chaos = chaos;
        c.chaos_rng = Some(rng);
        c
    }

    /// Slots currently left unrecovered (down until repair or a later
    /// replacement retry), in slot order.
    pub fn degraded_slots(&self) -> impl Iterator<Item = SlotId> + '_ {
        self.degraded_slots.iter().copied()
    }

    /// One chaos roll. A controller without a chaos stream never draws;
    /// with a stream installed, every opportunity draws exactly once (even
    /// at rate zero) so that sweeping one rate leaves the other components'
    /// draw sequences aligned.
    fn chaos_roll(&mut self, rate: f64) -> bool {
        match &mut self.chaos_rng {
            Some(rng) => rng.chance(rate),
            None => false,
        }
    }

    /// Whether recovery has been halted pending human intervention.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Clear an escalation after "human intervention" (e.g. the circuit
    /// switch was rebooted and re-synced its configuration from the
    /// controller, §5.1).
    pub fn resume_after_intervention(&mut self) {
        self.halted = false;
        self.cs_reports.clear();
    }

    /// Under `strict-invariants`, re-verify the network's structural
    /// invariants at the end of every controller transition. The topo layer
    /// already checks after each `refresh_state`; this additionally covers
    /// the quiescent state the controller leaves behind (after multi-step
    /// recoveries and batched repairs).
    fn check_invariants(&self) {
        if cfg!(feature = "strict-invariants") {
            self.sb.check_invariants();
            self.stats.assert_consistent();
        }
    }

    /// The recovery latency charged per §5.3.
    fn recovery_latency(&self) -> Duration {
        self.cfg
            .latency
            .total(RecoveryScheme::ShareBackup(self.sb.cfg.tech))
    }

    /// Emit the paper's recovery-phase breakdown as a span tree. `now` is
    /// the instant the data plane is whole again (handlers are invoked at
    /// recovery completion); the phases are backdated from it per the §5.3
    /// model, so detection + diagnosis + reconfiguration sums exactly to
    /// [`Recovery::latency`]:
    ///
    /// ```text
    /// recovery ├ detection        (probe interval)
    ///          ├ diagnosis        (report message + controller processing)
    ///          ├ reconfiguration  (command message + circuit reset)
    ///          └ restored         (instant, at `now`)
    /// ```
    fn record_recovery_breakdown(&self, now: Time) {
        if !self.tracer.is_enabled() {
            return;
        }
        let lat = &self.cfg.latency;
        let detection = lat.detection();
        let diagnosis = lat.control_message + lat.controller_processing;
        let reconfiguration = lat.control_message + self.sb.cfg.tech.reconfiguration_delay();
        // If `now` is earlier than the modeled latency (synthetic tests
        // firing at t=0), Time − Duration saturates at zero and only the
        // backdated boundaries compress; `now` itself is always honored.
        let fail_t = now - (detection + diagnosis + reconfiguration);
        let t = &self.tracer;
        t.span_begin(fail_t, "recovery", "recovery");
        t.span_begin(fail_t, "recovery", "detection");
        t.span_end(fail_t + detection);
        t.span_begin(fail_t + detection, "recovery", "diagnosis");
        t.span_end(fail_t + detection + diagnosis);
        t.span_begin(fail_t + detection + diagnosis, "recovery", "reconfiguration");
        t.span_end(now);
        t.instant(now, "recovery", "restored");
        t.span_end(now);
    }

    /// Record one fallback (slot left unrecovered) with its cause already
    /// counted by the caller.
    fn fall_back(&mut self, slot: SlotId, now: Time, recovery: &mut Recovery) {
        recovery.unrecovered.push(slot);
        self.stats.fallbacks += 1;
        self.degraded_slots.insert(slot);
        self.tracer.instant(now, "chaos", "fallback");
    }

    /// Replace the occupant of `slot` with a backup from its group's pool.
    /// Returns the replacement or records a fallback.
    ///
    /// Under chaos this is a retry loop: a dead-on-arrival backup costs one
    /// wasted reconfiguration round and the next pool member is tried; a
    /// failed reconfiguration attempt costs a timeout plus deterministic
    /// backoff and is retried up to the configured budget. All wasted time
    /// accumulates in [`Recovery::penalty`].
    fn try_replace(&mut self, slot: SlotId, now: Time, recovery: &mut Recovery) {
        self.stats.recovery_attempts += 1;
        if self.halted {
            self.stats.halted_fallbacks += 1;
            self.fall_back(slot, now, recovery);
            return;
        }
        let round = self.cfg.latency.reconfig_round(self.sb.cfg.tech);
        loop {
            let Some(&backup) = self.sb.spares(slot.group).first() else {
                self.stats.pool_exhausted += 1;
                self.fall_back(slot, now, recovery);
                return;
            };
            if self.chaos_roll(self.chaos.doa_rate) {
                // The reconfiguration completed, then the backup never
                // answered a keep-alive: one round wasted, backup to
                // repair, try the next pool member.
                self.stats.doa_backups += 1;
                recovery.penalty += round;
                self.sb.set_phys_healthy(backup, false);
                self.repairs
                    .push((now + self.cfg.switch_repair_time, RepairJob::Switch(backup)));
                self.tracer.instant(now, "chaos", "doa-backup");
                continue;
            }
            // Circuit reconfiguration with a bounded retry budget.
            let mut attempt = 1u32;
            while self.chaos_roll(self.chaos.reconfig_failure_rate) {
                if attempt >= self.chaos.max_reconfig_retries {
                    self.stats.reconfig_aborts += 1;
                    self.fall_back(slot, now, recovery);
                    return;
                }
                self.stats.reconfig_retries += 1;
                recovery.penalty += round + self.cfg.latency.retry_backoff(attempt);
                self.tracer.instant(now, "chaos", "reconfig-retry");
                attempt += 1;
            }
            let old = self.sb.occupant(slot);
            let report = self.sb.replace(slot, backup);
            self.stats.replacements += 1;
            self.stats.circuit_reconfigs += report.circuit_switches_touched as u64;
            recovery.replaced.push((slot, old, backup));
            self.degraded_slots.remove(&slot);
            return;
        }
    }

    /// Handle a detected node (whole-switch) failure.
    ///
    /// The caller must already have injected the ground truth
    /// ([`ShareBackup::set_phys_healthy`]) — the controller *reacts*. A
    /// report about a switch that is actually healthy (keep-alive loss) is
    /// handled the same way — fast recovery cannot wait to distinguish a
    /// lost report from a dead switch — but counted as spurious, and the
    /// evicted healthy switch returns straight to the pool instead of
    /// going to repair.
    pub fn handle_node_failure(&mut self, failed: PhysId, now: Time) -> Recovery {
        self.stats.node_failures += 1;
        self.record_recovery_breakdown(now);
        let mut recovery = Recovery {
            latency: self.recovery_latency(),
            penalty: Duration::ZERO,
            replaced: Vec::new(),
            unrecovered: Vec::new(),
            diagnosis: Vec::new(),
        };
        let spurious = self.sb.phys(failed).healthy;
        if spurious {
            self.stats.spurious_reports += 1;
            self.tracer.instant(now, "chaos", "spurious-report");
        }
        if let Some(slot) = self.sb.slot_of(failed) {
            self.try_replace(slot, now, &mut recovery);
        }
        if !spurious {
            // The dead switch goes to repair; once repaired it joins the
            // pool as a backup (role swap, §4.2). A spuriously-evicted
            // healthy switch is already a spare again — nothing to repair.
            self.repairs
                .push((now + self.cfg.switch_repair_time, RepairJob::Switch(failed)));
        }
        recovery.latency += recovery.penalty;
        self.check_invariants();
        recovery
    }

    /// Handle a detected link failure between two switch interfaces.
    ///
    /// Both suspects are replaced immediately (§4.1); offline diagnosis then
    /// exonerates the healthy side, which returns to the pool, while the
    /// faulty side goes to repair (§4.2).
    pub fn handle_link_failure(
        &mut self,
        a: (PhysId, usize),
        b: (PhysId, usize),
        now: Time,
    ) -> Recovery {
        self.stats.link_failures += 1;
        self.record_recovery_breakdown(now);
        let mut recovery = Recovery {
            latency: self.recovery_latency(),
            penalty: Duration::ZERO,
            replaced: Vec::new(),
            unrecovered: Vec::new(),
            diagnosis: Vec::new(),
        };
        for &(suspect, _iface) in [&a, &b] {
            if let Some(slot) = self.sb.slot_of(suspect) {
                self.try_replace(slot, now, &mut recovery);
            }
        }
        // Offline diagnosis in the background (suspects are offline now).
        for &(suspect, iface) in [&a, &b] {
            let mut report = if self.cfg.diagnosis_enabled {
                self.stats.diagnoses += 1;
                diagnose(&mut self.sb, suspect, iface)
            } else {
                // Ablation arm: no diagnosis — every suspect is convicted.
                crate::diagnosis::DiagnosisReport {
                    suspect,
                    iface,
                    configs_tested: 0,
                    tests_passed: 0,
                    verdict: Verdict::Untestable,
                }
            };
            // Chaos: diagnosis errs. A false conviction benches a healthy
            // switch for a full repair cycle; a false exoneration returns a
            // faulty switch to the pool (its broken interface persists in
            // ground truth, so it will fail again when handed out).
            match report.verdict {
                Verdict::Healthy => {
                    if self.chaos_roll(self.chaos.false_conviction_rate) {
                        self.stats.false_convictions += 1;
                        self.tracer.instant(now, "chaos", "false-conviction");
                        report.verdict = Verdict::Faulty;
                    }
                }
                Verdict::Faulty | Verdict::Untestable => {
                    if self.chaos_roll(self.chaos.false_exoneration_rate) {
                        self.stats.false_exonerations += 1;
                        self.tracer.instant(now, "chaos", "false-exoneration");
                        report.verdict = Verdict::Healthy;
                    }
                }
            }
            match report.verdict {
                Verdict::Healthy => {
                    // Exonerated: already a spare; nothing to repair.
                    self.stats.exonerations += 1;
                }
                Verdict::Faulty | Verdict::Untestable => {
                    self.stats.convictions += 1;
                    // Take it fully out of circulation until repaired.
                    self.sb.set_phys_healthy(suspect, false);
                    self.repairs.push((
                        now + self.cfg.switch_repair_time,
                        RepairJob::Switch(suspect),
                    ));
                }
            }
            recovery.diagnosis.push(report);
        }
        recovery.latency += recovery.penalty;
        self.check_invariants();
        recovery
    }

    /// Handle a failed host↔edge link. Offline diagnosis cannot involve the
    /// host (§4.2), so the switch is assumed faulty and replaced; if the
    /// problem persists (the host NIC is the real culprit) the switch is
    /// redressed and the host trouble-shot.
    pub fn handle_host_link_failure(&mut self, host: NodeId, now: Time) -> Recovery {
        self.stats.host_link_failures += 1;
        self.record_recovery_breakdown(now);
        let mut recovery = Recovery {
            latency: self.recovery_latency(),
            penalty: Duration::ZERO,
            replaced: Vec::new(),
            unrecovered: Vec::new(),
            diagnosis: Vec::new(),
        };
        // The host's edge slot: follow its (single) link.
        let edge_node = {
            let net = &self.sb.slots.net;
            let l = net.incident(host)[0];
            net.link(l).other(host)
        };
        let slot = self
            .sb
            .node_slot(edge_node)
            // lint:allow(unwrap) — hosts attach to edge slots by construction
            .expect("host connects to an edge slot");
        let suspect = self.sb.occupant(slot);
        self.try_replace(slot, now, &mut recovery);
        if !recovery.replaced.is_empty() {
            // Did replacing the switch fix the link?
            let link = self
                .sb
                .slots
                .net
                .link_between(host, edge_node)
                // lint:allow(unwrap) — the host link was found above via incident()
                .expect("host link");
            if self.sb.slots.net.link_usable(link) {
                // Switch was at fault: repair it.
                self.sb.set_phys_healthy(suspect, false);
                self.repairs.push((
                    now + self.cfg.switch_repair_time,
                    RepairJob::Switch(suspect),
                ));
            } else {
                // "We mark the switch as healthy and trouble-shoot the
                // host." The exonerated switch is already in the pool.
                self.stats.exonerations += 1;
                self.repairs
                    .push((now + self.cfg.host_repair_time, RepairJob::HostNic(host)));
            }
        }
        recovery.latency += recovery.penalty;
        self.check_invariants();
        recovery
    }

    /// Record link-failure reports attributable to circuit switch `cs`. If
    /// they exceed the threshold, recovery halts and humans are paged
    /// (§5.1). Returns whether the controller is (now) halted.
    pub fn report_cs_suspicion(&mut self, cs: CsId, reports: u32) -> bool {
        let count = self.cs_reports.entry(cs).or_insert(0);
        *count += reports;
        if *count >= self.cfg.cs_report_threshold && !self.halted {
            self.halted = true;
            self.stats.escalations += 1;
        }
        self.halted
    }

    /// Complete all repairs due by `now`. Repaired switches rejoin their
    /// group's backup pool; repaired host NICs restore the host link.
    ///
    /// Degraded slots whose own occupant came back are cleared from the
    /// degraded set; with [`ControllerConfig::retry_exhausted_on_repair`]
    /// the controller additionally retries replacement for slots that are
    /// still down now that the pool has refilled.
    pub fn poll_repairs(&mut self, now: Time) -> usize {
        let mut done = 0;
        let mut remaining = Vec::with_capacity(self.repairs.len());
        let jobs = std::mem::take(&mut self.repairs);
        for (due, job) in jobs {
            if due <= now {
                match job {
                    RepairJob::Switch(p) => self.sb.set_phys_healthy(p, true),
                    RepairJob::HostNic(h) => self.sb.set_host_nic_broken(h, false),
                }
                done += 1;
            } else {
                remaining.push((due, job));
            }
        }
        self.repairs = remaining;
        if done > 0 {
            let degraded: Vec<SlotId> = self.degraded_slots.iter().copied().collect();
            for slot in degraded {
                if self.sb.slots.net.node(self.sb.slot_node(slot)).up {
                    // The slot's own occupant was repaired in place.
                    self.degraded_slots.remove(&slot);
                } else if self.cfg.retry_exhausted_on_repair
                    && !self.halted
                    && !self.sb.spares(slot.group).is_empty()
                {
                    let mut retry = Recovery {
                        latency: Duration::ZERO,
                        penalty: Duration::ZERO,
                        replaced: Vec::new(),
                        unrecovered: Vec::new(),
                        diagnosis: Vec::new(),
                    };
                    self.try_replace(slot, now, &mut retry);
                    if !retry.replaced.is_empty() {
                        self.tracer.instant(now, "chaos", "degraded-slot-recovered");
                    }
                }
            }
            self.check_invariants();
        }
        done
    }

    /// Instant of the next pending repair, if any.
    pub fn next_repair_due(&self) -> Option<Time> {
        self.repairs.iter().map(|&(t, _)| t).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharebackup_topo::{GroupId, ShareBackupConfig};

    fn controller(k: usize, n: usize) -> Controller {
        Controller::new(
            ShareBackup::build(ShareBackupConfig::new(k, n)),
            ControllerConfig::default(),
        )
    }

    #[test]
    fn node_failure_recovers_with_one_replacement() {
        let mut c = controller(4, 1);
        let slot = GroupId::agg(1).slot(0);
        let victim = c.sb.occupant(slot);
        c.sb.set_phys_healthy(victim, false);
        let r = c.handle_node_failure(victim, Time::ZERO);
        assert!(r.fully_recovered());
        assert_eq!(r.replaced.len(), 1);
        assert_eq!(r.replaced[0].0, slot);
        assert!(c.sb.slots.net.node(c.sb.slot_node(slot)).up);
        assert!(r.latency < Duration::from_millis(3));
        assert_eq!(c.stats.replacements, 1);
        // Pool is now empty (n=1, victim under repair).
        assert!(c.sb.spares(slot.group).is_empty());
    }

    #[test]
    fn repaired_switch_becomes_backup_role_swap() {
        let mut c = controller(4, 1);
        let slot = GroupId::edge(0).slot(1);
        let victim = c.sb.occupant(slot);
        c.sb.set_phys_healthy(victim, false);
        c.handle_node_failure(victim, Time::ZERO);
        assert_eq!(c.poll_repairs(Time::from_secs(10)), 0, "not due yet");
        let due = c.next_repair_due().expect("repair scheduled");
        assert_eq!(c.poll_repairs(due), 1);
        // The old occupant is back — as a backup, not in its old slot.
        assert_eq!(c.sb.slot_of(victim), None);
        assert_eq!(c.sb.spares(slot.group), vec![victim]);
    }

    #[test]
    fn pool_exhaustion_counts_fallback() {
        let mut c = controller(4, 1);
        let g = GroupId::core(0);
        let v0 = c.sb.occupant(g.slot(0));
        let v1 = c.sb.occupant(g.slot(1));
        c.sb.set_phys_healthy(v0, false);
        let r0 = c.handle_node_failure(v0, Time::ZERO);
        assert!(r0.fully_recovered());
        c.sb.set_phys_healthy(v1, false);
        let r1 = c.handle_node_failure(v1, Time::ZERO);
        assert!(!r1.fully_recovered());
        assert_eq!(c.stats.fallbacks, 1);
        // After repair, the pool refills and the down slot can be fixed by
        // a later failure-handling pass — here we just check the slot is
        // still down.
        assert!(!c.sb.slots.net.node(c.sb.slot_node(g.slot(1))).up);
    }

    #[test]
    fn link_failure_replaces_both_and_diagnosis_exonerates_one() {
        let mut c = controller(6, 1);
        // Break the edge-side interface of the edge(0,0)↔agg(0,0) link.
        let edge_slot = GroupId::edge(0).slot(0);
        let agg_slot = GroupId::agg(0).slot(0);
        let edge_phys = c.sb.occupant(edge_slot);
        let agg_phys = c.sb.occupant(agg_slot);
        // Edge up-port m where (0+m)%3 == 0 → m=0 → iface 3. Agg down-port 0.
        c.sb.set_iface_broken(edge_phys, 3, true);
        let r = c.handle_link_failure((edge_phys, 3), (agg_phys, 0), Time::ZERO);
        assert_eq!(r.replaced.len(), 2, "both suspects replaced");
        assert_eq!(c.stats.diagnoses, 2);
        assert_eq!(c.stats.exonerations, 1);
        assert_eq!(c.stats.convictions, 1);
        // The exonerated agg is immediately a spare again.
        assert!(c.sb.spares(agg_slot.group).contains(&agg_phys));
        // The convicted edge is out until repair.
        assert!(!c.sb.phys(edge_phys).healthy);
        assert!(!c.sb.spares(edge_slot.group).contains(&edge_phys));
        // Data plane fully restored.
        assert!(r.fully_recovered());
        let link = c
            .sb
            .slots
            .net
            .link_between(c.sb.slots.edge(0, 0), c.sb.slots.agg(0, 0))
            .expect("link");
        assert!(c.sb.slots.net.link_usable(link));
    }

    #[test]
    fn host_link_failure_with_faulty_switch() {
        let mut c = controller(4, 1);
        let slot = GroupId::edge(2).slot(0);
        let edge_phys = c.sb.occupant(slot);
        // Break the edge's host-facing interface 1 → host(2,0,1)'s link.
        c.sb.set_iface_broken(edge_phys, 1, true);
        let host = c.sb.slots.host(sharebackup_topo::HostAddr {
            pod: 2,
            edge: 0,
            host: 1,
        });
        let r = c.handle_host_link_failure(host, Time::ZERO);
        assert_eq!(r.replaced.len(), 1);
        // Replacement fixed it → switch convicted.
        assert!(!c.sb.phys(edge_phys).healthy);
        let edge_node = c.sb.slots.edge(2, 0);
        let l = c.sb.slots.net.link_between(host, edge_node).expect("link");
        assert!(c.sb.slots.net.link_usable(l));
    }

    #[test]
    fn host_link_failure_with_faulty_host_nic() {
        let mut c = controller(4, 1);
        let host = c.sb.slots.host(sharebackup_topo::HostAddr {
            pod: 1,
            edge: 1,
            host: 0,
        });
        c.sb.set_host_nic_broken(host, true);
        let slot = GroupId::edge(1).slot(1);
        let suspect = c.sb.occupant(slot);
        let r = c.handle_host_link_failure(host, Time::ZERO);
        assert_eq!(r.replaced.len(), 1, "switch replaced first (assumed faulty)");
        // Replacement did NOT fix it → switch exonerated, host trouble-shot.
        assert!(c.sb.phys(suspect).healthy);
        assert!(c.sb.spares(slot.group).contains(&suspect));
        assert_eq!(c.stats.exonerations, 1);
        // Host repair eventually restores the link.
        let due = c.next_repair_due().expect("host repair scheduled");
        c.poll_repairs(due);
        let edge_node = c.sb.slots.edge(1, 1);
        let l = c.sb.slots.net.link_between(host, edge_node).expect("link");
        assert!(c.sb.slots.net.link_usable(l));
    }

    #[test]
    fn circuit_switch_suspicion_escalates_and_halts() {
        let mut c = controller(4, 1);
        let cs = CsId::EdgeAgg { pod: 0, m: 0 };
        assert!(!c.report_cs_suspicion(cs, 3));
        assert!(c.report_cs_suspicion(cs, 1)); // threshold 4 reached
        assert!(c.is_halted());
        assert_eq!(c.stats.escalations, 1);
        // Halted controller refuses replacements.
        let slot = GroupId::edge(0).slot(0);
        let victim = c.sb.occupant(slot);
        c.sb.set_phys_healthy(victim, false);
        let r = c.handle_node_failure(victim, Time::ZERO);
        assert!(!r.fully_recovered());
        // Human intervention resumes service.
        c.resume_after_intervention();
        assert!(!c.is_halted());
    }

    #[test]
    fn spare_switch_failure_needs_no_replacement() {
        let mut c = controller(4, 2);
        let g = GroupId::agg(3);
        let spare = c.sb.spares(g)[0];
        c.sb.set_phys_healthy(spare, false);
        let r = c.handle_node_failure(spare, Time::ZERO);
        assert!(r.replaced.is_empty());
        assert!(r.fully_recovered());
        assert_eq!(c.sb.spares(g).len(), 1);
    }

    #[test]
    fn recovery_breakdown_spans_sum_to_reported_latency() {
        let mut c = controller(4, 1);
        let (tracer, sink) = Tracer::recording();
        c.tracer = tracer;
        let slot = GroupId::agg(0).slot(0);
        let victim = c.sb.occupant(slot);
        c.sb.set_phys_healthy(victim, false);
        let now = Time::from_secs(30);
        let r = c.handle_node_failure(victim, now);

        let buf = sink.borrow_mut().take();
        let spans = buf.spans();
        let of = |name: &str| {
            spans
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("missing span {name}"))
                .clone()
        };
        let (rec, det, dia, cfg) = (
            of("recovery"),
            of("detection"),
            of("diagnosis"),
            of("reconfiguration"),
        );
        // The three phases tile the parent span contiguously...
        assert_eq!(rec.begin, det.begin);
        assert_eq!(det.end, dia.begin);
        assert_eq!(dia.end, cfg.begin);
        assert_eq!(cfg.end, rec.end);
        assert_eq!(rec.end, now, "data plane whole at the handler instant");
        // ...children are nested under the parent...
        assert_eq!(rec.depth, 0);
        for child in [&det, &dia, &cfg] {
            assert_eq!(child.depth, 1);
        }
        // ...and the phase durations sum exactly to Recovery::latency.
        let total = det.end.since(det.begin)
            + dia.end.since(dia.begin)
            + cfg.end.since(cfg.begin);
        assert_eq!(total, r.latency);
        // The restored instant marks the end.
        assert!(buf.events.iter().any(|e| matches!(
            e,
            sharebackup_telemetry::TraceEvent::Mark { name, at, .. }
                if name == "restored" && *at == now
        )));
    }

    #[test]
    fn untracked_controller_records_nothing() {
        let mut c = controller(4, 1);
        let victim = c.sb.occupant(GroupId::agg(0).slot(0));
        c.sb.set_phys_healthy(victim, false);
        // Default tracer is off: this must not panic or allocate a buffer.
        assert!(!c.tracer.is_enabled());
        let r = c.handle_node_failure(victim, Time::from_secs(1));
        assert!(r.fully_recovered());
    }

    #[test]
    fn stats_consistency_over_mixed_outcomes() {
        use sharebackup_sim::SimRng;
        // n=1 pools + certain DOA: the first failure burns the single
        // spare (DOA) and falls back pool-exhausted.
        let chaos = crate::chaos::ChaosConfig {
            doa_rate: 1.0,
            ..crate::chaos::ChaosConfig::off()
        };
        let mut c = Controller::with_chaos(
            ShareBackup::build(ShareBackupConfig::new(4, 1)),
            ControllerConfig::default(),
            chaos,
            SimRng::seed_from_u64(1).child("chaos"),
        );
        let slot = GroupId::agg(0).slot(0);
        let victim = c.sb.occupant(slot);
        c.sb.set_phys_healthy(victim, false);
        let r = c.handle_node_failure(victim, Time::ZERO);
        assert!(!r.fully_recovered());
        assert_eq!(c.stats.doa_backups, 1);
        assert_eq!(c.stats.pool_exhausted, 1);
        assert_eq!(c.stats.fallbacks, 1);
        assert_eq!(c.stats.replacements, 0);
        assert!(r.penalty > Duration::ZERO, "wasted round charged");
        assert_eq!(r.latency, c.recovery_latency() + r.penalty);
        // A healthy-pool replacement on another group, then a halted one.
        let slot2 = GroupId::edge(2).slot(0);
        let v2 = c.sb.occupant(slot2);
        c.chaos.doa_rate = 0.0;
        c.sb.set_phys_healthy(v2, false);
        assert!(c.handle_node_failure(v2, Time::ZERO).fully_recovered());
        c.halted = true;
        let slot3 = GroupId::edge(3).slot(0);
        let v3 = c.sb.occupant(slot3);
        c.sb.set_phys_healthy(v3, false);
        assert!(!c.handle_node_failure(v3, Time::ZERO).fully_recovered());
        assert_eq!(c.stats.halted_fallbacks, 1);
        // replacements + fallbacks + halted slots account for everything.
        c.stats.assert_consistent();
        assert_eq!(c.stats.recovery_attempts, 3);
        let degraded: Vec<SlotId> = c.degraded_slots().collect();
        assert_eq!(degraded.len(), 2);
        assert!(degraded.contains(&slot) && degraded.contains(&slot3));
    }

    #[test]
    #[should_panic(expected = "every fallback has exactly one recorded cause")]
    fn stats_inconsistency_is_caught() {
        let stats = ControllerStats {
            recovery_attempts: 1,
            fallbacks: 1, // no cause recorded
            ..ControllerStats::default()
        };
        stats.assert_consistent();
    }

    #[test]
    fn doa_backup_retries_next_pool_member() {
        use sharebackup_sim::SimRng;
        // Two spares (n=2), certain DOA for the first pool member: after
        // one roll fires, disable the rate (rates are re-read per roll) so
        // the retry with the second member succeeds. This exercises the
        // retry loop deterministically without depending on seed luck.
        let chaos = crate::chaos::ChaosConfig {
            doa_rate: 1.0,
            ..crate::chaos::ChaosConfig::off()
        };
        let mut c = Controller::with_chaos(
            ShareBackup::build(ShareBackupConfig::new(4, 2)),
            ControllerConfig::default(),
            chaos,
            SimRng::seed_from_u64(2).child("chaos"),
        );
        let slot = GroupId::agg(1).slot(0);
        let victim = c.sb.occupant(slot);
        assert_eq!(c.sb.spares(slot.group).len(), 2);
        c.sb.set_phys_healthy(victim, false);
        // First failure at rate 1.0: the first spare is DOA, and because
        // the rate stays 1.0 the second spare is burned too → fallback.
        let r = c.handle_node_failure(victim, Time::ZERO);
        assert!(!r.fully_recovered());
        assert_eq!(c.stats.doa_backups, 2, "both pool members burned");
        assert_eq!(c.stats.pool_exhausted, 1);
        assert!(c.sb.spares(slot.group).is_empty());
        // Penalty: one wasted round per DOA.
        let round = c.cfg.latency.reconfig_round(c.sb.cfg.tech);
        assert_eq!(r.penalty, round * 2);
        // Both DOA backups went to repair; after repair the pool refills
        // and a fresh failure recovers on the first try at rate 0.
        let due = c.next_repair_due().expect("DOA backups scheduled for repair");
        c.poll_repairs(Time::from_secs(3600));
        assert!(due <= Time::from_secs(3600));
        // The repaired victim re-occupies its slot (it was never replaced),
        // so the spares are exactly the two repaired DOA members.
        assert_eq!(c.sb.spares(slot.group).len(), 2);
        assert_eq!(c.degraded_slots().count(), 0, "slot healed in place");
        c.chaos.doa_rate = 0.0;
        let slot2 = slot.group.slot(1);
        let v2 = c.sb.occupant(slot2);
        c.sb.set_phys_healthy(v2, false);
        let r2 = c.handle_node_failure(v2, Time::from_secs(3600));
        assert!(r2.fully_recovered());
        assert_eq!(r2.penalty, Duration::ZERO);
        c.stats.assert_consistent();
    }

    #[test]
    fn reconfig_failures_retry_with_backoff_then_abort() {
        use sharebackup_sim::SimRng;
        let chaos = crate::chaos::ChaosConfig {
            reconfig_failure_rate: 1.0,
            max_reconfig_retries: 3,
            ..crate::chaos::ChaosConfig::off()
        };
        let mut c = Controller::with_chaos(
            ShareBackup::build(ShareBackupConfig::new(4, 1)),
            ControllerConfig::default(),
            chaos,
            SimRng::seed_from_u64(3).child("chaos"),
        );
        let slot = GroupId::core(0).slot(0);
        let victim = c.sb.occupant(slot);
        c.sb.set_phys_healthy(victim, false);
        let r = c.handle_node_failure(victim, Time::ZERO);
        // Certain failure: 2 retries after the first attempt, then abort.
        assert!(!r.fully_recovered());
        assert_eq!(c.stats.reconfig_retries, 2);
        assert_eq!(c.stats.reconfig_aborts, 1);
        assert_eq!(c.stats.fallbacks, 1);
        // Penalty: 2 × (round + backoff), with doubling backoff.
        let lat = &c.cfg.latency;
        let round = lat.reconfig_round(c.sb.cfg.tech);
        let expect = round + lat.retry_backoff(1) + round + lat.retry_backoff(2);
        assert_eq!(r.penalty, expect);
        assert!(lat.retry_backoff(2) == lat.retry_backoff(1) * 2);
        c.stats.assert_consistent();
    }

    #[test]
    fn diagnosis_errors_flip_verdicts_and_poison_pool() {
        use sharebackup_sim::SimRng;
        // Certain false exoneration: the faulty edge switch returns to the
        // pool with its broken interface intact.
        let chaos = crate::chaos::ChaosConfig {
            false_exoneration_rate: 1.0,
            ..crate::chaos::ChaosConfig::off()
        };
        let mut c = Controller::with_chaos(
            ShareBackup::build(ShareBackupConfig::new(6, 1)),
            ControllerConfig::default(),
            chaos,
            SimRng::seed_from_u64(4).child("chaos"),
        );
        let edge_slot = GroupId::edge(0).slot(0);
        let agg_slot = GroupId::agg(0).slot(0);
        let edge_phys = c.sb.occupant(edge_slot);
        let agg_phys = c.sb.occupant(agg_slot);
        c.sb.set_iface_broken(edge_phys, 3, true);
        let r = c.handle_link_failure((edge_phys, 3), (agg_phys, 0), Time::ZERO);
        assert_eq!(r.replaced.len(), 2);
        // The faulty edge was exonerated instead of convicted...
        assert_eq!(c.stats.false_exonerations, 1);
        assert_eq!(c.stats.exonerations, 2);
        assert_eq!(c.stats.convictions, 0);
        // ...so it sits in the pool with a broken interface (poisoned).
        assert!(c.sb.spares(edge_slot.group).contains(&edge_phys));
        assert!(c.sb.phys(edge_phys).healthy);
        c.stats.assert_consistent();

        // Certain false conviction: the innocent far end gets benched.
        let chaos = crate::chaos::ChaosConfig {
            false_conviction_rate: 1.0,
            ..crate::chaos::ChaosConfig::off()
        };
        let mut c = Controller::with_chaos(
            ShareBackup::build(ShareBackupConfig::new(6, 1)),
            ControllerConfig::default(),
            chaos,
            SimRng::seed_from_u64(5).child("chaos"),
        );
        let edge_phys = c.sb.occupant(edge_slot);
        let agg_phys = c.sb.occupant(agg_slot);
        c.sb.set_iface_broken(edge_phys, 3, true);
        let r = c.handle_link_failure((edge_phys, 3), (agg_phys, 0), Time::ZERO);
        assert_eq!(r.replaced.len(), 2);
        // Healthy agg convicted alongside the truly faulty edge.
        assert_eq!(c.stats.false_convictions, 1);
        assert_eq!(c.stats.convictions, 2);
        assert_eq!(c.stats.exonerations, 0);
        assert!(!c.sb.phys(agg_phys).healthy, "innocent switch benched");
        // Both go to repair; after it, both pools refill.
        let due = c.next_repair_due().expect("repairs scheduled");
        c.poll_repairs(due);
        assert!(c.sb.spares(agg_slot.group).contains(&agg_phys));
        c.stats.assert_consistent();
    }

    #[test]
    fn spurious_report_evicts_but_skips_repair() {
        use sharebackup_sim::SimRng;
        let mut c = Controller::with_chaos(
            ShareBackup::build(ShareBackupConfig::new(4, 1)),
            ControllerConfig::default(),
            crate::chaos::ChaosConfig::off(),
            SimRng::seed_from_u64(6).child("chaos"),
        );
        let slot = GroupId::edge(1).slot(0);
        let healthy = c.sb.occupant(slot);
        // No ground-truth injection: the report is a keep-alive loss.
        let r = c.handle_node_failure(healthy, Time::ZERO);
        assert!(r.fully_recovered());
        assert_eq!(c.stats.spurious_reports, 1);
        assert_eq!(c.stats.replacements, 1, "controller cannot tell, swaps anyway");
        // The evicted healthy switch is instantly a spare again; no repair
        // job was scheduled for it.
        assert!(c.sb.spares(slot.group).contains(&healthy));
        assert_eq!(c.next_repair_due(), None);
        c.stats.assert_consistent();
    }

    #[test]
    fn retry_exhausted_on_repair_heals_degraded_slot() {
        // Pool n=1: two failures in one group exhaust it; when the first
        // victim's repair completes, the opt-in retry fixes the second
        // slot immediately instead of waiting for its own occupant.
        let cfg = ControllerConfig {
            retry_exhausted_on_repair: true,
            ..ControllerConfig::default()
        };
        let mut c = Controller::new(ShareBackup::build(ShareBackupConfig::new(4, 1)), cfg);
        let g = GroupId::core(0);
        let v0 = c.sb.occupant(g.slot(0));
        let v1 = c.sb.occupant(g.slot(1));
        c.sb.set_phys_healthy(v0, false);
        assert!(c.handle_node_failure(v0, Time::ZERO).fully_recovered());
        c.sb.set_phys_healthy(v1, false);
        assert!(!c.handle_node_failure(v1, Time::from_secs(1)).fully_recovered());
        assert_eq!(c.degraded_slots().count(), 1);
        // v0's repair (scheduled at t=0) refills the pool first.
        let due = c.next_repair_due().expect("repair scheduled");
        c.poll_repairs(due);
        // The degraded slot was re-replaced from the refilled pool.
        assert_eq!(c.degraded_slots().count(), 0);
        assert!(c.sb.slots.net.node(c.sb.slot_node(g.slot(1))).up);
        assert_eq!(c.stats.replacements, 2);
        c.stats.assert_consistent();
    }

    #[test]
    fn latency_depends_on_circuit_technology() {
        use sharebackup_topo::CircuitTech;
        let sb_mems = ShareBackup::build(
            ShareBackupConfig::new(4, 1).with_tech(CircuitTech::Mems2D),
        );
        let mut c_mems = Controller::new(sb_mems, ControllerConfig::default());
        let mut c_xp = controller(4, 1);
        let v1 = c_mems.sb.occupant(GroupId::edge(0).slot(0));
        let v2 = c_xp.sb.occupant(GroupId::edge(0).slot(0));
        c_mems.sb.set_phys_healthy(v1, false);
        c_xp.sb.set_phys_healthy(v2, false);
        let r1 = c_mems.handle_node_failure(v1, Time::ZERO);
        let r2 = c_xp.handle_node_failure(v2, Time::ZERO);
        assert!(r1.latency > r2.latency);
    }
}
