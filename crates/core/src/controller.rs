//! The logically centralized recovery controller (paper §4.1–§4.2).
//!
//! Switches send keep-alives to the controller (node-failure detection) and
//! probe their neighbors F10-style (link-failure detection, reported to the
//! controller). On a failure the controller:
//!
//! 1. allocates an available backup switch in the failed switch's failure
//!    group (for link failures: on *both* sides — fast recovery cannot wait
//!    for diagnosis),
//! 2. reconfigures the group's circuit switches so the backup takes over
//!    the slot (the backup's tables are preloaded, §4.3, so no rules are
//!    installed), and
//! 3. runs offline diagnosis in the background; exonerated suspects return
//!    to the backup pool, convicted ones go to repair. Nothing ever
//!    switches back — roles swap (§4.2).
//!
//! If a group's pool is empty the failure is *not* recovered (the slot
//! stays down until repair) and the event is counted — the paper sizes `n`
//! so this never happens at realistic failure rates (§5.1). A burst of
//! link-failure reports converging on one circuit switch beyond a threshold
//! stops recovery and escalates to human intervention (§5.1).

use std::collections::BTreeMap;

use sharebackup_sim::{Duration, Time};
use sharebackup_telemetry::Tracer;
use sharebackup_topo::{CsId, NodeId, PhysId, ShareBackup, SlotId};

use crate::diagnosis::{diagnose, DiagnosisReport, Verdict};
use crate::latency::{RecoveryLatencyModel, RecoveryScheme};

/// Controller tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ControllerConfig {
    /// The latency model (probe interval, control messages, circuit reset).
    pub latency: RecoveryLatencyModel,
    /// Time for technicians to repair a convicted switch.
    pub switch_repair_time: Duration,
    /// Time to trouble-shoot a host whose NIC is at fault.
    pub host_repair_time: Duration,
    /// Link-failure reports attributable to one circuit switch within the
    /// reporting window before recovery stops and humans are paged (§5.1).
    pub cs_report_threshold: u32,
    /// Whether offline diagnosis (§4.2) runs after link failures. Disabled
    /// only by the diagnosis ablation: without it, both suspects are
    /// convicted and sit out the full repair time.
    pub diagnosis_enabled: bool,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            latency: RecoveryLatencyModel::default(),
            switch_repair_time: Duration::from_secs(180), // "a few minutes"
            host_repair_time: Duration::from_secs(300),
            cs_report_threshold: 4,
            diagnosis_enabled: true,
        }
    }
}

/// Counters the controller keeps (reported by the harness).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ControllerStats {
    /// Node failures handled.
    pub node_failures: u64,
    /// Link failures handled.
    pub link_failures: u64,
    /// Host-link failures handled.
    pub host_link_failures: u64,
    /// Slot replacements performed.
    pub replacements: u64,
    /// Failures left unrecovered because the pool was empty.
    pub fallbacks: u64,
    /// Offline diagnoses run.
    pub diagnoses: u64,
    /// Suspects exonerated (returned straight to the pool).
    pub exonerations: u64,
    /// Suspects convicted (sent to repair).
    pub convictions: u64,
    /// Circuit switches that received reconfiguration requests.
    pub circuit_reconfigs: u64,
    /// Escalations to human intervention.
    pub escalations: u64,
}

/// What one failure-handling call did.
#[derive(Clone, Debug)]
pub struct Recovery {
    /// Detection + repair latency of this recovery (per the §5.3 model);
    /// the data plane is whole again this long after the failure struck.
    pub latency: Duration,
    /// Slots whose occupant was replaced: (slot, old, new).
    pub replaced: Vec<(SlotId, PhysId, PhysId)>,
    /// Slots left unrecovered (pool empty or recovery halted).
    pub unrecovered: Vec<SlotId>,
    /// Background diagnoses run (link failures only).
    pub diagnosis: Vec<DiagnosisReport>,
}

impl Recovery {
    /// Whether the data plane was fully restored.
    pub fn fully_recovered(&self) -> bool {
        self.unrecovered.is_empty()
    }
}

/// Pending repair work.
#[derive(Clone, Copy, Debug)]
enum RepairJob {
    Switch(PhysId),
    HostNic(NodeId),
}

/// The ShareBackup recovery controller. Owns the network.
pub struct Controller {
    /// The physical network under control.
    pub sb: ShareBackup,
    /// Tuning knobs.
    pub cfg: ControllerConfig,
    /// Running counters.
    pub stats: ControllerStats,
    /// Telemetry handle. Off by default; harnesses that record traces
    /// install a recording tracer and every failure handled then emits a
    /// backdated detection → diagnosis → reconfiguration span tree whose
    /// durations sum to [`Recovery::latency`].
    pub tracer: Tracer,
    repairs: Vec<(Time, RepairJob)>,
    cs_reports: BTreeMap<CsId, u32>,
    halted: bool,
}

impl Controller {
    /// A controller over a freshly built network.
    pub fn new(sb: ShareBackup, cfg: ControllerConfig) -> Controller {
        Controller {
            sb,
            cfg,
            stats: ControllerStats::default(),
            tracer: Tracer::off(),
            repairs: Vec::new(),
            cs_reports: BTreeMap::new(),
            halted: false,
        }
    }

    /// Whether recovery has been halted pending human intervention.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Clear an escalation after "human intervention" (e.g. the circuit
    /// switch was rebooted and re-synced its configuration from the
    /// controller, §5.1).
    pub fn resume_after_intervention(&mut self) {
        self.halted = false;
        self.cs_reports.clear();
    }

    /// Under `strict-invariants`, re-verify the network's structural
    /// invariants at the end of every controller transition. The topo layer
    /// already checks after each `refresh_state`; this additionally covers
    /// the quiescent state the controller leaves behind (after multi-step
    /// recoveries and batched repairs).
    fn check_invariants(&self) {
        if cfg!(feature = "strict-invariants") {
            self.sb.check_invariants();
        }
    }

    /// The recovery latency charged per §5.3.
    fn recovery_latency(&self) -> Duration {
        self.cfg
            .latency
            .total(RecoveryScheme::ShareBackup(self.sb.cfg.tech))
    }

    /// Emit the paper's recovery-phase breakdown as a span tree. `now` is
    /// the instant the data plane is whole again (handlers are invoked at
    /// recovery completion); the phases are backdated from it per the §5.3
    /// model, so detection + diagnosis + reconfiguration sums exactly to
    /// [`Recovery::latency`]:
    ///
    /// ```text
    /// recovery ├ detection        (probe interval)
    ///          ├ diagnosis        (report message + controller processing)
    ///          ├ reconfiguration  (command message + circuit reset)
    ///          └ restored         (instant, at `now`)
    /// ```
    fn record_recovery_breakdown(&self, now: Time) {
        if !self.tracer.is_enabled() {
            return;
        }
        let lat = &self.cfg.latency;
        let detection = lat.detection();
        let diagnosis = lat.control_message + lat.controller_processing;
        let reconfiguration = lat.control_message + self.sb.cfg.tech.reconfiguration_delay();
        // If `now` is earlier than the modeled latency (synthetic tests
        // firing at t=0), Time − Duration saturates at zero and only the
        // backdated boundaries compress; `now` itself is always honored.
        let fail_t = now - (detection + diagnosis + reconfiguration);
        let t = &self.tracer;
        t.span_begin(fail_t, "recovery", "recovery");
        t.span_begin(fail_t, "recovery", "detection");
        t.span_end(fail_t + detection);
        t.span_begin(fail_t + detection, "recovery", "diagnosis");
        t.span_end(fail_t + detection + diagnosis);
        t.span_begin(fail_t + detection + diagnosis, "recovery", "reconfiguration");
        t.span_end(now);
        t.instant(now, "recovery", "restored");
        t.span_end(now);
    }

    /// Replace the occupant of `slot` with a backup from its group's pool.
    /// Returns the replacement or records a fallback.
    fn try_replace(&mut self, slot: SlotId, recovery: &mut Recovery) {
        if self.halted {
            recovery.unrecovered.push(slot);
            self.stats.fallbacks += 1;
            return;
        }
        let spares = self.sb.spares(slot.group);
        match spares.first() {
            Some(&backup) => {
                let old = self.sb.occupant(slot);
                let report = self.sb.replace(slot, backup);
                self.stats.replacements += 1;
                self.stats.circuit_reconfigs += report.circuit_switches_touched as u64;
                recovery.replaced.push((slot, old, backup));
            }
            None => {
                recovery.unrecovered.push(slot);
                self.stats.fallbacks += 1;
            }
        }
    }

    /// Handle a detected node (whole-switch) failure.
    ///
    /// The caller must already have injected the ground truth
    /// ([`ShareBackup::set_phys_healthy`]) — the controller *reacts*.
    pub fn handle_node_failure(&mut self, failed: PhysId, now: Time) -> Recovery {
        self.stats.node_failures += 1;
        self.record_recovery_breakdown(now);
        let mut recovery = Recovery {
            latency: self.recovery_latency(),
            replaced: Vec::new(),
            unrecovered: Vec::new(),
            diagnosis: Vec::new(),
        };
        if let Some(slot) = self.sb.slot_of(failed) {
            self.try_replace(slot, &mut recovery);
        }
        // The dead switch goes to repair either way; once repaired it joins
        // the pool as a backup (role swap, §4.2).
        self.repairs
            .push((now + self.cfg.switch_repair_time, RepairJob::Switch(failed)));
        self.check_invariants();
        recovery
    }

    /// Handle a detected link failure between two switch interfaces.
    ///
    /// Both suspects are replaced immediately (§4.1); offline diagnosis then
    /// exonerates the healthy side, which returns to the pool, while the
    /// faulty side goes to repair (§4.2).
    pub fn handle_link_failure(
        &mut self,
        a: (PhysId, usize),
        b: (PhysId, usize),
        now: Time,
    ) -> Recovery {
        self.stats.link_failures += 1;
        self.record_recovery_breakdown(now);
        let mut recovery = Recovery {
            latency: self.recovery_latency(),
            replaced: Vec::new(),
            unrecovered: Vec::new(),
            diagnosis: Vec::new(),
        };
        for &(suspect, _iface) in [&a, &b] {
            if let Some(slot) = self.sb.slot_of(suspect) {
                self.try_replace(slot, &mut recovery);
            }
        }
        // Offline diagnosis in the background (suspects are offline now).
        for &(suspect, iface) in [&a, &b] {
            let report = if self.cfg.diagnosis_enabled {
                self.stats.diagnoses += 1;
                diagnose(&mut self.sb, suspect, iface)
            } else {
                // Ablation arm: no diagnosis — every suspect is convicted.
                crate::diagnosis::DiagnosisReport {
                    suspect,
                    iface,
                    configs_tested: 0,
                    tests_passed: 0,
                    verdict: Verdict::Untestable,
                }
            };
            match report.verdict {
                Verdict::Healthy => {
                    // Exonerated: already a spare; nothing to repair.
                    self.stats.exonerations += 1;
                }
                Verdict::Faulty | Verdict::Untestable => {
                    self.stats.convictions += 1;
                    // Take it fully out of circulation until repaired.
                    self.sb.set_phys_healthy(suspect, false);
                    self.repairs.push((
                        now + self.cfg.switch_repair_time,
                        RepairJob::Switch(suspect),
                    ));
                }
            }
            recovery.diagnosis.push(report);
        }
        self.check_invariants();
        recovery
    }

    /// Handle a failed host↔edge link. Offline diagnosis cannot involve the
    /// host (§4.2), so the switch is assumed faulty and replaced; if the
    /// problem persists (the host NIC is the real culprit) the switch is
    /// redressed and the host trouble-shot.
    pub fn handle_host_link_failure(&mut self, host: NodeId, now: Time) -> Recovery {
        self.stats.host_link_failures += 1;
        self.record_recovery_breakdown(now);
        let mut recovery = Recovery {
            latency: self.recovery_latency(),
            replaced: Vec::new(),
            unrecovered: Vec::new(),
            diagnosis: Vec::new(),
        };
        // The host's edge slot: follow its (single) link.
        let edge_node = {
            let net = &self.sb.slots.net;
            let l = net.incident(host)[0];
            net.link(l).other(host)
        };
        let slot = self
            .sb
            .node_slot(edge_node)
            // lint:allow(unwrap) — hosts attach to edge slots by construction
            .expect("host connects to an edge slot");
        let suspect = self.sb.occupant(slot);
        self.try_replace(slot, &mut recovery);
        if !recovery.replaced.is_empty() {
            // Did replacing the switch fix the link?
            let link = self
                .sb
                .slots
                .net
                .link_between(host, edge_node)
                // lint:allow(unwrap) — the host link was found above via incident()
                .expect("host link");
            if self.sb.slots.net.link_usable(link) {
                // Switch was at fault: repair it.
                self.sb.set_phys_healthy(suspect, false);
                self.repairs.push((
                    now + self.cfg.switch_repair_time,
                    RepairJob::Switch(suspect),
                ));
            } else {
                // "We mark the switch as healthy and trouble-shoot the
                // host." The exonerated switch is already in the pool.
                self.stats.exonerations += 1;
                self.repairs
                    .push((now + self.cfg.host_repair_time, RepairJob::HostNic(host)));
            }
        }
        self.check_invariants();
        recovery
    }

    /// Record link-failure reports attributable to circuit switch `cs`. If
    /// they exceed the threshold, recovery halts and humans are paged
    /// (§5.1). Returns whether the controller is (now) halted.
    pub fn report_cs_suspicion(&mut self, cs: CsId, reports: u32) -> bool {
        let count = self.cs_reports.entry(cs).or_insert(0);
        *count += reports;
        if *count >= self.cfg.cs_report_threshold && !self.halted {
            self.halted = true;
            self.stats.escalations += 1;
        }
        self.halted
    }

    /// Complete all repairs due by `now`. Repaired switches rejoin their
    /// group's backup pool; repaired host NICs restore the host link.
    pub fn poll_repairs(&mut self, now: Time) -> usize {
        let mut done = 0;
        let mut remaining = Vec::with_capacity(self.repairs.len());
        let jobs = std::mem::take(&mut self.repairs);
        for (due, job) in jobs {
            if due <= now {
                match job {
                    RepairJob::Switch(p) => self.sb.set_phys_healthy(p, true),
                    RepairJob::HostNic(h) => self.sb.set_host_nic_broken(h, false),
                }
                done += 1;
            } else {
                remaining.push((due, job));
            }
        }
        self.repairs = remaining;
        if done > 0 {
            self.check_invariants();
        }
        done
    }

    /// Instant of the next pending repair, if any.
    pub fn next_repair_due(&self) -> Option<Time> {
        self.repairs.iter().map(|&(t, _)| t).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharebackup_topo::{GroupId, ShareBackupConfig};

    fn controller(k: usize, n: usize) -> Controller {
        Controller::new(
            ShareBackup::build(ShareBackupConfig::new(k, n)),
            ControllerConfig::default(),
        )
    }

    #[test]
    fn node_failure_recovers_with_one_replacement() {
        let mut c = controller(4, 1);
        let slot = GroupId::agg(1).slot(0);
        let victim = c.sb.occupant(slot);
        c.sb.set_phys_healthy(victim, false);
        let r = c.handle_node_failure(victim, Time::ZERO);
        assert!(r.fully_recovered());
        assert_eq!(r.replaced.len(), 1);
        assert_eq!(r.replaced[0].0, slot);
        assert!(c.sb.slots.net.node(c.sb.slot_node(slot)).up);
        assert!(r.latency < Duration::from_millis(3));
        assert_eq!(c.stats.replacements, 1);
        // Pool is now empty (n=1, victim under repair).
        assert!(c.sb.spares(slot.group).is_empty());
    }

    #[test]
    fn repaired_switch_becomes_backup_role_swap() {
        let mut c = controller(4, 1);
        let slot = GroupId::edge(0).slot(1);
        let victim = c.sb.occupant(slot);
        c.sb.set_phys_healthy(victim, false);
        c.handle_node_failure(victim, Time::ZERO);
        assert_eq!(c.poll_repairs(Time::from_secs(10)), 0, "not due yet");
        let due = c.next_repair_due().expect("repair scheduled");
        assert_eq!(c.poll_repairs(due), 1);
        // The old occupant is back — as a backup, not in its old slot.
        assert_eq!(c.sb.slot_of(victim), None);
        assert_eq!(c.sb.spares(slot.group), vec![victim]);
    }

    #[test]
    fn pool_exhaustion_counts_fallback() {
        let mut c = controller(4, 1);
        let g = GroupId::core(0);
        let v0 = c.sb.occupant(g.slot(0));
        let v1 = c.sb.occupant(g.slot(1));
        c.sb.set_phys_healthy(v0, false);
        let r0 = c.handle_node_failure(v0, Time::ZERO);
        assert!(r0.fully_recovered());
        c.sb.set_phys_healthy(v1, false);
        let r1 = c.handle_node_failure(v1, Time::ZERO);
        assert!(!r1.fully_recovered());
        assert_eq!(c.stats.fallbacks, 1);
        // After repair, the pool refills and the down slot can be fixed by
        // a later failure-handling pass — here we just check the slot is
        // still down.
        assert!(!c.sb.slots.net.node(c.sb.slot_node(g.slot(1))).up);
    }

    #[test]
    fn link_failure_replaces_both_and_diagnosis_exonerates_one() {
        let mut c = controller(6, 1);
        // Break the edge-side interface of the edge(0,0)↔agg(0,0) link.
        let edge_slot = GroupId::edge(0).slot(0);
        let agg_slot = GroupId::agg(0).slot(0);
        let edge_phys = c.sb.occupant(edge_slot);
        let agg_phys = c.sb.occupant(agg_slot);
        // Edge up-port m where (0+m)%3 == 0 → m=0 → iface 3. Agg down-port 0.
        c.sb.set_iface_broken(edge_phys, 3, true);
        let r = c.handle_link_failure((edge_phys, 3), (agg_phys, 0), Time::ZERO);
        assert_eq!(r.replaced.len(), 2, "both suspects replaced");
        assert_eq!(c.stats.diagnoses, 2);
        assert_eq!(c.stats.exonerations, 1);
        assert_eq!(c.stats.convictions, 1);
        // The exonerated agg is immediately a spare again.
        assert!(c.sb.spares(agg_slot.group).contains(&agg_phys));
        // The convicted edge is out until repair.
        assert!(!c.sb.phys(edge_phys).healthy);
        assert!(!c.sb.spares(edge_slot.group).contains(&edge_phys));
        // Data plane fully restored.
        assert!(r.fully_recovered());
        let link = c
            .sb
            .slots
            .net
            .link_between(c.sb.slots.edge(0, 0), c.sb.slots.agg(0, 0))
            .expect("link");
        assert!(c.sb.slots.net.link_usable(link));
    }

    #[test]
    fn host_link_failure_with_faulty_switch() {
        let mut c = controller(4, 1);
        let slot = GroupId::edge(2).slot(0);
        let edge_phys = c.sb.occupant(slot);
        // Break the edge's host-facing interface 1 → host(2,0,1)'s link.
        c.sb.set_iface_broken(edge_phys, 1, true);
        let host = c.sb.slots.host(sharebackup_topo::HostAddr {
            pod: 2,
            edge: 0,
            host: 1,
        });
        let r = c.handle_host_link_failure(host, Time::ZERO);
        assert_eq!(r.replaced.len(), 1);
        // Replacement fixed it → switch convicted.
        assert!(!c.sb.phys(edge_phys).healthy);
        let edge_node = c.sb.slots.edge(2, 0);
        let l = c.sb.slots.net.link_between(host, edge_node).expect("link");
        assert!(c.sb.slots.net.link_usable(l));
    }

    #[test]
    fn host_link_failure_with_faulty_host_nic() {
        let mut c = controller(4, 1);
        let host = c.sb.slots.host(sharebackup_topo::HostAddr {
            pod: 1,
            edge: 1,
            host: 0,
        });
        c.sb.set_host_nic_broken(host, true);
        let slot = GroupId::edge(1).slot(1);
        let suspect = c.sb.occupant(slot);
        let r = c.handle_host_link_failure(host, Time::ZERO);
        assert_eq!(r.replaced.len(), 1, "switch replaced first (assumed faulty)");
        // Replacement did NOT fix it → switch exonerated, host trouble-shot.
        assert!(c.sb.phys(suspect).healthy);
        assert!(c.sb.spares(slot.group).contains(&suspect));
        assert_eq!(c.stats.exonerations, 1);
        // Host repair eventually restores the link.
        let due = c.next_repair_due().expect("host repair scheduled");
        c.poll_repairs(due);
        let edge_node = c.sb.slots.edge(1, 1);
        let l = c.sb.slots.net.link_between(host, edge_node).expect("link");
        assert!(c.sb.slots.net.link_usable(l));
    }

    #[test]
    fn circuit_switch_suspicion_escalates_and_halts() {
        let mut c = controller(4, 1);
        let cs = CsId::EdgeAgg { pod: 0, m: 0 };
        assert!(!c.report_cs_suspicion(cs, 3));
        assert!(c.report_cs_suspicion(cs, 1)); // threshold 4 reached
        assert!(c.is_halted());
        assert_eq!(c.stats.escalations, 1);
        // Halted controller refuses replacements.
        let slot = GroupId::edge(0).slot(0);
        let victim = c.sb.occupant(slot);
        c.sb.set_phys_healthy(victim, false);
        let r = c.handle_node_failure(victim, Time::ZERO);
        assert!(!r.fully_recovered());
        // Human intervention resumes service.
        c.resume_after_intervention();
        assert!(!c.is_halted());
    }

    #[test]
    fn spare_switch_failure_needs_no_replacement() {
        let mut c = controller(4, 2);
        let g = GroupId::agg(3);
        let spare = c.sb.spares(g)[0];
        c.sb.set_phys_healthy(spare, false);
        let r = c.handle_node_failure(spare, Time::ZERO);
        assert!(r.replaced.is_empty());
        assert!(r.fully_recovered());
        assert_eq!(c.sb.spares(g).len(), 1);
    }

    #[test]
    fn recovery_breakdown_spans_sum_to_reported_latency() {
        let mut c = controller(4, 1);
        let (tracer, sink) = Tracer::recording();
        c.tracer = tracer;
        let slot = GroupId::agg(0).slot(0);
        let victim = c.sb.occupant(slot);
        c.sb.set_phys_healthy(victim, false);
        let now = Time::from_secs(30);
        let r = c.handle_node_failure(victim, now);

        let buf = sink.borrow_mut().take();
        let spans = buf.spans();
        let of = |name: &str| {
            spans
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("missing span {name}"))
                .clone()
        };
        let (rec, det, dia, cfg) = (
            of("recovery"),
            of("detection"),
            of("diagnosis"),
            of("reconfiguration"),
        );
        // The three phases tile the parent span contiguously...
        assert_eq!(rec.begin, det.begin);
        assert_eq!(det.end, dia.begin);
        assert_eq!(dia.end, cfg.begin);
        assert_eq!(cfg.end, rec.end);
        assert_eq!(rec.end, now, "data plane whole at the handler instant");
        // ...children are nested under the parent...
        assert_eq!(rec.depth, 0);
        for child in [&det, &dia, &cfg] {
            assert_eq!(child.depth, 1);
        }
        // ...and the phase durations sum exactly to Recovery::latency.
        let total = det.end.since(det.begin)
            + dia.end.since(dia.begin)
            + cfg.end.since(cfg.begin);
        assert_eq!(total, r.latency);
        // The restored instant marks the end.
        assert!(buf.events.iter().any(|e| matches!(
            e,
            sharebackup_telemetry::TraceEvent::Mark { name, at, .. }
                if name == "restored" && *at == now
        )));
    }

    #[test]
    fn untracked_controller_records_nothing() {
        let mut c = controller(4, 1);
        let victim = c.sb.occupant(GroupId::agg(0).slot(0));
        c.sb.set_phys_healthy(victim, false);
        // Default tracer is off: this must not panic or allocate a buffer.
        assert!(!c.tracer.is_enabled());
        let r = c.handle_node_failure(victim, Time::from_secs(1));
        assert!(r.fully_recovered());
    }

    #[test]
    fn latency_depends_on_circuit_technology() {
        use sharebackup_topo::CircuitTech;
        let sb_mems = ShareBackup::build(
            ShareBackupConfig::new(4, 1).with_tech(CircuitTech::Mems2D),
        );
        let mut c_mems = Controller::new(sb_mems, ControllerConfig::default());
        let mut c_xp = controller(4, 1);
        let v1 = c_mems.sb.occupant(GroupId::edge(0).slot(0));
        let v2 = c_xp.sb.occupant(GroupId::edge(0).slot(0));
        c_mems.sb.set_phys_healthy(v1, false);
        c_xp.sb.set_phys_healthy(v2, false);
        let r1 = c_mems.handle_node_failure(v1, Time::ZERO);
        let r2 = c_xp.handle_node_failure(v2, Time::ZERO);
        assert!(r1.latency > r2.latency);
    }
}
