//! Event-driven replicated control plane (paper §5.1, "Controller
//! failures") — the machinery that keeps recovery going when the recovery
//! machinery's own brain dies.
//!
//! [`crate::cluster::ControllerCluster`] answers *who is primary*; this
//! module makes that bookkeeping load-bearing. A [`FailoverPlane`] owns the
//! cluster and journals every failure report: switches report to **all**
//! replicas simultaneously (§5.1), so each in-flight recovery is durable
//! state any replica can pick up. The primary can crash at any phase
//! boundary of an in-flight recovery —
//!
//! * after the report is processed but before diagnosis
//!   ([`RecoveryPhase::Reported`]),
//! * between diagnosis and reconfiguration ([`RecoveryPhase::Diagnosed`]),
//! * after reconfiguration executed but before the completion is
//!   acknowledged cluster-wide ([`RecoveryPhase::Executed`])
//!
//! — and the deterministically elected successor (lowest-id live replica)
//! re-drives the journal **idempotently**: a recovery interrupted before
//! execution runs once under the new primary; a recovery interrupted after
//! execution is *reconciled* — the successor re-issues the (idempotent)
//! circuit-switch command batch and completes from the journaled outcome
//! rather than assigning a second backup. No backup is double-assigned and
//! no circuit configuration leaks, and under the `strict-invariants`
//! feature the full structural invariants are re-checked after every
//! transition.
//!
//! Failure detection for the primary itself reuses the §4.1 keep-alive
//! machinery: replicas heartbeat each other on
//! [`FailoverConfig::heartbeat`], so a crash is observed within
//! [`DetectionConfig::worst_case`] and the election completes
//! [`FailoverConfig::election_time`] later ([`simulate_election`] plays the
//! exact sequence on the discrete-event engine; the plane charges the
//! conservative closed-form bound).
//!
//! The control network is fallible too: failure reports and
//! reconfiguration commands each traverse a lossy/delayed channel
//! ([`ChaosConfig::control_loss_rate`], [`ChaosConfig::control_delay_rate`])
//! with a per-message timeout, bounded deterministic exponential backoff
//! ([`crate::latency::RecoveryLatencyModel::retry_backoff`]) and a retry
//! budget ([`FailoverConfig::max_control_attempts`]). A message that
//! exhausts its budget does **not** drop the failure: the journal entry
//! stays pending with a visible retry time, so every submitted failure is
//! either completed or still accounted for (no silent drops — the
//! property tests pin this trichotomy).
//!
//! Chaos decisions draw from the plane's own `SimRng` stream
//! ([`FailoverPlane::with_chaos`]), never from the controller's: a plane
//! built without a stream performs zero draws, and the wrapped
//! [`Controller`]'s draw sequence is untouched either way, so every
//! pre-existing harness digest stays byte-identical.

use std::collections::BTreeMap;

use sharebackup_sim::{Duration, Engine, SimRng, Time, World};
use sharebackup_topo::{NodeId, PhysId};

use crate::chaos::ChaosConfig;
use crate::cluster::{ControllerCluster, ReplicaOutOfRange};
use crate::controller::{Controller, Recovery};
use crate::detection::DetectionConfig;

/// Tuning knobs of the replicated control plane.
#[derive(Clone, Copy, Debug)]
pub struct FailoverConfig {
    /// Cluster size; replica 0 starts as primary.
    pub replicas: usize,
    /// Leader-election delay once a dead primary has been detected.
    pub election_time: Duration,
    /// Replica-to-replica heartbeat parameters (§4.1 keep-alive machinery
    /// applied to the controllers themselves).
    pub heartbeat: DetectionConfig,
    /// Per-attempt timeout before a lost control message is retried.
    pub control_timeout: Duration,
    /// Extra propagation delay charged to a chaos-delayed control message.
    pub control_delay: Duration,
    /// Transmission attempts per control message before the sender gives
    /// up for now (the journal entry stays pending and is retried at the
    /// next poll past its backoff horizon).
    pub max_control_attempts: u32,
}

impl Default for FailoverConfig {
    fn default() -> Self {
        FailoverConfig {
            replicas: 3,
            election_time: Duration::from_millis(50),
            heartbeat: DetectionConfig::default(),
            control_timeout: Duration::from_millis(1),
            control_delay: Duration::from_millis(1),
            max_control_attempts: 4,
        }
    }
}

impl FailoverConfig {
    /// The control-plane blackout charged for one primary crash: heartbeat
    /// silence until the crash is detected (worst case) plus the election.
    pub fn blackout(&self) -> Duration {
        self.heartbeat.worst_case() + self.election_time
    }
}

/// One failure report as journaled at every replica. Plain data — this is
/// exactly the state a successor primary needs to re-drive the recovery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureReport {
    /// A whole-switch failure (keep-alive silence).
    Node(PhysId),
    /// A link failure between two switch interfaces (neighbor probes).
    Link {
        /// The faulty side `(switch, interface)`.
        faulty: (PhysId, usize),
        /// The other suspect `(switch, interface)`.
        other: (PhysId, usize),
    },
    /// A failed host↔edge link, reported by the host.
    HostLink(NodeId),
}

impl FailureReport {
    /// Dispatch this report to the matching [`Controller`] handler.
    fn drive(&self, ctl: &mut Controller, now: Time) -> Recovery {
        match *self {
            FailureReport::Node(p) => ctl.handle_node_failure(p, now),
            FailureReport::Link { faulty, other } => ctl.handle_link_failure(faulty, other, now),
            FailureReport::HostLink(h) => ctl.handle_host_link_failure(h, now),
        }
    }
}

/// How far an in-flight recovery has progressed — the boundaries at which
/// the primary can crash.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum RecoveryPhase {
    /// Journaled at every replica; the primary has not finished processing
    /// the report.
    Reported,
    /// The primary decided what to do; reconfiguration commands are not
    /// out yet.
    Diagnosed,
    /// Reconfiguration executed; completion not yet acknowledged
    /// cluster-wide.
    Executed,
}

/// One journaled in-flight recovery.
#[derive(Clone, Debug)]
struct InFlight {
    report: FailureReport,
    reported_at: Time,
    phase: RecoveryPhase,
    /// A primary crash interrupted this entry at least once.
    interrupted: bool,
    /// Already counted in `ControllerStats::recoveries_resumed`.
    resumed: bool,
    /// Do not re-drive before this instant (control-channel backoff).
    retry_at: Time,
    /// The outcome of an executed-but-unacknowledged recovery, journaled
    /// so a successor can reconcile instead of re-executing. (In the
    /// paper's model every replica sees network state, so the outcome is
    /// reconstructible; we carry it explicitly.)
    executed: Option<Recovery>,
}

/// A recovery the control plane finished end to end.
#[derive(Clone, Debug)]
pub struct CompletedRecovery {
    /// Journal id (submission order).
    pub id: u64,
    /// When the failure report was submitted to the plane.
    pub reported_at: Time,
    /// When the recovery completed (includes control-plane blackouts,
    /// channel retries and chaos delays). `completed_at - reported_at` is
    /// the end-to-end control-plane dwell; [`Recovery::latency`] remains
    /// the §5.3 data-plane model for the final successful drive.
    pub completed_at: Time,
    /// What the controller did.
    pub recovery: Recovery,
}

/// Introspection view of one still-journaled recovery.
#[derive(Clone, Copy, Debug)]
pub struct PendingRecovery {
    /// Journal id (submission order).
    pub id: u64,
    /// The journaled report.
    pub report: FailureReport,
    /// Submission instant — `now - reported_at` is the visible dwell time
    /// of this unrecovered failure.
    pub reported_at: Time,
    /// Progress at the last interruption.
    pub phase: RecoveryPhase,
    /// Whether a primary crash interrupted it.
    pub interrupted: bool,
}

/// The replicated control plane: a [`ControllerCluster`] plus the journal
/// of in-flight recoveries and the fallible control channel.
///
/// The plane does not own the [`Controller`]; every operation borrows it,
/// so the scenario layer keeps routing through the controller's network
/// while the plane decides *when* the controller is allowed to act.
#[derive(Clone, Debug)]
pub struct FailoverPlane {
    /// Plane tuning knobs.
    pub cfg: FailoverConfig,
    /// Control-plane chaos rates (only the `controller_crash_rate`,
    /// `control_loss_rate` and `control_delay_rate` knobs are read here).
    pub chaos: ChaosConfig,
    cluster: ControllerCluster,
    rng: Option<SimRng>,
    journal: BTreeMap<u64, InFlight>,
    next_id: u64,
    /// The control plane is electing (or detecting a dead primary) until
    /// this instant; no recovery is driven before it.
    available_at: Time,
    /// One-shot deterministic crash injection for tests and demos: the
    /// primary crashes when the next drive reaches this phase boundary
    /// (consuming the hook, and skipping that boundary's chaos roll).
    crash_at_phase: Option<RecoveryPhase>,
    completed: Vec<CompletedRecovery>,
}

impl FailoverPlane {
    /// A plane without a chaos stream: performs **zero** RNG draws; the
    /// only way the primary crashes is [`FailoverPlane::crash_replica`] or
    /// [`FailoverPlane::force_crash_at`].
    pub fn new(cfg: FailoverConfig) -> FailoverPlane {
        FailoverPlane {
            cfg,
            chaos: ChaosConfig::off(),
            cluster: ControllerCluster::new(cfg.replicas, cfg.election_time),
            rng: None,
            journal: BTreeMap::new(),
            next_id: 0,
            available_at: Time::ZERO,
            crash_at_phase: None,
            completed: Vec::new(),
        }
    }

    /// A plane with control-plane chaos. Pass a dedicated
    /// [`SimRng::child`] stream — never the controller's machinery stream —
    /// so enabling control-plane chaos cannot perturb the recovery
    /// machinery's own draw sequence.
    pub fn with_chaos(cfg: FailoverConfig, chaos: ChaosConfig, rng: SimRng) -> FailoverPlane {
        FailoverPlane {
            chaos,
            rng: Some(rng),
            ..FailoverPlane::new(cfg)
        }
    }

    /// Cluster membership view.
    pub fn cluster(&self) -> &ControllerCluster {
        &self.cluster
    }

    /// Whether the plane can drive recoveries at `now`: some replica is
    /// primary and no election is still running.
    pub fn available(&self, now: Time) -> bool {
        self.cluster.available() && now >= self.available_at
    }

    /// The instant the current blackout (if any) ends. [`Time::ZERO`] if
    /// the plane was never interrupted.
    pub fn available_at(&self) -> Time {
        self.available_at
    }

    /// Arm the one-shot deterministic crash hook: the primary will crash
    /// when the next drive reaches `phase`.
    pub fn force_crash_at(&mut self, phase: RecoveryPhase) {
        self.crash_at_phase = Some(phase);
    }

    /// Journaled recoveries not yet completed.
    pub fn pending_count(&self) -> usize {
        self.journal.len()
    }

    /// Introspection over the journal, in submission order.
    pub fn pending(&self) -> Vec<PendingRecovery> {
        self.journal
            .iter()
            .map(|(&id, e)| PendingRecovery {
                id,
                report: e.report,
                reported_at: e.reported_at,
                phase: e.phase,
                interrupted: e.interrupted,
            })
            .collect()
    }

    /// Drain the recoveries completed since the last call, in completion
    /// order.
    pub fn take_completed(&mut self) -> Vec<CompletedRecovery> {
        std::mem::take(&mut self.completed)
    }

    /// Submit a failure report: journal it at every replica, then try to
    /// drive it (it completes synchronously when the plane is available
    /// and nothing chaotic intervenes — collect results via
    /// [`FailoverPlane::take_completed`]).
    pub fn submit(&mut self, ctl: &mut Controller, report: FailureReport, now: Time) {
        let id = self.next_id;
        self.next_id += 1;
        ctl.stats.control_reports += 1;
        self.journal.insert(
            id,
            InFlight {
                report,
                reported_at: now,
                phase: RecoveryPhase::Reported,
                interrupted: false,
                resumed: false,
                retry_at: now,
                executed: None,
            },
        );
        self.poll(ctl, now);
    }

    /// Drive every journaled recovery that is due at `now`. Cheap no-op
    /// when the journal is empty or the plane is mid-blackout; the
    /// scenario layer calls this from `Environment::on_advance`.
    pub fn poll(&mut self, ctl: &mut Controller, now: Time) {
        if self.journal.is_empty() {
            return;
        }
        let ids: Vec<u64> = self.journal.keys().copied().collect();
        for id in ids {
            // Re-checked per entry: a drive can crash the primary.
            if !self.available(now) {
                break;
            }
            self.drive(ctl, id, now);
        }
    }

    /// Crash a controller replica at `now`. Idempotent (a duplicate crash
    /// of a dead replica is free) and typed-error on out-of-range ids.
    /// Crashing the primary interrupts every journaled recovery and starts
    /// the detection + election blackout.
    pub fn crash_replica(
        &mut self,
        ctl: &mut Controller,
        id: usize,
        now: Time,
    ) -> Result<(), ReplicaOutOfRange> {
        if !self.cluster.is_up(id)? {
            return Ok(());
        }
        let was_primary = self.cluster.primary() == Some(id);
        self.cluster.fail_replica(id)?;
        ctl.stats.controller_crashes += 1;
        ctl.tracer.instant(now, "failover", "controller-crash");
        if was_primary {
            for e in self.journal.values_mut() {
                e.interrupted = true;
            }
            if self.cluster.available() {
                // Followers observe the heartbeat silence (charged at the
                // conservative closed-form bound), then elect.
                ctl.stats.elections += 1;
                let detected = now + self.cfg.heartbeat.worst_case();
                let elected = detected + self.cfg.election_time;
                ctl.tracer.span(detected, elected, "failover", "election");
                self.available_at = self.available_at.max(elected);
            }
            // Headless cluster: poll() is gated on cluster availability
            // until a replica is restored.
        }
        self.check_invariants(ctl);
        Ok(())
    }

    /// Restore a controller replica at `now` (it rejoins as a follower;
    /// if the cluster was headless, an election runs first). Idempotent
    /// and typed-error on out-of-range ids.
    pub fn restore_replica(
        &mut self,
        ctl: &mut Controller,
        id: usize,
        now: Time,
    ) -> Result<(), ReplicaOutOfRange> {
        if self.cluster.is_up(id)? {
            return Ok(());
        }
        let had_primary = self.cluster.available();
        let delay = self.cluster.restore_replica(id)?;
        ctl.stats.controller_restores += 1;
        ctl.tracer.instant(now, "failover", "controller-restore");
        if !had_primary && self.cluster.available() {
            ctl.stats.elections += 1;
            let elected = now + delay;
            ctl.tracer.span(now, elected, "failover", "election");
            self.available_at = self.available_at.max(elected);
        }
        self.check_invariants(ctl);
        Ok(())
    }

    /// One chaos roll on the plane's own stream. A plane without a stream
    /// never draws; with one installed, every opportunity draws exactly
    /// once (even at rate zero) so rate sweeps stay draw-aligned.
    fn roll(&mut self, rate: f64) -> bool {
        match &mut self.rng {
            Some(rng) => rng.chance(rate),
            None => false,
        }
    }

    /// Whether the primary crashes at this phase boundary: the one-shot
    /// [`FailoverPlane::force_crash_at`] hook (which consumes itself and
    /// skips the roll), or a `controller_crash_rate` roll.
    fn crash_due(&mut self, phase: RecoveryPhase) -> bool {
        if self.crash_at_phase == Some(phase) {
            self.crash_at_phase = None;
            return true;
        }
        self.roll(self.chaos.controller_crash_rate)
    }

    /// The chaos-rolled crash of whoever is primary right now.
    fn primary_crashed(&mut self, ctl: &mut Controller, now: Time) {
        if let Some(p) = self.cluster.primary() {
            // The primary id is in range by construction.
            let _ = self.crash_replica(ctl, p, now);
        }
    }

    /// Transmit one control message (a failure report or a reconfiguration
    /// command batch) over the possibly-lossy control network.
    ///
    /// Returns `Ok(penalty)` on delivery (timeouts + backoffs of lost
    /// attempts, plus any chaos delay) or `Err(penalty)` when the retry
    /// budget is exhausted — the caller keeps the journal entry pending.
    /// Draw-aligned: one loss roll per attempt, one delay roll on delivery.
    fn send_message(&mut self, ctl: &mut Controller, now: Time) -> Result<Duration, Duration> {
        let mut penalty = Duration::ZERO;
        let attempts = self.cfg.max_control_attempts.max(1);
        for attempt in 1..=attempts {
            if self.roll(self.chaos.control_loss_rate) {
                ctl.stats.control_losses += 1;
                penalty += self.cfg.control_timeout + ctl.cfg.latency.retry_backoff(attempt);
                if attempt == attempts {
                    ctl.stats.control_exhausted += 1;
                    ctl.tracer.instant(now, "failover", "control-exhausted");
                    return Err(penalty);
                }
                ctl.stats.control_retries += 1;
                ctl.tracer.instant(now, "failover", "control-retry");
                continue;
            }
            if self.roll(self.chaos.control_delay_rate) {
                ctl.stats.control_delays += 1;
                ctl.tracer.instant(now, "failover", "control-delay");
                penalty += self.cfg.control_delay;
            }
            return Ok(penalty);
        }
        unreachable!("the final attempt either delivers or returns Err")
    }

    /// Park `id` until `at` (its control channel exhausted the budget).
    fn defer(&mut self, id: u64, at: Time) {
        if let Some(e) = self.journal.get_mut(&id) {
            e.retry_at = at;
        }
    }

    fn set_phase(&mut self, id: u64, phase: RecoveryPhase) {
        if let Some(e) = self.journal.get_mut(&id) {
            e.phase = phase;
        }
    }

    /// Drive one journal entry as far as it will go at `now`.
    fn drive(&mut self, ctl: &mut Controller, id: u64, now: Time) {
        let Some(entry) = self.journal.get(&id).cloned() else {
            return;
        };
        if now < entry.retry_at {
            return;
        }
        if entry.interrupted && !entry.resumed {
            ctl.stats.recoveries_resumed += 1;
            ctl.tracer.instant(now, "failover", "recovery-resumed");
            if let Some(e) = self.journal.get_mut(&id) {
                e.resumed = true;
            }
        }
        let mut phase = entry.phase;
        let mut penalty = Duration::ZERO;

        if phase == RecoveryPhase::Reported {
            // The failure report must reach the (possibly new) primary.
            match self.send_message(ctl, now) {
                Ok(p) => penalty += p,
                Err(p) => {
                    self.defer(id, now + p);
                    return;
                }
            }
            if self.crash_due(RecoveryPhase::Reported) {
                self.primary_crashed(ctl, now);
                return;
            }
            phase = RecoveryPhase::Diagnosed;
            self.set_phase(id, phase);
        }

        if phase == RecoveryPhase::Diagnosed {
            // The mid-recovery window: diagnosis decided, commands not out.
            if self.crash_due(RecoveryPhase::Diagnosed) {
                self.primary_crashed(ctl, now);
                return;
            }
        }

        // (Re-)issue the reconfiguration command batch. Re-applying an
        // already-applied circuit configuration is idempotent at the
        // switches, so an Executed entry re-sends without harm.
        match self.send_message(ctl, now) {
            Ok(p) => penalty += p,
            Err(p) => {
                self.defer(id, now + p);
                return;
            }
        }
        let completed_at = now + penalty;

        let recovery = if let Some(done) = entry.executed {
            // Reconciliation: the recovery executed under the crashed
            // primary but was never acknowledged. The successor re-sent
            // the commands above and completes from the journaled outcome
            // — it must NOT run the handler again, which could assign a
            // second backup to an already-recovered slot.
            ctl.tracer
                .span(now, completed_at, "failover", "reconciliation");
            done
        } else {
            let reconciling = entry.interrupted;
            if reconciling {
                ctl.tracer.span_begin(now, "failover", "reconciliation");
            }
            let mut recovery = entry.report.drive(ctl, completed_at);
            if reconciling {
                ctl.tracer.span_end(completed_at);
            }
            recovery.latency += penalty;
            recovery.penalty += penalty;
            self.set_phase(id, RecoveryPhase::Executed);
            if let Some(e) = self.journal.get_mut(&id) {
                e.executed = Some(recovery.clone());
            }
            if self.crash_due(RecoveryPhase::Executed) {
                // Executed but unacknowledged: the successor reconciles.
                self.primary_crashed(ctl, now);
                return;
            }
            recovery
        };

        self.journal.remove(&id);
        self.completed.push(CompletedRecovery {
            id,
            reported_at: entry.reported_at,
            completed_at,
            recovery,
        });
        self.check_invariants(ctl);
    }

    /// Under `strict-invariants`, re-verify structure and counter algebra
    /// after every control-plane transition.
    fn check_invariants(&self, ctl: &Controller) {
        if cfg!(feature = "strict-invariants") {
            ctl.sb.check_invariants();
            ctl.stats.assert_consistent();
        }
    }
}

/// Milestones of one primary-crash → detection → election sequence, played
/// on the discrete-event engine ([`simulate_election`]).
#[derive(Clone, Copy, Debug)]
pub struct ElectionTimeline {
    /// When the primary died.
    pub crashed_at: Time,
    /// When a follower's scan first observed over-limit heartbeat silence.
    pub detected_at: Time,
    /// When the election completed (`detected_at + election_time`).
    pub elected_at: Time,
    /// The follower (by scan index) that detected the crash.
    pub detector: usize,
}

impl ElectionTimeline {
    /// Crash → detection.
    pub fn detection_latency(&self) -> Duration {
        self.detected_at.since(self.crashed_at)
    }

    /// Crash → new primary in charge.
    pub fn total_blackout(&self) -> Duration {
        self.elected_at.since(self.crashed_at)
    }
}

enum ElEv {
    /// The primary emits a heartbeat (if still alive).
    Heartbeat,
    /// The primary dies.
    Crash,
    /// Follower `i`'s scan tick.
    Scan(usize),
    /// The election completes.
    Elected,
}

struct ElectionWorld {
    heartbeat: DetectionConfig,
    election_time: Duration,
    alive: bool,
    last_seen: Time,
    crashed_at: Option<Time>,
    detected_at: Option<Time>,
    detector: Option<usize>,
    elected_at: Option<Time>,
}

impl World<ElEv> for ElectionWorld {
    fn handle(&mut self, engine: &mut Engine<ElEv>, now: Time, ev: ElEv) {
        match ev {
            ElEv::Heartbeat => {
                if self.alive {
                    self.last_seen = now;
                    engine.schedule_in(self.heartbeat.probe_interval, ElEv::Heartbeat);
                }
            }
            ElEv::Crash => {
                self.alive = false;
                self.crashed_at = Some(now);
            }
            ElEv::Scan(i) => {
                if self.detected_at.is_some() {
                    return;
                }
                let silence = now.saturating_since(self.last_seen);
                if self.crashed_at.is_some() && silence > self.heartbeat.silence_limit() {
                    self.detected_at = Some(now);
                    self.detector = Some(i);
                    engine.schedule_in(self.election_time, ElEv::Elected);
                } else {
                    engine.schedule_in(self.heartbeat.probe_interval, ElEv::Scan(i));
                }
            }
            ElEv::Elected => {
                self.elected_at = Some(now);
            }
        }
    }
}

/// Play one primary crash on the discrete-event engine: the primary
/// heartbeats with phase `heartbeat_phase`, each follower scans for
/// silence with its own phase from `follower_phases` (§4.1 keep-alive
/// machinery turned on the controllers), the primary dies at `crash_at`,
/// and the election completes `election_time` after the first follower
/// detects the silence.
///
/// The plane itself charges the closed-form
/// [`FailoverConfig::blackout`]; this simulation shows that bound is
/// conservative for every phase alignment (see the property tests).
///
/// # Panics
/// Panics if `follower_phases` is empty or any phase is not within one
/// heartbeat period.
pub fn simulate_election(
    heartbeat: DetectionConfig,
    election_time: Duration,
    heartbeat_phase: Duration,
    follower_phases: &[Duration],
    crash_at: Time,
) -> ElectionTimeline {
    assert!(!follower_phases.is_empty(), "need at least one follower");
    assert!(
        heartbeat_phase < heartbeat.probe_interval,
        "phase within one period"
    );
    let mut engine: Engine<ElEv> = Engine::new();
    engine.schedule(Time::ZERO + heartbeat_phase, ElEv::Heartbeat);
    for (i, &phase) in follower_phases.iter().enumerate() {
        assert!(phase < heartbeat.probe_interval, "phase within one period");
        engine.schedule(Time::ZERO + phase, ElEv::Scan(i));
    }
    engine.schedule(crash_at, ElEv::Crash);
    let mut world = ElectionWorld {
        heartbeat,
        election_time,
        alive: true,
        last_seen: Time::ZERO,
        crashed_at: None,
        detected_at: None,
        detector: None,
        elected_at: None,
    };
    engine.run(&mut world);
    ElectionTimeline {
        // lint:allow(unwrap) — the crash event is scheduled up front and always runs
        crashed_at: world.crashed_at.expect("crash ran"),
        // lint:allow(unwrap) — some follower's scan always observes the silence
        detected_at: world.detected_at.expect("a follower detects"),
        // lint:allow(unwrap) — the election is scheduled at detection and always runs
        elected_at: world.elected_at.expect("election completes"),
        // lint:allow(unwrap) — set together with detected_at
        detector: world.detector.expect("a follower detects"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::ControllerConfig;
    use sharebackup_topo::{GroupId, ShareBackup, ShareBackupConfig};

    fn controller(k: usize, n: usize) -> Controller {
        Controller::new(
            ShareBackup::build(ShareBackupConfig::new(k, n)),
            ControllerConfig::default(),
        )
    }

    /// Bench a victim and return its report.
    fn kill_one(ctl: &mut Controller) -> FailureReport {
        let slot = GroupId::agg(0).slot(0);
        let victim = ctl.sb.occupant(slot);
        ctl.sb.set_phys_healthy(victim, false);
        FailureReport::Node(victim)
    }

    #[test]
    fn inert_plane_completes_recoveries_synchronously() {
        let mut ctl = controller(4, 1);
        let mut plane = FailoverPlane::new(FailoverConfig::default());
        let report = kill_one(&mut ctl);
        plane.submit(&mut ctl, report, Time::from_secs(1));
        let done = plane.take_completed();
        assert_eq!(done.len(), 1);
        assert!(done[0].recovery.fully_recovered());
        assert_eq!(done[0].completed_at, Time::from_secs(1), "no penalty when inert");
        assert_eq!(plane.pending_count(), 0);
        assert_eq!(ctl.stats.control_reports, 1);
        assert_eq!(ctl.stats.elections, 0);
        assert_eq!(ctl.stats.controller_crashes, 0);
        assert_eq!(ctl.stats.recoveries_resumed, 0);
        ctl.stats.assert_consistent();
    }

    #[test]
    fn crash_between_diagnosis_and_reconfiguration_is_resumed_by_successor() {
        let mut ctl = controller(4, 1);
        let mut plane = FailoverPlane::new(FailoverConfig::default());
        let t0 = Time::from_secs(1);
        plane.force_crash_at(RecoveryPhase::Diagnosed);
        let report = kill_one(&mut ctl);
        plane.submit(&mut ctl, report, t0);

        // The primary died mid-recovery: nothing completed, the entry is
        // journaled at the Diagnosed boundary, and replica 1 took over.
        assert!(plane.take_completed().is_empty());
        let pending = plane.pending();
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].phase, RecoveryPhase::Diagnosed);
        assert!(pending[0].interrupted);
        assert_eq!(plane.cluster().primary(), Some(1));
        assert_eq!(ctl.stats.controller_crashes, 1);
        assert_eq!(ctl.stats.elections, 1);
        assert_eq!(ctl.stats.replacements, 0, "no backup assigned yet");

        // Mid-blackout: the plane refuses to act.
        let blackout = plane.cfg.blackout();
        plane.poll(&mut ctl, t0 + blackout - Duration::from_nanos(1));
        assert!(plane.take_completed().is_empty());

        // Once elected, the successor re-drives the journal to completion.
        let t1 = t0 + blackout;
        plane.poll(&mut ctl, t1);
        let done = plane.take_completed();
        assert_eq!(done.len(), 1);
        assert!(done[0].recovery.fully_recovered());
        assert_eq!(done[0].recovery.replaced.len(), 1);
        assert_eq!(done[0].completed_at, t1);
        assert_eq!(
            done[0].completed_at.since(done[0].reported_at),
            blackout,
            "dwell equals the control-plane blackout"
        );
        assert_eq!(ctl.stats.recoveries_resumed, 1);
        assert_eq!(ctl.stats.replacements, 1, "exactly one backup assigned");
        ctl.stats.assert_consistent();
    }

    #[test]
    fn crash_after_execution_reconciles_without_double_assignment() {
        let mut ctl = controller(4, 1);
        let mut plane = FailoverPlane::new(FailoverConfig::default());
        let t0 = Time::from_secs(1);
        plane.force_crash_at(RecoveryPhase::Executed);
        let report = kill_one(&mut ctl);
        plane.submit(&mut ctl, report, t0);

        // The recovery executed (one replacement) but was never acked.
        assert!(plane.take_completed().is_empty());
        assert_eq!(ctl.stats.replacements, 1);
        assert_eq!(plane.pending()[0].phase, RecoveryPhase::Executed);

        let t1 = t0 + plane.cfg.blackout();
        plane.poll(&mut ctl, t1);
        let done = plane.take_completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].recovery.replaced.len(), 1);
        assert_eq!(
            ctl.stats.replacements, 1,
            "reconciliation must not assign a second backup"
        );
        assert_eq!(ctl.stats.recoveries_resumed, 1);
        ctl.stats.assert_consistent();
    }

    #[test]
    fn total_loss_blocks_until_restore_with_visible_dwell() {
        let mut ctl = controller(4, 1);
        let mut plane = FailoverPlane::new(FailoverConfig {
            replicas: 2,
            ..FailoverConfig::default()
        });
        let t0 = Time::from_secs(1);
        plane
            .crash_replica(&mut ctl, 0, t0)
            .expect("replica 0 in range");
        plane
            .crash_replica(&mut ctl, 1, t0)
            .expect("replica 1 in range");
        assert!(!plane.cluster().available());

        // A failure during the headless window stays journaled — visible,
        // not silently dropped.
        let report = kill_one(&mut ctl);
        let t1 = Time::from_secs(2);
        plane.submit(&mut ctl, report, t1);
        assert!(plane.take_completed().is_empty());
        assert_eq!(plane.pending_count(), 1);
        assert_eq!(ctl.stats.replacements, 0);

        // Restore a replica: it elects itself, and the journal drains
        // after the election.
        let t2 = Time::from_secs(3);
        plane
            .restore_replica(&mut ctl, 0, t2)
            .expect("replica 0 in range");
        assert!(plane.cluster().available());
        let t3 = t2 + plane.cfg.election_time;
        plane.poll(&mut ctl, t3);
        let done = plane.take_completed();
        assert_eq!(done.len(), 1);
        assert!(done[0].recovery.fully_recovered());
        assert_eq!(
            done[0].completed_at.since(done[0].reported_at),
            t3.since(t1),
            "dwell spans the whole headless window"
        );
        assert_eq!(
            ctl.stats.elections, 2,
            "the first crash elected replica 1; the restore elects again"
        );
        ctl.stats.assert_consistent();
    }

    #[test]
    fn exhausted_control_channel_keeps_the_failure_journaled() {
        let mut ctl = controller(4, 1);
        let chaos = ChaosConfig {
            control_loss_rate: 1.0,
            ..ChaosConfig::off()
        };
        let mut plane = FailoverPlane::with_chaos(
            FailoverConfig {
                max_control_attempts: 3,
                ..FailoverConfig::default()
            },
            chaos,
            SimRng::seed_from_u64(7).child("control-chaos"),
        );
        let report = kill_one(&mut ctl);
        let t0 = Time::from_secs(1);
        plane.submit(&mut ctl, report, t0);

        // Every attempt lost: 3 losses = 2 retries + 1 exhausted; the
        // failure is still pending with a visible retry horizon.
        assert!(plane.take_completed().is_empty());
        assert_eq!(plane.pending_count(), 1);
        assert_eq!(ctl.stats.control_losses, 3);
        assert_eq!(ctl.stats.control_retries, 2);
        assert_eq!(ctl.stats.control_exhausted, 1);
        ctl.stats.assert_consistent();

        // The channel heals: the next poll past the backoff completes it.
        plane.chaos.control_loss_rate = 0.0;
        let t1 = t0 + Duration::from_secs(1);
        plane.poll(&mut ctl, t1);
        let done = plane.take_completed();
        assert_eq!(done.len(), 1);
        assert!(done[0].recovery.fully_recovered());
        ctl.stats.assert_consistent();
    }

    #[test]
    fn failover_telemetry_traces_elections_retries_and_reconciliation() {
        // The "failover" trace category tells the whole story: the crash
        // instant, the election span, the reconciliation span around the
        // resumed recovery, and one retry mark per lost control message.
        let mut ctl = controller(4, 1);
        let (tracer, sink) = sharebackup_telemetry::Tracer::recording();
        ctl.tracer = tracer;

        let chaos = ChaosConfig {
            control_loss_rate: 1.0,
            ..ChaosConfig::off()
        };
        let mut plane = FailoverPlane::with_chaos(
            FailoverConfig {
                max_control_attempts: 3,
                ..FailoverConfig::default()
            },
            chaos,
            SimRng::seed_from_u64(21).child("control-chaos"),
        );
        let report = kill_one(&mut ctl);
        let t0 = Time::from_secs(1);
        // Act 1: every control attempt lost — retries, then exhaustion.
        plane.submit(&mut ctl, report, t0);
        assert!(plane.take_completed().is_empty());

        // Act 2: the channel heals, but the primary dies at the diagnosis →
        // reconfiguration boundary of the resumed recovery.
        plane.chaos.control_loss_rate = 0.0;
        plane.force_crash_at(RecoveryPhase::Diagnosed);
        let t1 = t0 + Duration::from_secs(1);
        plane.poll(&mut ctl, t1);
        assert!(plane.take_completed().is_empty(), "crashed mid-recovery");

        // Act 3: the successor reconciles and completes.
        let t2 = t1 + plane.cfg.blackout();
        plane.poll(&mut ctl, t2);
        assert_eq!(plane.take_completed().len(), 1);

        let buf = sink.borrow_mut().take();
        let marks = buf.marks_in("failover");
        let count = |what: &str| marks.iter().filter(|(n, _)| n == what).count();
        assert_eq!(count("controller-crash"), 1);
        assert_eq!(
            count("control-retry") as u64,
            ctl.stats.control_retries,
            "one retry mark per counted retry"
        );
        assert!(count("control-retry") > 0, "lossy act really retried");
        assert_eq!(count("control-exhausted") as u64, ctl.stats.control_exhausted);
        assert_eq!(
            count("recovery-resumed") as u64,
            ctl.stats.recoveries_resumed
        );
        let spans = buf.spans_in("failover");
        assert!(
            spans.iter().any(|s| s.name == "election"),
            "election span recorded: {spans:?}"
        );
        let rec = spans
            .iter()
            .find(|s| s.name == "reconciliation")
            .expect("reconciliation span recorded");
        assert_eq!(rec.end, t2, "reconciliation closes at completion");
        assert!(buf.spans_in("chaos").is_empty(), "nothing leaks categories");
        ctl.stats.assert_consistent();
    }

    #[test]
    fn duplicate_report_is_idempotent_at_the_handler() {
        let mut ctl = controller(4, 1);
        let mut plane = FailoverPlane::new(FailoverConfig::default());
        let report = kill_one(&mut ctl);
        plane.submit(&mut ctl, report, Time::from_secs(1));
        // The same failure reported again (e.g. by a second witness).
        plane.submit(&mut ctl, report, Time::from_secs(1));
        let done = plane.take_completed();
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].recovery.replaced.len(), 1);
        assert!(
            done[1].recovery.replaced.is_empty(),
            "the duplicate must not assign a second backup"
        );
        assert_eq!(ctl.stats.replacements, 1);
        ctl.stats.assert_consistent();
    }

    #[test]
    fn follower_crash_does_not_interrupt_and_duplicates_are_free() {
        let mut ctl = controller(4, 1);
        let mut plane = FailoverPlane::new(FailoverConfig::default());
        let t0 = Time::from_secs(1);
        plane.crash_replica(&mut ctl, 2, t0).expect("in range");
        plane.crash_replica(&mut ctl, 2, t0).expect("idempotent duplicate");
        assert_eq!(ctl.stats.controller_crashes, 1, "duplicate crash uncounted");
        assert_eq!(ctl.stats.elections, 0);
        assert!(plane.available(t0), "follower crash causes no blackout");
        assert!(matches!(
            plane.crash_replica(&mut ctl, 99, t0),
            Err(ReplicaOutOfRange { id: 99, replicas: 3 })
        ));
        let report = kill_one(&mut ctl);
        plane.submit(&mut ctl, report, t0);
        assert_eq!(plane.take_completed().len(), 1);
        ctl.stats.assert_consistent();
    }

    #[test]
    fn zero_rate_chaos_plane_matches_inert_plane() {
        // With a stream installed but all rates zero, behavior (and the
        // controller's stats) must match the no-stream plane exactly.
        let run = |plane: &mut FailoverPlane| {
            let mut ctl = controller(4, 1);
            let report = kill_one(&mut ctl);
            plane.submit(&mut ctl, report, Time::from_secs(1));
            let done = plane.take_completed();
            (done.len(), done[0].completed_at, ctl.stats)
        };
        let mut inert = FailoverPlane::new(FailoverConfig::default());
        let mut zeroed = FailoverPlane::with_chaos(
            FailoverConfig::default(),
            ChaosConfig::off(),
            SimRng::seed_from_u64(1).child("control-chaos"),
        );
        assert_eq!(run(&mut inert), run(&mut zeroed));
    }

    #[test]
    fn election_simulation_is_bounded_by_the_closed_form_blackout() {
        let cfg = FailoverConfig::default();
        for hb_us in [0u64, 137, 500, 999] {
            for scan_us in [0u64, 250, 731, 999] {
                let tl = simulate_election(
                    cfg.heartbeat,
                    cfg.election_time,
                    Duration::from_micros(hb_us),
                    &[
                        Duration::from_micros(scan_us),
                        Duration::from_micros((scan_us + 333) % 1000),
                    ],
                    Time::from_micros(4321),
                );
                assert!(
                    tl.detection_latency() <= cfg.heartbeat.worst_case(),
                    "detection {} beyond bound at phases ({hb_us}, {scan_us})",
                    tl.detection_latency()
                );
                assert!(tl.total_blackout() <= cfg.blackout());
                assert_eq!(
                    tl.elected_at.since(tl.detected_at),
                    cfg.election_time,
                    "election runs immediately after detection"
                );
            }
        }
    }

    #[test]
    fn election_simulation_pins_deterministic_arithmetic() {
        // Heartbeats at 0,1,2,... ms; follower scans at 0.5,1.5,... ms;
        // crash at 2.2 ms → last heartbeat 2 ms; scans observe silence
        // 0.5 (≤1), 1.5 (>1) → detected 3.5 ms, elected +50 ms.
        let tl = simulate_election(
            DetectionConfig::default(),
            Duration::from_millis(50),
            Duration::ZERO,
            &[Duration::from_micros(500)],
            Time::from_micros(2200),
        );
        assert_eq!(tl.detected_at, Time::from_micros(3500));
        assert_eq!(tl.detection_latency(), Duration::from_micros(1300));
        assert_eq!(tl.elected_at, Time::from_micros(53_500));
        assert_eq!(tl.detector, 0);
    }

    #[test]
    fn more_followers_detect_no_later() {
        let heartbeat = DetectionConfig::default();
        let one = simulate_election(
            heartbeat,
            Duration::from_millis(50),
            Duration::ZERO,
            &[Duration::from_micros(900)],
            Time::from_micros(2200),
        );
        let two = simulate_election(
            heartbeat,
            Duration::from_millis(50),
            Duration::ZERO,
            &[Duration::from_micros(900), Duration::from_micros(100)],
            Time::from_micros(2200),
        );
        assert!(two.detected_at <= one.detected_at);
        assert_eq!(two.detector, 1, "the better-aligned follower wins");
    }
}
