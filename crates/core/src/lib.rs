#![warn(missing_docs)]
//! # sharebackup-core
//!
//! The ShareBackup control plane — the paper's primary contribution (§4).
//!
//! * [`controller`] — the logically centralized recovery controller: reacts
//!   to node, link, host-link, and circuit-switch failures by allocating a
//!   backup switch from the failure group and reconfiguring the group's
//!   circuit switches; never switches back (role swap, §4.2); falls back
//!   gracefully (and counts it) when a group's backup pool is exhausted.
//! * [`diagnosis`] — offline failure diagnosis (§4.2): after a link failure
//!   replaces both suspect switches, the suspect interfaces are tested
//!   through up to three circuit configurations over the side-port rings;
//!   an interface with connectivity in any configuration is redressed and
//!   its switch returns to the backup pool.
//! * [`latency`] — the §5.3 recovery-latency model: probing interval +
//!   sub-ms control-plane communication + circuit reset (70 ns / 40 µs),
//!   compared against rerouting's SDN rule-install path.
//! * [`cluster`] — the §5.1 controller cluster: primary election among
//!   replicas.
//! * [`failover`] — the event-driven replicated control plane: the primary
//!   can crash mid-recovery, a deterministically elected successor
//!   re-drives the journaled recovery idempotently, and control messages
//!   traverse a lossy/delayed channel with timeout + backoff + retry
//!   budget.
//! * [`scenario`] — [`sharebackup_flowsim::Environment`] implementations for
//!   the three compared systems (fat-tree + global rerouting, F10 + local
//!   rerouting, ShareBackup + this controller), used by every Fig. 1-style
//!   experiment.

pub mod boost;
pub mod chaos;
pub mod cluster;
pub mod controller;
pub mod detection;
pub mod diagnosis;
pub mod failover;
pub mod latency;
pub mod maintenance;
pub mod scenario;
pub mod timeline;

pub use boost::BoostPotential;
pub use chaos::ChaosConfig;
pub use cluster::{ControllerCluster, ReplicaOutOfRange};
pub use detection::{detection_latency_samples, simulate_detection, DetectionConfig};
pub use controller::{Controller, ControllerConfig, ControllerStats, Recovery};
pub use failover::{
    simulate_election, CompletedRecovery, ElectionTimeline, FailoverConfig, FailoverPlane,
    FailureReport, PendingRecovery, RecoveryPhase,
};
pub use diagnosis::{diagnose, DiagnosisReport, Verdict};
pub use latency::{RecoveryLatencyModel, RecoveryScheme};
pub use maintenance::{RollingUpgrade, UpgradeStep};
pub use scenario::{
    link_sb_event, map_chaos_schedule, F10World, FatTreeWorld, RecoveryMode, ShareBackupWorld,
};
pub use timeline::{
    simulate_recovery, simulate_recovery_traced, simulate_recovery_with_blackout, Timeline,
    TimelineEvent,
};
