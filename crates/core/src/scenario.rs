//! [`Environment`] implementations for the three compared systems.
//!
//! The Fig. 1-style experiments run the same trace through three worlds:
//!
//! * [`FatTreeWorld`] — plain fat-tree; on failure, global rerouting
//!   (hash-based or load-aware "optimal") over the surviving paths.
//! * [`F10World`] — the AB fat-tree with F10's local rerouting.
//! * [`ShareBackupWorld`] — the slot fat-tree under the recovery
//!   [`Controller`]: failures briefly down a slot, the controller swaps in
//!   a backup after the modeled detection+recovery latency, and flows
//!   resume **on their original paths** — no bandwidth loss, no dilation.
//!
//! Failure timelines are expressed as epoch events; the scenario builder
//! helpers produce the matched `(events, epoch_times)` pair the
//! [`sharebackup_flowsim::FlowSim`] consumes.

use sharebackup_flowsim::Environment;
use sharebackup_routing::{
    ecmp::ecmp_path_f10, ecmp_path, DegradedMode, DegradedTracker, F10Router, FlowKey,
    GlobalReroute,
};
use sharebackup_sim::{Duration, Time};
use sharebackup_topo::{
    F10Topology, FatTree, GroupId, LinkId, Network, NodeId, NodeKind, PhysId, ShareBackup,
};
use sharebackup_workload::{FailureEvent, FailureKind};

use crate::controller::{Controller, Recovery};
use crate::failover::{CompletedRecovery, FailoverPlane, FailureReport};

/// How a fat-tree world reacts to failures.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RecoveryMode {
    /// No rerouting: flows on broken paths stall (lower bound).
    None,
    /// Hash-based rerouting over surviving shortest paths.
    GlobalHash,
    /// Load-aware global assignment over surviving paths ("global optimal
    /// rerouting", the paper's fat-tree baseline).
    GlobalOptimal,
}

/// Topology mutations applied at epochs.
#[derive(Clone, Copy, Debug)]
pub enum TopoEvent {
    /// A switch dies.
    FailNode(NodeId),
    /// A link dies.
    FailLink(LinkId),
    /// A switch is repaired.
    RepairNode(NodeId),
    /// A link is repaired.
    RepairLink(LinkId),
}

/// Plain fat-tree with rerouting-based recovery.
pub struct FatTreeWorld {
    /// The topology (failure state lives in `ft.net`).
    pub ft: FatTree,
    /// Recovery policy.
    pub mode: RecoveryMode,
    /// Event applied at epoch `i`.
    pub events: Vec<TopoEvent>,
    failures_active: usize,
}

impl FatTreeWorld {
    /// A world over `ft` with the given recovery mode and epoch events.
    pub fn new(ft: FatTree, mode: RecoveryMode, events: Vec<TopoEvent>) -> FatTreeWorld {
        FatTreeWorld {
            ft,
            mode,
            events,
            failures_active: 0,
        }
    }

    fn apply(&mut self, ev: TopoEvent) {
        match ev {
            TopoEvent::FailNode(n) => {
                self.ft.net.set_node_up(n, false);
                self.failures_active += 1;
            }
            TopoEvent::FailLink(l) => {
                self.ft.net.set_link_up(l, false);
                self.failures_active += 1;
            }
            TopoEvent::RepairNode(n) => {
                self.ft.net.set_node_up(n, true);
                self.failures_active = self.failures_active.saturating_sub(1);
            }
            TopoEvent::RepairLink(l) => {
                self.ft.net.set_link_up(l, true);
                self.failures_active = self.failures_active.saturating_sub(1);
            }
        }
    }
}

impl Environment for FatTreeWorld {
    fn capacity(&self, l: LinkId) -> f64 {
        self.ft.net.link(l).capacity_bps
    }
    fn link_between(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
        self.ft.net.link_between(a, b)
    }
    fn route(&mut self, flow: &FlowKey) -> Option<Vec<NodeId>> {
        if self.failures_active == 0 {
            return Some(ecmp_path(&self.ft, flow));
        }
        match self.mode {
            RecoveryMode::None => {
                let p = ecmp_path(&self.ft, flow);
                self.ft.net.path_usable(&p).then_some(p)
            }
            RecoveryMode::GlobalHash | RecoveryMode::GlobalOptimal => {
                GlobalReroute::route(&self.ft, flow)
            }
        }
    }
    fn route_all(&mut self, flows: &[FlowKey]) -> Vec<Option<Vec<NodeId>>> {
        if self.failures_active > 0 && self.mode == RecoveryMode::GlobalOptimal {
            GlobalReroute::route_all(&self.ft, flows)
        } else {
            flows.iter().map(|f| self.route(f)).collect()
        }
    }
    fn on_epoch(&mut self, index: usize, _now: Time) {
        let ev = self.events[index];
        self.apply(ev);
    }
}

/// F10 AB fat-tree with local rerouting.
pub struct F10World {
    /// The topology (failure state lives in `f10.net`).
    pub f10: F10Topology,
    /// Event applied at epoch `i`.
    pub events: Vec<TopoEvent>,
    failures_active: usize,
}

impl F10World {
    /// A world over `f10` with the given epoch events.
    pub fn new(f10: F10Topology, events: Vec<TopoEvent>) -> F10World {
        F10World {
            f10,
            events,
            failures_active: 0,
        }
    }
}

impl Environment for F10World {
    fn capacity(&self, l: LinkId) -> f64 {
        self.f10.net.link(l).capacity_bps
    }
    fn link_between(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
        self.f10.net.link_between(a, b)
    }
    fn route(&mut self, flow: &FlowKey) -> Option<Vec<NodeId>> {
        if self.failures_active == 0 {
            return Some(ecmp_path_f10(&self.f10, flow));
        }
        F10Router::route(&self.f10, flow)
    }
    fn on_epoch(&mut self, index: usize, _now: Time) {
        match self.events[index] {
            TopoEvent::FailNode(n) => {
                self.f10.net.set_node_up(n, false);
                self.failures_active += 1;
            }
            TopoEvent::FailLink(l) => {
                self.f10.net.set_link_up(l, false);
                self.failures_active += 1;
            }
            TopoEvent::RepairNode(n) => {
                self.f10.net.set_node_up(n, true);
                self.failures_active = self.failures_active.saturating_sub(1);
            }
            TopoEvent::RepairLink(l) => {
                self.f10.net.set_link_up(l, true);
                self.failures_active = self.failures_active.saturating_sub(1);
            }
        }
    }
}

/// Failure injections for a ShareBackup world, phrased against physical
/// devices (the controller reacts at the following recovery epoch).
#[derive(Clone, Copy, Debug)]
pub enum SbEvent {
    /// A physical switch dies.
    NodeFail(PhysId),
    /// A link between two switch interfaces dies: ground truth is that
    /// `faulty.0`'s interface `faulty.1` broke; `other` is the far end.
    LinkFail {
        /// The actually-broken interface.
        faulty: (PhysId, usize),
        /// The innocent far end (also replaced, then exonerated).
        other: (PhysId, usize),
    },
    /// A host↔edge link dies. `switch_side` selects the ground truth: the
    /// edge switch's host-facing interface (replacement fixes it) or the
    /// host's NIC (the switch gets exonerated and the host trouble-shot,
    /// §4.2).
    HostLinkFail {
        /// The affected host.
        host: NodeId,
        /// Whether the switch-side interface is the broken one.
        switch_side: bool,
    },
    /// A keep-alive loss: the controller receives a failure report about a
    /// switch that is actually *healthy* (chaos). Ground truth is left
    /// untouched — only the report fires, and the controller counts it as
    /// spurious after evicting the innocent switch.
    SpuriousReport(PhysId),
    /// The controller reacts to everything injected since the last
    /// `Recover` (scheduled one recovery latency after the failure epoch).
    Recover,
    /// Complete due repairs.
    PollRepairs,
    /// A controller replica crashes (only meaningful for worlds carrying a
    /// [`FailoverPlane`]; a no-op otherwise). Crashing the primary opens a
    /// blackout during which submitted failures stay journaled and the
    /// data plane rides [`DegradedMode`].
    ControllerCrash(usize),
    /// A crashed controller replica comes back (plane worlds only).
    ControllerRestore(usize),
}

/// The ShareBackup system under its controller.
pub struct ShareBackupWorld {
    /// The controller (owns the network).
    pub controller: Controller,
    /// Event applied at epoch `i`.
    pub events: Vec<SbEvent>,
    pending: Vec<SbEvent>,
    /// Recoveries performed, for inspection by the harness.
    pub recoveries: Vec<Recovery>,
    /// Policy for flows whose static path crosses an unrecovered slot:
    /// stall (the paper's behavior, default) or fall back to global
    /// rerouting with per-flow accounting.
    pub degraded_mode: DegradedMode,
    /// Which flows ran degraded and for how long ([`DegradedMode::Reroute`]
    /// only). Call [`DegradedTracker::finalize`] with the simulation end
    /// time before reading totals.
    pub tracker: DegradedTracker,
    /// Optional replicated control plane. When present, failure reports
    /// travel through [`FailoverPlane::submit`] — the primary can crash
    /// mid-recovery and an elected successor re-drives the journaled work —
    /// instead of invoking the controller handlers directly. When `None`
    /// the world behaves exactly as before the control plane existed.
    pub failover: Option<FailoverPlane>,
    /// Recoveries completed through the plane, with report/completion
    /// timestamps (plane worlds only; direct-path recoveries land in
    /// [`ShareBackupWorld::recoveries`] without timing).
    pub failover_log: Vec<CompletedRecovery>,
    now: Time,
}

impl ShareBackupWorld {
    /// A world driven by `controller` with the given epoch events. The
    /// degraded mode defaults to [`DegradedMode::Stall`] — exactly the
    /// pre-chaos behavior.
    pub fn new(controller: Controller, events: Vec<SbEvent>) -> ShareBackupWorld {
        ShareBackupWorld {
            controller,
            events,
            pending: Vec::new(),
            recoveries: Vec::new(),
            degraded_mode: DegradedMode::Stall,
            tracker: DegradedTracker::new(),
            failover: None,
            failover_log: Vec::new(),
            now: Time::ZERO,
        }
    }

    /// Select the degraded-mode policy (builder style).
    pub fn with_degraded_mode(mut self, mode: DegradedMode) -> ShareBackupWorld {
        self.degraded_mode = mode;
        self
    }

    /// Route failure reports through a replicated control plane (builder
    /// style). See [`FailoverPlane`].
    pub fn with_failover(mut self, plane: FailoverPlane) -> ShareBackupWorld {
        self.failover = Some(plane);
        self
    }

    /// Poll the plane (if any) for journaled work that became driveable —
    /// the controller returned from a blackout, or a deferred retry came
    /// due — and collect completions. Cheap no-op when the journal is
    /// empty or no plane is attached.
    fn drive_failover(&mut self, now: Time) {
        if let Some(plane) = self.failover.as_mut() {
            plane.poll(&mut self.controller, now);
            for done in plane.take_completed() {
                self.recoveries.push(done.recovery.clone());
                self.failover_log.push(done);
            }
        }
    }

    /// The deterministic recovery latency of this deployment — scenario
    /// builders use it to place the `Recover` epoch.
    pub fn recovery_latency(&self) -> sharebackup_sim::Duration {
        self.controller
            .cfg
            .latency
            .total(crate::latency::RecoveryScheme::ShareBackup(
                self.controller.sb.cfg.tech,
            ))
    }

    fn sb(&self) -> &ShareBackup {
        &self.controller.sb
    }
}

impl Environment for ShareBackupWorld {
    fn capacity(&self, l: LinkId) -> f64 {
        self.sb().slots.net.link(l).capacity_bps
    }
    fn link_between(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
        self.sb().slots.net.link_between(a, b)
    }
    fn route(&mut self, flow: &FlowKey) -> Option<Vec<NodeId>> {
        // ShareBackup never reroutes: the static ECMP path, usable or not.
        // During the (sub-3ms) recovery window the path is down and the
        // flow stalls; after recovery the *same* path works again.
        let p = ecmp_path(&self.sb().slots, flow);
        if self.sb().slots.net.path_usable(&p) {
            self.tracker.mark_normal(flow.id, self.now);
            return Some(p);
        }
        match self.degraded_mode {
            // Stall until the slot heals (pre-chaos behavior).
            DegradedMode::Stall => None,
            // Graceful degradation: reroute exactly the affected flows
            // over the surviving topology, with explicit accounting.
            DegradedMode::Reroute => {
                let fallback = GlobalReroute::route(&self.controller.sb.slots, flow)?;
                if self.tracker.mark_degraded(flow.id, self.now) {
                    self.controller.stats.degraded_flows += 1;
                    self.controller
                        .tracer
                        .instant(self.now, "chaos", "flow-degraded");
                }
                Some(fallback)
            }
        }
    }
    fn on_advance(&mut self, now: Time) {
        // Keep the clock current so degraded spells opened from `route`
        // (which carries no timestamp) are stamped with the real instant,
        // not the last epoch's.
        self.now = now;
        // Journaled recoveries resume as soon as the engine's clock passes
        // the blackout end / retry deadline, not only at explicit epochs.
        self.drive_failover(now);
    }
    fn on_epoch(&mut self, index: usize, now: Time) {
        self.now = now;
        match self.events[index] {
            SbEvent::NodeFail(p) => {
                self.controller.sb.set_phys_healthy(p, false);
                self.pending.push(SbEvent::NodeFail(p));
            }
            SbEvent::LinkFail { faulty, other } => {
                self.controller.sb.set_iface_broken(faulty.0, faulty.1, true);
                self.pending.push(SbEvent::LinkFail { faulty, other });
            }
            SbEvent::HostLinkFail { host, switch_side } => {
                if switch_side {
                    // The host's edge slot occupant's down-port h breaks.
                    let (slot, h) = {
                        let net = &self.controller.sb.slots.net;
                        let l = net.incident(host)[0];
                        let edge_node = net.link(l).other(host);
                        let slot = self
                            .controller
                            .sb
                            .node_slot(edge_node)
                            // lint:allow(unwrap) — hosts attach to edge slots by construction
                            .expect("host connects to an edge slot");
                        (slot, net.node(host).index % (self.controller.sb.k() / 2))
                    };
                    let occ = self.controller.sb.occupant(slot);
                    self.controller.sb.set_iface_broken(occ, h, true);
                } else {
                    self.controller.sb.set_host_nic_broken(host, true);
                }
                self.pending.push(SbEvent::HostLinkFail { host, switch_side });
            }
            SbEvent::SpuriousReport(p) => {
                // No ground-truth change: the switch is fine, the report
                // isn't.
                self.pending.push(SbEvent::SpuriousReport(p));
            }
            SbEvent::Recover => {
                let pending = std::mem::take(&mut self.pending);
                if self.failover.is_some() {
                    // Control-plane path: reports enter the journal and
                    // complete when the (possibly crashed / lossy) plane
                    // gets them through.
                    for ev in pending {
                        let report = match ev {
                            SbEvent::NodeFail(p) | SbEvent::SpuriousReport(p) => {
                                FailureReport::Node(p)
                            }
                            SbEvent::LinkFail { faulty, other } => {
                                FailureReport::Link { faulty, other }
                            }
                            SbEvent::HostLinkFail { host, .. } => {
                                FailureReport::HostLink(host)
                            }
                            _ => continue,
                        };
                        // lint:allow(unwrap) — plane checked `is_some` above
                        let plane = self.failover.as_mut().expect("plane present");
                        plane.submit(&mut self.controller, report, now);
                    }
                    self.drive_failover(now);
                } else {
                    for ev in pending {
                        let r = match ev {
                            SbEvent::NodeFail(p) | SbEvent::SpuriousReport(p) => {
                                self.controller.handle_node_failure(p, now)
                            }
                            SbEvent::LinkFail { faulty, other } => {
                                self.controller.handle_link_failure(faulty, other, now)
                            }
                            SbEvent::HostLinkFail { host, .. } => {
                                self.controller.handle_host_link_failure(host, now)
                            }
                            SbEvent::Recover
                            | SbEvent::PollRepairs
                            | SbEvent::ControllerCrash(_)
                            | SbEvent::ControllerRestore(_) => continue,
                        };
                        self.recoveries.push(r);
                    }
                }
            }
            SbEvent::PollRepairs => {
                self.controller.poll_repairs(now);
                self.drive_failover(now);
            }
            SbEvent::ControllerCrash(id) => {
                if let Some(plane) = self.failover.as_mut() {
                    // Out-of-range ids are a schedule bug, not a data-plane
                    // event — surface them loudly.
                    plane
                        .crash_replica(&mut self.controller, id, now)
                        // lint:allow(unwrap) — scenario schedules name real replicas
                        .expect("crash event names a real replica");
                }
            }
            SbEvent::ControllerRestore(id) => {
                if let Some(plane) = self.failover.as_mut() {
                    plane
                        .restore_replica(&mut self.controller, id, now)
                        // lint:allow(unwrap) — scenario schedules name real replicas
                        .expect("restore event names a real replica");
                }
                self.drive_failover(now);
            }
        }
    }
}

/// Map a probe-net link failure onto the physical event the controller
/// sees, using the deterministic fat-tree wiring (host link m on edge
/// iface m; edge j ↔ agg (j+m)%k/2 on edge iface k/2+m / agg iface m;
/// agg j ↔ core j·k/2+u on agg iface k/2+u / core iface pod). The "up"
/// side's interface is the faulty one, matching the Fig. 1 mapping.
///
/// `net` is a plain [`FatTree`] probe network with the same `k` as `sb`
/// (chaos schedules are sampled against a probe topology because the
/// injector speaks [`NodeId`]/[`LinkId`], not slots).
pub fn link_sb_event(sb: &ShareBackup, net: &Network, l: LinkId) -> SbEvent {
    let link = net.link(l);
    let half = sb.k() / 2;
    let (a, b) = (link.a, link.b);
    let (ka, kb) = (net.node(a).kind, net.node(b).kind);
    // Order the endpoints lower-layer first.
    let rank = |k: NodeKind| match k {
        NodeKind::Host => 0,
        NodeKind::Edge => 1,
        NodeKind::Agg => 2,
        NodeKind::Core => 3,
    };
    let (lo, hi) = if rank(ka) <= rank(kb) { (a, b) } else { (b, a) };
    let (nlo, nhi) = (net.node(lo), net.node(hi));
    match (nlo.kind, nhi.kind) {
        (NodeKind::Host, NodeKind::Edge) => SbEvent::HostLinkFail {
            host: lo,
            switch_side: true,
        },
        (NodeKind::Edge, NodeKind::Agg) => {
            // lint:allow(unwrap) — every edge switch has a pod by construction
            let pod = nlo.pod.expect("edge has a pod");
            let (j, agg) = (nlo.index, nhi.index);
            let m = (agg + half - j) % half;
            SbEvent::LinkFail {
                faulty: (sb.occupant(GroupId::edge(pod).slot(j)), half + m),
                other: (sb.occupant(GroupId::agg(pod).slot(agg)), m),
            }
        }
        (NodeKind::Agg, NodeKind::Core) => {
            // lint:allow(unwrap) — every agg switch has a pod by construction
            let pod = nlo.pod.expect("agg has a pod");
            let (j, core) = (nlo.index, nhi.index);
            let u = core % half;
            SbEvent::LinkFail {
                faulty: (sb.occupant(GroupId::agg(pod).slot(j)), half + u),
                other: (sb.occupant(GroupId::core(u).slot(j)), pod),
            }
        }
        other => unreachable!("no fat-tree link between {other:?}"),
    }
}

/// Translate an injector-produced chaos schedule (against a plain fat-tree
/// probe network) into the physical [`SbEvent`]s the controller sees.
/// Events are phrased against the *initial* occupancy — later events can
/// therefore name switches that have since been benched or repaired (a
/// stale report), which the controller must tolerate; that is part of the
/// chaos surface. Node failures landing on non-slot nodes (hosts) are
/// dropped.
pub fn map_chaos_schedule(
    sb: &ShareBackup,
    net: &Network,
    events: &[FailureEvent],
) -> Vec<(Time, SbEvent)> {
    let mut out: Vec<(Time, SbEvent)> = Vec::with_capacity(events.len());
    for ev in events {
        let sb_ev = match ev.kind {
            FailureKind::Node(node) => {
                let Some(slot) = sb.node_slot(node) else {
                    continue;
                };
                SbEvent::NodeFail(sb.occupant(slot))
            }
            FailureKind::Link(l) => link_sb_event(sb, net, l),
        };
        out.push((ev.at, sb_ev));
    }
    out
}

/// Build the matched `(events, epoch_times)` pair for a set of ShareBackup
/// failure injections: each failure epoch is followed by a `Recover` epoch
/// one recovery latency later, and by `PollRepairs` epochs when the
/// switch/host repair timers come due (so convicted switches rejoin the
/// pool and trouble-shot hosts come back within the simulation).
pub fn sharebackup_timeline(
    world: &ShareBackupWorld,
    failures: &[(Time, SbEvent)],
) -> (Vec<SbEvent>, Vec<Time>) {
    let lat = world.recovery_latency();
    let cfg = &world.controller.cfg;
    let mut pairs: Vec<(Time, SbEvent)> = Vec::with_capacity(failures.len() * 4);
    let eps = Duration::from_millis(1);
    for &(t, ev) in failures {
        pairs.push((t, ev));
        match ev {
            // Control-plane events recover nothing themselves; schedule a
            // poll for just after the plane becomes available again so
            // journaled recoveries resume even in flowless runs (where no
            // `on_advance` ticks past the blackout).
            SbEvent::ControllerCrash(_) => {
                if let Some(plane) = &world.failover {
                    pairs.push((t + plane.cfg.blackout() + eps, SbEvent::PollRepairs));
                }
                continue;
            }
            SbEvent::ControllerRestore(_) => {
                if let Some(plane) = &world.failover {
                    pairs.push((t + plane.cfg.election_time + eps, SbEvent::PollRepairs));
                }
                continue;
            }
            _ => {}
        }
        pairs.push((t + lat, SbEvent::Recover));
        // Repairs are scheduled relative to the Recover instant; poll just
        // after each possible due time.
        pairs.push((t + lat + cfg.switch_repair_time + eps, SbEvent::PollRepairs));
        pairs.push((t + lat + cfg.host_repair_time + eps, SbEvent::PollRepairs));
    }
    pairs.sort_by_key(|&(t, _)| t);
    let times = pairs.iter().map(|&(t, _)| t).collect();
    let events = pairs.into_iter().map(|(_, e)| e).collect();
    (events, times)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::ControllerConfig;
    use sharebackup_flowsim::{FlowSim, FlowSpec};
    use sharebackup_topo::{FatTreeConfig, GroupId, HostAddr, ShareBackupConfig};

    fn flows_ft(ft: &FatTree, n: u64, bytes: u64) -> Vec<FlowSpec> {
        (0..n)
            .map(|id| FlowSpec {
                key: FlowKey::new(
                    ft.host(HostAddr { pod: 0, edge: 0, host: (id % 2) as usize }),
                    ft.host(HostAddr { pod: 2, edge: 1, host: (id % 2) as usize }),
                    id,
                ),
                bytes,
                arrival: Time::ZERO,
            })
            .collect()
    }

    #[test]
    fn fat_tree_world_baseline_and_failure() {
        // Healthy run.
        let ft = FatTree::build(FatTreeConfig::new(4));
        let flows = flows_ft(&ft, 4, 125_000_000); // 1 Gbit each
        let mut world = FatTreeWorld::new(ft, RecoveryMode::GlobalOptimal, vec![]);
        let base = FlowSim::new().run(&mut world, &flows, &[]);
        assert!(base.flows.iter().all(|f| f.completed.is_some()));

        // Same run with a core failing at t=0.01s: flows finish but later.
        let ft = FatTree::build(FatTreeConfig::new(4));
        let core = ft.core(0);
        let mut world = FatTreeWorld::new(
            ft,
            RecoveryMode::GlobalOptimal,
            vec![TopoEvent::FailNode(core)],
        );
        let out = FlowSim::new().run(&mut world, &flows, &[Time::from_millis(10)]);
        assert!(out.flows.iter().all(|f| f.completed.is_some()));
        let t_base = base.flows.iter().filter_map(|f| f.completed).max().expect("flows ran");
        let t_fail = out.flows.iter().filter_map(|f| f.completed).max().expect("flows ran");
        // Global optimal rerouting *rebalances all flows* at the failure
        // epoch, so it can even beat the hash-ECMP baseline despite the
        // lost capacity; only gross speedups would indicate a bug.
        assert!(
            t_fail.as_secs_f64() >= t_base.as_secs_f64() * 0.5,
            "implausible speedup under failure: {t_fail:?} vs {t_base:?}"
        );
    }

    #[test]
    fn f10_world_routes_through_detours() {
        let f10 = F10Topology::build(FatTreeConfig::new(4));
        let src = f10.host(HostAddr { pod: 0, edge: 0, host: 0 });
        let dst = f10.host(HostAddr { pod: 1, edge: 1, host: 0 });
        let flows: Vec<FlowSpec> = (0..2)
            .map(|id| FlowSpec {
                key: FlowKey::new(src, dst, id),
                bytes: 1_250_000,
                arrival: Time::ZERO,
            })
            .collect();
        // Fail one core early.
        let core = f10.core(0);
        let mut world = F10World::new(f10, vec![TopoEvent::FailNode(core)]);
        let out = FlowSim::new().run(&mut world, &flows, &[Time::from_millis(1)]);
        assert!(out.flows.iter().all(|f| f.completed.is_some()));
    }

    #[test]
    fn sharebackup_world_restores_original_path() {
        let sb = ShareBackup::build(ShareBackupConfig::new(4, 1));
        let controller = Controller::new(sb, ControllerConfig::default());
        let mut world = ShareBackupWorld::new(controller, vec![]);

        let src = world.sb().slots.host(HostAddr { pod: 0, edge: 0, host: 0 });
        let dst = world.sb().slots.host(HostAddr { pod: 2, edge: 1, host: 0 });
        let flow = FlowKey::new(src, dst, 7);
        let original = world.route(&flow).expect("healthy route");
        // Fail the aggregation slot on the flow's path.
        let agg_node = original[2];
        let slot = world.sb().node_slot(agg_node).expect("agg slot");
        let victim = world.sb().occupant(slot);

        let failures = vec![(Time::from_millis(10), SbEvent::NodeFail(victim))];
        let (events, times) = sharebackup_timeline(&world, &failures);
        world.events = events;

        let flows = vec![FlowSpec {
            key: flow,
            bytes: 125_000_000,
            arrival: Time::ZERO,
        }];
        let out = FlowSim::new().run(&mut world, &flows, &times);
        assert!(out.flows[0].completed.is_some());
        // The flow stalled briefly but came back on the SAME path.
        assert!(out.flows[0].ever_stalled);
        let after = world.route(&flow).expect("route after recovery");
        assert_eq!(after, original, "no path change after recovery");
        assert_eq!(world.recoveries.len(), 1);
        assert!(world.recoveries[0].fully_recovered());
        // The stall cost ~2ms on a 100ms transfer: completion within 5% of
        // the no-failure time (0.1s at 10G... 1Gbit at 10G = 0.1s).
        let t = out.flows[0].completed.expect("done");
        assert!(t < Time::from_millis(110), "{t:?}");
    }

    #[test]
    fn sharebackup_link_failure_timeline() {
        let sb = ShareBackup::build(ShareBackupConfig::new(6, 1));
        let controller = Controller::new(sb, ControllerConfig::default());
        let mut world = ShareBackupWorld::new(controller, vec![]);
        let edge_phys = world.sb().occupant(GroupId::edge(0).slot(0));
        let agg_phys = world.sb().occupant(GroupId::agg(0).slot(0));
        // Edge(0,0) up-port 0 ↔ agg(0,0) down-port 0 (m=0, k=6 → iface 3).
        let failures = vec![(
            Time::from_millis(5),
            SbEvent::LinkFail {
                faulty: (edge_phys, 3),
                other: (agg_phys, 0),
            },
        )];
        let (events, times) = sharebackup_timeline(&world, &failures);
        world.events = events;
        let src = world.sb().slots.host(HostAddr { pod: 0, edge: 0, host: 0 });
        let dst = world.sb().slots.host(HostAddr { pod: 1, edge: 0, host: 0 });
        let flows: Vec<FlowSpec> = (0..4)
            .map(|id| FlowSpec {
                key: FlowKey::new(src, dst, id),
                bytes: 12_500_000,
                arrival: Time::ZERO,
            })
            .collect();
        let out = FlowSim::new().run(&mut world, &flows, &times);
        assert!(out.flows.iter().all(|f| f.completed.is_some()));
        // Diagnosis exonerated the agg side, convicted the edge side.
        assert_eq!(world.controller.stats.exonerations, 1);
        assert_eq!(world.controller.stats.convictions, 1);
    }

    #[test]
    fn timeline_builder_interleaves_and_sorts() {
        let sb = ShareBackup::build(ShareBackupConfig::new(4, 1));
        let world = ShareBackupWorld::new(
            Controller::new(sb, ControllerConfig::default()),
            vec![],
        );
        let p = world.sb().occupant(GroupId::edge(0).slot(0));
        let q = world.sb().occupant(GroupId::edge(1).slot(0));
        let failures = vec![
            (Time::from_secs(2), SbEvent::NodeFail(q)),
            (Time::from_secs(1), SbEvent::NodeFail(p)),
        ];
        let (events, times) = sharebackup_timeline(&world, &failures);
        // Per failure: inject + Recover + 2 PollRepairs.
        assert_eq!(events.len(), 8);
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert!(matches!(events[0], SbEvent::NodeFail(_)));
        assert!(matches!(events[1], SbEvent::Recover));
        let lat = world.recovery_latency();
        assert_eq!(times[1], Time::from_secs(1) + lat);
        let polls = events
            .iter()
            .filter(|e| matches!(e, SbEvent::PollRepairs))
            .count();
        assert_eq!(polls, 4);
    }

    #[test]
    fn degraded_reroute_restores_connectivity_where_stall_does_not() {
        use sharebackup_routing::DegradedMode;
        use sharebackup_sim::Duration;

        // Exhaust agg pod-0's pool (n=1): first failure eats the spare,
        // second leaves its slot unrecovered.
        let build = || {
            let sb = ShareBackup::build(ShareBackupConfig::new(4, 1));
            let controller = Controller::new(sb, ControllerConfig::default());
            ShareBackupWorld::new(controller, vec![])
        };
        let exhaust = |world: &mut ShareBackupWorld| {
            let g = GroupId::agg(0);
            let v0 = world.controller.sb.occupant(g.slot(0));
            world.controller.sb.set_phys_healthy(v0, false);
            assert!(world
                .controller
                .handle_node_failure(v0, Time::from_millis(10))
                .fully_recovered());
            let v1 = world.controller.sb.occupant(g.slot(1));
            world.controller.sb.set_phys_healthy(v1, false);
            let r = world
                .controller
                .handle_node_failure(v1, Time::from_millis(20));
            assert!(!r.fully_recovered(), "pool exhausted");
            g.slot(1)
        };

        // A flow whose static ECMP path crosses the dead agg slot.
        let pick_flow = |world: &ShareBackupWorld, dead: sharebackup_topo::SlotId| {
            let src = world.sb().slots.host(HostAddr { pod: 0, edge: 0, host: 0 });
            let dst = world.sb().slots.host(HostAddr { pod: 2, edge: 1, host: 0 });
            let dead_node = world.sb().slot_node(dead);
            (0..64)
                .map(|id| FlowKey::new(src, dst, id))
                .find(|f| ecmp_path(&world.sb().slots, f).contains(&dead_node))
                .expect("some flow hashes through the dead agg")
        };

        // Stall mode: the affected flow gets no route.
        let mut stall = build();
        let dead = exhaust(&mut stall);
        let flow = pick_flow(&stall, dead);
        assert_eq!(stall.route(&flow), None, "stalled (pre-chaos behavior)");
        assert_eq!(stall.controller.stats.degraded_flows, 0);

        // Reroute mode: the same flow is routed around the dead slot and
        // the degradation is accounted.
        let mut reroute = build().with_degraded_mode(DegradedMode::Reroute);
        let dead = exhaust(&mut reroute);
        let flow = pick_flow(&reroute, dead);
        reroute.now = Time::from_millis(25);
        let p = reroute.route(&flow).expect("degraded fallback route");
        let dead_node = reroute.sb().slot_node(dead);
        assert!(!p.contains(&dead_node), "fallback avoids the dead slot");
        assert!(reroute.sb().slots.net.path_usable(&p));
        assert_eq!(reroute.controller.stats.degraded_flows, 1);
        assert!(reroute.tracker.contains(flow.id));
        // Routing again does not double-count the flow.
        assert!(reroute.route(&flow).is_some());
        assert_eq!(reroute.controller.stats.degraded_flows, 1);

        // After the victims' repairs, the flow returns to its static path
        // and the degraded spell closes.
        let due = reroute.controller.next_repair_due().expect("repairs pending");
        reroute.controller.poll_repairs(due + Duration::from_secs(1));
        reroute.now = due + Duration::from_secs(1);
        let back = reroute.route(&flow).expect("healed");
        assert_eq!(back, ecmp_path(&reroute.sb().slots, &flow));
        reroute.tracker.finalize(reroute.now);
        assert!(reroute.tracker.total_degraded_time() > Duration::ZERO);
    }

    #[test]
    fn no_reroute_mode_stalls_until_repair() {
        let ft = FatTree::build(FatTreeConfig::new(4));
        let src = ft.host(HostAddr { pod: 0, edge: 0, host: 0 });
        let dst = ft.host(HostAddr { pod: 1, edge: 0, host: 0 });
        let flow = FlowKey::new(src, dst, 0);
        let path = ecmp_path(&ft, &flow);
        let core = path[3];
        let flows = vec![FlowSpec {
            key: flow,
            bytes: 125_000_000, // 0.1 s at 10G
            arrival: Time::ZERO,
        }];
        let mut world = FatTreeWorld::new(
            ft,
            RecoveryMode::None,
            vec![TopoEvent::FailNode(core), TopoEvent::RepairNode(core)],
        );
        let out = FlowSim::new().run(
            &mut world,
            &flows,
            &[Time::from_millis(10), Time::from_secs(60)],
        );
        // Stalled from 10ms to 60s, then finishes the remainder.
        let t = out.flows[0].completed.expect("finishes after repair");
        assert!(t > Time::from_secs(60));
        assert!(out.flows[0].ever_stalled);
    }

    #[test]
    fn inert_failover_plane_leaves_the_scenario_unchanged() {
        // The control plane is opt-in: a healthy, chaos-free plane must
        // reproduce the direct-dispatch world exactly — same recoveries,
        // same flow completion instants.
        use crate::failover::{FailoverConfig, FailoverPlane};

        let run = |with_plane: bool| {
            let sb = ShareBackup::build(ShareBackupConfig::new(4, 1));
            let controller = Controller::new(sb, ControllerConfig::default());
            let mut world = ShareBackupWorld::new(controller, vec![]);
            if with_plane {
                world = world.with_failover(FailoverPlane::new(FailoverConfig::default()));
            }
            let src = world.sb().slots.host(HostAddr { pod: 0, edge: 0, host: 0 });
            let dst = world.sb().slots.host(HostAddr { pod: 2, edge: 1, host: 0 });
            let flow = FlowKey::new(src, dst, 7);
            let original = world.route(&flow).expect("healthy route");
            let victim = world
                .sb()
                .occupant(world.sb().node_slot(original[2]).expect("agg slot"));
            let failures = vec![(Time::from_millis(10), SbEvent::NodeFail(victim))];
            let (events, times) = sharebackup_timeline(&world, &failures);
            world.events = events;
            let flows = vec![FlowSpec {
                key: flow,
                bytes: 125_000_000,
                arrival: Time::ZERO,
            }];
            let out = FlowSim::new().run(&mut world, &flows, &times);
            (out.flows[0].completed, world.recoveries.clone())
        };

        let (direct_done, direct_rec) = run(false);
        let (plane_done, plane_rec) = run(true);
        assert_eq!(direct_done, plane_done, "completion instants must match");
        assert_eq!(direct_rec.len(), plane_rec.len());
        for (a, b) in direct_rec.iter().zip(&plane_rec) {
            assert_eq!(a.latency, b.latency, "inert plane adds no latency");
            assert_eq!(a.fully_recovered(), b.fully_recovered());
        }
    }

    #[test]
    fn controller_crash_blacks_out_recovery_until_the_successor_takes_over() {
        // The primary crashes just before the failure report arrives: the
        // report stays journaled through detection + election, the flow
        // stalls for the whole blackout, and the elected successor
        // completes the recovery on the original path.
        use crate::failover::{FailoverConfig, FailoverPlane};

        let sb = ShareBackup::build(ShareBackupConfig::new(4, 1));
        let controller = Controller::new(sb, ControllerConfig::default());
        let plane = FailoverPlane::new(FailoverConfig::default());
        let blackout = plane.cfg.blackout();
        let mut world = ShareBackupWorld::new(controller, vec![]).with_failover(plane);

        let src = world.sb().slots.host(HostAddr { pod: 0, edge: 0, host: 0 });
        let dst = world.sb().slots.host(HostAddr { pod: 2, edge: 1, host: 0 });
        let flow = FlowKey::new(src, dst, 7);
        let original = world.route(&flow).expect("healthy route");
        let victim = world
            .sb()
            .occupant(world.sb().node_slot(original[2]).expect("agg slot"));

        let crash_at = Time::from_millis(11);
        let failures = vec![
            (Time::from_millis(10), SbEvent::NodeFail(victim)),
            (crash_at, SbEvent::ControllerCrash(0)),
        ];
        let (events, times) = sharebackup_timeline(&world, &failures);
        world.events = events;

        let flows = vec![FlowSpec {
            key: flow,
            bytes: 125_000_000, // 0.1 s at 10G
            arrival: Time::ZERO,
        }];
        let out = FlowSim::new().run(&mut world, &flows, &times);

        let t = out.flows[0].completed.expect("finishes after failover");
        assert!(out.flows[0].ever_stalled, "stalled through the blackout");
        // Stall spans the blackout: the transfer needs 100 ms of service
        // plus the ~53 ms outage minus the 10 ms served before the crash.
        assert!(t > Time::ZERO + blackout, "{t:?}");

        assert_eq!(world.failover_log.len(), 1, "recovery resumed exactly once");
        let done = &world.failover_log[0];
        assert!(done.recovery.fully_recovered());
        assert!(
            done.completed_at >= crash_at + blackout,
            "completion {} can't precede the blackout end {}",
            done.completed_at,
            crash_at + blackout
        );
        assert_eq!(world.controller.stats.controller_crashes, 1);
        assert_eq!(world.controller.stats.elections, 1);
        let after = world.route(&flow).expect("route after recovery");
        assert_eq!(after, original, "recovery restores the original path");
    }
}
