//! Event-driven failure detection (paper §4.1): keep-alives and neighbor
//! probes on the discrete-event engine.
//!
//! Two detectors exist in ShareBackup, both adopted from F10's rapid
//! failure detection:
//!
//! * **Node failures** — every switch sends keep-alives to the controller
//!   on a fixed interval; the controller declares a node dead after a run
//!   of missed keep-alives.
//! * **Link failures** — neighboring switches (and hosts) probe each other
//!   on the same interval, testing interface, data link, and forwarding
//!   engine; a switch that misses probes from a neighbor reports the link
//!   to the controller.
//!
//! This module simulates the keep-alive machinery precisely — staggered
//! probe phases, death at an arbitrary instant, a scan loop at the
//! controller — and yields the detection-latency distribution that the
//! closed-form [`crate::latency::RecoveryLatencyModel`] summarizes with its
//! worst-case `probe_interval` term.

use sharebackup_sim::{Duration, Engine, SimRng, Time, World};

/// Parameters of the keep-alive detector.
#[derive(Clone, Copy, Debug)]
pub struct DetectionConfig {
    /// Keep-alive / probe period.
    pub probe_interval: Duration,
    /// Consecutive misses before a device is declared dead.
    pub miss_threshold: u32,
}

impl Default for DetectionConfig {
    fn default() -> Self {
        DetectionConfig {
            probe_interval: Duration::from_millis(1),
            miss_threshold: 1,
        }
    }
}

impl DetectionConfig {
    /// The silence the controller must observe before declaring a device
    /// dead: `miss_threshold` full keep-alive periods.
    pub fn silence_limit(&self) -> Duration {
        self.probe_interval * self.miss_threshold as u64
    }

    /// The scan-alignment term of the worst-case detection latency: the
    /// controller's scan loop runs on the same period as the keep-alives,
    /// so after the silence limit is exceeded, up to one further period
    /// can pass before the next scan observes it.
    pub fn scan_alignment(&self) -> Duration {
        self.probe_interval
    }

    /// The worst-case detection latency: the device dies right after a
    /// keep-alive, the controller needs [`DetectionConfig::silence_limit`]
    /// of silence, **plus** its own [`DetectionConfig::scan_alignment`] —
    /// the scan that finally observes the over-limit silence can trail it
    /// by up to one full period.
    ///
    /// The bound is tight: with the keep-alive and scan phases equal and
    /// death exactly at a keep-alive instant, the simulated latency equals
    /// this value (see the `worst_case_bound_is_tight_and_alignment_term_is_load_bearing`
    /// test, which also proves dropping the alignment term makes the bound
    /// wrong).
    pub fn worst_case(&self) -> Duration {
        self.silence_limit() + self.scan_alignment()
    }
}

enum Ev {
    /// The monitored switch emits a keep-alive (if still alive).
    KeepAlive,
    /// The switch dies.
    Die,
    /// The controller's scan tick.
    Scan,
}

struct DetectorWorld {
    cfg: DetectionConfig,
    last_seen: Time,
    alive: bool,
    died_at: Option<Time>,
    detected_at: Option<Time>,
}

impl World<Ev> for DetectorWorld {
    fn handle(&mut self, engine: &mut Engine<Ev>, now: Time, ev: Ev) {
        match ev {
            Ev::KeepAlive => {
                if self.alive {
                    self.last_seen = now;
                    engine.schedule_in(self.cfg.probe_interval, Ev::KeepAlive);
                }
            }
            Ev::Die => {
                self.alive = false;
                self.died_at = Some(now);
            }
            Ev::Scan => {
                if self.detected_at.is_none() {
                    let silence = now.saturating_since(self.last_seen);
                    let limit = self.cfg.silence_limit();
                    if silence > limit {
                        self.detected_at = Some(now);
                        return; // stop scanning
                    }
                    engine.schedule_in(self.cfg.probe_interval, Ev::Scan);
                }
            }
        }
    }
}

/// Simulate one node-failure detection: the switch keep-alives with phase
/// `probe_phase` ∈ [0, interval), the controller scans with phase
/// `scan_phase`, and the switch dies at `die_at`. Returns the latency from
/// death to the controller's declaration.
pub fn simulate_detection(
    cfg: DetectionConfig,
    probe_phase: Duration,
    scan_phase: Duration,
    die_at: Time,
) -> Duration {
    assert!(probe_phase < cfg.probe_interval, "phase within one period");
    assert!(scan_phase < cfg.probe_interval, "phase within one period");
    let mut engine: Engine<Ev> = Engine::new();
    engine.schedule(Time::ZERO + probe_phase, Ev::KeepAlive);
    engine.schedule(Time::ZERO + scan_phase, Ev::Scan);
    engine.schedule(die_at, Ev::Die);
    let mut world = DetectorWorld {
        cfg,
        last_seen: Time::ZERO,
        alive: true,
        died_at: None,
        detected_at: None,
    };
    engine.run(&mut world);
    // lint:allow(unwrap) — the engine runs both scheduled events before returning
    let died = world.died_at.expect("death event ran");
    // lint:allow(unwrap) — the engine runs both scheduled events before returning
    let detected = world.detected_at.expect("detector always fires");
    detected.since(died)
}

/// The detection-latency distribution over `samples` random probe/scan
/// phases and death instants. Returns latencies in seconds.
pub fn detection_latency_samples(
    cfg: DetectionConfig,
    rng: &mut SimRng,
    samples: usize,
) -> Vec<f64> {
    (0..samples)
        .map(|_| {
            let p = cfg.probe_interval.as_secs_f64();
            let probe_phase = Duration::from_secs_f64(rng.f64() * p * 0.999);
            let scan_phase = Duration::from_secs_f64(rng.f64() * p * 0.999);
            let die_at = Time::from_secs_f64(rng.f64() * 10.0 * p + p);
            simulate_detection(cfg, probe_phase, scan_phase, die_at).as_secs_f64()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharebackup_sim::Summary;

    #[test]
    fn detection_is_bounded_by_worst_case() {
        let cfg = DetectionConfig::default();
        let mut rng = SimRng::seed_from_u64(11);
        let samples = detection_latency_samples(cfg, &mut rng, 500);
        let worst = cfg.worst_case().as_secs_f64();
        for &s in &samples {
            assert!(s > 0.0);
            assert!(s <= worst + 1e-9, "sample {s} beyond worst case {worst}");
        }
    }

    #[test]
    fn mean_detection_is_about_one_interval() {
        // With threshold 1 the latency is T + v − u for independent uniform
        // phases u, v ∈ (0, T): mean exactly one period, support (0, 2T).
        let cfg = DetectionConfig::default();
        let mut rng = SimRng::seed_from_u64(12);
        let samples = detection_latency_samples(cfg, &mut rng, 2000);
        let s = Summary::of(&samples).expect("nonempty");
        let period = cfg.probe_interval.as_secs_f64();
        assert!(
            (s.mean - period).abs() < 0.1 * period,
            "mean {} vs period {period}",
            s.mean
        );
        assert!(s.max < 2.0 * period);
        assert!(s.min > 0.0);
    }

    #[test]
    fn higher_threshold_slows_detection() {
        let fast = DetectionConfig::default();
        let slow = DetectionConfig {
            miss_threshold: 3,
            ..fast
        };
        let mut rng = SimRng::seed_from_u64(13);
        let f = detection_latency_samples(fast, &mut rng, 300);
        let mut rng = SimRng::seed_from_u64(13);
        let s = detection_latency_samples(slow, &mut rng, 300);
        let fm: f64 = f.iter().sum::<f64>() / f.len() as f64;
        let sm: f64 = s.iter().sum::<f64>() / s.len() as f64;
        assert!(sm > fm * 2.0, "threshold 3 must be much slower: {sm} vs {fm}");
    }

    #[test]
    fn worst_case_bound_is_tight_and_alignment_term_is_load_bearing() {
        // Tightness: equal keep-alive/scan phases, death one tick after a
        // keep-alive. The scan landing exactly at last_seen + mT observes
        // silence of exactly mT — not over the limit — so declaration
        // waits one further full scan period: the latency reaches
        // silence_limit + scan_alignment − 1 tick, i.e. the worst-case
        // bound is approached to within the clock resolution.
        let tick = Duration::from_nanos(1);
        for miss_threshold in [1u32, 2, 3] {
            let cfg = DetectionConfig {
                miss_threshold,
                ..DetectionConfig::default()
            };
            let lat = simulate_detection(
                cfg,
                Duration::ZERO,
                Duration::ZERO,
                // Keep-alive instants are 0, 1, 2, ... ms (phase 0, T=1ms).
                Time::from_millis(2) + tick,
            );
            assert_eq!(
                lat,
                cfg.worst_case() - tick,
                "bound attained to within one tick at m={miss_threshold}"
            );
            // Load-bearing: a "simplified" bound without the alignment
            // term is violated by this very schedule.
            assert!(lat > cfg.silence_limit(), "silence limit alone is too small");
        }
    }

    #[test]
    fn deterministic_case_pins_arithmetic() {
        // Keep-alives at 0,1,2,... ms; scan at 0.5,1.5,... ms; death at
        // 2.2 ms. Last keep-alive at 2 ms. Scans: 2.5 (silence 0.5 <= 1),
        // 3.5 (silence 1.5 > 1) → detected at 3.5 ms; latency 1.3 ms.
        let cfg = DetectionConfig::default();
        let lat = simulate_detection(
            cfg,
            Duration::ZERO,
            Duration::from_micros(500),
            Time::from_micros(2200),
        );
        assert_eq!(lat, Duration::from_micros(1300));
    }
}
