//! The §5.3 recovery-latency model.
//!
//! All compared schemes share the same failure-*detection* cost: a probing
//! interval (F10's rapid failure detector, which ShareBackup adopts).
//! They differ in what happens next:
//!
//! * **F10 / Aspen local rerouting** — redirect packets to a different NIC
//!   interface; rerouting requires at least one forwarding-rule change,
//!   ~1 ms with SDN (He et al., SOSR'15).
//! * **Fat-tree global rerouting** — failure announcements propagate
//!   multiple hops and rules change at multiple upstream switches.
//! * **ShareBackup** — switch/host→controller notification and
//!   controller→circuit-switch request (both sub-ms on always-on channels;
//!   the paper suggests a kernel-module controller), plus the circuit reset
//!   itself: 70 ns (crosspoint) or 40 µs (2D MEMS). No forwarding rules
//!   change anywhere — tables are preloaded (§4.3).

use sharebackup_sim::Duration;
use sharebackup_topo::CircuitTech;

/// Which recovery scheme's latency to model.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RecoveryScheme {
    /// ShareBackup with the given circuit technology.
    ShareBackup(CircuitTech),
    /// F10/Aspen-style local rerouting (one local rule change).
    LocalReroute,
    /// Fat-tree global rerouting (multi-hop propagation + several rule
    /// changes).
    GlobalReroute {
        /// Switches that must update forwarding state.
        switches_updated: usize,
        /// Hops the failure announcement propagates.
        propagation_hops: usize,
    },
}

/// Parameters of the latency model, with the paper's cited constants as
/// defaults.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryLatencyModel {
    /// Failure-detector probing interval (same for every scheme, §5.3).
    pub probe_interval: Duration,
    /// One-way switch↔controller or controller↔circuit-switch message time
    /// on the always-on control channels ("sub-ms": 100 µs default).
    pub control_message: Duration,
    /// Controller processing time per failure (kernel-module class: 50 µs).
    pub controller_processing: Duration,
    /// SDN forwarding-rule modification time (~1 ms, He et al.).
    pub rule_install: Duration,
    /// Per-hop propagation of failure announcements (100 µs).
    pub propagation_per_hop: Duration,
}

impl Default for RecoveryLatencyModel {
    fn default() -> Self {
        RecoveryLatencyModel {
            probe_interval: Duration::from_millis(1),
            control_message: Duration::from_micros(100),
            controller_processing: Duration::from_micros(50),
            rule_install: Duration::from_millis(1),
            propagation_per_hop: Duration::from_micros(100),
        }
    }
}

impl RecoveryLatencyModel {
    /// Expected detection delay: the probing interval (worst case — a probe
    /// was just answered when the device died).
    pub fn detection(&self) -> Duration {
        self.probe_interval
    }

    /// Post-detection repair delay of a scheme.
    pub fn repair(&self, scheme: RecoveryScheme) -> Duration {
        match scheme {
            RecoveryScheme::ShareBackup(tech) => {
                // switch→controller + processing + controller→circuit switch
                // + circuit reset. Circuit switches of a group reconfigure in
                // parallel, so one reset delay is charged.
                self.control_message
                    + self.controller_processing
                    + self.control_message
                    + tech.reconfiguration_delay()
            }
            RecoveryScheme::LocalReroute => self.rule_install,
            RecoveryScheme::GlobalReroute {
                switches_updated,
                propagation_hops,
            } => {
                self.propagation_per_hop * propagation_hops as u64
                    + self.rule_install * switches_updated.max(1) as u64
            }
        }
    }

    /// Total recovery latency: detection + repair.
    pub fn total(&self, scheme: RecoveryScheme) -> Duration {
        self.detection() + self.repair(scheme)
    }

    /// One wasted circuit-reconfiguration round: command message out,
    /// circuit reset, failure report back. Charged when a backup turns out
    /// dead on arrival (the reconfiguration itself completed before the
    /// keep-alive silence exposed the backup) or when a reconfiguration
    /// request times out.
    pub fn reconfig_round(&self, tech: CircuitTech) -> Duration {
        self.control_message + tech.reconfiguration_delay() + self.control_message
    }

    /// Deterministic backoff before reconfiguration retry `attempt`
    /// (1-based): doubling from one control-message time, capped at 2^10
    /// so the shift cannot overflow. Keeping this closed-form (rather than
    /// jittered) preserves the bit-for-bit reproducibility contract.
    pub fn retry_backoff(&self, attempt: u32) -> Duration {
        self.control_message * (1u64 << attempt.min(10))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharebackup_is_as_fast_as_local_rerouting() {
        // §5.3's claim: "failure recovery in ShareBackup is as fast as that
        // in F10 and Aspen Tree" — same probing interval, and the repair
        // step is sub-ms either way.
        let m = RecoveryLatencyModel::default();
        for tech in [CircuitTech::Crosspoint, CircuitTech::Mems2D] {
            let sb = m.total(RecoveryScheme::ShareBackup(tech));
            let local = m.total(RecoveryScheme::LocalReroute);
            // Within a small factor (both dominated by the probe interval).
            let ratio = sb.as_secs_f64() / local.as_secs_f64();
            assert!((0.5..=1.5).contains(&ratio), "ratio {ratio}");
        }
    }

    #[test]
    fn sharebackup_repair_is_sub_ms() {
        let m = RecoveryLatencyModel::default();
        for tech in [CircuitTech::Crosspoint, CircuitTech::Mems2D] {
            assert!(m.repair(RecoveryScheme::ShareBackup(tech)) < Duration::from_millis(1));
        }
    }

    #[test]
    fn circuit_reset_dominance_ordering() {
        let m = RecoveryLatencyModel::default();
        let xp = m.repair(RecoveryScheme::ShareBackup(CircuitTech::Crosspoint));
        let mems = m.repair(RecoveryScheme::ShareBackup(CircuitTech::Mems2D));
        assert!(mems > xp);
        assert_eq!(
            mems - xp,
            Duration::from_micros(40) - Duration::from_nanos(70)
        );
    }

    #[test]
    fn global_rerouting_is_slower() {
        let m = RecoveryLatencyModel::default();
        let global = m.total(RecoveryScheme::GlobalReroute {
            switches_updated: 4,
            propagation_hops: 3,
        });
        let local = m.total(RecoveryScheme::LocalReroute);
        assert!(global > local);
    }
}
