//! Exploring the paper's §6 closing question: "when backup switches are
//! idle, they can be activated to add bandwidth to the network."
//!
//! This module quantifies what the §3 wiring actually permits, and the
//! finding is a negative result worth stating precisely:
//!
//! * Every *regular* switch port is committed (edge: k/2 host + k/2 up;
//!   agg: k/2 down + k/2 up; core: k pod ports) — the paper itself makes
//!   the same observation about 1:1 backup "doubling the port
//!   requirements". Hosts likewise have a single NIC.
//! * Idle backups therefore can only form circuits **with each other**:
//!   spare-edge↔spare-agg on each `CS₂` and spare-agg↔spare-core on each
//!   `CS₃`. This *spare plane* adds `k/2·min(n_e, n_a)` edge↔agg and
//!   `k/2·min(n_a, n_c)` agg↔core links per pod —
//! * — but no host can reach it, so it adds **zero host-to-host
//!   bisection bandwidth**. Boosting needs either extra ports on regular
//!   switches (1:1-backup territory, the cost the paper rejects) or
//!   time-multiplexed remapping of live circuits (a reconfiguration
//!   schedule, future work beyond the HotNets paper).
//!
//! What idle backups *are* good for within the §3 wiring is captured by
//! [`crate::maintenance`]: zero-downtime rolling upgrades.

use sharebackup_topo::{GroupKind, ShareBackup};

/// The extra connectivity activatable from idle backups under §3 wiring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BoostPotential {
    /// Activatable spare-edge↔spare-agg links (whole network).
    pub edge_agg_links: usize,
    /// Activatable spare-agg↔spare-core links (whole network).
    pub agg_core_links: usize,
    /// Additional host-reachable bisection links. Structurally zero under
    /// the paper's wiring; kept as a field so the finding is explicit.
    pub host_reachable_links: usize,
}

impl BoostPotential {
    /// Analyze a built network's idle-backup boost potential. Counts only
    /// *currently idle* (healthy, non-occupying) backups.
    pub fn analyze(sb: &ShareBackup) -> BoostPotential {
        let k = sb.k();
        let half = k / 2;
        let mut edge_agg = 0;
        let mut agg_core = 0;
        for pod in 0..k {
            let spare_edges = sb.spares(sharebackup_topo::GroupId::edge(pod)).len();
            let spare_aggs = sb.spares(sharebackup_topo::GroupId::agg(pod)).len();
            // On each of the pod's k/2 CS₂ crossbars, each idle spare edge
            // can pair with an idle spare agg.
            edge_agg += half * spare_edges.min(spare_aggs);
            // On CS₃[u], the pod's spare aggs can pair with group u's spare
            // cores.
            for u in 0..half {
                let spare_cores = sb.spares(sharebackup_topo::GroupId::core(u)).len();
                agg_core += spare_aggs.min(spare_cores).min(1); // one circuit per CS₃
            }
        }
        BoostPotential {
            edge_agg_links: edge_agg,
            agg_core_links: agg_core,
            host_reachable_links: 0,
        }
    }

    /// Whether activating the spare plane would raise any host's available
    /// bandwidth (it cannot, under §3 wiring).
    pub fn improves_host_bandwidth(&self) -> bool {
        self.host_reachable_links > 0
    }
}

/// Port-budget audit backing the negative result: free (uncommitted) ports
/// per *occupying* device class in a healthy network. Counted from the
/// actual circuit state, not asserted: an interface is free iff its circuit
/// switch port carries no circuit.
pub fn free_ports_per_class(sb: &ShareBackup) -> [(GroupKind, usize); 3] {
    let k = sb.k();
    let mut free = [(GroupKind::Edge, 0usize), (GroupKind::Agg, 0), (GroupKind::Core, 0)];
    for g in sb.group_ids() {
        let idx = match g.kind {
            GroupKind::Edge => 0,
            GroupKind::Agg => 1,
            GroupKind::Core => 2,
        };
        for &p in sb.group_members(g) {
            if sb.slot_of(p).is_none() {
                continue; // spares are idle by definition
            }
            for iface in 0..k {
                let (cs, port) = sb.iface_attachment(p, iface);
                if sb.circuit_switch(cs).mate(port).is_none() {
                    free[idx].1 += 1;
                }
            }
        }
    }
    free
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharebackup_topo::{GroupId, ShareBackupConfig};

    #[test]
    fn spare_plane_size_matches_formula() {
        let sb = ShareBackup::build(ShareBackupConfig::new(6, 1));
        let b = BoostPotential::analyze(&sb);
        // Per pod: k/2 CS₂ × min(1,1) = 3 edge-agg circuits; 3 CS₃ × 1.
        assert_eq!(b.edge_agg_links, 6 * 3);
        assert_eq!(b.agg_core_links, 6 * 3);
        assert_eq!(b.host_reachable_links, 0);
        assert!(!b.improves_host_bandwidth());
    }

    #[test]
    fn consumed_backups_shrink_the_spare_plane() {
        let mut sb = ShareBackup::build(ShareBackupConfig::new(6, 1));
        let full = BoostPotential::analyze(&sb);
        // Consume pod 0's agg spare: the occupant *fails* (role swap alone
        // would leave the evicted healthy switch in the pool).
        let g = GroupId::agg(0);
        let victim = sb.occupant(g.slot(0));
        sb.set_phys_healthy(victim, false);
        let spare = sb.spares(g)[0];
        sb.replace(g.slot(0), spare);
        let b = BoostPotential::analyze(&sb);
        assert!(b.edge_agg_links < full.edge_agg_links);
        assert!(b.agg_core_links < full.agg_core_links);
    }

    #[test]
    fn non_uniform_pools_bound_by_the_smaller_side() {
        // 2 edge spares but only 1 agg spare: pairing is bounded by 1.
        let cfg = ShareBackupConfig::new(6, 1).with_backups(2, 1, 1);
        let sb = ShareBackup::build(cfg);
        let b = BoostPotential::analyze(&sb);
        assert_eq!(b.edge_agg_links, (6 * 3));
    }

    #[test]
    fn no_free_ports_on_regular_switches() {
        let sb = ShareBackup::build(ShareBackupConfig::new(4, 1));
        for (_, free) in free_ports_per_class(&sb) {
            assert_eq!(free, 0, "every regular port is committed");
        }
    }
}
