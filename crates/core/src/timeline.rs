//! End-to-end, event-driven recovery timeline (paper §4.1 + §5.3 combined).
//!
//! Where [`crate::latency`] gives the closed-form recovery latency and
//! [`crate::detection`] simulates the keep-alive detector in isolation,
//! this module plays the *whole* §4.1 sequence on the discrete-event
//! engine, microsecond by microsecond:
//!
//! 1. the victim switch keep-alives on its probe phase — until it dies;
//! 2. the controller's scan notices the silence (detection);
//! 3. the controller processes the failure and picks a backup;
//! 4. a reconfiguration command goes out to *each* circuit switch of the
//!    failure group (sub-ms control channel);
//! 5. each circuit switch resets its circuits (70 ns / 40 µs) and acks;
//! 6. when the last ack lands, the data plane is whole again — the
//!    replacement is applied to the topology and verified.
//!
//! The produced [`Timeline`] is both an assertion target (tests pin the
//! latency decomposition) and a human-readable trace (the
//! `recovery_timeline` harness binary prints it).

use sharebackup_sim::{Duration, Engine, Time, World};
use sharebackup_telemetry::{TracedWorld, Tracer};
use sharebackup_topo::{CsId, PhysId, SlotId};

use crate::controller::Controller;
use crate::detection::DetectionConfig;

/// One entry in the recovery timeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TimelineEvent {
    /// The victim emitted a keep-alive.
    KeepAlive,
    /// The victim died.
    SwitchDied,
    /// The controller's scan declared the victim dead.
    Detected,
    /// The controller finished processing and chose the backup.
    BackupChosen(PhysId),
    /// A reconfiguration command reached circuit switch `0`.
    CommandArrived(CsId),
    /// Circuit switch finished resetting its circuits.
    CircuitReset(CsId),
    /// The circuit switch's ack reached the controller.
    AckReceived(CsId),
    /// All acks in: the data plane is whole.
    Recovered,
}

/// The recorded timeline of one recovery.
#[derive(Clone, Debug)]
pub struct Timeline {
    /// (instant, event) pairs in occurrence order.
    pub events: Vec<(Time, TimelineEvent)>,
    /// When the victim died.
    pub died_at: Time,
    /// When the controller detected it.
    pub detected_at: Time,
    /// When the last circuit-switch ack arrived.
    pub recovered_at: Time,
}

impl Timeline {
    /// Death → detection.
    pub fn detection_latency(&self) -> Duration {
        self.detected_at.since(self.died_at)
    }

    /// Detection → data plane whole.
    pub fn repair_latency(&self) -> Duration {
        self.recovered_at.since(self.detected_at)
    }

    /// Death → data plane whole.
    pub fn total_latency(&self) -> Duration {
        self.recovered_at.since(self.died_at)
    }

    /// Render as a human-readable trace, timestamps relative to the death.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (t, ev) in &self.events {
            let rel = if *t >= self.died_at {
                format!("+{}", t.since(self.died_at))
            } else {
                format!("-{}", self.died_at.since(*t))
            };
            let _ = writeln!(out, "{rel:>12}  {ev:?}");
        }
        out
    }

    /// Emit this timeline onto `tracer` as a machine-readable span tree:
    /// a parent `recovery` span covering death → data-plane-whole, tiled
    /// by three children — `detection` (death → detected), `diagnosis`
    /// (detected → backup chosen) and `reconfiguration` (chosen →
    /// recovered) — plus a `restored` instant at the recovery time. The
    /// child durations sum exactly to [`Timeline::total_latency`].
    pub fn record_spans(&self, tracer: &Tracer) {
        if !tracer.is_enabled() {
            return;
        }
        let chosen_at = self
            .events
            .iter()
            .find(|(_, e)| matches!(e, TimelineEvent::BackupChosen(_)))
            .map_or(self.detected_at, |(t, _)| *t);
        tracer.span_begin(self.died_at, "recovery", "recovery");
        tracer.span(self.died_at, self.detected_at, "recovery", "detection");
        tracer.span(self.detected_at, chosen_at, "recovery", "diagnosis");
        tracer.span(chosen_at, self.recovered_at, "recovery", "reconfiguration");
        tracer.instant(self.recovered_at, "recovery", "restored");
        tracer.span_end(self.recovered_at);
    }
}

enum Ev {
    KeepAlive,
    Die,
    Scan,
    Processed,
    CmdArrive(usize),
    ResetDone(usize),
    AckArrive(usize),
}

struct TimelineWorld {
    detection: DetectionConfig,
    control_message: Duration,
    processing: Duration,
    reset_delay: Duration,
    /// The controller cannot declare failures before this instant (dead
    /// primary / election in progress); `Time::ZERO` = always available.
    controller_available_at: Time,
    cs_ids: Vec<CsId>,
    backup: PhysId,
    alive: bool,
    last_seen: Time,
    died_at: Option<Time>,
    detected_at: Option<Time>,
    acks: usize,
    recovered_at: Option<Time>,
    events: Vec<(Time, TimelineEvent)>,
}

impl World<Ev> for TimelineWorld {
    fn handle(&mut self, engine: &mut Engine<Ev>, now: Time, ev: Ev) {
        match ev {
            Ev::KeepAlive => {
                if self.alive {
                    self.last_seen = now;
                    self.events.push((now, TimelineEvent::KeepAlive));
                    engine.schedule_in(self.detection.probe_interval, Ev::KeepAlive);
                }
            }
            Ev::Die => {
                self.alive = false;
                self.died_at = Some(now);
                self.events.push((now, TimelineEvent::SwitchDied));
            }
            Ev::Scan => {
                if self.detected_at.is_some() {
                    return;
                }
                let silence = now.saturating_since(self.last_seen);
                let limit =
                    self.detection.probe_interval * self.detection.miss_threshold as u64;
                if self.died_at.is_some() && silence > limit && now >= self.controller_available_at
                {
                    self.detected_at = Some(now);
                    self.events.push((now, TimelineEvent::Detected));
                    engine.schedule_in(self.processing, Ev::Processed);
                } else {
                    engine.schedule_in(self.detection.probe_interval, Ev::Scan);
                }
            }
            Ev::Processed => {
                self.events
                    .push((now, TimelineEvent::BackupChosen(self.backup)));
                // Commands fan out in parallel on the always-on channels.
                for i in 0..self.cs_ids.len() {
                    engine.schedule_in(self.control_message, Ev::CmdArrive(i));
                }
            }
            Ev::CmdArrive(i) => {
                self.events
                    .push((now, TimelineEvent::CommandArrived(self.cs_ids[i])));
                engine.schedule_in(self.reset_delay, Ev::ResetDone(i));
            }
            Ev::ResetDone(i) => {
                self.events
                    .push((now, TimelineEvent::CircuitReset(self.cs_ids[i])));
                engine.schedule_in(self.control_message, Ev::AckArrive(i));
            }
            Ev::AckArrive(i) => {
                self.events
                    .push((now, TimelineEvent::AckReceived(self.cs_ids[i])));
                self.acks += 1;
                if self.acks == self.cs_ids.len() && self.recovered_at.is_none() {
                    self.recovered_at = Some(now);
                    self.events.push((now, TimelineEvent::Recovered));
                }
            }
        }
    }
}

/// The circuit switches that must reconfigure to replace `slot`'s occupant.
fn circuit_switches_for(ctl: &Controller, slot: SlotId) -> Vec<CsId> {
    let k = ctl.sb.k();
    let half = k / 2;
    match slot.group.kind {
        sharebackup_topo::GroupKind::Edge => {
            let pod = slot.group.index;
            (0..half)
                .flat_map(|m| [CsId::HostEdge { pod, m }, CsId::EdgeAgg { pod, m }])
                .collect()
        }
        sharebackup_topo::GroupKind::Agg => {
            let pod = slot.group.index;
            (0..half)
                .flat_map(|m| [CsId::EdgeAgg { pod, m }, CsId::AggCore { pod, u: m }])
                .collect()
        }
        sharebackup_topo::GroupKind::Core => {
            let u = slot.group.index;
            (0..k).map(|pod| CsId::AggCore { pod, u }).collect()
        }
    }
}

/// Play the full §4.1 recovery sequence for the failure of `slot`'s
/// occupant at `die_at`, then apply the replacement to the topology.
///
/// `probe_phase` staggers the victim's keep-alives within the probe
/// interval (hosts and switches are not synchronized in practice).
///
/// # Panics
/// Panics if the slot's group has no available backup.
pub fn simulate_recovery(
    ctl: &mut Controller,
    slot: SlotId,
    die_at: Time,
    probe_phase: Duration,
) -> Timeline {
    simulate_recovery_traced(ctl, slot, die_at, probe_phase, &Tracer::off())
}

/// [`simulate_recovery`] with telemetry: every engine event is recorded
/// as an instant (plus the `engine.events` counter and the
/// `engine.queue_depth` histogram) via [`TracedWorld`], and the finished
/// timeline is emitted as a recovery span tree via
/// [`Timeline::record_spans`].
///
/// # Panics
/// Panics if the slot's group has no available backup.
pub fn simulate_recovery_traced(
    ctl: &mut Controller,
    slot: SlotId,
    die_at: Time,
    probe_phase: Duration,
    tracer: &Tracer,
) -> Timeline {
    simulate_recovery_with_blackout(ctl, slot, die_at, probe_phase, Time::ZERO, tracer)
}

/// [`simulate_recovery_traced`] under a control-plane blackout: the
/// controller's scan loop keeps running, but it cannot *declare* a failure
/// before `controller_available_at` — the primary is dead or an election
/// is still in progress (see [`crate::failover`]). With
/// `controller_available_at == Time::ZERO` this is exactly
/// [`simulate_recovery_traced`].
///
/// # Panics
/// Panics if the slot's group has no available backup.
pub fn simulate_recovery_with_blackout(
    ctl: &mut Controller,
    slot: SlotId,
    die_at: Time,
    probe_phase: Duration,
    controller_available_at: Time,
    tracer: &Tracer,
) -> Timeline {
    let backup = *ctl
        .sb
        .spares(slot.group)
        .first()
        // lint:allow(unwrap) — callers hand in a freshly built fabric with n ≥ 1 spares
        .expect("a backup must be available");
    let cs_ids = circuit_switches_for(ctl, slot);
    let detection = DetectionConfig {
        probe_interval: ctl.cfg.latency.probe_interval,
        miss_threshold: 1,
    };
    let mut engine: Engine<Ev> = Engine::new();
    engine.schedule(Time::ZERO + probe_phase, Ev::KeepAlive);
    engine.schedule(Time::ZERO, Ev::Scan);
    engine.schedule(die_at, Ev::Die);
    let mut world = TimelineWorld {
        detection,
        control_message: ctl.cfg.latency.control_message,
        processing: ctl.cfg.latency.controller_processing,
        reset_delay: ctl.sb.cfg.tech.reconfiguration_delay(),
        controller_available_at,
        cs_ids,
        backup,
        alive: true,
        last_seen: Time::ZERO,
        died_at: None,
        detected_at: None,
        acks: 0,
        recovered_at: None,
        events: Vec::new(),
    };
    {
        let mut traced = TracedWorld::new(&mut world, tracer.clone(), |ev: &Ev| match ev {
            Ev::KeepAlive => "keepalive",
            Ev::Die => "die",
            Ev::Scan => "scan",
            Ev::Processed => "processed",
            Ev::CmdArrive(_) => "cmd-arrive",
            Ev::ResetDone(_) => "reset-done",
            Ev::AckArrive(_) => "ack-arrive",
        });
        engine.run(&mut traced);
    }

    // Apply the replacement the timeline just orchestrated.
    let victim = ctl.sb.occupant(slot);
    ctl.sb.set_phys_healthy(victim, false);
    // lint:allow(unwrap) — the engine runs to quiescence, so the recovery event fired
    let recovery = ctl.handle_node_failure(victim, world.recovered_at.expect("recovered"));
    assert!(recovery.fully_recovered(), "backup was available");

    let tl = Timeline {
        events: world.events,
        // lint:allow(unwrap) — same: all three milestones fired during the run
        died_at: world.died_at.expect("died"),
        // lint:allow(unwrap) — same: all three milestones fired during the run
        detected_at: world.detected_at.expect("detected"),
        // lint:allow(unwrap) — same: all three milestones fired during the run
        recovered_at: world.recovered_at.expect("recovered"),
    };
    tl.record_spans(tracer);
    tl
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::ControllerConfig;
    use sharebackup_topo::{CircuitTech, GroupId, ShareBackup, ShareBackupConfig};

    fn controller(tech: CircuitTech) -> Controller {
        Controller::new(
            ShareBackup::build(ShareBackupConfig::new(6, 1).with_tech(tech)),
            ControllerConfig::default(),
        )
    }

    #[test]
    fn timeline_decomposition_is_consistent() {
        let mut ctl = controller(CircuitTech::Crosspoint);
        let slot = GroupId::agg(0).slot(1);
        let tl = simulate_recovery(
            &mut ctl,
            slot,
            Time::from_millis(5),
            Duration::from_micros(137),
        );
        assert_eq!(
            tl.total_latency(),
            tl.detection_latency() + tl.repair_latency()
        );
        // Detection within (0, 2] probe intervals (threshold 1).
        let p = ctl.cfg.latency.probe_interval;
        assert!(tl.detection_latency() > Duration::ZERO);
        assert!(tl.detection_latency() <= p * 2);
        // Repair = 2 control messages + processing + reset, all parallel
        // across circuit switches.
        let expect = ctl.cfg.latency.control_message * 2
            + ctl.cfg.latency.controller_processing
            + CircuitTech::Crosspoint.reconfiguration_delay();
        assert_eq!(tl.repair_latency(), expect);
        // The data plane is actually healed afterwards.
        assert!(ctl.sb.slots.net.node(ctl.sb.slot_node(slot)).up);
    }

    #[test]
    fn blackout_defers_detection_until_the_controller_returns() {
        let slot = GroupId::agg(0).slot(1);
        let die_at = Time::from_millis(10);
        let baseline = {
            let mut ctl = controller(CircuitTech::Crosspoint);
            simulate_recovery(&mut ctl, slot, die_at, Duration::ZERO)
        };

        // The control plane is electing until 60 ms (e.g. the primary died
        // with the switch): the silence is long over the limit by then, so
        // the first post-blackout scan declares immediately.
        let available_at = Time::from_millis(60);
        let mut ctl = controller(CircuitTech::Crosspoint);
        let tl = simulate_recovery_with_blackout(
            &mut ctl,
            slot,
            die_at,
            Duration::ZERO,
            available_at,
            &Tracer::off(),
        );
        assert_eq!(tl.detected_at, available_at, "first scan past the blackout");
        assert!(tl.detection_latency() > baseline.detection_latency());
        // Everything downstream of detection is unchanged.
        assert_eq!(tl.repair_latency(), baseline.repair_latency());
        assert!(ctl.sb.slots.net.node(ctl.sb.slot_node(slot)).up);

        // A zero blackout reproduces the baseline exactly.
        let mut ctl = controller(CircuitTech::Crosspoint);
        let same = simulate_recovery_with_blackout(
            &mut ctl,
            slot,
            die_at,
            Duration::ZERO,
            Time::ZERO,
            &Tracer::off(),
        );
        assert_eq!(same.detected_at, baseline.detected_at);
        assert_eq!(same.recovered_at, baseline.recovered_at);
    }

    #[test]
    fn every_group_circuit_switch_participates() {
        let mut ctl = controller(CircuitTech::Crosspoint);
        let slot = GroupId::edge(2).slot(0);
        let tl = simulate_recovery(
            &mut ctl,
            slot,
            Time::from_millis(3),
            Duration::ZERO,
        );
        let acks = tl
            .events
            .iter()
            .filter(|(_, e)| matches!(e, TimelineEvent::AckReceived(_)))
            .count();
        // Edge slot: k/2 CS1 + k/2 CS2 = k circuit switches.
        assert_eq!(acks, 6);
        let resets = tl
            .events
            .iter()
            .filter(|(_, e)| matches!(e, TimelineEvent::CircuitReset(_)))
            .count();
        assert_eq!(resets, 6);
    }

    #[test]
    fn mems_timeline_is_slower_by_the_reset_delta() {
        let mut a = controller(CircuitTech::Crosspoint);
        let mut b = controller(CircuitTech::Mems2D);
        let phase = Duration::from_micros(400);
        let t1 = simulate_recovery(&mut a, GroupId::core(0).slot(0), Time::from_millis(7), phase);
        let t2 = simulate_recovery(&mut b, GroupId::core(0).slot(0), Time::from_millis(7), phase);
        assert_eq!(t1.detection_latency(), t2.detection_latency());
        let delta = t2.repair_latency() - t1.repair_latency();
        assert_eq!(
            delta,
            Duration::from_micros(40) - Duration::from_nanos(70)
        );
    }

    #[test]
    fn render_is_chronological_and_complete() {
        let mut ctl = controller(CircuitTech::Crosspoint);
        let tl = simulate_recovery(
            &mut ctl,
            GroupId::agg(1).slot(0),
            Time::from_millis(2),
            Duration::from_micros(10),
        );
        for w in tl.events.windows(2) {
            assert!(w[0].0 <= w[1].0, "timeline must be chronological");
        }
        let text = tl.render();
        assert!(text.contains("SwitchDied"));
        assert!(text.contains("Detected"));
        assert!(text.contains("Recovered"));
    }

    /// A hand-built recovery sequence with round numbers, independent of
    /// the engine: death at 1 ms, detection at 2 ms, recovery at 2.3 ms.
    fn synthetic_timeline() -> Timeline {
        let t = Time::from_micros;
        let cs = CsId::HostEdge { pod: 0, m: 1 };
        Timeline {
            events: vec![
                (t(0), TimelineEvent::KeepAlive),
                (t(1000), TimelineEvent::SwitchDied),
                (t(2000), TimelineEvent::Detected),
                (t(2050), TimelineEvent::BackupChosen(PhysId(7))),
                (t(2150), TimelineEvent::CommandArrived(cs)),
                (t(2200), TimelineEvent::CircuitReset(cs)),
                (t(2300), TimelineEvent::AckReceived(cs)),
                (t(2300), TimelineEvent::Recovered),
            ],
            died_at: t(1000),
            detected_at: t(2000),
            recovered_at: t(2300),
        }
    }

    #[test]
    fn synthetic_latencies_decompose_exactly() {
        let tl = synthetic_timeline();
        assert_eq!(tl.detection_latency(), Duration::from_millis(1));
        assert_eq!(tl.repair_latency(), Duration::from_micros(300));
        assert_eq!(
            tl.detection_latency() + tl.repair_latency(),
            tl.total_latency()
        );
    }

    #[test]
    fn render_snapshot_is_stable() {
        let expected = "    -1.000ms  KeepAlive
         +0s  SwitchDied
    +1.000ms  Detected
    +1.050ms  BackupChosen(sw7)
    +1.150ms  CommandArrived(HostEdge { pod: 0, m: 1 })
    +1.200ms  CircuitReset(HostEdge { pod: 0, m: 1 })
    +1.300ms  AckReceived(HostEdge { pod: 0, m: 1 })
    +1.300ms  Recovered
";
        assert_eq!(synthetic_timeline().render(), expected);
    }

    #[test]
    fn record_spans_tile_the_recovery() {
        let (tracer, sink) = sharebackup_telemetry::Tracer::recording();
        let tl = synthetic_timeline();
        tl.record_spans(&tracer);
        let buf = sink.borrow_mut().take();
        let spans = buf.spans();
        assert_eq!(spans.len(), 4);
        let find = |name: &str| {
            spans
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("span {name}"))
                .clone()
        };
        let rec = find("recovery");
        let det = find("detection");
        let dia = find("diagnosis");
        let cfg = find("reconfiguration");
        assert_eq!(rec.depth, 0);
        assert_eq!((det.depth, dia.depth, cfg.depth), (1, 1, 1));
        assert_eq!(det.begin, rec.begin);
        assert_eq!(det.end, dia.begin);
        assert_eq!(dia.end, cfg.begin);
        assert_eq!(cfg.end, rec.end);
        let sum = det.end.since(det.begin)
            + dia.end.since(dia.begin)
            + cfg.end.since(cfg.begin);
        assert_eq!(sum, tl.total_latency());
    }

    #[test]
    fn traced_simulation_records_engine_instants_and_span_tree() {
        let (tracer, sink) = sharebackup_telemetry::Tracer::recording();
        let mut ctl = controller(CircuitTech::Crosspoint);
        let tl = simulate_recovery_traced(
            &mut ctl,
            GroupId::agg(0).slot(1),
            Time::from_millis(5),
            Duration::from_micros(137),
            &tracer,
        );
        let buf = sink.borrow_mut().take();
        assert!(buf.counters.get("engine.events").copied().unwrap_or(0) > 0);
        let instants = |name: &str| {
            buf.events
                .iter()
                .filter(|e| {
                    matches!(
                        e,
                        sharebackup_telemetry::TraceEvent::Mark { name: n, .. } if n == name
                    )
                })
                .count()
        };
        assert_eq!(instants("die"), 1);
        // Agg slot: k/2 CS2 + k/2 CS3 = k circuit switches ack.
        assert_eq!(instants("ack-arrive"), 6);
        let spans = buf.spans();
        let rec = spans
            .iter()
            .find(|s| s.name == "recovery")
            .expect("recovery span");
        assert_eq!(rec.end.since(rec.begin), tl.total_latency());
    }
}
