//! Offline failure diagnosis (paper §4.2, Fig. 4).
//!
//! After a link failure, *both* switches adjacent to the link are replaced
//! immediately (fast recovery cannot wait to find out which end is at
//! fault). In the background, the controller drives the diagnosis: the
//! circuit switches of the pod's layer are chained in a ring through side
//! ports, and through up to three circuit configurations the suspect
//! interface is connected to three different test interfaces — on a backup
//! switch through the same circuit switch, or on the suspect switch itself
//! through a ring neighbor. The suspect exchanges test messages over each
//! configuration; connectivity in **any** configuration redresses the
//! interface (and its switch) as healthy.
//!
//! Diagnosis involves only offline switches (the replaced suspects and idle
//! backups), so it never perturbs the live network.

use sharebackup_topo::{PhysId, ShareBackup};

/// Diagnosis verdict for a suspect interface.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// The interface demonstrated connectivity — suspect exonerated.
    Healthy,
    /// No configuration showed connectivity — the interface (and switch)
    /// is treated as faulty.
    Faulty,
    /// No test configuration was available (e.g. no healthy partner
    /// interface reachable); the paper's rule applies: treat as faulty.
    Untestable,
}

impl Verdict {
    /// Whether the suspect returns to the backup pool.
    pub fn exonerated(self) -> bool {
        matches!(self, Verdict::Healthy)
    }
}

/// Result of diagnosing one suspect interface.
#[derive(Clone, Debug)]
pub struct DiagnosisReport {
    /// The suspect switch.
    pub suspect: PhysId,
    /// The suspect interface index.
    pub iface: usize,
    /// Configurations attempted.
    pub configs_tested: usize,
    /// Configurations in which the interface had connectivity.
    pub tests_passed: usize,
    /// The verdict.
    pub verdict: Verdict,
}

/// Run offline diagnosis for a suspect interface.
///
/// Each configuration is *physically executed* on the circuit switches
/// ([`ShareBackup::run_diagnosis_test`]): the test circuit is set up
/// (directly, or through the side-port ring), connectivity is exchanged,
/// and the circuit is torn down. A test passes iff both the suspect
/// interface and the partner interface actually work; a configuration that
/// would disturb a live circuit is skipped — diagnosis is "completely
/// independent of the functioning network" (§4.2). A partner on a dead
/// switch never passes, reproducing the paper's requirement that "both
/// sides have at least one healthy interface".
pub fn diagnose(sb: &mut ShareBackup, suspect: PhysId, iface: usize) -> DiagnosisReport {
    let configs = sb.diagnosis_configs(suspect, iface);
    let mut tested = 0;
    let mut passed = 0;
    for cfg in &configs {
        // `None` = the test would disturb live circuits: skipped.
        if let Some(ok) = sb.run_diagnosis_test(suspect, iface, *cfg) {
            tested += 1;
            if ok {
                passed += 1;
            }
        }
    }
    let verdict = if tested == 0 {
        Verdict::Untestable
    } else if passed > 0 {
        Verdict::Healthy
    } else {
        Verdict::Faulty
    };
    DiagnosisReport {
        suspect,
        iface,
        configs_tested: tested,
        tests_passed: passed,
        verdict,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharebackup_topo::{GroupId, ShareBackupConfig};

    fn sb() -> ShareBackup {
        ShareBackup::build(ShareBackupConfig::new(6, 1))
    }

    /// Take a slot's occupant offline the way the controller does before
    /// diagnosing: replace it with the group's spare. Returns the evicted
    /// (now offline) suspect.
    fn take_offline(sb: &mut ShareBackup, g: GroupId, slot: usize) -> sharebackup_topo::PhysId {
        let victim = sb.occupant(g.slot(slot));
        let spare = sb.spares(g)[0];
        sb.replace(g.slot(slot), spare);
        victim
    }

    #[test]
    fn healthy_interface_is_exonerated() {
        let mut sb = sb();
        let agg = take_offline(&mut sb, GroupId::agg(0), 0);
        let report = diagnose(&mut sb, agg, 3); // up-port, all healthy
        assert_eq!(report.verdict, Verdict::Healthy);
        assert!(report.tests_passed >= 1);
        assert!(report.verdict.exonerated());
    }

    #[test]
    fn broken_interface_is_convicted() {
        let mut sb = sb();
        let agg = take_offline(&mut sb, GroupId::agg(0), 0);
        sb.set_iface_broken(agg, 3, true);
        let report = diagnose(&mut sb, agg, 3);
        assert_eq!(report.verdict, Verdict::Faulty);
        assert_eq!(report.tests_passed, 0);
        assert!(report.configs_tested >= 2, "ring tests must still run");
        assert!(!report.verdict.exonerated());
    }

    #[test]
    fn healthy_interface_survives_one_broken_partner() {
        // A ring-neighbor partner interface is broken too, but the other
        // configurations still prove the suspect healthy — the reason the
        // paper uses 3 configurations.
        let mut sb = sb();
        let agg = take_offline(&mut sb, GroupId::agg(0), 0);
        // Break a *different* up-port of the same switch (a ring partner).
        sb.set_iface_broken(agg, 4, true);
        let report = diagnose(&mut sb, agg, 3);
        assert_eq!(report.verdict, Verdict::Healthy);
        assert!(report.tests_passed < report.configs_tested);
    }

    #[test]
    fn all_partners_broken_means_faulty_verdict() {
        // "If this condition is not met, both suspect switches are
        // considered faulty." Break every partner interface: the healthy
        // suspect cannot be proven healthy.
        let mut sb = sb();
        let agg = take_offline(&mut sb, GroupId::agg(0), 0);
        // Partners for agg up-port 3 (u=0): spare core of group 0 (its
        // pod-0 interface) + own up-ports 4 and 5.
        let spare_core = sb.spares(GroupId::core(0))[0];
        sb.set_iface_broken(spare_core, 0, true);
        sb.set_iface_broken(agg, 4, true);
        sb.set_iface_broken(agg, 5, true);
        let report = diagnose(&mut sb, agg, 3);
        assert_eq!(report.verdict, Verdict::Faulty);
    }

    #[test]
    fn dead_partner_switch_fails_its_test() {
        let mut sb = sb();
        let core = take_offline(&mut sb, GroupId::core(0), 0);
        // Core's only partner is the spare agg of the pod; kill it. With no
        // healthy partner available the suspect cannot be tested, and per
        // §4.2 an untestable suspect is treated as faulty.
        let spare_agg = sb.spares(GroupId::agg(2))[0];
        sb.set_phys_healthy(spare_agg, false);
        let report = diagnose(&mut sb, core, 2); // pod-2 interface
        assert_eq!(report.verdict, Verdict::Untestable);
        assert!(!report.verdict.exonerated());
        assert_eq!(report.configs_tested, 0);
    }

    #[test]
    fn dead_suspect_switch_is_faulty_on_every_config() {
        let mut sb = sb();
        let agg = take_offline(&mut sb, GroupId::agg(1), 1);
        sb.set_phys_healthy(agg, false);
        let report = diagnose(&mut sb, agg, 0);
        assert_eq!(report.verdict, Verdict::Faulty);
        assert_eq!(report.tests_passed, 0);
    }

    #[test]
    fn diagnosing_an_online_switch_is_untestable() {
        // The paper's safety rule, enforced mechanically: a switch still
        // carrying live circuits cannot be probed.
        let mut sb = sb();
        let agg = sb.occupant(GroupId::agg(0).slot(0));
        let report = diagnose(&mut sb, agg, 3);
        assert_eq!(report.verdict, Verdict::Untestable);
        assert_eq!(report.configs_tested, 0);
    }

    #[test]
    fn diagnosis_leaves_live_circuits_untouched() {
        let mut sb = sb();
        let before = sb.derived_links();
        let agg = take_offline(&mut sb, GroupId::agg(0), 0);
        let links_after_replace = sb.derived_links();
        diagnose(&mut sb, agg, 3);
        assert_eq!(sb.derived_links(), links_after_replace);
        assert_eq!(before.len(), links_after_replace.len());
    }
}
