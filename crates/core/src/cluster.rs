//! Controller-cluster failover (paper §5.1, "Controller failures").
//!
//! The logically centralized controller is a small cluster of replicas;
//! switches and hosts report status to all of them simultaneously, so every
//! replica has the state needed to take over. A primary is elected to react
//! to failures; when it dies, another replica is elected.
//!
//! The election here is deterministic (lowest-id live replica wins), which
//! is all the architecture requires — the paper leaves placement and
//! coordination as open questions (§6).
//!
//! `ControllerCluster` is pure membership bookkeeping: who is up, who is
//! primary, how many elections ran. The event-driven machinery that crashes
//! the primary *mid-recovery* and re-drives journaled recoveries lives in
//! [`crate::failover`], which owns one of these clusters.
//!
//! All mutating operations are **idempotent** and return typed errors for
//! out-of-range replica ids instead of panicking: failure schedules replay
//! duplicate crash reports (a switch reports to every replica, and chaos
//! schedules can fail an already-dead replica), and a duplicate must neither
//! charge a second election nor crash the harness.

use std::fmt;

use sharebackup_sim::Duration;

/// Error from naming a replica that does not exist.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplicaOutOfRange {
    /// The offending replica id.
    pub id: usize,
    /// Cluster size (valid ids are `0..replicas`).
    pub replicas: usize,
}

impl fmt::Display for ReplicaOutOfRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "replica id {} out of range for a {}-replica cluster",
            self.id, self.replicas
        )
    }
}

impl std::error::Error for ReplicaOutOfRange {}

/// A replicated controller cluster.
#[derive(Clone, Debug)]
pub struct ControllerCluster {
    up: Vec<bool>,
    primary: Option<usize>,
    elections: u64,
    election_time: Duration,
}

impl ControllerCluster {
    /// A cluster of `replicas` live replicas; replica 0 starts as primary.
    ///
    /// `election_time` models the leader-election delay charged whenever the
    /// primary changes.
    ///
    /// # Panics
    /// Panics if `replicas == 0`.
    pub fn new(replicas: usize, election_time: Duration) -> ControllerCluster {
        assert!(replicas > 0, "need at least one replica");
        ControllerCluster {
            up: vec![true; replicas],
            primary: Some(0),
            elections: 1,
            election_time,
        }
    }

    /// The current primary, if any replica is alive.
    pub fn primary(&self) -> Option<usize> {
        self.primary
    }

    /// Number of elections held (including the initial one).
    pub fn elections(&self) -> u64 {
        self.elections
    }

    /// Cluster size (live or dead).
    pub fn replicas(&self) -> usize {
        self.up.len()
    }

    /// The configured leader-election delay.
    pub fn election_time(&self) -> Duration {
        self.election_time
    }

    /// Whether replica `id` is currently live.
    pub fn is_up(&self, id: usize) -> Result<bool, ReplicaOutOfRange> {
        self.check(id)?;
        Ok(self.up[id])
    }

    /// Live replica count.
    pub fn live_replicas(&self) -> usize {
        self.up.iter().filter(|&&u| u).count()
    }

    /// Kill a replica. If it was the (live) primary, an election runs and
    /// the failover delay is returned; otherwise recovery capacity is
    /// unaffected and `Duration::ZERO` is returned.
    ///
    /// Idempotent: failing an already-dead replica — a duplicate crash
    /// report, or a replayed schedule entry — changes nothing, holds no
    /// election, and charges `Duration::ZERO`.
    pub fn fail_replica(&mut self, id: usize) -> Result<Duration, ReplicaOutOfRange> {
        self.check(id)?;
        if !self.up[id] {
            return Ok(Duration::ZERO);
        }
        self.up[id] = false;
        if self.primary == Some(id) {
            self.elect();
            if self.primary.is_some() {
                return Ok(self.election_time);
            }
        }
        Ok(Duration::ZERO)
    }

    /// Restore a replica (it rejoins as a follower). If the cluster had no
    /// primary, an election runs and the delay is returned.
    ///
    /// Idempotent: restoring an already-live replica changes nothing.
    pub fn restore_replica(&mut self, id: usize) -> Result<Duration, ReplicaOutOfRange> {
        self.check(id)?;
        if self.up[id] {
            return Ok(Duration::ZERO);
        }
        self.up[id] = true;
        if self.primary.is_none() {
            self.elect();
            if self.primary.is_some() {
                return Ok(self.election_time);
            }
        }
        Ok(Duration::ZERO)
    }

    fn check(&self, id: usize) -> Result<(), ReplicaOutOfRange> {
        if id < self.up.len() {
            Ok(())
        } else {
            Err(ReplicaOutOfRange {
                id,
                replicas: self.up.len(),
            })
        }
    }

    fn elect(&mut self) {
        self.primary = self.up.iter().position(|&u| u);
        if self.primary.is_some() {
            self.elections += 1;
        }
    }

    /// Whether the control plane can currently react to failures.
    pub fn available(&self) -> bool {
        self.primary.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn initial_primary_is_zero() {
        let c = ControllerCluster::new(3, ms(50));
        assert_eq!(c.primary(), Some(0));
        assert!(c.available());
        assert_eq!(c.elections(), 1);
        assert_eq!(c.replicas(), 3);
        assert_eq!(c.election_time(), ms(50));
    }

    #[test]
    fn primary_failure_elects_next_live() {
        let mut c = ControllerCluster::new(3, ms(50));
        let delay = c.fail_replica(0).expect("in range");
        assert_eq!(delay, ms(50));
        assert_eq!(c.primary(), Some(1));
        assert_eq!(c.elections(), 2);
    }

    #[test]
    fn follower_failure_is_free() {
        let mut c = ControllerCluster::new(3, ms(50));
        let delay = c.fail_replica(2).expect("in range");
        assert_eq!(delay, Duration::ZERO);
        assert_eq!(c.primary(), Some(0));
        assert_eq!(c.elections(), 1);
    }

    #[test]
    fn total_loss_and_restore() {
        let mut c = ControllerCluster::new(2, ms(10));
        c.fail_replica(0).expect("in range");
        c.fail_replica(1).expect("in range");
        assert!(!c.available());
        assert_eq!(c.live_replicas(), 0);
        let delay = c.restore_replica(1).expect("in range");
        assert_eq!(delay, ms(10), "restoring into a headless cluster elects");
        assert!(c.available());
        assert_eq!(c.primary(), Some(1));
    }

    #[test]
    fn restored_replica_does_not_usurp() {
        let mut c = ControllerCluster::new(2, ms(10));
        c.fail_replica(0).expect("in range");
        assert_eq!(c.primary(), Some(1));
        let delay = c.restore_replica(0).expect("in range");
        assert_eq!(delay, Duration::ZERO, "rejoining as follower is free");
        assert_eq!(c.primary(), Some(1), "no usurpation on rejoin");
    }

    // Satellite regressions: out-of-range ids are typed errors, not
    // panics, and duplicate fails/restores are idempotent.

    #[test]
    fn out_of_range_ids_are_typed_errors_not_panics() {
        let mut c = ControllerCluster::new(2, ms(10));
        let err = ReplicaOutOfRange { id: 2, replicas: 2 };
        assert_eq!(c.fail_replica(2), Err(err));
        assert_eq!(c.restore_replica(9), Err(ReplicaOutOfRange { id: 9, replicas: 2 }));
        assert_eq!(c.is_up(2), Err(err));
        assert!(err.to_string().contains("out of range"));
        // Nothing changed.
        assert_eq!(c.primary(), Some(0));
        assert_eq!(c.live_replicas(), 2);
        assert_eq!(c.elections(), 1);
    }

    #[test]
    fn double_fail_of_dead_primary_charges_nothing_and_holds_no_election() {
        let mut c = ControllerCluster::new(3, ms(50));
        let first = c.fail_replica(0).expect("in range");
        assert_eq!(first, ms(50));
        assert_eq!(c.elections(), 2);
        // A duplicate crash report for the already-dead former primary:
        // free, electorally silent, state unchanged.
        let dup = c.fail_replica(0).expect("in range");
        assert_eq!(dup, Duration::ZERO);
        assert_eq!(c.elections(), 2, "no second election charged");
        assert_eq!(c.primary(), Some(1));
        assert_eq!(c.live_replicas(), 2);
    }

    #[test]
    fn double_restore_is_idempotent() {
        let mut c = ControllerCluster::new(2, ms(10));
        c.fail_replica(0).expect("in range");
        c.fail_replica(1).expect("in range");
        let first = c.restore_replica(0).expect("in range");
        assert_eq!(first, ms(10));
        let elections = c.elections();
        let dup = c.restore_replica(0).expect("in range");
        assert_eq!(dup, Duration::ZERO);
        assert_eq!(c.elections(), elections, "no spurious re-election");
        assert_eq!(c.primary(), Some(0));
    }

    #[test]
    fn is_up_tracks_membership() {
        let mut c = ControllerCluster::new(2, ms(10));
        assert_eq!(c.is_up(1), Ok(true));
        c.fail_replica(1).expect("in range");
        assert_eq!(c.is_up(1), Ok(false));
        c.restore_replica(1).expect("in range");
        assert_eq!(c.is_up(1), Ok(true));
    }
}
