//! Controller-cluster failover (paper §5.1, "Controller failures").
//!
//! The logically centralized controller is a small cluster of replicas;
//! switches and hosts report status to all of them simultaneously, so every
//! replica has the state needed to take over. A primary is elected to react
//! to failures; when it dies, another replica is elected.
//!
//! The election here is deterministic (lowest-id live replica wins), which
//! is all the architecture requires — the paper leaves placement and
//! coordination as open questions (§6).

use sharebackup_sim::Duration;

/// A replicated controller cluster.
#[derive(Clone, Debug)]
pub struct ControllerCluster {
    up: Vec<bool>,
    primary: Option<usize>,
    elections: u64,
    election_time: Duration,
}

impl ControllerCluster {
    /// A cluster of `replicas` live replicas; replica 0 starts as primary.
    ///
    /// `election_time` models the leader-election delay charged whenever the
    /// primary changes.
    ///
    /// # Panics
    /// Panics if `replicas == 0`.
    pub fn new(replicas: usize, election_time: Duration) -> ControllerCluster {
        assert!(replicas > 0, "need at least one replica");
        ControllerCluster {
            up: vec![true; replicas],
            primary: Some(0),
            elections: 1,
            election_time,
        }
    }

    /// The current primary, if any replica is alive.
    pub fn primary(&self) -> Option<usize> {
        self.primary
    }

    /// Number of elections held (including the initial one).
    pub fn elections(&self) -> u64 {
        self.elections
    }

    /// Live replica count.
    pub fn live_replicas(&self) -> usize {
        self.up.iter().filter(|&&u| u).count()
    }

    /// Kill a replica. If it was the primary, an election runs and the
    /// failover delay is returned; otherwise recovery capacity is
    /// unaffected and `Duration::ZERO` is returned.
    pub fn fail_replica(&mut self, id: usize) -> Duration {
        self.up[id] = false;
        if self.primary == Some(id) {
            self.elect();
            if self.primary.is_some() {
                return self.election_time;
            }
        }
        Duration::ZERO
    }

    /// Restore a replica (it rejoins as a follower).
    pub fn restore_replica(&mut self, id: usize) {
        self.up[id] = true;
        if self.primary.is_none() {
            self.elect();
        }
    }

    fn elect(&mut self) {
        self.primary = self.up.iter().position(|&u| u);
        if self.primary.is_some() {
            self.elections += 1;
        }
    }

    /// Whether the control plane can currently react to failures.
    pub fn available(&self) -> bool {
        self.primary.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_primary_is_zero() {
        let c = ControllerCluster::new(3, Duration::from_millis(50));
        assert_eq!(c.primary(), Some(0));
        assert!(c.available());
        assert_eq!(c.elections(), 1);
    }

    #[test]
    fn primary_failure_elects_next_live() {
        let mut c = ControllerCluster::new(3, Duration::from_millis(50));
        let delay = c.fail_replica(0);
        assert_eq!(delay, Duration::from_millis(50));
        assert_eq!(c.primary(), Some(1));
        assert_eq!(c.elections(), 2);
    }

    #[test]
    fn follower_failure_is_free() {
        let mut c = ControllerCluster::new(3, Duration::from_millis(50));
        let delay = c.fail_replica(2);
        assert_eq!(delay, Duration::ZERO);
        assert_eq!(c.primary(), Some(0));
        assert_eq!(c.elections(), 1);
    }

    #[test]
    fn total_loss_and_restore() {
        let mut c = ControllerCluster::new(2, Duration::from_millis(10));
        c.fail_replica(0);
        c.fail_replica(1);
        assert!(!c.available());
        assert_eq!(c.live_replicas(), 0);
        c.restore_replica(1);
        assert!(c.available());
        assert_eq!(c.primary(), Some(1));
    }

    #[test]
    fn restored_replica_does_not_usurp() {
        let mut c = ControllerCluster::new(2, Duration::from_millis(10));
        c.fail_replica(0);
        assert_eq!(c.primary(), Some(1));
        c.restore_replica(0);
        assert_eq!(c.primary(), Some(1), "no usurpation on rejoin");
    }
}
