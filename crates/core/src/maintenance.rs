//! Rolling maintenance through the replacement primitive — an application
//! of the paper's §6 observation that backup switches are first-class
//! citizens ("backup switches and regular switches are equal in
//! functionality").
//!
//! A switch upgrade in a rerouting fabric means draining a device and
//! running degraded for the whole maintenance window. With ShareBackup the
//! operator *replaces* the device with a pool backup (a ~1.3 ms blip),
//! upgrades it at leisure, and the upgraded switch rejoins the pool. Rolling
//! this across a failure group upgrades every member while the network stays
//! whole — the per-group pool bounds how many devices can be "in the shop"
//! at once.

use sharebackup_sim::{Duration, Time};
use sharebackup_topo::{GroupId, PhysId};

use crate::controller::Controller;

/// A rolling-upgrade campaign over one failure group.
#[derive(Clone, Debug)]
pub struct RollingUpgrade {
    /// The group being upgraded.
    pub group: GroupId,
    /// How long one device takes to upgrade.
    pub upgrade_time: Duration,
    done: Vec<PhysId>,
    in_shop: Vec<(Time, PhysId)>,
}

/// Progress report of a campaign step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UpgradeStep {
    /// A device was pulled for upgrade (replaced by a pool backup); the
    /// data plane blinked for the recovery latency only.
    Pulled(PhysId),
    /// A device finished upgrading and rejoined the pool.
    Finished(PhysId),
    /// Nothing to do right now (waiting for an upgrade to finish or for a
    /// backup to free up).
    Waiting,
    /// Every member of the group has been upgraded.
    Complete,
}

impl RollingUpgrade {
    /// Start a campaign over `group`.
    pub fn new(group: GroupId, upgrade_time: Duration) -> RollingUpgrade {
        RollingUpgrade {
            group,
            upgrade_time,
            done: Vec::new(),
            in_shop: Vec::new(),
        }
    }

    /// Devices already upgraded.
    pub fn upgraded(&self) -> &[PhysId] {
        &self.done
    }

    /// Advance the campaign at instant `now`: complete due upgrades, then
    /// pull the next not-yet-upgraded device if a backup is available.
    pub fn step(&mut self, ctl: &mut Controller, now: Time) -> UpgradeStep {
        // Finish any upgrade that is due.
        if let Some(pos) = self.in_shop.iter().position(|&(t, _)| t <= now) {
            let (_, p) = self.in_shop.remove(pos);
            // The upgraded switch comes back healthy and joins the pool.
            ctl.sb.set_phys_healthy(p, true);
            self.done.push(p);
            return UpgradeStep::Finished(p);
        }
        // Pick the next victim: an occupying, healthy, not-yet-upgraded
        // member (spares get upgraded when they are pulled into service —
        // or at the end, trivially, since they are already offline).
        let members = ctl.sb.group_members(self.group).to_vec();
        let candidate = members.iter().copied().find(|&p| {
            !self.done.contains(&p)
                && !self.in_shop.iter().any(|&(_, q)| q == p)
                && ctl.sb.phys(p).healthy
                && ctl.sb.slot_of(p).is_some()
        });
        let Some(victim) = candidate else {
            // Spares left un-upgraded can be upgraded in place (offline).
            let offline = members.iter().copied().find(|&p| {
                !self.done.contains(&p)
                    && !self.in_shop.iter().any(|&(_, q)| q == p)
                    && ctl.sb.slot_of(p).is_none()
                    && ctl.sb.phys(p).healthy
            });
            if let Some(spare) = offline {
                ctl.sb.set_phys_healthy(spare, false); // into the shop
                self.in_shop.push((now + self.upgrade_time, spare));
                return UpgradeStep::Pulled(spare);
            }
            return if self.in_shop.is_empty() && self.done.len() == members.len() {
                UpgradeStep::Complete
            } else {
                UpgradeStep::Waiting
            };
        };
        // lint:allow(unwrap) — candidates are drawn from the occupancy map
        let slot = ctl.sb.slot_of(victim).expect("candidate occupies");
        let spares = ctl.sb.spares(self.group);
        let Some(&backup) = spares.iter().find(|p| self.done.contains(p) || !self.in_shop.iter().any(|&(_, q)| q == **p)) else {
            return UpgradeStep::Waiting;
        };
        ctl.sb.replace(slot, backup);
        ctl.sb.set_phys_healthy(victim, false); // into the shop
        self.in_shop.push((now + self.upgrade_time, victim));
        UpgradeStep::Pulled(victim)
    }

    /// Run the campaign to completion, stepping every `tick`. Returns
    /// (completion instant, number of pulls).
    pub fn run_to_completion(
        &mut self,
        ctl: &mut Controller,
        start: Time,
        tick: Duration,
    ) -> (Time, usize) {
        let mut now = start;
        let mut pulls = 0;
        loop {
            match self.step(ctl, now) {
                UpgradeStep::Complete => return (now, pulls),
                UpgradeStep::Pulled(_) => pulls += 1,
                UpgradeStep::Finished(_) | UpgradeStep::Waiting => {
                    now += tick;
                }
            }
            assert!(
                now < start + Duration::from_secs(1_000_000),
                "campaign failed to converge"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::ControllerConfig;
    use sharebackup_topo::{ShareBackup, ShareBackupConfig};

    fn controller(k: usize, n: usize) -> Controller {
        Controller::new(
            ShareBackup::build(ShareBackupConfig::new(k, n)),
            ControllerConfig::default(),
        )
    }

    #[test]
    fn rolling_upgrade_covers_every_member() {
        let mut ctl = controller(4, 1);
        let g = GroupId::agg(0);
        let members = ctl.sb.group_members(g).to_vec();
        let mut campaign = RollingUpgrade::new(g, Duration::from_secs(600));
        let (finish, pulls) =
            campaign.run_to_completion(&mut ctl, Time::ZERO, Duration::from_secs(60));
        assert_eq!(campaign.upgraded().len(), members.len());
        assert_eq!(pulls, members.len());
        // With one backup, upgrades serialize: ≥ members × upgrade_time.
        assert!(finish >= Time::from_secs(600 * 3));
        // The network is whole afterwards.
        for node in ctl.sb.slots.net.node_ids() {
            assert!(ctl.sb.slots.net.node(node).up);
        }
    }

    #[test]
    fn network_stays_whole_throughout() {
        let mut ctl = controller(4, 2);
        let g = GroupId::edge(1);
        let mut campaign = RollingUpgrade::new(g, Duration::from_secs(100));
        let mut now = Time::ZERO;
        loop {
            match campaign.step(&mut ctl, now) {
                UpgradeStep::Complete => break,
                _ => {
                    // Invariant: every slot node stays up at all times.
                    for s in 0..2 {
                        let node = ctl.sb.slot_node(g.slot(s));
                        assert!(ctl.sb.slots.net.node(node).up, "slot down mid-upgrade");
                    }
                    now += Duration::from_secs(10);
                }
            }
        }
        assert_eq!(campaign.upgraded().len(), 4);
    }

    #[test]
    fn bigger_pool_parallelizes_upgrades() {
        let serial = {
            let mut ctl = controller(6, 1);
            let mut c = RollingUpgrade::new(GroupId::agg(0), Duration::from_secs(300));
            c.run_to_completion(&mut ctl, Time::ZERO, Duration::from_secs(30)).0
        };
        let parallel = {
            let mut ctl = controller(6, 3);
            let mut c = RollingUpgrade::new(GroupId::agg(0), Duration::from_secs(300));
            c.run_to_completion(&mut ctl, Time::ZERO, Duration::from_secs(30)).0
        };
        assert!(
            parallel < serial,
            "3 backups must beat 1: {parallel:?} vs {serial:?}"
        );
    }
}
