//! Fault injection for the *recovery machinery itself*.
//!
//! The paper assumes the repair path never misbehaves: backups are always
//! healthy, circuit reconfigurations always succeed, diagnosis is always
//! right. [`ChaosConfig`] breaks each of those assumptions independently so
//! the controller's retry/fallback logic can be stress-tested:
//!
//! * **DOA backups** — a pool member turns out dead at activation; the
//!   controller has already spent a reconfiguration round before the
//!   keep-alive silence reveals it, and retries with the next pool member.
//! * **Reconfiguration failures** — a circuit-switch request times out or
//!   fails; the controller retries with deterministic exponential backoff
//!   up to a bound, then gives up on the slot.
//! * **Diagnosis errors** — offline diagnosis (§4.2) convicts a healthy
//!   suspect (shrinking the pool for a full repair cycle) or exonerates a
//!   faulty one (*poisoning* the pool: the bad switch will be handed out as
//!   a backup and fail again in service).
//!
//! Keep-alive loss (spurious failure reports) is modeled at the scenario
//! layer — the controller just has to survive a report about a switch that
//! is actually healthy (see `Controller::handle_node_failure`).
//!
//! The control plane itself can also misbehave (paper §5.1): the primary
//! controller replica can crash at any phase boundary of an in-flight
//! recovery, and control messages (failure reports, reconfiguration
//! commands) traverse a lossy/delayed control network. Those knobs —
//! [`ChaosConfig::controller_crash_rate`], [`ChaosConfig::control_loss_rate`]
//! and [`ChaosConfig::control_delay_rate`] — are evaluated **only** by the
//! replicated control plane in [`crate::failover`], on its own
//! `SimRng::child` stream; a bare `Controller` never reads them, so every
//! pre-existing digest stays byte-identical.
//!
//! All chaos decisions draw from a [`sharebackup_sim::SimRng`] stream the
//! caller passes in (`Controller::with_chaos`); a controller built without
//! one performs **zero** chaos draws and behaves bit-identically to the
//! pre-chaos code.

/// Failure rates for the recovery machinery. All rates are probabilities
/// in `[0, 1]` evaluated per opportunity (per activation, per
/// reconfiguration attempt, per diagnosis).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChaosConfig {
    /// Probability that a selected backup switch is dead on arrival.
    pub doa_rate: f64,
    /// Probability that one circuit-reconfiguration attempt fails.
    pub reconfig_failure_rate: f64,
    /// Reconfiguration attempts before the controller gives up on the slot
    /// (so `max_reconfig_retries - 1` retries after the first attempt).
    pub max_reconfig_retries: u32,
    /// Probability that diagnosis convicts a healthy suspect.
    pub false_conviction_rate: f64,
    /// Probability that diagnosis exonerates a faulty suspect.
    pub false_exoneration_rate: f64,
    /// Probability that the primary controller replica crashes at a
    /// recovery phase boundary (report processed / diagnosis done /
    /// reconfiguration executed-but-unacked). Evaluated only by
    /// [`crate::failover::FailoverPlane`].
    pub controller_crash_rate: f64,
    /// Probability that one control-message transmission (a failure report
    /// or a reconfiguration command batch) is lost in the control network.
    /// Evaluated only by [`crate::failover::FailoverPlane`].
    pub control_loss_rate: f64,
    /// Probability that a delivered control message suffers an extra
    /// propagation delay (`FailoverConfig::control_delay`). Evaluated only
    /// by [`crate::failover::FailoverPlane`].
    pub control_delay_rate: f64,
}

impl ChaosConfig {
    /// The inert configuration: every rate zero. A controller carrying it
    /// still draws from its chaos stream (keeping draw alignment across a
    /// rate sweep), but every roll fails and no behavior changes.
    pub fn off() -> ChaosConfig {
        ChaosConfig {
            doa_rate: 0.0,
            reconfig_failure_rate: 0.0,
            max_reconfig_retries: 3,
            false_conviction_rate: 0.0,
            false_exoneration_rate: 0.0,
            controller_crash_rate: 0.0,
            control_loss_rate: 0.0,
            control_delay_rate: 0.0,
        }
    }

    /// Whether any rate is non-zero.
    pub fn is_active(&self) -> bool {
        self.doa_rate > 0.0
            || self.reconfig_failure_rate > 0.0
            || self.false_conviction_rate > 0.0
            || self.false_exoneration_rate > 0.0
            || self.controller_crash_rate > 0.0
            || self.control_loss_rate > 0.0
            || self.control_delay_rate > 0.0
    }
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig::off()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_is_inactive() {
        assert!(!ChaosConfig::off().is_active());
        assert_eq!(ChaosConfig::default(), ChaosConfig::off());
    }

    #[test]
    fn any_rate_activates() {
        for f in [
            |c: &mut ChaosConfig| c.doa_rate = 0.1,
            |c: &mut ChaosConfig| c.reconfig_failure_rate = 0.1,
            |c: &mut ChaosConfig| c.false_conviction_rate = 0.1,
            |c: &mut ChaosConfig| c.false_exoneration_rate = 0.1,
            |c: &mut ChaosConfig| c.controller_crash_rate = 0.1,
            |c: &mut ChaosConfig| c.control_loss_rate = 0.1,
            |c: &mut ChaosConfig| c.control_delay_rate = 0.1,
        ] {
            let mut c = ChaosConfig::off();
            f(&mut c);
            assert!(c.is_active());
        }
    }
}
