//! Property tests of the replicated control plane: under random crash
//! instants (scheduled and mid-recovery), control-message loss/delay
//! rates, replica counts, and seeds, no failure is ever silently dropped —
//! every submitted report is either *recovered* (with a completion
//! timestamp), *visibly unrecovered* (journaled with a computable dwell),
//! and the structural invariants plus the control-plane counter algebra
//! hold after every single transition. Re-driving an interrupted recovery
//! is idempotent: a crash after execution never double-assigns a backup.

use proptest::prelude::*;

use sharebackup_core::{
    ChaosConfig, Controller, ControllerConfig, FailoverConfig, FailoverPlane, FailureReport,
    RecoveryPhase,
};
use sharebackup_sim::{Duration, SimRng, Time};
use sharebackup_topo::{GroupId, ShareBackup, ShareBackupConfig};

fn controller() -> Controller {
    Controller::new(
        ShareBackup::build(ShareBackupConfig::new(4, 1)),
        ControllerConfig::default(),
    )
}

/// Everything the harness asserts after *every* plane transition.
fn consistent(ctl: &Controller) {
    ctl.sb.check_invariants();
    ctl.stats.assert_consistent();
}

/// The crash phases `force_crash_at` can interrupt, plus "no forced crash".
fn phase_of(i: usize) -> Option<RecoveryPhase> {
    match i {
        0 => None,
        1 => Some(RecoveryPhase::Reported),
        2 => Some(RecoveryPhase::Diagnosed),
        _ => Some(RecoveryPhase::Executed),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The trichotomy: after an arbitrary script of reports, scheduled
    /// replica crashes/restores, a possibly-forced mid-recovery crash, and
    /// a lossy/delayed control channel, every report is accounted for —
    /// completed (with completion time ≥ report time) or still journaled
    /// with a visible dwell. Invariants and counter algebra hold at every
    /// step, and the whole run replays bit-identically from its seed.
    #[test]
    fn no_failure_is_silently_dropped(
        seed in any::<u64>(),
        loss in 0.0f64..=0.9,
        delay in 0.0f64..=0.5,
        forced in 0usize..4,
        crash_offset_ms in 0u64..200,
        replicas in 1usize..=3,
    ) {
        let run = || {
            let mut ctl = controller();
            let chaos = ChaosConfig {
                control_loss_rate: loss,
                control_delay_rate: delay,
                ..ChaosConfig::off()
            };
            let mut plane = FailoverPlane::with_chaos(
                FailoverConfig { replicas, ..FailoverConfig::default() },
                chaos,
                SimRng::seed_from_u64(seed).child("prop-control"),
            );
            if let Some(phase) = phase_of(forced) {
                plane.force_crash_at(phase);
            }

            // Two independent data-plane failures in different groups.
            let v0 = ctl.sb.occupant(GroupId::agg(0).slot(0));
            let v1 = ctl.sb.occupant(GroupId::edge(1).slot(0));
            let mut completed = Vec::new();
            let mut drain = |plane: &mut FailoverPlane, ctl: &Controller| {
                for d in plane.take_completed() {
                    consistent(ctl);
                    completed.push((d.id, d.reported_at, d.completed_at));
                }
            };

            let t0 = Time::from_millis(100);
            ctl.sb.set_phys_healthy(v0, false);
            plane.submit(&mut ctl, FailureReport::Node(v0), t0);
            consistent(&ctl);
            drain(&mut plane, &ctl);

            // A scheduled crash at a random instant (idempotent if the
            // forced crash already killed replica 0).
            let tc = t0 + Duration::from_millis(crash_offset_ms);
            plane
                .crash_replica(&mut ctl, 0, tc)
                .expect("replica 0 exists");
            consistent(&ctl);

            let t1 = Time::from_millis(350);
            ctl.sb.set_phys_healthy(v1, false);
            plane.submit(&mut ctl, FailureReport::Node(v1), t1);
            consistent(&ctl);
            drain(&mut plane, &ctl);

            let t2 = Time::from_millis(500);
            plane
                .restore_replica(&mut ctl, 0, t2)
                .expect("replica 0 exists");
            consistent(&ctl);

            // Poll forward; retries/backoff/elections play out. No
            // completion requirement — a 90% lossy channel may legitimately
            // still be retrying at the end; it must just stay visible.
            let mut last = t2;
            for i in 0..30u64 {
                last = t2 + Duration::from_millis(200 * (i + 1));
                plane.poll(&mut ctl, last);
                consistent(&ctl);
                drain(&mut plane, &ctl);
            }

            // Trichotomy: everything submitted is completed or journaled.
            let pending = plane.pending();
            prop_assert_eq!(completed.len() + pending.len(), 2, "no report dropped");
            for &(_, reported, done) in &completed {
                prop_assert!(done >= reported, "completion can't precede report");
            }
            for p in &pending {
                // The dwell of a visibly-unrecovered failure is computable
                // and sane.
                let dwell = last.since(p.reported_at);
                prop_assert!(dwell > Duration::ZERO, "pending dwell visible");
            }
            // No double assignment: each completed node recovery replaced
            // exactly one switch, plus any journaled entry that already
            // executed but wasn't reconciled yet.
            let executed_pending = pending
                .iter()
                .filter(|p| p.phase == RecoveryPhase::Executed)
                .count();
            prop_assert_eq!(
                usize::try_from(ctl.stats.replacements).expect("small count"),
                completed.len() + executed_pending,
                "one replacement per executed recovery, never two"
            );
            (completed, ctl.stats)
        };

        // Bit-determinism: the same seed replays the same history.
        let a = run();
        let b = run();
        prop_assert_eq!(a, b, "replay diverged");
    }

    /// Idempotent re-drive, isolated: a primary crash at *any* phase
    /// boundary of a single live recovery is resumed by the successor,
    /// completes exactly once, and assigns exactly one backup.
    #[test]
    fn interrupted_recovery_completes_exactly_once(
        seed in any::<u64>(),
        loss in 0.0f64..=0.5,
        forced in 1usize..4,
    ) {
        let mut ctl = controller();
        let chaos = ChaosConfig { control_loss_rate: loss, ..ChaosConfig::off() };
        let mut plane = FailoverPlane::with_chaos(
            FailoverConfig::default(),
            chaos,
            SimRng::seed_from_u64(seed).child("prop-idem"),
        );
        plane.force_crash_at(phase_of(forced).expect("forced phase"));

        let victim = ctl.sb.occupant(GroupId::agg(0).slot(0));
        ctl.sb.set_phys_healthy(victim, false);
        let t0 = Time::from_secs(1);
        plane.submit(&mut ctl, FailureReport::Node(victim), t0);
        consistent(&ctl);

        let mut completed = plane.take_completed();
        let mut t = t0;
        for _ in 0..60 {
            t = t + plane.cfg.blackout() + Duration::from_millis(100);
            plane.poll(&mut ctl, t);
            consistent(&ctl);
            completed.extend(plane.take_completed());
            if !completed.is_empty() {
                break;
            }
        }
        prop_assert_eq!(completed.len(), 1, "completes exactly once");
        prop_assert!(completed[0].recovery.fully_recovered());
        prop_assert_eq!(ctl.stats.replacements, 1, "exactly one backup assigned");
        prop_assert_eq!(plane.pending_count(), 0);
        // The benched victim is out of the pool, the backup is in the slot.
        prop_assert!(!ctl.sb.spares(GroupId::agg(0)).contains(&victim));
    }
}
