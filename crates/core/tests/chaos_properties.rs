//! Property tests of the chaos layer: under *any* chaos profile (random
//! correlated-failure schedules crossed with random recovery-machinery
//! failure rates), the controller's structural invariants and counter
//! accounting hold after every single transition, replays are
//! bit-deterministic, and no flow is ever silently blackholed — every flow
//! either completes, is visibly stalled, or is explicitly accounted as
//! degraded.

use proptest::prelude::*;

use sharebackup_core::scenario::{
    map_chaos_schedule, sharebackup_timeline, SbEvent, ShareBackupWorld,
};
use sharebackup_core::{ChaosConfig, Controller, ControllerConfig};
use sharebackup_flowsim::{Environment, FlowSim, FlowSpec};
use sharebackup_routing::{DegradedMode, FlowKey};
use sharebackup_sim::{Duration, SimRng, Time};
use sharebackup_topo::{FatTree, FatTreeConfig, NodeId, ShareBackup, ShareBackupConfig};
use sharebackup_workload::{ChaosProfile, FailureInjector};

/// Virtual time covered by each generated schedule. Short enough to keep
/// proptest cases fast, long enough for repairs (30 s below) to come due
/// and re-enter the pool mid-run.
const HORIZON_SECS: u64 = 120;

/// Random recovery-machinery failure rates, up to an aggressive 50% per
/// opportunity.
fn machinery() -> impl Strategy<Value = ChaosConfig> {
    (
        0.0f64..=0.5,
        0.0f64..=0.5,
        1u32..=3,
        0.0f64..=0.5,
        0.0f64..=0.5,
    )
        .prop_map(|(doa, reconfig, retries, conv, exon)| ChaosConfig {
            doa_rate: doa,
            reconfig_failure_rate: reconfig,
            max_reconfig_retries: retries,
            false_conviction_rate: conv,
            false_exoneration_rate: exon,
            ..ChaosConfig::off()
        })
}

/// Random workload-side chaos: each component independently on/off with
/// random knobs, so the strategy space includes quiet, single-component,
/// and everything-at-once profiles.
fn profile() -> impl Strategy<Value = ChaosProfile> {
    (
        prop::option::of(5u64..=60),
        0.0f64..=1.0,
        prop::option::of(20u64..=90),
        1.0f64..=4.0,
        0usize..=2,
    )
        .prop_map(|(poisson, node_frac, burst, burst_size, flaps)| ChaosProfile {
            poisson_interarrival: poisson.map(Duration::from_secs),
            poisson_node_fraction: node_frac,
            burst_interarrival: burst.map(Duration::from_secs),
            mean_burst_size: burst_size,
            flapping_links: flaps,
            flap_up_dwell: Duration::from_secs(20),
            flap_down_dwell: Duration::from_secs(5),
            mean_duration: Duration::from_secs(60),
            ..ChaosProfile::quiet()
        })
}

/// Build a chaos-configured world plus its failure schedule (including
/// spurious keep-alive reports), all randomness drawn from `seed`'s child
/// streams. Short repair times so pools refill within the horizon.
fn build_world(
    k: usize,
    n: usize,
    seed: u64,
    profile: &ChaosProfile,
    machinery: ChaosConfig,
    mode: DegradedMode,
    spurious: usize,
) -> (ShareBackupWorld, Vec<(Time, SbEvent)>) {
    let rng = SimRng::seed_from_u64(seed).child("chaos-prop");
    let sb = ShareBackup::build(ShareBackupConfig::new(k, n));
    let cfg = ControllerConfig {
        retry_exhausted_on_repair: true,
        switch_repair_time: Duration::from_secs(30),
        host_repair_time: Duration::from_secs(45),
        ..ControllerConfig::default()
    };
    let controller = Controller::with_chaos(sb, cfg, machinery, rng.child("machinery"));
    let probe = FatTree::build(FatTreeConfig::new(k));
    let injector = FailureInjector::new(&probe.net);
    let horizon = Time::from_secs(HORIZON_SECS);
    let events = injector.chaos_process(&rng.child("schedule"), &probe.net, horizon, profile);
    let world = ShareBackupWorld::new(controller, vec![]).with_degraded_mode(mode);
    let mut failures = map_chaos_schedule(&world.controller.sb, &probe.net, &events);
    if spurious > 0 {
        let mut r = rng.child("spurious");
        for _ in 0..spurious {
            let at = Time::from_secs_f64(r.f64() * HORIZON_SECS as f64);
            let node = injector.sample_nodes(&mut r, 1)[0];
            if let Some(slot) = world.controller.sb.node_slot(node) {
                let occ = world.controller.sb.occupant(slot);
                failures.push((at, SbEvent::SpuriousReport(occ)));
            }
        }
    }
    failures.sort_by_key(|&(t, _)| t);
    (world, failures)
}

/// Two waves of host-to-host flows with rotating partners — enough traffic
/// that every pod has flows in flight through the outage windows.
fn traffic(hosts: &[NodeId]) -> Vec<FlowSpec> {
    let h = hosts.len();
    let mut flows = Vec::with_capacity(2 * h);
    for w in 0..2usize {
        let at = Time::from_secs(w as u64 * HORIZON_SECS / 3);
        let offset = 1 + (w * (h / 4 + 1)) % (h - 1);
        for i in 0..h {
            flows.push(FlowSpec {
                key: FlowKey::new(hosts[i], hosts[(i + offset) % h], (w * h + i) as u64),
                bytes: 12_500_000, // 10 ms at 10 G
                arrival: at,
            });
        }
    }
    flows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tentpole safety property: drive the controller through a random
    /// chaos schedule and re-verify the network's structural invariants
    /// (slot-occupancy bijectivity, crossbar matchings, circuit
    /// realization) plus the stats counter equations after EVERY
    /// transition — each injection, each recovery batch, each repair poll.
    #[test]
    fn invariants_hold_after_every_transition(
        seed in any::<u64>(),
        n in 1usize..=2,
        machinery in machinery(),
        profile in profile(),
        spurious in 0usize..=2,
    ) {
        let (mut world, failures) =
            build_world(4, n, seed, &profile, machinery, DegradedMode::Reroute, spurious);
        let (events, times) = sharebackup_timeline(&world, &failures);
        world.events = events;
        for (i, &t) in times.iter().enumerate() {
            world.on_epoch(i, t);
            world.controller.sb.check_invariants();
            world.controller.stats.assert_consistent();
        }
    }

    /// No silent blackholes: run real traffic through the chaos schedule
    /// under both degraded-mode policies. Every flow's fate must be
    /// explicit — completed, visibly stalled at some point (`ever_stalled`),
    /// or accounted in the degraded tracker. A flow that neither finishes
    /// nor shows up in either record has been silently dropped.
    #[test]
    fn no_flow_silently_blackholed(
        seed in any::<u64>(),
        n in 1usize..=2,
        stall in any::<bool>(),
        machinery in machinery(),
        profile in profile(),
        spurious in 0usize..=2,
    ) {
        let mode = if stall { DegradedMode::Stall } else { DegradedMode::Reroute };
        let (mut world, failures) =
            build_world(4, n, seed, &profile, machinery, mode, spurious);
        let (events, times) = sharebackup_timeline(&world, &failures);
        world.events = events;
        let hosts: Vec<NodeId> = world.controller.sb.slots.hosts().to_vec();
        let flows = traffic(&hosts);
        let out = FlowSim::new().run(&mut world, &flows, &times);
        world.controller.sb.check_invariants();
        world.controller.stats.assert_consistent();
        for (spec, fo) in flows.iter().zip(out.flows.iter()) {
            prop_assert!(
                fo.completed.is_some()
                    || fo.ever_stalled
                    || world.tracker.contains(spec.key.id),
                "flow {} silently blackholed: not completed, never stalled, \
                 not in the degraded tracker",
                spec.key.id
            );
        }
    }

    /// Replaying the same seed reproduces the exact same counters: chaos
    /// draws only from the passed-in `SimRng` streams, never from ambient
    /// entropy.
    #[test]
    fn chaos_replay_is_deterministic(
        seed in any::<u64>(),
        machinery in machinery(),
        profile in profile(),
    ) {
        let run = || {
            let (mut world, failures) =
                build_world(4, 1, seed, &profile, machinery, DegradedMode::Reroute, 1);
            let (events, times) = sharebackup_timeline(&world, &failures);
            world.events = events;
            for (i, &t) in times.iter().enumerate() {
                world.on_epoch(i, t);
            }
            world.controller.stats
        };
        prop_assert_eq!(run(), run());
    }
}
