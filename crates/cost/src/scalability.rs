//! §5.3: scalability limits from circuit-switch port counts.
//!
//! ShareBackup's circuit switches need (k/2 + n + 2) ports per side, so the
//! technology's port limit bounds the deployable (k, n) combinations:
//! with 32-port 2D MEMS, k/2 + n + 2 ≤ 32 — k = 58 at n = 1 (over 48k
//! hosts), or n = 6 at k = 48 (25% backup ratio). 256-port electrical
//! crosspoint switches are nowhere near binding.

use sharebackup_topo::CircuitTech;

/// Scalability analysis for one circuit technology.
#[derive(Clone, Copy, Debug)]
pub struct ScalabilityLimits {
    /// The circuit-switch technology.
    pub tech: CircuitTech,
}

impl ScalabilityLimits {
    /// Analysis under `tech`'s port limit.
    pub fn new(tech: CircuitTech) -> ScalabilityLimits {
        ScalabilityLimits { tech }
    }

    /// Ports a ShareBackup(k, n) circuit switch needs per side.
    pub fn ports_needed(k: usize, n: usize) -> usize {
        k / 2 + n + 2
    }

    /// Whether (k, n) is deployable under this technology.
    pub fn supports(&self, k: usize, n: usize) -> bool {
        Self::ports_needed(k, n) <= self.tech.max_ports()
    }

    /// Largest even k deployable with the given n.
    pub fn max_k(&self, n: usize) -> usize {
        let budget = self.tech.max_ports().saturating_sub(n + 2);
        2 * budget
    }

    /// Largest n deployable with the given k (0 means not deployable).
    pub fn max_n(&self, k: usize) -> usize {
        self.tech.max_ports().saturating_sub(k / 2 + 2)
    }

    /// Hosts of the largest deployable fat-tree with the given n.
    pub fn max_hosts(&self, n: usize) -> usize {
        let k = self.max_k(n);
        k * k * k / 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mems_numbers() {
        // §5.3: 32-port MEMS, n=1 → k=58, over 48k hosts, ratio 3.45%.
        let s = ScalabilityLimits::new(CircuitTech::Mems2D);
        assert_eq!(s.max_k(1), 58);
        assert!(s.max_hosts(1) > 48_000);
        let ratio: f64 = 1.0 / (58.0 / 2.0);
        assert!((ratio - 0.0345).abs() < 0.0001);
        // And n can reach 6 for k=48 (25% backup ratio).
        assert_eq!(s.max_n(48), 6);
        assert!(s.supports(48, 6));
        assert!(!s.supports(48, 7));
    }

    #[test]
    fn ports_needed_formula() {
        assert_eq!(ScalabilityLimits::ports_needed(48, 1), 27);
        assert_eq!(ScalabilityLimits::ports_needed(58, 1), 32);
    }

    #[test]
    fn crosspoint_is_not_binding_for_realistic_k() {
        let s = ScalabilityLimits::new(CircuitTech::Crosspoint);
        assert!(s.supports(64, 8));
        assert!(s.max_k(1) >= 256); // far beyond deployed fat-trees
    }

    #[test]
    fn max_k_inverts_supports() {
        for tech in [CircuitTech::Mems2D, CircuitTech::Crosspoint] {
            let s = ScalabilityLimits::new(tech);
            for n in 1..5 {
                let k = s.max_k(n);
                assert!(s.supports(k, n));
                assert!(!s.supports(k + 2, n));
            }
        }
    }
}
