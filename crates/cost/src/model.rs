//! Table 2: cost equations and market prices.
//!
//! | Architecture | Cost |
//! |---|---|
//! | Fat-tree     | (5/4)k³·b + (k³/2)·c |
//! | ShareBackup  | (3/2)k²(k/2+n+2)·a + (5/2)k²n·b + (5/4)k²n·c + fat-tree |
//! | Aspen Tree   | (k³/2)·b + (k³/4)·c + fat-tree |
//! | 1:1 Backup   | (15/4)k³·b + (3/2)k³·c + fat-tree |
//!
//! with `a` the per-port price of circuit switches ($3 electrical crosspoint
//! / $10 2D-MEMS optical), `b` = $60 per packet-switch port ($3000 for a
//! 48-port 10 Gbps bare-metal switch), and `c` the per-link cabling cost
//! ($81 for 10 m 10 Gbps DAC / $40 for two transceivers plus fiber).

/// Transmission medium deployed in the data center, which selects the
/// circuit-switch technology and cabling prices (paper §5.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Medium {
    /// Copper DAC cables + electrical crosspoint circuit switches (E-DC).
    Electrical,
    /// Optical transceivers/fiber + 2D-MEMS circuit switches (O-DC).
    Optical,
}

/// The per-unit market prices of Table 2, in dollars.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Prices {
    /// Per-port cost of circuit switches.
    pub a: f64,
    /// Per-port cost of packet switches.
    pub b: f64,
    /// Cost per link (cable, plus transceivers for optical).
    pub c: f64,
}

impl Prices {
    /// Table 2's prices for the given medium.
    pub fn for_medium(m: Medium) -> Prices {
        match m {
            Medium::Electrical => Prices { a: 3.0, b: 60.0, c: 81.0 },
            Medium::Optical => Prices { a: 10.0, b: 60.0, c: 40.0 },
        }
    }
}

/// The compared architectures of Table 2 / Fig. 5.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Architecture {
    /// Plain fat-tree (the baseline everything is relative to).
    FatTree,
    /// ShareBackup with `n` backups per failure group.
    ShareBackup {
        /// Backups per failure group.
        n: usize,
    },
    /// Aspen Tree (one extra layer of switches + duplicated links).
    AspenTree,
    /// Full 1:1 backup (every switch duplicated, ports doubled).
    OneToOneBackup,
}

/// A cost decomposed into its Table 2 terms.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostBreakdown {
    /// Circuit-switch port cost (`a`-term).
    pub circuit_ports: f64,
    /// Packet-switch port cost (`b`-term).
    pub switch_ports: f64,
    /// Cabling cost (`c`-term).
    pub cables: f64,
}

impl CostBreakdown {
    /// Total dollars.
    pub fn total(&self) -> f64 {
        self.circuit_ports + self.switch_ports + self.cables
    }
}

/// Fat-tree baseline cost: (5/4)k³·b + (k³/2)·c.
pub fn fat_tree_cost(k: usize, p: Prices) -> CostBreakdown {
    let k3 = (k * k * k) as f64;
    CostBreakdown {
        circuit_ports: 0.0,
        switch_ports: 1.25 * k3 * p.b,
        cables: 0.5 * k3 * p.c,
    }
}

/// ShareBackup's *additional* cost over fat-tree:
/// (3/2)k²(k/2+n+2)·a + (5/2)k²n·b + (5/4)k²n·c.
pub fn sharebackup_additional(k: usize, n: usize, p: Prices) -> CostBreakdown {
    let k2 = (k * k) as f64;
    let nf = n as f64;
    CostBreakdown {
        circuit_ports: 1.5 * k2 * (k as f64 / 2.0 + nf + 2.0) * p.a,
        switch_ports: 2.5 * k2 * nf * p.b,
        cables: 1.25 * k2 * nf * p.c,
    }
}

/// Aspen Tree's additional cost over fat-tree: (k³/2)·b + (k³/4)·c.
pub fn aspen_additional(k: usize, p: Prices) -> CostBreakdown {
    let k3 = (k * k * k) as f64;
    CostBreakdown {
        circuit_ports: 0.0,
        switch_ports: 0.5 * k3 * p.b,
        cables: 0.25 * k3 * p.c,
    }
}

/// 1:1 backup's additional cost over fat-tree: (15/4)k³·b + (3/2)k³·c.
pub fn one_to_one_additional(k: usize, p: Prices) -> CostBreakdown {
    let k3 = (k * k * k) as f64;
    CostBreakdown {
        circuit_ports: 0.0,
        switch_ports: 3.75 * k3 * p.b,
        cables: 1.5 * k3 * p.c,
    }
}

/// Total cost of an architecture (fat-tree baseline included).
pub fn total_cost(arch: Architecture, k: usize, medium: Medium) -> f64 {
    let p = Prices::for_medium(medium);
    let base = fat_tree_cost(k, p).total();
    match arch {
        Architecture::FatTree => base,
        Architecture::ShareBackup { n } => base + sharebackup_additional(k, n, p).total(),
        Architecture::AspenTree => base + aspen_additional(k, p).total(),
        Architecture::OneToOneBackup => base + one_to_one_additional(k, p).total(),
    }
}

/// Fig. 5's y-axis: additional cost relative to fat-tree, as a fraction
/// (0.067 = 6.7%).
pub fn relative_additional(arch: Architecture, k: usize, medium: Medium) -> f64 {
    let p = Prices::for_medium(medium);
    let base = fat_tree_cost(k, p).total();
    let add = match arch {
        Architecture::FatTree => 0.0,
        Architecture::ShareBackup { n } => sharebackup_additional(k, n, p).total(),
        Architecture::AspenTree => aspen_additional(k, p).total(),
        Architecture::OneToOneBackup => one_to_one_additional(k, p).total(),
    };
    add / base
}

/// Device inventory deltas of ShareBackup (§5.2 text): 5k/2·n more packet
/// switches, (5/4)k²·n more cables, (3/2)k²(k/2+n+2) circuit-switch ports.
pub fn sharebackup_inventory(k: usize, n: usize) -> (usize, usize, usize) {
    let switches = 5 * k * n / 2;
    let cables = 5 * k * k * n / 4;
    let circuit_ports = 3 * k * k * (k / 2 + n + 2) / 2;
    (switches, cables, circuit_ports)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_to_one_backup_is_four_times_fat_tree() {
        // Paper §5.2: "the cost of 1:1 backup is 4× that of fat-tree"
        // (additional = 3×), for any k and either medium.
        for medium in [Medium::Electrical, Medium::Optical] {
            for k in [8, 16, 48] {
                let rel = relative_additional(Architecture::OneToOneBackup, k, medium);
                assert!((rel - 3.0).abs() < 1e-12, "k={k} {medium:?}: {rel}");
            }
        }
    }

    #[test]
    fn paper_headline_percentages_at_k48_n1() {
        // §5.2: additional cost of ShareBackup at k=48, n=1 is 6.7% (E-DC)
        // and 13.3% (O-DC) of fat-tree.
        let e = relative_additional(
            Architecture::ShareBackup { n: 1 },
            48,
            Medium::Electrical,
        );
        assert!((e - 0.067).abs() < 0.001, "E-DC: {e}");
        let o = relative_additional(Architecture::ShareBackup { n: 1 }, 48, Medium::Optical);
        assert!((o - 0.133).abs() < 0.001, "O-DC: {o}");
    }

    #[test]
    fn aspen_costs_6_5x_and_3_2x_sharebackup() {
        // §5.2: "Aspen Tree costs 6.5× and 3.2× as much [additional cost]".
        let sb_e = relative_additional(
            Architecture::ShareBackup { n: 1 },
            48,
            Medium::Electrical,
        );
        let asp_e = relative_additional(Architecture::AspenTree, 48, Medium::Electrical);
        assert!((asp_e / sb_e - 6.5).abs() < 0.1, "{}", asp_e / sb_e);
        let sb_o = relative_additional(Architecture::ShareBackup { n: 1 }, 48, Medium::Optical);
        let asp_o = relative_additional(Architecture::AspenTree, 48, Medium::Optical);
        assert!((asp_o / sb_o - 3.2).abs() < 0.1, "{}", asp_o / sb_o);
    }

    #[test]
    fn sharebackup_relative_cost_decreases_with_scale() {
        // Fig. 5: for fixed n the relative additional cost decreases with k
        // (backups shared by more switches).
        let mut last = f64::INFINITY;
        for k in [8, 16, 24, 32, 48, 64] {
            let rel = relative_additional(
                Architecture::ShareBackup { n: 1 },
                k,
                Medium::Electrical,
            );
            assert!(rel < last, "k={k}: {rel} !< {last}");
            last = rel;
        }
    }

    #[test]
    fn sharebackup_n4_still_cheaper_than_aspen_at_k48() {
        // §5.2: "Even if n is increased to 4 … ShareBackup is still cheaper
        // than Aspen Tree."
        for medium in [Medium::Electrical, Medium::Optical] {
            let sb = relative_additional(Architecture::ShareBackup { n: 4 }, 48, medium);
            let asp = relative_additional(Architecture::AspenTree, 48, medium);
            assert!(sb < asp, "{medium:?}: {sb} !< {asp}");
        }
    }

    #[test]
    fn small_k_large_n_can_out_cost_aspen() {
        // §5.2's closing caveat: cases where ShareBackup out-costs Aspen
        // exist (flexibility of buying more robustness). At small k with
        // large n, the switch-port term dominates.
        let sb = relative_additional(Architecture::ShareBackup { n: 8 }, 8, Medium::Electrical);
        let asp = relative_additional(Architecture::AspenTree, 8, Medium::Electrical);
        assert!(sb > asp, "{sb} should exceed {asp}");
    }

    #[test]
    fn inventory_formulas() {
        let (sw, cables, cports) = sharebackup_inventory(48, 1);
        assert_eq!(sw, 120); // 5k/2 groups × 1
        assert_eq!(cables, 2880); // (5/4)k²
        assert_eq!(cports, 3 * 48 * 48 * 27 / 2);
    }

    #[test]
    fn breakdown_totals_are_consistent() {
        let p = Prices::for_medium(Medium::Electrical);
        let b = fat_tree_cost(16, p);
        assert_eq!(b.total(), b.switch_ports + b.cables);
        assert_eq!(b.circuit_ports, 0.0);
        let add = sharebackup_additional(16, 2, p);
        assert!(add.circuit_ports > 0.0);
        assert_eq!(
            total_cost(Architecture::ShareBackup { n: 2 }, 16, Medium::Electrical),
            b.total() + add.total()
        );
    }

    #[test]
    fn prices_match_table2() {
        let e = Prices::for_medium(Medium::Electrical);
        assert_eq!((e.a, e.b, e.c), (3.0, 60.0, 81.0));
        let o = Prices::for_medium(Medium::Optical);
        assert_eq!((o.a, o.b, o.c), (10.0, 60.0, 40.0));
    }
}
