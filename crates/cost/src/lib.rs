#![warn(missing_docs)]
//! # sharebackup-cost
//!
//! The paper's cost and scalability analysis (§5.1–§5.3): Table 2's cost
//! equations with the quoted market prices, the Fig. 5 relative-cost
//! comparison, the §5.1 capacity-to-handle-failures arithmetic, and the
//! §5.3 circuit-port scalability limits.

pub mod capacity;
pub mod model;
pub mod scalability;

pub use capacity::CapacityAnalysis;
pub use model::{Architecture, CostBreakdown, Medium, Prices};
pub use scalability::ScalabilityLimits;
