//! §5.1: capacity to handle failures.
//!
//! A failure group of k/2 switches shares n backups, so ShareBackup rides
//! out n concurrent switch failures per group (and up to k·n link failures
//! rooted at those n switches). The *backup ratio* n/(k/2) is the knob the
//! paper compares against the measured 0.01% switch failure rate.

/// Capacity analysis of a ShareBackup(k, n) deployment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CapacityAnalysis {
    /// Fat-tree parameter.
    pub k: usize,
    /// Backups per failure group.
    pub n: usize,
}

impl CapacityAnalysis {
    /// Construct the analysis for a deployment.
    pub fn new(k: usize, n: usize) -> CapacityAnalysis {
        CapacityAnalysis { k, n }
    }

    /// Backup ratio n/(k/2).
    pub fn backup_ratio(&self) -> f64 {
        self.n as f64 / (self.k as f64 / 2.0)
    }

    /// Concurrent switch failures tolerated per failure group.
    pub fn switch_failures_per_group(&self) -> usize {
        self.n
    }

    /// Maximum link failures recoverable per group when failures root at n
    /// switches (each switch has k interfaces): k·n.
    pub fn link_failures_per_group(&self) -> usize {
        self.k * self.n
    }

    /// Total failure groups: 5k/2 (k edge + k agg + k/2 core).
    pub fn failure_groups(&self) -> usize {
        5 * self.k / 2
    }

    /// Network-wide concurrent switch failures tolerated (if spread at most
    /// n per group): n · 5k/2.
    pub fn total_switch_failures(&self) -> usize {
        self.n * self.failure_groups()
    }

    /// Hosts in the underlying fat-tree: k³/4.
    pub fn hosts(&self) -> usize {
        self.k * self.k * self.k / 4
    }

    /// Headroom factor of the backup ratio over a device failure rate
    /// (e.g. 0.0001 for 99.99% availability): the paper's "more than 400×".
    pub fn headroom_over(&self, failure_rate: f64) -> f64 {
        self.backup_ratio() / failure_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_k48_n1_numbers() {
        // §5.1: "let n=1 for a k=48 fat-tree with over 27k hosts, the
        // backup ratio is n/(k/2)=4.17%, which is more than 400× higher
        // than the 0.01% switch failure rate."
        let c = CapacityAnalysis::new(48, 1);
        assert!(c.hosts() > 27_000);
        assert!((c.backup_ratio() - 0.0417).abs() < 0.0001);
        assert!(c.headroom_over(0.0001) > 400.0);
    }

    #[test]
    fn group_counts() {
        let c = CapacityAnalysis::new(16, 2);
        assert_eq!(c.failure_groups(), 40);
        assert_eq!(c.total_switch_failures(), 80);
        assert_eq!(c.switch_failures_per_group(), 2);
        assert_eq!(c.link_failures_per_group(), 32);
    }

    #[test]
    fn ratio_scales_inversely_with_k() {
        let small = CapacityAnalysis::new(8, 1).backup_ratio();
        let large = CapacityAnalysis::new(64, 1).backup_ratio();
        assert!(small > large);
        assert!((small - 0.25).abs() < 1e-12);
    }
}
