//! Fixture: D1 violation — `HashMap`/`HashSet` in a simulation-path crate.
//! Staged as `crates/sim/src/bad_map.rs` by the integration tests.

use std::collections::{HashMap, HashSet};

pub fn tally(xs: &[u32]) -> usize {
    let mut seen: HashSet<u32> = HashSet::new();
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for &x in xs {
        seen.insert(x);
        *counts.entry(x).or_insert(0) += 1;
    }
    // Iteration order over `counts` is nondeterministic — exactly the bug
    // class rule D1 exists to catch.
    counts.values().sum::<usize>() + seen.len()
}
