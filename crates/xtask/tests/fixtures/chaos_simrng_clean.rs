//! Fixture: the sanctioned chaos-sampling idiom — every roll drawn from a
//! caller-supplied `SimRng` child stream, no ambient entropy, no wall
//! clock. Staged as `crates/core/src/good_chaos.rs` by the integration
//! tests; must produce zero findings.

use sharebackup_sim::SimRng;

pub struct ChaosRoller {
    doa_rate: f64,
    rng: Option<SimRng>,
}

impl ChaosRoller {
    /// Build with a dedicated child stream so chaos draws never perturb
    /// workload or failure sampling.
    pub fn with_stream(doa_rate: f64, parent: &SimRng) -> ChaosRoller {
        ChaosRoller {
            doa_rate,
            rng: Some(parent.child("machinery")),
        }
    }

    /// Without a stream installed, a roller performs zero draws.
    pub fn roll_doa(&mut self) -> bool {
        match &mut self.rng {
            Some(rng) => rng.chance(self.doa_rate),
            None => false,
        }
    }
}
