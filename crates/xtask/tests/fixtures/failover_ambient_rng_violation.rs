//! Fixture: a control-plane failover path that reaches for ambient entropy
//! and the wall clock. Staged as `crates/core/src/bad_failover.rs` by the
//! integration tests: election jitter from `thread_rng`, loss rolls from
//! `rand::random`, and blackout stamps from `SystemTime` all break replay
//! determinism (and the bench digests' `--jobs` byte-identity), so every
//! one must be flagged by `ambient-rng`.

use std::time::SystemTime;

pub struct ControlChannel {
    loss_rate: f64,
}

impl ControlChannel {
    pub fn send_lost(&mut self) -> bool {
        // Rolling control-message loss from ambient entropy: two replays
        // of the same seed would disagree on which report got through.
        rand::random::<f64>() < self.loss_rate
    }

    pub fn election_jitter_ms(&mut self) -> u64 {
        // Wall-clock-seeded jitter makes the successor's takeover instant
        // (and therefore every downstream recovery latency) irreproducible.
        let now = SystemTime::now();
        let _ = now;
        rand::thread_rng().gen_range(0..50)
    }
}
