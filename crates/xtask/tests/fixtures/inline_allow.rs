//! Fixture: a D1 violation suppressed by an inline `lint:allow` directive.
//! Staged as `crates/topo/src/allowed_map.rs` by the integration tests.

// lint:allow(map-iteration) — values are drained into a sorted Vec below.
use std::collections::HashMap; // lint:allow(map-iteration)

// lint:allow(map-iteration) — the map is a read-only input, sorted below
pub fn sorted_counts(counts: &HashMap<u32, usize>) -> Vec<(u32, usize)> {
    // lint:allow(map-iteration) — sorted immediately after collection.
    let mut v: Vec<(u32, usize)> = counts.iter().map(|(k, c)| (*k, *c)).collect();
    v.sort_unstable();
    v
}
