//! Fixture: a telemetry span stamped from the wall clock instead of the
//! virtual clock. The ambient-rng rule must flag both time sources — spans
//! land in trace files that CI byte-diffs across `--jobs` values, so a
//! wall-clock stamp breaks reproducibility exactly like one in the
//! simulator.

use std::time::{Instant, SystemTime};

pub fn span_with_wallclock_stamp(tracer: &Tracer) {
    let started = Instant::now();
    tracer.span_begin(Time::from_nanos(started.elapsed().as_nanos() as u64), "bad", "span");
    let _epoch = SystemTime::now();
}
