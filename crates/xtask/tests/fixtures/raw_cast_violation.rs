//! Fixture: D4 violations — bare `as` integer casts on Time/ID arithmetic.
//! Staged as `crates/sim/src/bad_cast.rs` by the integration tests.

pub struct Time(pub u64);
pub struct NodeId(pub u32);

impl Time {
    pub fn as_nanos(&self) -> u64 {
        self.0
    }
}

pub fn truncate_time(t: Time) -> u32 {
    // Silently truncates after ~4.3 seconds of simulated time.
    t.as_nanos() as u32
}

pub fn node_from_wide(x: u64) -> NodeId {
    NodeId(x as u32)
}

pub fn unrelated_cast(x: u16) -> u32 {
    // Not Time/ID arithmetic — must NOT be flagged.
    x as u32
}
