//! Fixture: D3 violations — `.unwrap()`/`.expect()` in library code.
//! Staged as `crates/routing/src/bad_unwrap.rs` by the integration tests.
//! The `#[cfg(test)]` module at the bottom must NOT be flagged.

pub fn first_even(xs: &[u32]) -> u32 {
    *xs.iter().find(|x| *x % 2 == 0).unwrap()
}

pub fn parse_port(s: &str) -> u16 {
    s.parse().expect("port")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
        assert_eq!(first_even(&[1, 2]), 2);
    }
}
