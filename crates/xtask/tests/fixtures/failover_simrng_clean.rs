//! Fixture: the sanctioned control-plane chaos idiom — loss/delay rolls
//! drawn from a caller-supplied `SimRng` child stream, and a channel built
//! without a stream performing zero draws (inert-by-construction). Staged
//! as `crates/core/src/good_failover.rs` by the integration tests; must
//! produce zero findings.

use sharebackup_sim::SimRng;

pub struct ControlChannel {
    loss_rate: f64,
    rng: Option<SimRng>,
}

impl ControlChannel {
    /// Build with a dedicated child stream so control-plane rolls never
    /// perturb the wrapped controller's draw sequence.
    pub fn with_stream(loss_rate: f64, parent: &SimRng) -> ControlChannel {
        ControlChannel {
            loss_rate,
            rng: Some(parent.child("control-chaos")),
        }
    }

    /// Without a stream installed, the channel is lossless and drawless:
    /// pre-existing digests stay byte-identical.
    pub fn send_lost(&mut self) -> bool {
        match &mut self.rng {
            Some(rng) => rng.chance(self.loss_rate),
            None => false,
        }
    }
}
