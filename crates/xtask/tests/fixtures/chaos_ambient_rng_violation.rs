//! Fixture: a chaos sampler that reaches for ambient entropy instead of a
//! passed-in `SimRng` stream. Staged as `crates/core/src/bad_chaos.rs` by
//! the integration tests: every one of these draws breaks replay
//! determinism (and the `--jobs` byte-identity contract) and must be
//! flagged by `ambient-rng`.

use std::time::SystemTime;

pub struct ChaosRoller {
    doa_rate: f64,
}

impl ChaosRoller {
    pub fn roll_doa(&mut self) -> bool {
        // Seeding chaos decisions from the wall clock: nondeterministic.
        let now = SystemTime::now();
        let jitter = rand::random::<f64>();
        let _ = now;
        jitter < self.doa_rate || rand::thread_rng().gen_bool(self.doa_rate)
    }
}
