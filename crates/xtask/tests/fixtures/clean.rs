//! Fixture: a fully clean simulation-path library file — deterministic
//! containers, no ambient entropy, no panicking accessors, checked casts.

use std::collections::BTreeMap;

pub struct Time(pub u64);

pub fn histogram(xs: &[u32]) -> BTreeMap<u32, usize> {
    let mut h = BTreeMap::new();
    for &x in xs {
        *h.entry(x).or_insert(0) += 1;
    }
    h
}

pub fn widen(t: &Time) -> u128 {
    u128::from(t.0)
}

pub fn narrow(t: &Time) -> Option<u32> {
    u32::try_from(t.0).ok()
}
