//! Fixture: D2 violations — ambient nondeterminism outside `crates/bench`.
//! Staged as `crates/workload/src/bad_rng.rs` by the integration tests.

use std::time::{Instant, SystemTime};

pub fn jitter() -> u64 {
    // Wall-clock reads make runs unreproducible.
    let t0 = Instant::now();
    let wall = SystemTime::now();
    let r: u64 = rand::random();
    let _ = (t0, wall);
    r ^ rand::thread_rng().next_u64()
}
