//! Fixture: the deterministic counterpart of `map_iteration_violation.rs`.
//! `BTreeMap`/`BTreeSet` iterate in key order, so this file is clean.

use std::collections::{BTreeMap, BTreeSet};

pub fn tally(xs: &[u32]) -> usize {
    let mut seen: BTreeSet<u32> = BTreeSet::new();
    let mut counts: BTreeMap<u32, usize> = BTreeMap::new();
    for &x in xs {
        seen.insert(x);
        *counts.entry(x).or_insert(0) += 1;
    }
    counts.values().sum::<usize>() + seen.len()
}
