//! End-to-end tests for `cargo xtask lint`: each test stages fixture files
//! into a throwaway workspace and drives the real `xtask` binary, asserting
//! on exit codes and report contents.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name}: {e}"))
}

/// A scratch workspace under the OS temp dir, deleted on drop.
struct TempWorkspace {
    root: PathBuf,
}

impl TempWorkspace {
    fn new(tag: &str) -> Self {
        // CARGO_TARGET_TMPDIR keeps scratch workspaces under target/tmp.
        let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!("xtask-lint-{tag}"));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).expect("create temp workspace");
        fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("write manifest");
        Self { root }
    }

    fn stage(&self, rel: &str, contents: &str) {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().expect("parent")).expect("create dirs");
        fs::write(&path, contents).expect("write staged file");
    }

    fn lint(&self, args: &[&str]) -> (i32, String, String) {
        let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
            .arg("lint")
            .args(args)
            .current_dir(&self.root)
            .output()
            .expect("run xtask lint");
        (
            out.status.code().unwrap_or(-1),
            String::from_utf8_lossy(&out.stdout).into_owned(),
            String::from_utf8_lossy(&out.stderr).into_owned(),
        )
    }
}

impl Drop for TempWorkspace {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

#[test]
fn violations_fail_the_lint() {
    let ws = TempWorkspace::new("violations");
    ws.stage("crates/sim/src/bad_map.rs", &fixture("map_iteration_violation.rs"));
    ws.stage("crates/workload/src/bad_rng.rs", &fixture("ambient_rng_violation.rs"));
    ws.stage("crates/routing/src/bad_unwrap.rs", &fixture("unwrap_violation.rs"));
    ws.stage("crates/sim/src/bad_cast.rs", &fixture("raw_cast_violation.rs"));

    let (code, stdout, _) = ws.lint(&[]);
    assert_eq!(code, 1, "violations must fail the lint\n{stdout}");
    for rule in ["map-iteration", "ambient-rng", "unwrap", "raw-cast"] {
        assert!(stdout.contains(&format!("[{rule}]")), "missing rule {rule}:\n{stdout}");
    }
    // The #[cfg(test)] unwraps and the unrelated u16→u32 cast stay clean.
    assert!(!stdout.contains("unwrap_in_tests_is_fine"));
    assert!(
        !stdout.lines().any(|l| l.contains("bad_cast.rs:2") && l.contains("raw-cast")),
        "unrelated cast must not be flagged:\n{stdout}"
    );
}

#[test]
fn telemetry_crate_is_in_ambient_rng_scope() {
    // The telemetry crate writes trace artifacts that CI byte-diffs, so a
    // wall-clock-stamped span must be flagged like any sim-path violation.
    let ws = TempWorkspace::new("telemetry-wallclock");
    ws.stage(
        "crates/telemetry/src/bad_span.rs",
        &fixture("telemetry_wallclock_span.rs"),
    );

    let (code, stdout, _) = ws.lint(&[]);
    assert_eq!(code, 1, "wall-clock span must fail the lint\n{stdout}");
    assert!(
        stdout.contains("[ambient-rng]"),
        "expected an ambient-rng finding:\n{stdout}"
    );
    assert!(
        stdout.contains("crates/telemetry/src/bad_span.rs"),
        "finding must point into the telemetry crate:\n{stdout}"
    );
}

#[test]
fn chaos_sampling_must_use_simrng_streams() {
    // The chaos layer's determinism contract: every chaos decision (DOA
    // rolls, reconfig failures, diagnosis errors, failure schedules) draws
    // from a caller-supplied `SimRng` stream. A chaos sampler touching
    // ambient entropy or the wall clock inside `crates/core` must be
    // flagged; the sanctioned child-stream idiom must stay clean.
    let ws = TempWorkspace::new("chaos-rng");
    ws.stage("crates/core/src/bad_chaos.rs", &fixture("chaos_ambient_rng_violation.rs"));
    ws.stage("crates/core/src/good_chaos.rs", &fixture("chaos_simrng_clean.rs"));

    let (code, stdout, _) = ws.lint(&[]);
    assert_eq!(code, 1, "ambient chaos sampling must fail the lint\n{stdout}");
    assert!(
        stdout.contains("[ambient-rng]"),
        "expected ambient-rng findings:\n{stdout}"
    );
    assert!(
        stdout.contains("crates/core/src/bad_chaos.rs"),
        "finding must point at the ambient sampler:\n{stdout}"
    );
    assert!(
        !stdout.contains("good_chaos.rs"),
        "the SimRng child-stream idiom must not be flagged:\n{stdout}"
    );
    // Each ambient source is caught individually: the wall clock, the
    // `rand::` paths, and `thread_rng`.
    for needle in ["`SystemTime`", "`rand`", "`thread_rng`"] {
        assert!(stdout.contains(needle), "missing finding for {needle}:\n{stdout}");
    }
}

#[test]
fn failover_control_chaos_must_use_simrng_streams() {
    // The replicated control plane's determinism contract: control-message
    // loss/delay rolls, election jitter, and crash schedules all draw from
    // the `FailoverPlane`'s own `SimRng` child stream. A failover path
    // touching ambient entropy or the wall clock must be flagged; the
    // inert-by-construction `Option<SimRng>` idiom must stay clean.
    let ws = TempWorkspace::new("failover-rng");
    ws.stage(
        "crates/core/src/bad_failover.rs",
        &fixture("failover_ambient_rng_violation.rs"),
    );
    ws.stage(
        "crates/core/src/good_failover.rs",
        &fixture("failover_simrng_clean.rs"),
    );

    let (code, stdout, _) = ws.lint(&[]);
    assert_eq!(code, 1, "ambient failover sampling must fail the lint\n{stdout}");
    assert!(
        stdout.contains("crates/core/src/bad_failover.rs"),
        "finding must point at the ambient control channel:\n{stdout}"
    );
    assert!(
        !stdout.contains("good_failover.rs"),
        "the inert-by-construction idiom must not be flagged:\n{stdout}"
    );
    // Each ambient source is caught individually: the wall clock, the
    // `rand::` paths, and `thread_rng`.
    for needle in ["`SystemTime`", "`rand`", "`thread_rng`"] {
        assert!(stdout.contains(needle), "missing finding for {needle}:\n{stdout}");
    }
}

#[test]
fn clean_files_pass() {
    let ws = TempWorkspace::new("clean");
    ws.stage("crates/sim/src/good_map.rs", &fixture("map_iteration_clean.rs"));
    ws.stage("crates/topo/src/clean.rs", &fixture("clean.rs"));

    let (code, stdout, stderr) = ws.lint(&[]);
    assert_eq!(code, 0, "clean files must pass\nstdout:{stdout}\nstderr:{stderr}");
    assert!(stdout.contains("0 finding(s)"), "{stdout}");
}

#[test]
fn inline_allow_suppresses() {
    let ws = TempWorkspace::new("inline-allow");
    ws.stage("crates/topo/src/allowed_map.rs", &fixture("inline_allow.rs"));

    let (code, stdout, _) = ws.lint(&[]);
    assert_eq!(code, 0, "inline-allowed findings must not fail the lint\n{stdout}");
    assert!(!stdout.contains("0 suppressed"), "suppressions should be counted:\n{stdout}");
}

#[test]
fn lint_toml_allowlist_suppresses() {
    let ws = TempWorkspace::new("allowlist");
    ws.stage("crates/sim/src/bad_map.rs", &fixture("map_iteration_violation.rs"));
    ws.stage(
        "lint.toml",
        "[[allow]]\n\
         rule = \"map-iteration\"\n\
         path = \"crates/sim/src/bad_map.rs\"\n\
         reason = \"fixture: exercising the checked-in allowlist\"\n",
    );

    let (code, stdout, _) = ws.lint(&[]);
    assert_eq!(code, 0, "allowlisted findings must not fail the lint\n{stdout}");
}

#[test]
fn malformed_lint_toml_is_an_error() {
    let ws = TempWorkspace::new("bad-toml");
    ws.stage("lint.toml", "[[allow]]\nrule = \"map-iteration\"\n");

    let (code, _, stderr) = ws.lint(&[]);
    assert_eq!(code, 2, "malformed allowlist must be a hard error\n{stderr}");
}

#[test]
fn json_format_round_trips() {
    let ws = TempWorkspace::new("json");
    ws.stage("crates/sim/src/bad_map.rs", &fixture("map_iteration_violation.rs"));
    ws.stage("crates/sim/src/bad_cast.rs", &fixture("raw_cast_violation.rs"));

    let (code, stdout, _) = ws.lint(&["--format", "json"]);
    assert_eq!(code, 1);
    let report = minijson::from_str(&stdout).expect("report must be valid JSON");
    let findings = report
        .get("findings")
        .and_then(minijson::Value::as_array)
        .expect("findings array");
    assert!(!findings.is_empty());
    for f in findings {
        assert!(f.get("rule").and_then(minijson::Value::as_str).is_some());
        assert!(f.get("path").and_then(minijson::Value::as_str).is_some());
        assert!(f.get("line").and_then(minijson::Value::as_i64).is_some());
        assert!(f.get("message").and_then(minijson::Value::as_str).is_some());
    }
    assert!(report.get("files_scanned").and_then(minijson::Value::as_i64).is_some());
}

#[test]
fn explicit_paths_are_linted() {
    let ws = TempWorkspace::new("paths");
    ws.stage("crates/sim/src/bad_map.rs", &fixture("map_iteration_violation.rs"));
    ws.stage("crates/sim/src/good_map.rs", &fixture("map_iteration_clean.rs"));

    let (code, _, _) = ws.lint(&["crates/sim/src/bad_map.rs"]);
    assert_eq!(code, 1);
    let (code, _, _) = ws.lint(&["crates/sim/src/good_map.rs"]);
    assert_eq!(code, 0);
}

/// The acceptance gate: the real workspace must be lint-clean.
#[test]
fn real_workspace_is_lint_clean() {
    let repo_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .arg("lint")
        .current_dir(repo_root)
        .output()
        .expect("run xtask lint");
    assert!(
        out.status.success(),
        "workspace has unsuppressed lint findings:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}
