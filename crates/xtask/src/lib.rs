//! Workspace automation tasks. See [`lint`] for the static-analysis pass.

pub mod lint;

/// Entry point for the `xtask` binary: dispatch a subcommand, return the
/// process exit code.
pub fn run(args: Vec<String>) -> i32 {
    match args.first().map(String::as_str) {
        Some("lint") => lint::cli(&args[1..]),
        _ => {
            eprintln!("usage: cargo xtask lint [--format json] [PATH...]");
            2
        }
    }
}
