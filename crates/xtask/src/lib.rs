//! Workspace automation tasks. See [`lint`] for the static-analysis pass
//! and [`trace`] for the chrome-trace summarizer.

pub mod lint;
pub mod trace;

/// Entry point for the `xtask` binary: dispatch a subcommand, return the
/// process exit code.
pub fn run(args: Vec<String>) -> i32 {
    match args.first().map(String::as_str) {
        Some("lint") => lint::cli(&args[1..]),
        Some("trace") => trace::cli(&args[1..]),
        _ => {
            eprintln!("usage: cargo xtask lint [--format json] [PATH...]");
            eprintln!("       cargo xtask trace summarize <file.json>");
            2
        }
    }
}
