//! A minimal Rust lexer for the lint pass.
//!
//! Produces a token stream with line/column positions, with comments and
//! string/char literals stripped (so rule matching never fires inside them),
//! while extracting two side channels the driver needs:
//!
//! * `// lint:allow(rule, ...)` suppression comments, by line;
//! * `#[cfg(test)]`-gated regions, marked per token, so library-code rules
//!   skip inline test modules.
//!
//! This is not a full Rust lexer — it only has to be exact about the things
//! that would cause false positives (comments, strings, lifetimes vs char
//! literals, raw strings). Everything else degrades to single-character
//! punctuation tokens, which is all the rules need.

/// What a token is, at the granularity the rules care about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal (including suffixes like `0u64`).
    Num,
    /// A single punctuation character.
    Punct,
    /// A lifetime such as `'a` (kept distinct so it never looks like an ident).
    Lifetime,
}

/// One lexed token with its source position.
#[derive(Clone, Debug)]
pub struct Token {
    /// Token kind.
    pub kind: TokenKind,
    /// The token text (single char for punctuation).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (in characters).
    pub col: u32,
    /// True if the token sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

impl Token {
    /// Is this an identifier with exactly this text?
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// Is this a punctuation token with exactly this char?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// A `// lint:allow(...)` directive found during lexing.
#[derive(Clone, Debug)]
pub struct AllowDirective {
    /// 1-based line the comment sits on.
    pub line: u32,
    /// The rule names listed inside the parentheses.
    pub rules: Vec<String>,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream, comments and literals stripped.
    pub tokens: Vec<Token>,
    /// All suppression directives, in file order.
    pub allows: Vec<AllowDirective>,
}

/// Lex `source`, extracting tokens and `lint:allow` directives, then mark
/// `#[cfg(test)]` regions.
pub fn lex(source: &str) -> Lexed {
    let chars: Vec<char> = source.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    // Advance over `n` chars, updating line/col.
    macro_rules! bump {
        ($n:expr) => {
            for _ in 0..$n {
                if i < chars.len() {
                    if chars[i] == '\n' {
                        line += 1;
                        col = 1;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
            }
        };
    }

    while i < chars.len() {
        let c = chars[i];
        let (tline, tcol) = (line, col);
        if c.is_whitespace() {
            bump!(1);
        } else if c == '/' && chars.get(i + 1) == Some(&'/') {
            // Line comment; may carry a lint:allow directive.
            let start = i;
            while i < chars.len() && chars[i] != '\n' {
                bump!(1);
            }
            let text: String = chars[start..i].iter().collect();
            if let Some(rules) = parse_allow(&text) {
                out.allows.push(AllowDirective { line: tline, rules });
            }
        } else if c == '/' && chars.get(i + 1) == Some(&'*') {
            // Block comment, nested.
            bump!(2);
            let mut depth = 1;
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    bump!(2);
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    bump!(2);
                } else {
                    bump!(1);
                }
            }
        } else if c == '"' {
            bump!(1);
            skip_string_body(&chars, &mut i, &mut line, &mut col);
        } else if c == '\'' {
            // Char literal or lifetime.
            let next = chars.get(i + 1).copied();
            let after = chars.get(i + 2).copied();
            let is_char = match next {
                Some('\\') => true,
                Some(_) => after == Some('\''),
                None => false,
            };
            if is_char {
                bump!(1); // opening quote
                if chars.get(i) == Some(&'\\') {
                    bump!(2); // backslash + escape head (may continue, e.g. \u{...})
                    while i < chars.len() && chars[i] != '\'' {
                        bump!(1);
                    }
                } else {
                    bump!(1);
                }
                bump!(1); // closing quote
            } else {
                // Lifetime: 'ident
                bump!(1);
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    bump!(1);
                }
                out.tokens.push(Token {
                    kind: TokenKind::Lifetime,
                    text: chars[start..i].iter().collect(),
                    line: tline,
                    col: tcol,
                    in_test: false,
                });
            }
        } else if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                bump!(1);
            }
            let text: String = chars[start..i].iter().collect();
            // String prefixes: r"", r#""#, b"", br#""#, c"" ...
            let is_raw_prefix = matches!(text.as_str(), "r" | "b" | "br" | "rb" | "c" | "cr");
            if is_raw_prefix && matches!(chars.get(i), Some('"') | Some('#')) {
                // Count leading hashes (raw strings).
                let mut hashes = 0usize;
                while chars.get(i + hashes) == Some(&'#') {
                    hashes += 1;
                }
                if chars.get(i + hashes) == Some(&'"') {
                    bump!(hashes + 1);
                    if hashes == 0 && !text.contains('r') {
                        // Plain b"..." honors escapes.
                        skip_string_body(&chars, &mut i, &mut line, &mut col);
                    } else {
                        // Raw string: ends at `"` followed by `hashes` hashes.
                        loop {
                            if i >= chars.len() {
                                break;
                            }
                            if chars[i] == '"' {
                                let mut ok = true;
                                for h in 0..hashes {
                                    if chars.get(i + 1 + h) != Some(&'#') {
                                        ok = false;
                                        break;
                                    }
                                }
                                if ok {
                                    bump!(1 + hashes);
                                    break;
                                }
                            }
                            bump!(1);
                        }
                    }
                    continue;
                }
                // A lone `#` after r/b that is not a raw string: fall through,
                // emit the ident; the `#` lexes as punctuation next round.
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                text,
                line: tline,
                col: tcol,
                in_test: false,
            });
        } else if c.is_ascii_digit() {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                bump!(1);
            }
            // Fractional part — but never eat `..` (range syntax).
            if chars.get(i) == Some(&'.')
                && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit())
            {
                bump!(1);
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    bump!(1);
                }
            }
            out.tokens.push(Token {
                kind: TokenKind::Num,
                text: chars[start..i].iter().collect(),
                line: tline,
                col: tcol,
                in_test: false,
            });
        } else {
            out.tokens.push(Token {
                kind: TokenKind::Punct,
                text: c.to_string(),
                line: tline,
                col: tcol,
                in_test: false,
            });
            bump!(1);
        }
    }

    mark_test_regions(&mut out.tokens);
    out
}

/// Consume a (non-raw) string body after the opening quote, honoring escapes.
fn skip_string_body(chars: &[char], i: &mut usize, line: &mut u32, col: &mut u32) {
    while *i < chars.len() {
        let c = chars[*i];
        if c == '\n' {
            *line += 1;
            *col = 1;
            *i += 1;
        } else if c == '\\' {
            *col += 1;
            *i += 1;
            if *i < chars.len() {
                if chars[*i] == '\n' {
                    *line += 1;
                    *col = 1;
                } else {
                    *col += 1;
                }
                *i += 1;
            }
        } else if c == '"' {
            *col += 1;
            *i += 1;
            return;
        } else {
            *col += 1;
            *i += 1;
        }
    }
}

/// Parse `lint:allow(rule, rule2)` out of a line comment, if present.
fn parse_allow(comment: &str) -> Option<Vec<String>> {
    let at = comment.find("lint:allow(")?;
    let rest = &comment[at + "lint:allow(".len()..];
    let close = rest.find(')')?;
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        None
    } else {
        Some(rules)
    }
}

/// Mark tokens inside `#[cfg(test)] mod ... { ... }` regions (and any other
/// `#[cfg(test)]`-gated item with a braced body).
fn mark_test_regions(tokens: &mut [Token]) {
    let mut idx = 0usize;
    while idx < tokens.len() {
        if is_cfg_test_at(tokens, idx) {
            // Find the opening brace of the gated item, then match braces.
            let mut j = idx + 7; // past `# [ cfg ( test ) ]`
            let mut open = None;
            // The item header is short (`mod tests {`, `fn x() {`); bound the scan.
            for (probe, tok) in tokens.iter().enumerate().skip(j).take(40) {
                if tok.is_punct('{') {
                    open = Some(probe);
                    break;
                }
                if tok.is_punct(';') {
                    break; // e.g. `#[cfg(test)] use ...;`
                }
            }
            if let Some(start) = open {
                let mut depth = 0i32;
                j = start;
                while j < tokens.len() {
                    if tokens[j].is_punct('{') {
                        depth += 1;
                    } else if tokens[j].is_punct('}') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    tokens[j].in_test = true;
                    j += 1;
                }
                if j < tokens.len() {
                    tokens[j].in_test = true; // closing brace
                }
                idx = j + 1;
                continue;
            }
        }
        idx += 1;
    }
}

/// Does `# [ cfg ( test ) ]` start at `idx`?
fn is_cfg_test_at(tokens: &[Token], idx: usize) -> bool {
    let pat: [&dyn Fn(&Token) -> bool; 7] = [
        &|t| t.is_punct('#'),
        &|t| t.is_punct('['),
        &|t| t.is_ident("cfg"),
        &|t| t.is_punct('('),
        &|t| t.is_ident("test"),
        &|t| t.is_punct(')'),
        &|t| t.is_punct(']'),
    ];
    if idx + pat.len() > tokens.len() {
        return false;
    }
    pat.iter().enumerate().all(|(k, m)| m(&tokens[idx + k]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_stripped() {
        let lexed = lex(r##"
            // HashMap in a comment does not count
            /* neither /* nested */ here: HashMap */
            let s = "HashMap inside a string";
            let r = r#"raw HashMap"# ;
            let c = 'H';
            let lt: &'static str = s;
        "##);
        assert!(!lexed.tokens.iter().any(|t| t.text == "HashMap"));
        assert!(lexed.tokens.iter().any(|t| t.is_ident("static") || t.kind == TokenKind::Lifetime));
    }

    #[test]
    fn allow_directives_are_collected() {
        let lexed = lex("let x = 1; // lint:allow(unwrap, raw-cast) — audited\n");
        assert_eq!(lexed.allows.len(), 1);
        assert_eq!(lexed.allows[0].rules, vec!["unwrap", "raw-cast"]);
        assert_eq!(lexed.allows[0].line, 1);
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let lexed = lex(
            "fn lib() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n  fn t() { y.unwrap(); }\n}\nfn tail() {}\n",
        );
        let unwraps: Vec<bool> = lexed
            .tokens
            .iter()
            .filter(|t| t.is_ident("unwrap"))
            .map(|t| t.in_test)
            .collect();
        assert_eq!(unwraps, vec![false, true]);
        let tail = lexed.tokens.iter().find(|t| t.is_ident("tail")).expect("tail token");
        assert!(!tail.in_test);
    }

    #[test]
    fn ranges_do_not_confuse_number_lexing() {
        let lexed = lex("for i in 0..10 { let f = 1.5e3; }");
        let nums: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, vec!["0", "10", "1.5e3"]);
    }
}
