//! The checked-in allowlist: `lint.toml` at the workspace root.
//!
//! Format (a deliberately tiny TOML subset — `[[allow]]` tables with string
//! keys only):
//!
//! ```toml
//! [[allow]]
//! rule = "unwrap"
//! path = "crates/sim/src/stats.rs"
//! reason = "percentile lookup is bounds-checked by construction"
//! ```
//!
//! `path` is an exact workspace-relative file path, or a prefix ending in
//! `/` matching everything under a directory.

/// One allowlist entry.
#[derive(Clone, Debug)]
pub struct AllowEntry {
    /// Rule name this entry suppresses.
    pub rule: String,
    /// Exact path, or a `/`-terminated prefix.
    pub path: String,
    /// Why the suppression is sound (required, for reviewability).
    pub reason: String,
}

impl AllowEntry {
    /// Does this entry suppress `rule` findings in `path`?
    pub fn matches(&self, rule: &str, path: &str) -> bool {
        self.rule == rule
            && (self.path == path
                || (self.path.ends_with('/') && path.starts_with(&self.path)))
    }
}

/// Parse `lint.toml` contents. Unknown keys or malformed lines are errors so
/// the allowlist can't silently rot.
pub fn parse(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries: Vec<AllowEntry> = Vec::new();
    let mut current: Option<AllowEntry> = None;
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(done) = current.take() {
                finish(&mut entries, done, ln)?;
            }
            current = Some(AllowEntry {
                rule: String::new(),
                path: String::new(),
                reason: String::new(),
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("lint.toml:{}: expected `key = \"value\"`", ln + 1));
        };
        let entry = current
            .as_mut()
            .ok_or_else(|| format!("lint.toml:{}: key outside [[allow]] table", ln + 1))?;
        let value = value.trim();
        let value = value
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| format!("lint.toml:{}: value must be a quoted string", ln + 1))?;
        match key.trim() {
            "rule" => entry.rule = value.to_string(),
            "path" => entry.path = value.to_string(),
            "reason" => entry.reason = value.to_string(),
            other => {
                return Err(format!("lint.toml:{}: unknown key `{other}`", ln + 1));
            }
        }
    }
    if let Some(done) = current.take() {
        let end = text.lines().count();
        finish(&mut entries, done, end)?;
    }
    Ok(entries)
}

fn finish(entries: &mut Vec<AllowEntry>, entry: AllowEntry, ln: usize) -> Result<(), String> {
    if entry.rule.is_empty() || entry.path.is_empty() || entry.reason.is_empty() {
        return Err(format!(
            "lint.toml: [[allow]] table ending near line {} needs rule, path and reason",
            ln + 1
        ));
    }
    if !super::rules::RULES.contains(&entry.rule.as_str()) {
        return Err(format!(
            "lint.toml: unknown rule `{}` (known: {})",
            entry.rule,
            super::rules::RULES.join(", ")
        ));
    }
    entries.push(entry);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_prefixes() {
        let text = r#"
# comment
[[allow]]
rule = "unwrap"
path = "crates/sim/src/stats.rs"
reason = "audited"

[[allow]]
rule = "map-iteration"
path = "crates/topo/src/"
reason = "sorted before iteration"
"#;
        let entries = parse(text).expect("parse");
        assert_eq!(entries.len(), 2);
        assert!(entries[0].matches("unwrap", "crates/sim/src/stats.rs"));
        assert!(!entries[0].matches("unwrap", "crates/sim/src/other.rs"));
        assert!(entries[1].matches("map-iteration", "crates/topo/src/deep/file.rs"));
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("rule = \"unwrap\"").is_err(), "key outside table");
        assert!(parse("[[allow]]\nrule = \"unwrap\"\npath = \"x\"").is_err(), "missing reason");
        assert!(
            parse("[[allow]]\nrule = \"nope\"\npath = \"x\"\nreason = \"y\"").is_err(),
            "unknown rule"
        );
    }
}
