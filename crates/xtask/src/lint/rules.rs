//! The four determinism & invariant rules.
//!
//! | rule            | scope                                   | what it catches |
//! |-----------------|-----------------------------------------|-----------------|
//! | `map-iteration` | simulation-path crates (all code)       | `HashMap` / `HashSet` use — iteration order is nondeterministic |
//! | `ambient-rng`   | everywhere except `crates/bench`        | `thread_rng`, `rand::…`, `SystemTime`, `Instant` — randomness must flow through `SimRng`, time through the virtual clock |
//! | `unwrap`        | library code (non-test, non-bin)        | `.unwrap()` / `.expect()` — return `Result`/use `sim::error` types |
//! | `raw-cast`      | simulation-path library code            | bare `as` integer casts on `Time`/`Duration`/ID arithmetic |

use super::lexer::{Lexed, Token, TokenKind};
use super::{FileClass, FileKind, Finding};

/// Names of every rule, in reporting order.
pub const RULES: [&str; 4] = ["map-iteration", "ambient-rng", "unwrap", "raw-cast"];

/// Integer target types a `raw-cast` finding can cast to.
const INT_TYPES: [&str; 12] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Identifiers that mark an expression as Time/ID arithmetic for `raw-cast`.
const TRACKED_NAMES: [&str; 13] = [
    "Time", "Duration", "NodeId", "LinkId", "PhysId", "GroupId", "SlotId", "CoflowId",
    "FlowKey", "as_nanos", "as_micros", "as_millis", "as_secs",
];

/// Run every applicable rule over one lexed file.
pub fn check(class: &FileClass, lexed: &Lexed) -> Vec<Finding> {
    let mut findings = Vec::new();
    map_iteration(class, lexed, &mut findings);
    ambient_rng(class, lexed, &mut findings);
    unwrap_rule(class, lexed, &mut findings);
    raw_cast(class, lexed, &mut findings);
    findings.sort_by_key(|f| (f.line, f.col));
    findings
}

fn push(
    findings: &mut Vec<Finding>,
    class: &FileClass,
    token: &Token,
    rule: &'static str,
    message: String,
) {
    findings.push(Finding {
        rule: rule.to_string(),
        path: class.path.clone(),
        line: token.line,
        col: token.col,
        message,
        suppressed: false,
    });
}

/// D1: no `HashMap`/`HashSet` anywhere in simulation-path crates.
fn map_iteration(class: &FileClass, lexed: &Lexed, findings: &mut Vec<Finding>) {
    if !class.sim_path {
        return;
    }
    for t in &lexed.tokens {
        if t.kind == TokenKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
            push(
                findings,
                class,
                t,
                "map-iteration",
                format!(
                    "`{}` iterates in nondeterministic order; use BTreeMap/BTreeSet or a sorted Vec (determinism rule D1)",
                    t.text
                ),
            );
        }
    }
}

/// D2: no ambient nondeterminism outside `crates/bench`.
fn ambient_rng(class: &FileClass, lexed: &Lexed, findings: &mut Vec<Finding>) {
    if class.bench_crate {
        return;
    }
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let flagged = match t.text.as_str() {
            "thread_rng" | "SystemTime" | "Instant" => true,
            // `rand::...` — any path into the external rand crate.
            "rand" => toks.get(i + 1).is_some_and(|a| a.is_punct(':'))
                && toks.get(i + 2).is_some_and(|a| a.is_punct(':')),
            _ => false,
        };
        if flagged {
            push(
                findings,
                class,
                t,
                "ambient-rng",
                format!(
                    "`{}` is ambient nondeterminism; all randomness must flow through a seeded `SimRng` and all time through the virtual clock (determinism rule D2)",
                    t.text
                ),
            );
        }
    }
}

/// D3: no `.unwrap()` / `.expect(` in library code.
fn unwrap_rule(class: &FileClass, lexed: &Lexed, findings: &mut Vec<Finding>) {
    if class.kind != FileKind::Library {
        return;
    }
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.in_test || t.kind != TokenKind::Ident {
            continue;
        }
        if (t.text == "unwrap" || t.text == "expect")
            && i >= 1
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|a| a.is_punct('('))
        {
            push(
                findings,
                class,
                t,
                "unwrap",
                format!(
                    "`.{}()` in library code can panic; return a Result (see `sharebackup_sim::error`) or handle the None/Err case (rule D3)",
                    t.text
                ),
            );
        }
    }
}

/// D4: no bare `as` integer casts on Time/ID arithmetic in simulation-path
/// library code.
fn raw_cast(class: &FileClass, lexed: &Lexed, findings: &mut Vec<Finding>) {
    if !class.sim_path || class.kind != FileKind::Library {
        return;
    }
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.in_test || !t.is_ident("as") {
            continue;
        }
        let Some(target) = toks.get(i + 1) else {
            continue;
        };
        if !(target.kind == TokenKind::Ident && INT_TYPES.contains(&target.text.as_str())) {
            continue;
        }
        if operand_is_tracked(toks, i) {
            push(
                findings,
                class,
                t,
                "raw-cast",
                format!(
                    "bare `as {}` cast on Time/ID arithmetic can silently truncate; use From/TryFrom or a checked helper (rule D4)",
                    target.text
                ),
            );
        }
    }
}

/// Scan backwards from the `as` keyword over its operand expression looking
/// for a tracked Time/ID name. The scan stops at a statement/argument
/// boundary (`;`, `{`, `}`, `=`, or a `,`/`(`/`[` at depth zero), tracking
/// bracket depth so nested calls like `x.as_nanos()` are traversed. When the
/// boundary is a call opener, the callee identifier is also inspected, so
/// constructor forms like `NodeId(x as u32)` are caught too.
fn operand_is_tracked(toks: &[Token], as_idx: usize) -> bool {
    let mut depth = 0i32;
    let mut j = as_idx;
    let mut budget = 48;
    while j > 0 && budget > 0 {
        j -= 1;
        budget -= 1;
        let t = &toks[j];
        if t.kind == TokenKind::Punct {
            match t.text.chars().next() {
                Some(')') | Some(']') => depth += 1,
                Some('(') | Some('[') => {
                    if depth > 0 {
                        depth -= 1;
                        continue;
                    }
                    // Boundary: peek at the callee, if any.
                    return j > 0
                        && toks[j - 1].kind == TokenKind::Ident
                        && TRACKED_NAMES.contains(&toks[j - 1].text.as_str());
                }
                Some(';') | Some('{') | Some('}') | Some('=') => return false,
                Some(',') if depth == 0 => return false,
                _ => {}
            }
        } else if t.kind == TokenKind::Ident
            && depth == 0
            && TRACKED_NAMES.contains(&t.text.as_str())
        {
            return true;
        } else if t.kind == TokenKind::Ident && depth > 0 {
            // Inside a traversed call: method names still count.
            if TRACKED_NAMES.contains(&t.text.as_str()) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::super::lexer::lex;
    use super::super::{FileClass, FileKind};
    use super::*;

    fn lib_class(sim_path: bool) -> FileClass {
        FileClass {
            path: "crates/sim/src/x.rs".to_string(),
            kind: FileKind::Library,
            sim_path,
            bench_crate: false,
        }
    }

    #[test]
    fn tracked_cast_detection() {
        let lexed = lex("fn f(t: Time) -> usize { t.as_nanos() as usize }");
        let found = check(&lib_class(true), &lexed);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "raw-cast");
    }

    #[test]
    fn constructor_cast_detection() {
        let lexed = lex("fn f(x: u64) -> NodeId { NodeId(x as u32) }");
        let found = check(&lib_class(true), &lexed);
        assert_eq!(found.len(), 1, "{found:?}");
    }

    #[test]
    fn unrelated_cast_is_clean() {
        let lexed = lex("fn f(x: u16) -> u32 { x as u32 }");
        assert!(check(&lib_class(true), &lexed).is_empty());
    }

    #[test]
    fn boundary_stops_scan() {
        // The Time is in a *previous* statement; the cast itself is clean.
        let lexed = lex("fn f(t: Time) -> u32 { let _n = t; let x = 7u64; x as u32 }");
        assert!(check(&lib_class(true), &lexed).is_empty());
    }
}
