//! `cargo xtask lint` — the determinism & invariant static-analysis pass.
//!
//! ShareBackup's headline claim (recovery with no bandwidth loss and no path
//! dilation) is only reproducible if every simulated run is bit-for-bit
//! deterministic. This pass enforces the four rules that protect that
//! property across the whole workspace; see [`rules`] for the rule table.
//!
//! Suppressions:
//! * inline — `// lint:allow(rule)` on the finding's line or the line above;
//! * checked-in — `lint.toml` at the workspace root (see [`config`]).
//!
//! Output is human-readable by default; `--format json` emits a machine
//! readable report that round-trips through the `minijson` parser.

pub mod config;
pub mod lexer;
pub mod rules;

use std::fs;
use std::path::{Path, PathBuf};

/// Which cargo target kind a file belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileKind {
    /// `src/**` of a crate (excluding `src/bin`): rules for library code apply.
    Library,
    /// `src/bin/**` or `src/main.rs`: binaries may panic on bad input.
    Bin,
    /// `tests/**`: integration tests.
    Test,
    /// `examples/**`.
    Example,
    /// `benches/**`.
    Bench,
}

/// Everything the rules need to know about a file's place in the workspace.
#[derive(Clone, Debug)]
pub struct FileClass {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Target kind.
    pub kind: FileKind,
    /// True for the simulation-path crates whose behavior must be
    /// deterministic: `sim`, `topo`, `routing`, `flowsim`, `packet`, `core`,
    /// `workload`, `telemetry` — plus the root facade crate.
    pub sim_path: bool,
    /// True inside `crates/bench` (exempt from `ambient-rng`: wall-clock
    /// timing is the point of a benchmark harness).
    pub bench_crate: bool,
}

/// One lint finding.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Rule name (see [`rules::RULES`]).
    pub rule: String,
    /// Workspace-relative file path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description.
    pub message: String,
    /// True if an inline directive or `lint.toml` entry suppresses it.
    pub suppressed: bool,
}

/// Crates whose simulation results must be bit-for-bit reproducible.
/// `telemetry` is included because trace output ships in run artifacts
/// that CI byte-diffs across job counts: a wall-clock stamp or ambient
/// RNG draw there breaks reproducibility just like one in the simulator.
pub const SIM_PATH_CRATES: [&str; 8] =
    ["sim", "topo", "routing", "flowsim", "packet", "core", "workload", "telemetry"];

/// Classify a workspace-relative path, or return `None` if the file is not
/// part of any lintable target (e.g. fixtures).
pub fn classify(rel: &str) -> Option<FileClass> {
    if !rel.ends_with(".rs") || rel.contains("/fixtures/") {
        return None;
    }
    let (crate_name, rest) = match rel.strip_prefix("crates/") {
        Some(inner) => {
            let (name, rest) = inner.split_once('/')?;
            (name, rest)
        }
        None => ("", rel),
    };
    let kind = if rest.starts_with("src/bin/") || rest == "src/main.rs" {
        FileKind::Bin
    } else if rest.starts_with("src/") {
        FileKind::Library
    } else if rest.starts_with("tests/") {
        FileKind::Test
    } else if rest.starts_with("examples/") {
        FileKind::Example
    } else if rest.starts_with("benches/") {
        FileKind::Bench
    } else {
        return None;
    };
    let sim_path = SIM_PATH_CRATES.contains(&crate_name)
        || (crate_name.is_empty() && kind == FileKind::Library);
    Some(FileClass {
        path: rel.to_string(),
        kind,
        sim_path,
        bench_crate: crate_name == "bench",
    })
}

/// Lint one file's source text under a classification and allowlist, marking
/// suppressed findings rather than dropping them (so reports can show both).
pub fn lint_source(
    class: &FileClass,
    source: &str,
    allowlist: &[config::AllowEntry],
) -> Vec<Finding> {
    let lexed = lexer::lex(source);
    let mut findings = rules::check(class, &lexed);
    for f in &mut findings {
        let inline = lexed.allows.iter().any(|a| {
            (a.line == f.line || a.line + 1 == f.line)
                && a.rules.iter().any(|r| r == &f.rule)
        });
        let listed = allowlist.iter().any(|e| e.matches(&f.rule, &f.path));
        f.suppressed = inline || listed;
    }
    findings
}

/// Recursively collect `.rs` files under `dir` (sorted for determinism),
/// skipping build output, VCS metadata and lint fixtures.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if matches!(name, "target" | ".git" | "fixtures" | "results") {
                continue;
            }
            collect_rs(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Locate the workspace root: walk up from `start` until a `Cargo.toml`
/// containing `[workspace]` appears.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Lint the whole workspace rooted at `root`. Returns findings (suppressed
/// ones included, marked) plus the number of files scanned.
pub fn lint_workspace(root: &Path) -> Result<(Vec<Finding>, usize), String> {
    let allowlist = match fs::read_to_string(root.join("lint.toml")) {
        Ok(text) => config::parse(&text)?,
        Err(_) => Vec::new(),
    };
    let mut files = Vec::new();
    for top in ["src", "tests", "examples", "crates"] {
        collect_rs(&root.join(top), &mut files);
    }
    let mut findings = Vec::new();
    let mut scanned = 0usize;
    for path in files {
        let rel = path
            .strip_prefix(root)
            .map_err(|e| e.to_string())?
            .to_string_lossy()
            .replace('\\', "/");
        let Some(class) = classify(&rel) else {
            continue;
        };
        let source =
            fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        scanned += 1;
        findings.extend(lint_source(&class, &source, &allowlist));
    }
    Ok((findings, scanned))
}

/// Render findings as a JSON report (round-trips through `minijson`).
pub fn json_report(findings: &[Finding], scanned: usize) -> minijson::Value {
    let active: Vec<minijson::Value> = findings
        .iter()
        .filter(|f| !f.suppressed)
        .map(|f| {
            minijson::json!({
                "rule": f.rule.as_str(),
                "path": f.path.as_str(),
                "line": u64::from(f.line),
                "col": u64::from(f.col),
                "message": f.message.as_str(),
            })
        })
        .collect();
    let suppressed = findings.iter().filter(|f| f.suppressed).count();
    minijson::json!({
        "files_scanned": scanned,
        "suppressed": suppressed,
        "findings": active,
    })
}

/// CLI entry: `cargo xtask lint [--format json|human] [PATH...]`.
pub fn cli(args: &[String]) -> i32 {
    let mut format = "human".to_string();
    let mut paths: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next() {
                Some(v) if v == "json" || v == "human" => format = v.clone(),
                _ => {
                    eprintln!("--format takes `json` or `human`");
                    return 2;
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: cargo xtask lint [--format json|human] [PATH...]");
                return 0;
            }
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag `{flag}`");
                return 2;
            }
            path => paths.push(path.to_string()),
        }
    }

    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let Some(root) = find_root(&cwd) else {
        eprintln!("lint: could not locate the workspace root from {}", cwd.display());
        return 2;
    };

    let result = if paths.is_empty() {
        lint_workspace(&root)
    } else {
        lint_paths(&root, &paths)
    };
    let (findings, scanned) = match result {
        Ok(ok) => ok,
        Err(e) => {
            eprintln!("lint: {e}");
            return 2;
        }
    };

    let active: Vec<&Finding> = findings.iter().filter(|f| !f.suppressed).collect();
    if format == "json" {
        let report = json_report(&findings, scanned);
        match minijson::to_string_pretty(&report) {
            Ok(text) => println!("{text}"),
            Err(e) => {
                eprintln!("lint: {e}");
                return 2;
            }
        }
    } else {
        for f in &active {
            println!("{}:{}:{} [{}] {}", f.path, f.line, f.col, f.rule, f.message);
        }
        let suppressed = findings.len() - active.len();
        println!(
            "lint: {} file(s) scanned, {} finding(s), {} suppressed",
            scanned,
            active.len(),
            suppressed
        );
    }
    i32::from(!active.is_empty())
}

/// Lint an explicit list of files (workspace-relative or absolute).
fn lint_paths(root: &Path, paths: &[String]) -> Result<(Vec<Finding>, usize), String> {
    let allowlist = match fs::read_to_string(root.join("lint.toml")) {
        Ok(text) => config::parse(&text)?,
        Err(_) => Vec::new(),
    };
    let mut findings = Vec::new();
    let mut scanned = 0usize;
    for p in paths {
        let abs = if Path::new(p).is_absolute() {
            PathBuf::from(p)
        } else {
            root.join(p)
        };
        let rel = abs
            .strip_prefix(root)
            .map_err(|_| format!("{p}: outside the workspace"))?
            .to_string_lossy()
            .replace('\\', "/");
        let Some(class) = classify(&rel) else {
            return Err(format!("{p}: not a lintable workspace source file"));
        };
        let source = fs::read_to_string(&abs).map_err(|e| format!("{p}: {e}"))?;
        scanned += 1;
        findings.extend(lint_source(&class, &source, &allowlist));
    }
    Ok((findings, scanned))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_layout() {
        let lib = classify("crates/sim/src/rng.rs").expect("lib");
        assert_eq!(lib.kind, FileKind::Library);
        assert!(lib.sim_path && !lib.bench_crate);

        let bin = classify("crates/bench/src/bin/scorecard.rs").expect("bin");
        assert_eq!(bin.kind, FileKind::Bin);
        assert!(bin.bench_crate && !bin.sim_path);

        let root_lib = classify("src/lib.rs").expect("root");
        assert!(root_lib.sim_path);
        assert_eq!(root_lib.kind, FileKind::Library);

        let tel = classify("crates/telemetry/src/sink.rs").expect("telemetry");
        assert_eq!(tel.kind, FileKind::Library);
        assert!(tel.sim_path && !tel.bench_crate);

        let test = classify("crates/topo/tests/structure_properties.rs").expect("test");
        assert_eq!(test.kind, FileKind::Test);
        assert!(test.sim_path);

        assert!(classify("crates/xtask/tests/fixtures/unwrap.rs").is_none());
        assert!(classify("README.md").is_none());
    }

    #[test]
    fn inline_allow_suppresses_same_and_next_line() {
        let class = classify("crates/sim/src/x.rs").expect("class");
        let src = "\
use std::collections::HashMap; // lint:allow(map-iteration) — justified
// lint:allow(map-iteration) — next-line form
type T = HashMap<u32, u32>;
type U = HashMap<u32, u32>;
";
        let findings = lint_source(&class, src, &[]);
        assert_eq!(findings.len(), 3);
        assert!(findings[0].suppressed, "same-line allow");
        assert!(findings[1].suppressed, "next-line allow");
        assert!(!findings[2].suppressed, "no allow");
    }

    #[test]
    fn allowlist_suppresses_by_path() {
        let class = classify("crates/sim/src/x.rs").expect("class");
        let allow = config::parse(
            "[[allow]]\nrule = \"map-iteration\"\npath = \"crates/sim/src/\"\nreason = \"r\"\n",
        )
        .expect("allowlist");
        let findings = lint_source(&class, "type T = HashSet<u32>;", &allow);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].suppressed);
    }

    #[test]
    fn json_report_round_trips() {
        let class = classify("crates/sim/src/x.rs").expect("class");
        let findings = lint_source(&class, "type T = HashMap<u32, u32>;", &[]);
        let report = json_report(&findings, 1);
        let text = minijson::to_string_pretty(&report).expect("serialize");
        let back = minijson::from_str(&text).expect("parse");
        assert_eq!(back, report);
        let items = back.get("findings").and_then(minijson::Value::as_array).expect("array");
        assert_eq!(items.len(), 1);
        assert_eq!(
            items[0].get("rule").and_then(minijson::Value::as_str),
            Some("map-iteration")
        );
    }
}
