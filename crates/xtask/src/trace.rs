//! `cargo xtask trace summarize <file>` — per-span latency tables from a
//! chrome-trace JSON produced by a harness binary's `--trace-out` flag.
//!
//! The heavy lifting (parsing, span matching, percentile math) lives in
//! [`sharebackup_telemetry::summarize_chrome_trace`]; this module is the
//! thin CLI around it.

/// CLI entry: `cargo xtask trace summarize <file.json>`.
pub fn cli(args: &[String]) -> i32 {
    match args.first().map(String::as_str) {
        Some("summarize") => {
            let Some(path) = args.get(1) else {
                eprintln!("usage: cargo xtask trace summarize <file.json>");
                return 2;
            };
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("trace: cannot read {path}: {e}");
                    return 2;
                }
            };
            match sharebackup_telemetry::summarize_chrome_trace(&text) {
                Ok(table) => {
                    print!("{table}");
                    0
                }
                Err(e) => {
                    eprintln!("trace: {path}: {e}");
                    1
                }
            }
        }
        Some("--help" | "-h") => {
            eprintln!("usage: cargo xtask trace summarize <file.json>");
            0
        }
        other => {
            eprintln!(
                "trace: unknown subcommand {:?}; usage: cargo xtask trace summarize <file.json>",
                other.unwrap_or("")
            );
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| (*x).to_string()).collect()
    }

    #[test]
    fn missing_subcommand_or_path_is_usage_error() {
        assert_eq!(cli(&s(&["summarize"])), 2);
        assert_eq!(cli(&s(&["frobnicate"])), 2);
        assert_eq!(cli(&[]), 2);
    }

    #[test]
    fn unreadable_file_is_an_error() {
        assert_eq!(cli(&s(&["summarize", "/nonexistent/trace.json"])), 2);
    }

    #[test]
    fn summarizes_a_real_trace_file() {
        use sharebackup_sim::Time;
        use sharebackup_telemetry::{chrome_trace, Tracer};
        let (tracer, sink) = Tracer::recording();
        tracer.span(
            Time::from_micros(10),
            Time::from_micros(30),
            "recovery",
            "detection",
        );
        let buf = sink.borrow_mut().take();
        let json = chrome_trace(&[(0, &buf)]);
        let dir = std::env::temp_dir().join("sharebackup-xtask-trace-test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("trace.json");
        std::fs::write(&path, json).expect("write");
        assert_eq!(
            cli(&s(&["summarize", path.to_str().expect("utf-8")])),
            0
        );
    }
}
