//! Flow-hash ECMP over the equal-cost shortest paths.
//!
//! The paper's §2.2 simulations route with ECMP: each flow hashes onto one
//! of the equal-cost shortest paths. This module selects among the paths
//! enumerated by the topology crates; the choice is a pure function of the
//! flow key, so it never flaps.

use sharebackup_topo::{F10Topology, FatTree, NodeId};

use crate::flow::FlowKey;

/// The ECMP path of `flow` in a healthy fat-tree.
///
/// Failure state is intentionally ignored: this is the *static* route that
/// fat-tree forwards along until a rerouting mechanism intervenes, and the
/// route ShareBackup keeps using forever (its topology heals instead).
pub fn ecmp_path(ft: &FatTree, flow: &FlowKey) -> Vec<NodeId> {
    let paths = ft.host_paths(flow.src, flow.dst);
    let pick = flow.pick(paths.len());
    // lint:allow(unwrap) — `pick(n)` asserts n > 0 and returns hash % n < n
    paths.into_iter().nth(pick).expect("pick is in range")
}

/// The ECMP path of `flow` in a healthy F10 network.
pub fn ecmp_path_f10(f10: &F10Topology, flow: &FlowKey) -> Vec<NodeId> {
    let paths = f10.host_paths(flow.src, flow.dst);
    let pick = flow.pick(paths.len());
    // lint:allow(unwrap) — `pick(n)` asserts n > 0 and returns hash % n < n
    paths.into_iter().nth(pick).expect("pick is in range")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharebackup_topo::{FatTreeConfig, HostAddr};

    #[test]
    fn choice_is_stable() {
        let ft = FatTree::build(FatTreeConfig::new(8));
        let flow = FlowKey::new(
            ft.host(HostAddr { pod: 0, edge: 0, host: 0 }),
            ft.host(HostAddr { pod: 3, edge: 1, host: 2 }),
            42,
        );
        let a = ecmp_path(&ft, &flow);
        let b = ecmp_path(&ft, &flow);
        assert_eq!(a, b);
        assert_eq!(a.len(), 7);
    }

    #[test]
    fn different_flows_spread_over_cores() {
        let ft = FatTree::build(FatTreeConfig::new(8));
        let src = ft.host(HostAddr { pod: 0, edge: 0, host: 0 });
        let dst = ft.host(HostAddr { pod: 3, edge: 1, host: 2 });
        let mut cores = std::collections::BTreeSet::new();
        for id in 0..256 {
            let p = ecmp_path(&ft, &FlowKey::new(src, dst, id));
            cores.insert(p[3]);
        }
        assert!(cores.len() >= 12, "only {} cores used of 16", cores.len());
    }

    #[test]
    fn f10_ecmp_paths_are_valid() {
        let f10 = F10Topology::build(FatTreeConfig::new(6));
        let src = f10.host(HostAddr { pod: 0, edge: 0, host: 0 });
        let dst = f10.host(HostAddr { pod: 1, edge: 1, host: 1 });
        for id in 0..32 {
            let p = ecmp_path_f10(&f10, &FlowKey::new(src, dst, id));
            assert!(f10.net.path_usable(&p));
        }
    }
}
