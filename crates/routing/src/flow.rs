//! Flow identity and the deterministic ECMP hash.

use sharebackup_sim::rng::fnv1a64_words;
use sharebackup_topo::NodeId;

/// splitmix64's avalanche finalizer: every input bit affects every output
/// bit, which removes FNV's small-modulus bias.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Identity of one flow: endpoints plus a flow id standing in for the
/// transport 5-tuple's port numbers.
///
/// The ECMP hash over this key is the only source of path "randomness" in
/// the simulators, and is stable across runs and platforms.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FlowKey {
    /// Source host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Flow identifier (unique per flow within an experiment).
    pub id: u64,
}

impl FlowKey {
    /// Construct a flow key.
    pub fn new(src: NodeId, dst: NodeId, id: u64) -> FlowKey {
        FlowKey { src, dst, id }
    }

    /// The deterministic ECMP hash of this flow.
    ///
    /// FNV-1a alone is visibly biased modulo non-power-of-two bucket counts
    /// when keys are sequential (found by the routing property tests), so a
    /// splitmix64 avalanche finalizer is applied — still fully deterministic
    /// and platform-independent.
    pub fn ecmp_hash(&self) -> u64 {
        splitmix64(fnv1a64_words(&[self.src.0 as u64, self.dst.0 as u64, self.id]))
    }

    /// Pick one of `n` equal-cost choices.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn pick(&self, n: usize) -> usize {
        assert!(n > 0, "no choices to pick from");
        // The modulo bounds the value below n, which fits in usize.
        #[allow(clippy::cast_possible_truncation)]
        {
            (self.ecmp_hash() % n as u64) as usize
        }
    }

    /// Pick with an extra salt — used when a switch must make a *second*
    /// independent choice for the same flow (e.g. F10 detours).
    pub fn pick_salted(&self, n: usize, salt: u64) -> usize {
        assert!(n > 0, "no choices to pick from");
        let h = splitmix64(fnv1a64_words(&[self.ecmp_hash(), salt]));
        // The modulo bounds the value below n, which fits in usize.
        #[allow(clippy::cast_possible_truncation)]
        {
            (h % n as u64) as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic_and_direction_sensitive() {
        let a = FlowKey::new(NodeId(1), NodeId(2), 7);
        let b = FlowKey::new(NodeId(1), NodeId(2), 7);
        let rev = FlowKey::new(NodeId(2), NodeId(1), 7);
        assert_eq!(a.ecmp_hash(), b.ecmp_hash());
        assert_ne!(a.ecmp_hash(), rev.ecmp_hash());
    }

    #[test]
    fn pick_spreads_over_choices() {
        let mut counts = [0usize; 4];
        for id in 0..4000 {
            let f = FlowKey::new(NodeId(1), NodeId(2), id);
            counts[f.pick(4)] += 1;
        }
        for &c in &counts {
            assert!(c > 800, "skewed ECMP spread: {counts:?}");
        }
    }

    #[test]
    fn salted_pick_differs_from_plain() {
        let f = FlowKey::new(NodeId(3), NodeId(9), 1);
        let mut differs = false;
        for salt in 0..8 {
            if f.pick_salted(16, salt) != f.pick(16) {
                differs = true;
            }
        }
        assert!(differs);
    }
}
