#![warn(missing_docs)]
//! # sharebackup-routing
//!
//! Routing substrate for the ShareBackup reproduction.
//!
//! * [`flow`] — flow identity and the deterministic ECMP hash.
//! * [`twolevel`] — the Two-Level Routing tables of Al-Fares et al. that
//!   fat-tree switches (and therefore ShareBackup slots) forward with.
//! * [`ecmp`] — hash-based equal-cost multipath selection over the
//!   enumerated shortest paths (how the paper's §2.2 simulations route).
//! * [`reroute`] — fat-tree *global optimal rerouting*: path re-selection
//!   over the surviving topology with load-aware assignment (baseline 1).
//! * [`f10`] — F10's *local rerouting*: same-length parent re-selection for
//!   upward failures and the 3-hop local detour for downward failures
//!   (baseline 2, the one the paper finds congests longer paths).
//! * [`impersonation`] — ShareBackup's live-impersonation tables (paper
//!   §4.3): per-failure-group merged tables, VLAN-differentiated at the edge
//!   layer, small enough for commodity TCAM (1056 entries at k=64).
//! * [`degraded`] — the graceful-degradation policy ([`DegradedMode`]) and
//!   per-flow accounting ([`DegradedTracker`]) used when replacement runs
//!   out of backups and the scenario layer falls back to rerouting.

pub mod degraded;
pub mod ecmp;
pub mod f10;
pub mod flow;
pub mod impersonation;
pub mod reroute;
pub mod twolevel;

pub use degraded::{DegradedMode, DegradedTracker};
pub use ecmp::ecmp_path;
pub use f10::F10Router;
pub use flow::FlowKey;
pub use impersonation::{EdgeGroupTable, GroupTables, SharedTable};
pub use reroute::GlobalReroute;
pub use twolevel::TwoLevelTables;
