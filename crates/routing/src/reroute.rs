//! Fat-tree *global optimal rerouting* — the stronger of the paper's two
//! rerouting baselines (§2.2: "fat-tree uses global optimal rerouting").
//!
//! The controller is assumed to know the full failure state and re-selects
//! paths over the surviving equal-cost shortest paths. Two selection modes
//! are provided:
//!
//! * [`GlobalReroute::route`] — per-flow hash over surviving paths: what a
//!   converged ECMP control plane yields.
//! * [`GlobalReroute::route_all`] — *load-aware* global assignment: flows
//!   are greedily placed on the candidate path minimizing the current
//!   maximum link load. This is the "optimal" end of the spectrum and what
//!   the Fig. 1 harness uses for the fat-tree baseline, so the baseline is
//!   not handicapped.
//!
//! Either way, a flow whose endpoints are cut off (e.g. its edge switch
//! died) gets `None` — those are the unrecoverable casualties rerouting
//! cannot save, which the affected-flow metric counts.

use std::collections::BTreeMap;

use sharebackup_topo::{FatTree, LinkId, NodeId};

use crate::flow::FlowKey;

/// Global rerouting over a fat-tree with failures.
#[derive(Clone, Copy, Debug, Default)]
pub struct GlobalReroute;

impl GlobalReroute {
    /// The surviving equal-cost shortest paths of a flow.
    pub fn surviving_paths(ft: &FatTree, flow: &FlowKey) -> Vec<Vec<NodeId>> {
        ft.host_paths(flow.src, flow.dst)
            .into_iter()
            .filter(|p| ft.net.path_usable(p))
            .collect()
    }

    /// Hash-based rerouting: the flow's ECMP choice re-hashed over the
    /// surviving shortest paths. `None` if no shortest path survives.
    ///
    /// Note: if *no same-length path* survives, plain fat-tree rerouting has
    /// to fall back to non-shortest paths, which global optimal rerouting
    /// would find; we extend the search with a BFS fallback so the baseline
    /// keeps connectivity whenever the graph allows it.
    pub fn route(ft: &FatTree, flow: &FlowKey) -> Option<Vec<NodeId>> {
        let paths = Self::surviving_paths(ft, flow);
        if paths.is_empty() {
            return ft.net.bfs_path(flow.src, flow.dst);
        }
        let pick = flow.pick(paths.len());
        paths.into_iter().nth(pick)
    }

    /// Load-aware global assignment: route every flow, greedily minimizing
    /// the maximum number of flows per link, breaking ties by total load
    /// then path index. Returns one entry per input flow, `None` where the
    /// flow is disconnected.
    ///
    /// Deterministic: depends only on flow order and topology state.
    pub fn route_all(ft: &FatTree, flows: &[FlowKey]) -> Vec<Option<Vec<NodeId>>> {
        let mut load: BTreeMap<LinkId, u64> = BTreeMap::new();
        let mut out = Vec::with_capacity(flows.len());
        for flow in flows {
            let mut candidates = Self::surviving_paths(ft, flow);
            if candidates.is_empty() {
                if let Some(p) = ft.net.bfs_path(flow.src, flow.dst) {
                    candidates = vec![p];
                } else {
                    out.push(None);
                    continue;
                }
            }
            let links_of = |p: &[NodeId]| -> Vec<LinkId> {
                p.windows(2)
                    // lint:allow(unwrap) — paths come from the topology, so every hop is adjacent
                    .map(|w| ft.net.link_between(w[0], w[1]).expect("path link"))
                    .collect()
            };
            let mut best: Option<(u64, u64, usize)> = None;
            for (i, p) in candidates.iter().enumerate() {
                let links = links_of(p);
                let max = links
                    .iter()
                    .map(|l| load.get(l).copied().unwrap_or(0) + 1)
                    .max()
                    .unwrap_or(0);
                let sum: u64 = links
                    .iter()
                    .map(|l| load.get(l).copied().unwrap_or(0))
                    .sum();
                let key = (max, sum, i);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
            // lint:allow(unwrap) — the empty-candidates case pushed None above
            let (_, _, idx) = best.expect("candidates nonempty");
            let chosen = candidates.swap_remove(idx);
            for l in links_of(&chosen) {
                *load.entry(l).or_insert(0) += 1;
            }
            out.push(Some(chosen));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharebackup_topo::{FatTreeConfig, HostAddr};

    fn ft4() -> FatTree {
        FatTree::build(FatTreeConfig::new(4))
    }

    #[test]
    fn healthy_network_routes_on_shortest_paths() {
        let ft = ft4();
        let f = FlowKey::new(
            ft.host(HostAddr { pod: 0, edge: 0, host: 0 }),
            ft.host(HostAddr { pod: 2, edge: 1, host: 1 }),
            1,
        );
        let p = GlobalReroute::route(&ft, &f).expect("connected");
        assert_eq!(p.len(), 7);
    }

    #[test]
    fn core_failure_avoided() {
        let mut ft = ft4();
        let src = ft.host(HostAddr { pod: 0, edge: 0, host: 0 });
        let dst = ft.host(HostAddr { pod: 2, edge: 1, host: 1 });
        // Kill core 0; all flows must avoid it but stay 6 hops.
        let c0 = ft.core(0);
        ft.net.set_node_up(c0, false);
        for id in 0..64 {
            let f = FlowKey::new(src, dst, id);
            let p = GlobalReroute::route(&ft, &f).expect("connected");
            assert_eq!(p.len(), 7);
            assert!(!p.contains(&c0));
        }
    }

    #[test]
    fn edge_failure_is_unrecoverable() {
        let mut ft = ft4();
        let src = ft.host(HostAddr { pod: 0, edge: 0, host: 0 });
        let dst = ft.host(HostAddr { pod: 2, edge: 1, host: 1 });
        ft.net.set_node_up(ft.edge(2, 1), false);
        assert_eq!(GlobalReroute::route(&ft, &FlowKey::new(src, dst, 0)), None);
    }

    #[test]
    fn bfs_fallback_when_no_shortest_path_survives() {
        let mut ft = ft4();
        let src = ft.host(HostAddr { pod: 0, edge: 0, host: 0 });
        let dst = ft.host(HostAddr { pod: 0, edge: 1, host: 0 });
        // Cut both direct edge→agg paths from edge(0,0)'s side upward —
        // intra-pod shortest paths all die, but a 6-hop detour via cores of
        // another pod edge... actually cutting agg(0,0) and agg(0,1) down
        // links to edge(0,1) forces longer paths.
        let e1 = ft.edge(0, 1);
        for a in 0..2 {
            let agg = ft.agg(0, a);
            let l = ft.net.link_between(agg, e1).expect("link");
            ft.net.set_link_up(l, false);
        }
        // Now edge(0,1) is only reachable via its hosts — i.e. unreachable.
        assert_eq!(GlobalReroute::route(&ft, &FlowKey::new(src, dst, 0)), None);
    }

    #[test]
    fn route_all_balances_load() {
        let ft = ft4();
        let src = ft.host(HostAddr { pod: 0, edge: 0, host: 0 });
        let dst = ft.host(HostAddr { pod: 2, edge: 0, host: 0 });
        let flows: Vec<FlowKey> = (0..4).map(|id| FlowKey::new(src, dst, id)).collect();
        let routed = GlobalReroute::route_all(&ft, &flows);
        // Four flows between the same pair: load-aware assignment uses all
        // four distinct cores.
        let cores: std::collections::BTreeSet<NodeId> = routed
            .iter()
            .map(|p| p.as_ref().expect("connected")[3])
            .collect();
        assert_eq!(cores.len(), 4);
    }

    #[test]
    fn route_all_handles_disconnected_flows() {
        let mut ft = ft4();
        let src = ft.host(HostAddr { pod: 0, edge: 0, host: 0 });
        let dst = ft.host(HostAddr { pod: 1, edge: 0, host: 0 });
        ft.net.set_node_up(ft.edge(1, 0), false);
        let routed = GlobalReroute::route_all(&ft, &[FlowKey::new(src, dst, 0)]);
        assert_eq!(routed, vec![None]);
    }
}
