//! Live impersonation of failed switches (paper §4.3).
//!
//! When a backup switch replaces a failed switch on the physical layer it
//! must *impersonate* it on the control plane — forward exactly as the
//! failed switch would have. To avoid any rule-installation delay, every
//! member of a failure group preloads a **merged table** covering all the
//! group's positions:
//!
//! * **Core groups** and **aggregation groups**: all positions share one
//!   identical table already (all cores forward alike; all aggs of a pod
//!   forward alike), so the merged table *is* that single table.
//! * **Edge groups**: positions differ in which hosts are local. The merged
//!   table keeps one copy of the k/2 *in-bound* suffix entries (deliver to
//!   host port) and VLAN-differentiated *out-bound* entries: each edge
//!   position gets a VLAN id, hosts tag outgoing packets with their edge's
//!   VLAN, and the entry `(VLAN j, suffix h) → uplink` reproduces position
//!   j's upward diffusion. Total: k/2 + k²/4 entries — 1056 at k=64, well
//!   within commodity TCAM.

use sharebackup_topo::HostAddr;

use crate::twolevel::{NextHop, SwitchTable, TwoLevelTables};

/// The merged table of an aggregation or core failure group: a single
/// shared [`SwitchTable`] (all group positions forward identically).
#[derive(Clone, Debug)]
pub struct SharedTable {
    /// The one table every member preloads.
    pub table: SwitchTable,
}

/// One VLAN-differentiated out-bound entry of an edge group's merged table.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OutboundEntry {
    /// VLAN id = the edge position whose behaviour this entry reproduces.
    pub vlan: usize,
    /// Destination host suffix matched.
    pub suffix: usize,
    /// Uplink to take.
    pub up: usize,
}

/// The merged, VLAN-differentiated table of one pod's edge failure group.
#[derive(Clone, Debug)]
pub struct EdgeGroupTable {
    /// The pod this group serves.
    pub pod: usize,
    /// In-bound: suffix `h` → host port `h` (shared by all positions).
    pub inbound: Vec<usize>,
    /// Out-bound: `(vlan, suffix) → uplink`.
    pub outbound: Vec<OutboundEntry>,
}

impl EdgeGroupTable {
    /// Build the merged table for `pod` from the canonical two-level tables.
    pub fn build(tables: &TwoLevelTables, pod: usize) -> EdgeGroupTable {
        let k = tables.k();
        let half = k / 2;
        let inbound = (0..half).collect();
        let mut outbound = Vec::with_capacity(half * half);
        for vlan in 0..half {
            for suffix in 0..half {
                // Position `vlan`'s upward diffusion for this suffix. Any
                // non-local destination uses the suffix entry; probe with a
                // foreign pod.
                let probe = HostAddr {
                    pod: (pod + 1) % k,
                    edge: 0,
                    host: suffix,
                };
                let up = match tables.edge_next(pod, vlan, probe) {
                    NextHop::Up(m) => m,
                    other => unreachable!("foreign dst must go up, got {other:?}"),
                };
                outbound.push(OutboundEntry { vlan, suffix, up });
            }
        }
        EdgeGroupTable {
            pod,
            inbound,
            outbound,
        }
    }

    /// Total TCAM entries: `k/2 + k²/4` (paper §4.3).
    pub fn entry_count(&self) -> usize {
        self.inbound.len() + self.outbound.len()
    }

    /// Forward a packet. `vlan` is `Some(j)` for packets tagged by a host
    /// attached to edge position `j`, `None` for packets arriving from the
    /// fabric above (in-bound traffic).
    ///
    /// Works identically on every member of the group — that is the whole
    /// point of impersonation.
    pub fn lookup(&self, vlan: Option<usize>, dst: HostAddr) -> NextHop {
        match vlan {
            None => {
                // In-bound: routing above already delivered to the right
                // edge; deliver by suffix.
                NextHop::HostPort(self.inbound[dst.host])
            }
            Some(v) => {
                if dst.pod == self.pod && dst.edge == v {
                    // Host-to-host under the same edge position.
                    return NextHop::HostPort(self.inbound[dst.host]);
                }
                let e = self
                    .outbound
                    .iter()
                    .find(|e| e.vlan == v && e.suffix == dst.host)
                    // lint:allow(unwrap) — build() populates every (vlan, suffix) pair
                    .expect("outbound entry exists for every (vlan, suffix)");
                NextHop::Up(e.up)
            }
        }
    }
}

/// The full preload set of a ShareBackup fat-tree: what every physical
/// switch of each failure group stores.
#[derive(Clone, Debug)]
pub struct GroupTables {
    /// Canonical per-position tables.
    pub tables: TwoLevelTables,
    /// One merged edge table per pod.
    pub edge_groups: Vec<EdgeGroupTable>,
}

impl GroupTables {
    /// Build all merged tables for a fat-tree of parameter `k`.
    pub fn build(k: usize) -> GroupTables {
        let tables = TwoLevelTables::build(k);
        let edge_groups = (0..k).map(|pod| EdgeGroupTable::build(&tables, pod)).collect();
        GroupTables {
            tables,
            edge_groups,
        }
    }

    /// Merged table of pod `pod`'s edge group.
    pub fn edge_group(&self, pod: usize) -> &EdgeGroupTable {
        &self.edge_groups[pod]
    }

    /// Merged (shared) table of pod `pod`'s aggregation group.
    pub fn agg_group(&self, pod: usize) -> SharedTable {
        SharedTable {
            table: self.tables.agg_table(pod).clone(),
        }
    }

    /// Merged (shared) table of every core group.
    pub fn core_group(&self) -> SharedTable {
        SharedTable {
            table: self.tables.core_table().clone(),
        }
    }

    /// The paper's TCAM headline number: merged edge-group entry count.
    pub fn edge_entry_count(k: usize) -> usize {
        k / 2 + k * k / 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_count_matches_paper_formula_and_headline() {
        // §4.3: "the table contains 1056 entries for a k=64 fat-tree".
        assert_eq!(GroupTables::edge_entry_count(64), 1056);
        let gt = GroupTables::build(8);
        assert_eq!(gt.edge_group(0).entry_count(), 4 + 16);
        assert_eq!(
            gt.edge_group(0).entry_count(),
            GroupTables::edge_entry_count(8)
        );
    }

    #[test]
    fn merged_table_reproduces_every_position() {
        let k = 8;
        let gt = GroupTables::build(k);
        let half = k / 2;
        for pod in 0..k {
            let merged = gt.edge_group(pod);
            for j in 0..half {
                // Out-bound behaviour: every possible destination.
                for dpod in 0..k {
                    for dedge in 0..half {
                        for dhost in 0..half {
                            let dst = HostAddr { pod: dpod, edge: dedge, host: dhost };
                            let want = gt.tables.edge_next(pod, j, dst);
                            let got = merged.lookup(Some(j), dst);
                            assert_eq!(got, want, "pod {pod} vlan {j} dst {dst:?}");
                        }
                    }
                }
                // In-bound behaviour: local deliveries.
                for dhost in 0..half {
                    let dst = HostAddr { pod, edge: j, host: dhost };
                    assert_eq!(merged.lookup(None, dst), NextHop::HostPort(dhost));
                }
            }
        }
    }

    #[test]
    fn agg_and_core_groups_share_single_tables() {
        let gt = GroupTables::build(8);
        let agg = gt.agg_group(2);
        assert_eq!(agg.table, *gt.tables.agg_table(2));
        let core = gt.core_group();
        assert_eq!(core.table, *gt.tables.core_table());
    }

    #[test]
    fn impersonation_is_position_independent() {
        // The merged table never mentions physical identity: two "devices"
        // given the same table answer identically, by construction. This
        // test pins the observable: lookups depend only on (vlan, dst).
        let gt = GroupTables::build(4);
        let t1 = gt.edge_group(1).clone();
        let t2 = gt.edge_group(1).clone();
        for v in 0..2 {
            for pod in 0..4 {
                for e in 0..2 {
                    for h in 0..2 {
                        let dst = HostAddr { pod, edge: e, host: h };
                        assert_eq!(t1.lookup(Some(v), dst), t2.lookup(Some(v), dst));
                    }
                }
            }
        }
    }

    #[test]
    fn vlan_disambiguates_conflicting_positions() {
        // dst (pod 0, edge 0, host 1): local for VLAN 0, upward for VLAN 1.
        let gt = GroupTables::build(4);
        let merged = gt.edge_group(0);
        let dst = HostAddr { pod: 0, edge: 0, host: 1 };
        assert_eq!(merged.lookup(Some(0), dst), NextHop::HostPort(1));
        assert!(matches!(merged.lookup(Some(1), dst), NextHop::Up(_)));
    }
}
