//! Two-Level Routing of Al-Fares et al. (SIGCOMM'08 §4): the pre-defined
//! per-switch tables fat-tree forwards with, and which ShareBackup's live
//! impersonation (paper §4.3) preloads into every failure-group member.
//!
//! Each switch holds *prefix* entries (longest-prefix matches on
//! `(pod, edge)` steering traffic downward) and *suffix* entries (matches on
//! the host index spreading upward traffic across uplinks). This module
//! represents both and walks packets hop by hop; the resulting paths are the
//! same shapes [`sharebackup_topo::FatTree::host_paths`] enumerates.

use sharebackup_topo::{FatTree, HostAddr, NodeId, NodeKind};

/// A forwarding decision at one switch.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NextHop {
    /// Deliver to the host on this port (edge switches only).
    HostPort(usize),
    /// Forward down to edge switch `j` of the destination pod.
    ToEdge(usize),
    /// Forward down into pod `pod` (core switches).
    ToPod(usize),
    /// Forward up on uplink `m`.
    Up(usize),
}

/// One prefix (downward) routing entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PrefixEntry {
    /// Destination pod matched by this entry.
    pub pod: usize,
    /// Destination edge matched, or `None` for a pod-wide match.
    pub edge: Option<usize>,
    /// Action.
    pub next: NextHop,
}

/// One suffix (upward, traffic-diffusing) routing entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SuffixEntry {
    /// Destination host index matched (the address suffix).
    pub host: usize,
    /// Uplink to take.
    pub up: usize,
}

/// The routing table of a single switch position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SwitchTable {
    /// Downward entries, longest-prefix-first.
    pub prefixes: Vec<PrefixEntry>,
    /// Upward entries (checked when no prefix matches).
    pub suffixes: Vec<SuffixEntry>,
}

impl SwitchTable {
    /// Total installed entries.
    pub fn entry_count(&self) -> usize {
        self.prefixes.len() + self.suffixes.len()
    }

    /// Look up the next hop for `dst`. Returns `None` if the table has no
    /// matching entry (a build bug, not a runtime condition).
    pub fn lookup(&self, dst: HostAddr) -> Option<NextHop> {
        // Longest prefix first: (pod, edge) entries, then pod-wide entries.
        let specific = self
            .prefixes
            .iter()
            .find(|e| e.pod == dst.pod && e.edge == Some(dst.edge));
        if let Some(e) = specific {
            return Some(e.next);
        }
        let podwide = self
            .prefixes
            .iter()
            .find(|e| e.pod == dst.pod && e.edge.is_none());
        if let Some(e) = podwide {
            return Some(e.next);
        }
        self.suffixes
            .iter()
            .find(|e| e.host == dst.host)
            .map(|e| NextHop::Up(e.up))
    }
}

/// The complete Two-Level Routing state of a fat-tree: one table per switch
/// position (slot), computed once from `k` — the tables are what ShareBackup
/// preloads into backups, so they must not depend on which physical switch
/// occupies a slot.
#[derive(Clone, Debug)]
pub struct TwoLevelTables {
    k: usize,
    /// `edge_tables[pod][j]`.
    edge_tables: Vec<Vec<SwitchTable>>,
    /// `agg_tables[pod]` — identical for every agg in the pod (paper §4.3).
    agg_tables: Vec<SwitchTable>,
    /// One table shared by *all* cores (paper §4.3).
    core_table: SwitchTable,
}

impl TwoLevelTables {
    /// Build the tables for a fat-tree with parameter `k`.
    pub fn build(k: usize) -> TwoLevelTables {
        assert!(k >= 4 && k.is_multiple_of(2), "k must be even and >= 4");
        let half = k / 2;

        // Edge switch (pod i, index j): local hosts by (pod, edge) prefix →
        // host port; everything else up by host-suffix diffusion.
        let mut edge_tables = Vec::with_capacity(k);
        for pod in 0..k {
            let mut pod_tables = Vec::with_capacity(half);
            for j in 0..half {
                let prefixes = (0..1)
                    .map(|_| PrefixEntry {
                        pod,
                        edge: Some(j),
                        next: NextHop::HostPort(usize::MAX), // resolved per host
                    })
                    .collect::<Vec<_>>();
                // Suffix diffusion: dst host index h → uplink (h + j) % k/2;
                // the +j skew is Al-Fares' per-switch offset that spreads
                // same-suffix traffic across aggs.
                let suffixes = (0..half)
                    .map(|h| SuffixEntry {
                        host: h,
                        up: (h + j) % half,
                    })
                    .collect();
                pod_tables.push(SwitchTable { prefixes, suffixes });
            }
            edge_tables.push(pod_tables);
        }

        // Aggregation switch (pod i, any index): (pod, e) → edge e;
        // otherwise up by suffix diffusion (h → core uplink h).
        let agg_tables = (0..k)
            .map(|pod| {
                let prefixes = (0..half)
                    .map(|e| PrefixEntry {
                        pod,
                        edge: Some(e),
                        next: NextHop::ToEdge(e),
                    })
                    .collect();
                let suffixes = (0..half)
                    .map(|h| SuffixEntry { host: h, up: h })
                    .collect();
                SwitchTable { prefixes, suffixes }
            })
            .collect();

        // Core switch: pod-wide prefix per pod.
        let core_table = SwitchTable {
            prefixes: (0..k)
                .map(|pod| PrefixEntry {
                    pod,
                    edge: None,
                    next: NextHop::ToPod(pod),
                })
                .collect(),
            suffixes: Vec::new(),
        };

        TwoLevelTables {
            k,
            edge_tables,
            agg_tables,
            core_table,
        }
    }

    /// Fat-tree parameter.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The table of edge position E_{pod,j}.
    pub fn edge_table(&self, pod: usize, j: usize) -> &SwitchTable {
        &self.edge_tables[pod][j]
    }

    /// The table shared by all aggregation positions of `pod`.
    pub fn agg_table(&self, pod: usize) -> &SwitchTable {
        &self.agg_tables[pod]
    }

    /// The table shared by all core positions.
    pub fn core_table(&self) -> &SwitchTable {
        &self.core_table
    }

    /// Forwarding decision at edge E_{pod,j} for a packet to `dst`.
    pub fn edge_next(&self, pod: usize, j: usize, dst: HostAddr) -> NextHop {
        if dst.pod == pod && dst.edge == j {
            return NextHop::HostPort(dst.host);
        }
        match self.edge_tables[pod][j].lookup(dst) {
            Some(NextHop::HostPort(_)) | None => {
                // Prefix matched but dst is not local (different pod/edge):
                // fall through to suffix diffusion.
                let half = self.k / 2;
                NextHop::Up((dst.host + j) % half)
            }
            Some(other) => other,
        }
    }

    /// Forwarding decision at any aggregation switch of `pod`.
    pub fn agg_next(&self, pod: usize, dst: HostAddr) -> NextHop {
        if dst.pod == pod {
            NextHop::ToEdge(dst.edge)
        } else {
            NextHop::Up(dst.host % (self.k / 2))
        }
    }

    /// Forwarding decision at any core switch.
    pub fn core_next(&self, dst: HostAddr) -> NextHop {
        NextHop::ToPod(dst.pod)
    }

    /// Walk a packet from `src` to `dst` through the tables, returning the
    /// full node path. This is the *table-driven* path; the simulators use
    /// flow-hash ECMP over the equal-cost set instead, but both must agree
    /// on shape (asserted in tests).
    pub fn forward_path(&self, ft: &FatTree, src: NodeId, dst: NodeId) -> Vec<NodeId> {
        let half = self.k / 2;
        let s = ft.addr_of(src);
        let d = ft.addr_of(dst);
        let mut path = vec![src];
        let mut at = ft.edge(s.pod, s.edge);
        path.push(at);
        loop {
            let node = ft.net.node(at);
            let next = match node.kind {
                NodeKind::Edge => {
                    // lint:allow(unwrap) — edge nodes are built with a pod
                    let pod = node.pod.expect("edge has pod");
                    self.edge_next(pod, node.index, d)
                }
                NodeKind::Agg => {
                    // lint:allow(unwrap) — agg nodes are built with a pod
                    let pod = node.pod.expect("agg has pod");
                    self.agg_next(pod, d)
                }
                NodeKind::Core => self.core_next(d),
                NodeKind::Host => unreachable!("hosts do not forward"),
            };
            at = match next {
                NextHop::HostPort(_) => {
                    path.push(dst);
                    return path;
                }
                // lint:allow(unwrap) — only in-pod switches yield ToEdge/Up
                NextHop::ToEdge(e) => ft.edge(node.pod.expect("in pod"), e),
                NextHop::Up(m) => match node.kind {
                    // lint:allow(unwrap) — only in-pod switches yield ToEdge/Up
                    NodeKind::Edge => ft.agg(node.pod.expect("in pod"), m),
                    NodeKind::Agg => ft.core(node.index * half + m),
                    _ => unreachable!("only edge/agg go up"),
                },
                NextHop::ToPod(p) => {
                    // Core index c = a·k/2 + m connects to agg a of pod p.
                    ft.agg(p, node.index / half)
                }
            };
            path.push(at);
            assert!(path.len() <= 8, "forwarding loop: {path:?}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharebackup_topo::FatTreeConfig;

    #[test]
    fn entry_counts_are_small() {
        let t = TwoLevelTables::build(16);
        assert_eq!(t.edge_table(0, 0).entry_count(), 1 + 8);
        assert_eq!(t.agg_table(0).entry_count(), 8 + 8);
        assert_eq!(t.core_table().entry_count(), 16);
    }

    #[test]
    fn table_paths_reach_every_destination() {
        let ft = FatTree::build(FatTreeConfig::new(4));
        let t = TwoLevelTables::build(4);
        let hosts = ft.hosts().to_vec();
        for &src in &hosts {
            for &dst in &hosts {
                if src == dst {
                    continue;
                }
                let path = t.forward_path(&ft, src, dst);
                assert_eq!(*path.first().expect("nonempty"), src);
                assert_eq!(*path.last().expect("nonempty"), dst);
                assert!(
                    ft.net.path_usable(&path),
                    "table path not a real path: {path:?}"
                );
            }
        }
    }

    #[test]
    fn table_paths_have_ecmp_shape() {
        let ft = FatTree::build(FatTreeConfig::new(6));
        let t = TwoLevelTables::build(6);
        let same_edge = t.forward_path(
            &ft,
            ft.host(HostAddr { pod: 0, edge: 0, host: 0 }),
            ft.host(HostAddr { pod: 0, edge: 0, host: 2 }),
        );
        assert_eq!(same_edge.len(), 3);
        let same_pod = t.forward_path(
            &ft,
            ft.host(HostAddr { pod: 0, edge: 0, host: 0 }),
            ft.host(HostAddr { pod: 0, edge: 1, host: 0 }),
        );
        assert_eq!(same_pod.len(), 5);
        let cross = t.forward_path(
            &ft,
            ft.host(HostAddr { pod: 0, edge: 0, host: 0 }),
            ft.host(HostAddr { pod: 5, edge: 2, host: 1 }),
        );
        assert_eq!(cross.len(), 7);
    }

    #[test]
    fn suffix_diffusion_spreads_traffic() {
        // Two destinations with different host suffixes leave an edge switch
        // on different uplinks.
        let t = TwoLevelTables::build(8);
        let ups: Vec<NextHop> = (0..4)
            .map(|h| t.edge_next(0, 0, HostAddr { pod: 5, edge: 0, host: h }))
            .collect();
        let distinct: std::collections::BTreeSet<_> =
            ups.iter().map(|n| format!("{n:?}")).collect();
        assert_eq!(distinct.len(), 4, "diffusion must use all uplinks: {ups:?}");
    }

    #[test]
    fn edge_offset_diffuses_same_suffix_across_switches() {
        // The +j skew: the same destination suffix leaves different edge
        // switches on different uplinks (Al-Fares' diffusion optimization).
        let t = TwoLevelTables::build(8);
        let dst = HostAddr { pod: 5, edge: 0, host: 2 };
        let per_switch: std::collections::BTreeSet<_> = (0..4)
            .map(|j| format!("{:?}", t.edge_next(0, j, dst)))
            .collect();
        assert_eq!(per_switch.len(), 4);
    }

    #[test]
    fn aggregation_tables_identical_within_pod() {
        // Paper §4.3 relies on this: all aggs of a pod share one table.
        let t = TwoLevelTables::build(8);
        let reference = t.agg_table(3);
        // agg_next is the pod-level function — verify it only depends on pod.
        for dst_pod in 0..8 {
            let dst = HostAddr { pod: dst_pod, edge: 1, host: 3 };
            let n = t.agg_next(3, dst);
            if dst_pod == 3 {
                assert_eq!(n, NextHop::ToEdge(1));
            } else {
                assert_eq!(n, NextHop::Up(3));
            }
        }
        assert_eq!(reference.prefixes.len(), 4);
    }

    #[test]
    fn core_table_is_universal() {
        let t = TwoLevelTables::build(8);
        for pod in 0..8 {
            let dst = HostAddr { pod, edge: 0, host: 0 };
            assert_eq!(t.core_next(dst), NextHop::ToPod(pod));
        }
    }

    #[test]
    fn local_delivery_beats_suffix_match() {
        let t = TwoLevelTables::build(4);
        let here = HostAddr { pod: 1, edge: 1, host: 0 };
        assert_eq!(t.edge_next(1, 1, here), NextHop::HostPort(0));
        // Same suffix, different edge: must go up, not deliver.
        let elsewhere = HostAddr { pod: 1, edge: 0, host: 0 };
        assert!(matches!(t.edge_next(1, 1, elsewhere), NextHop::Up(_)));
    }
}
