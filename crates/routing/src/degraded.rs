//! Graceful degradation to rerouting when hardware replacement runs dry.
//!
//! ShareBackup's pitch is "no rerouting" — but when a failure group's
//! backup pool is exhausted (a correlated burst, DOA backups) or recovery
//! is halted by an escalation, the affected slots stay down. The paper's
//! answer is "size n so it never happens" (§5.1); a production deployment
//! still needs a policy for when it does. [`DegradedMode`] names the two
//! policies the scenario layer supports, and [`DegradedTracker`] keeps the
//! per-flow accounting (which flows ran degraded, for how long) that the
//! chaos harness reports — the accounting is what makes degradation
//! *explicit* rather than a silent blackhole.

use std::collections::BTreeMap;

use sharebackup_sim::{Duration, Time};

/// What to do with flows whose static path crosses an unrecovered slot.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum DegradedMode {
    /// Stall the flow until the slot heals (the pre-chaos behavior, and
    /// the honest reading of the paper: ShareBackup never reroutes).
    #[default]
    Stall,
    /// Fall back to global rerouting over the surviving topology for
    /// exactly the affected flows; every such flow is counted and its
    /// degraded time accumulated.
    Reroute,
}

/// Per-flow record of degraded operation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct DegradedSpell {
    first_at: Time,
    total: Duration,
    since: Option<Time>,
}

/// Accounts which flows ran on fallback (rerouted) paths and for how long.
///
/// The scenario layer calls [`DegradedTracker::mark_degraded`] each epoch a
/// flow is routed degraded and [`DegradedTracker::mark_normal`] when it is
/// back on its static path; [`DegradedTracker::finalize`] closes open
/// spells at the end of the run.
#[derive(Clone, Debug, Default)]
pub struct DegradedTracker {
    flows: BTreeMap<u64, DegradedSpell>,
}

impl DegradedTracker {
    /// An empty tracker.
    pub fn new() -> DegradedTracker {
        DegradedTracker::default()
    }

    /// Record that `flow` is routed degraded at `now`. Returns `true` if
    /// this is the first time the flow degrades (callers bump their
    /// degraded-flow counter exactly once per flow on this edge).
    pub fn mark_degraded(&mut self, flow: u64, now: Time) -> bool {
        let first = !self.flows.contains_key(&flow);
        let spell = self.flows.entry(flow).or_insert(DegradedSpell {
            first_at: now,
            total: Duration::ZERO,
            since: None,
        });
        if spell.since.is_none() {
            spell.since = Some(now);
        }
        first
    }

    /// Record that `flow` is back on its normal path at `now`, closing its
    /// open degraded spell (if any). Saturating: a `now` that trails the
    /// spell's open instant (duplicate `on_advance` deliveries are not
    /// guaranteed monotonic across environments) closes the spell at zero
    /// width instead of panicking.
    pub fn mark_normal(&mut self, flow: u64, now: Time) {
        if let Some(spell) = self.flows.get_mut(&flow) {
            if let Some(since) = spell.since.take() {
                spell.total += now.saturating_since(since);
            }
        }
    }

    /// Close every open spell at `now` (end of simulation). Saturating,
    /// like [`DegradedTracker::mark_normal`].
    pub fn finalize(&mut self, now: Time) {
        for spell in self.flows.values_mut() {
            if let Some(since) = spell.since.take() {
                spell.total += now.saturating_since(since);
            }
        }
    }

    /// Whether `flow` ever ran degraded.
    pub fn contains(&self, flow: u64) -> bool {
        self.flows.contains_key(&flow)
    }

    /// Number of flows that ever ran degraded.
    pub fn degraded_count(&self) -> usize {
        self.flows.len()
    }

    /// Total degraded flow-time across all flows (spells still open are
    /// not counted until [`DegradedTracker::finalize`]).
    pub fn total_degraded_time(&self) -> Duration {
        self.flows
            .values()
            .fold(Duration::ZERO, |acc, s| acc + s.total)
    }

    /// Per-flow `(id, first degraded at, total degraded time)` rows in
    /// flow-id order — deterministic, ready for digest output.
    pub fn report(&self) -> Vec<(u64, Time, Duration)> {
        self.flows
            .iter()
            .map(|(&id, s)| (id, s.first_at, s.total))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mode_is_stall() {
        assert_eq!(DegradedMode::default(), DegradedMode::Stall);
    }

    #[test]
    fn spells_accumulate_and_first_edge_fires_once() {
        let mut t = DegradedTracker::new();
        assert!(t.mark_degraded(7, Time::from_secs(1)));
        assert!(!t.mark_degraded(7, Time::from_secs(2)), "already degraded");
        t.mark_normal(7, Time::from_secs(5));
        assert_eq!(t.total_degraded_time(), Duration::from_secs(4));
        // Second spell for the same flow: not a new degraded flow.
        assert!(!t.mark_degraded(7, Time::from_secs(10)));
        t.mark_normal(7, Time::from_secs(11));
        assert_eq!(t.total_degraded_time(), Duration::from_secs(5));
        assert_eq!(t.degraded_count(), 1);
        let rows = t.report();
        assert_eq!(rows, vec![(7, Time::from_secs(1), Duration::from_secs(5))]);
    }

    #[test]
    fn finalize_closes_open_spells() {
        let mut t = DegradedTracker::new();
        t.mark_degraded(1, Time::from_secs(2));
        t.mark_degraded(2, Time::from_secs(3));
        t.mark_normal(1, Time::from_secs(4));
        t.finalize(Time::from_secs(10));
        assert_eq!(t.total_degraded_time(), Duration::from_secs(2 + 7));
        // Finalize is idempotent.
        t.finalize(Time::from_secs(20));
        assert_eq!(t.total_degraded_time(), Duration::from_secs(9));
    }

    #[test]
    fn mark_normal_without_degrade_is_a_no_op() {
        let mut t = DegradedTracker::new();
        t.mark_normal(42, Time::from_secs(1));
        assert_eq!(t.degraded_count(), 0);
        assert!(!t.contains(42));
    }

    #[test]
    fn overlapping_spells_across_flows_account_independently() {
        // Two flows degrade over interleaved windows; each accumulates its
        // own wall-clock, and the total is the sum, not the union.
        let mut t = DegradedTracker::new();
        t.mark_degraded(1, Time::from_secs(1)); // flow 1: [1, 6) = 5s
        t.mark_degraded(2, Time::from_secs(3)); // flow 2: [3, 4) = 1s
        t.mark_normal(2, Time::from_secs(4));
        t.mark_normal(1, Time::from_secs(6));
        assert_eq!(t.degraded_count(), 2);
        assert_eq!(t.total_degraded_time(), Duration::from_secs(6));
        let rows = t.report();
        assert_eq!(rows[0], (1, Time::from_secs(1), Duration::from_secs(5)));
        assert_eq!(rows[1], (2, Time::from_secs(3), Duration::from_secs(1)));
    }

    #[test]
    fn spell_never_closed_before_sim_end_is_charged_by_finalize_only() {
        // A flow that is still degraded when the simulation ends must not
        // silently drop its open spell: total reads zero until `finalize`
        // charges the dwell up to the end time.
        let mut t = DegradedTracker::new();
        t.mark_degraded(9, Time::from_secs(5));
        assert_eq!(
            t.total_degraded_time(),
            Duration::ZERO,
            "open spell not yet charged"
        );
        assert!(t.contains(9), "but the flow is visibly degraded");
        t.finalize(Time::from_secs(12));
        assert_eq!(t.total_degraded_time(), Duration::from_secs(7));
    }

    #[test]
    fn non_monotonic_duplicate_close_saturates_instead_of_panicking() {
        // Environments may deliver a duplicate `on_advance` with a stale
        // timestamp; closing a spell "before" it opened must clamp to zero
        // width, and the stale close must not corrupt later accounting.
        let mut t = DegradedTracker::new();
        t.mark_degraded(3, Time::from_secs(10));
        t.mark_normal(3, Time::from_secs(8)); // stale: earlier than open
        assert_eq!(t.total_degraded_time(), Duration::ZERO);
        // A fresh spell still accounts normally afterwards.
        t.mark_degraded(3, Time::from_secs(20));
        t.finalize(Time::from_secs(25));
        assert_eq!(t.total_degraded_time(), Duration::from_secs(5));
        // Stale finalize after everything is closed is also harmless.
        t.finalize(Time::from_secs(1));
        assert_eq!(t.total_degraded_time(), Duration::from_secs(5));
    }
}
