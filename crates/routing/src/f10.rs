//! F10 local rerouting (Liu et al., NSDI'13) — the paper's second baseline.
//!
//! F10 recovers *locally*, at the switch adjacent to the failure:
//!
//! * **Upward failures** (a parent or the link to it dies) are repaired with
//!   no path dilation: the child simply picks another parent.
//! * **Downward failures** (a core's link into the destination pod, or an
//!   aggregation switch's link to the destination edge) need the AB tree's
//!   3-hop detour: bounce *down* to a sibling, *up* to an alternate parent
//!   of the unreachable switch, then down the intended level — replacing one
//!   hop with three.
//!
//! The detoured paths are 2 hops longer and concentrate load on the
//! detour links, which is exactly why the paper's Fig. 1(c) shows F10's CCT
//! degrading *more* than fat-tree's global rerouting under single failures.

use sharebackup_topo::{F10Topology, NodeId};

use crate::flow::FlowKey;

/// F10's local failure recovery over an AB fat-tree.
#[derive(Clone, Copy, Debug, Default)]
pub struct F10Router;

impl F10Router {
    /// Route `flow` under the current failure state using F10's local
    /// rerouting rules. Returns `None` when the flow is unrecoverable (an
    /// endpoint's edge switch or host link is gone).
    pub fn route(f10: &F10Topology, flow: &FlowKey) -> Option<Vec<NodeId>> {
        let s = f10.addr_of(flow.src);
        let d = f10.addr_of(flow.dst);
        let net = &f10.net;
        let se = f10.edge(s.pod, s.edge);
        let de = f10.edge(d.pod, d.edge);

        let usable = |a: NodeId, b: NodeId| -> bool {
            net.link_between(a, b).is_some_and(|l| net.link_usable(l))
        };
        // Terminal hops have no alternative.
        if !usable(flow.src, se) || !usable(de, flow.dst) {
            return None;
        }
        if se == de {
            return Some(vec![flow.src, se, flow.dst]);
        }

        if s.pod == d.pod {
            // Intra-pod. Locality discipline (the whole point of F10): the
            // switch *adjacent* to the failure repairs it. The edge re-picks
            // its parent only for an upward failure (se→agg or agg dead);
            // a failed agg→de downlink is repaired *below the agg* with the
            // 3-hop detour, never by an upstream re-pick at the edge.
            let half = f10.k() / 2;
            let a_orig = flow.pick(half);
            let agg_orig = f10.agg(s.pod, a_orig);
            let a = if usable(se, agg_orig) {
                a_orig
            } else {
                // Upward failure: the edge (adjacent) picks another parent.
                let alts: Vec<usize> = (0..half)
                    .filter(|&a| usable(se, f10.agg(s.pod, a)))
                    .collect();
                if alts.is_empty() {
                    return None;
                }
                alts[flow.pick_salted(alts.len(), 3)]
            };
            let agg = f10.agg(s.pod, a);
            if usable(agg, de) {
                return Some(vec![flow.src, se, agg, de, flow.dst]);
            }
            // Downward failure at `agg`: 3-hop detour below it — bounce
            // through a sibling edge to an alternate agg that reaches de.
            for e_via in (0..half).filter(|&e| e != s.edge && e != d.edge) {
                let via = f10.edge(s.pod, e_via);
                if !usable(agg, via) {
                    continue;
                }
                for a2 in (0..half).filter(|&x| x != a) {
                    let agg2 = f10.agg(s.pod, a2);
                    if usable(via, agg2) && usable(agg2, de) {
                        return Some(vec![
                            flow.src, se, agg, via, agg2, de, flow.dst,
                        ]);
                    }
                }
            }
            // No local detour below this agg: fall back to any path.
            return net.bfs_path(flow.src, flow.dst);
        }

        // Cross-pod. Start from the flow's original ECMP intent and repair
        // *locally*: the edge re-picks its agg only if its own uplink (or
        // the agg) died; the agg re-picks its core only if its own uplink
        // (or the core) died. Upward repairs are dilation-free and never
        // touch switches upstream of the failure.
        let half = f10.k() / 2;
        let pick = flow.pick(half * half);
        let (a_orig, m_orig) = (pick / half, pick % half);
        let a = if usable(se, f10.agg(s.pod, a_orig)) {
            a_orig
        } else {
            let alts: Vec<usize> = (0..half)
                .filter(|&a| usable(se, f10.agg(s.pod, a)))
                .collect();
            if alts.is_empty() {
                return None;
            }
            alts[flow.pick_salted(alts.len(), 4)]
        };
        let a1 = f10.agg(s.pod, a);
        let cores = f10.cores_of_agg(s.pod, a);
        let c_orig = cores[m_orig];
        let c = if usable(a1, f10.core(c_orig)) {
            c_orig
        } else {
            let alts: Vec<usize> = cores
                .iter()
                .copied()
                .filter(|&c| usable(a1, f10.core(c)))
                .collect();
            if alts.is_empty() {
                // This agg lost all uplinks; the edge (adjacent to a now
                // fully-cut parent) falls back to another agg chain.
                return net.bfs_path(flow.src, flow.dst);
            }
            alts[flow.pick_salted(alts.len(), 5)]
        };
        let core = f10.core(c);

        // Downward from the core into the destination pod.
        let a2_idx = f10.agg_for_core(d.pod, c);
        let a2 = f10.agg(d.pod, a2_idx);
        if usable(core, a2) && usable(a2, de) {
            return Some(vec![flow.src, se, a1, core, a2, de, flow.dst]);
        }

        // Core-level detour: core → via-agg in a third pod → alternate core
        // entering the destination pod at a different agg → dest edge.
        if !usable(core, a2) || !net.node(a2).up {
            let mut salt = 0;
            let mut candidates = Vec::new();
            for p_via in (0..f10.k()).filter(|&p| p != s.pod && p != d.pod) {
                let via_idx = f10.agg_for_core(p_via, c);
                let via = f10.agg(p_via, via_idx);
                if !usable(core, via) {
                    continue;
                }
                for c2 in f10.cores_of_agg(p_via, via_idx) {
                    if c2 == c {
                        continue;
                    }
                    let core2 = f10.core(c2);
                    if !usable(via, core2) {
                        continue;
                    }
                    let a2b_idx = f10.agg_for_core(d.pod, c2);
                    let a2b = f10.agg(d.pod, a2b_idx);
                    if usable(core2, a2b) && usable(a2b, de) {
                        candidates.push(vec![
                            flow.src, se, a1, core, via, core2, a2b, de, flow.dst,
                        ]);
                    }
                }
                salt += 1;
                let _ = salt;
            }
            if !candidates.is_empty() {
                let pick = flow.pick_salted(candidates.len(), 1);
                return Some(candidates.swap_remove(pick));
            }
            return net.bfs_path(flow.src, flow.dst);
        }

        // Aggregation-level detour inside the destination pod: a2 bounces
        // through a sibling edge to an alternate agg that reaches de.
        let mut candidates = Vec::new();
        for e_via in (0..half).filter(|&e| e != d.edge) {
            let via = f10.edge(d.pod, e_via);
            if !usable(a2, via) {
                continue;
            }
            for a2b in (0..half).filter(|&x| x != a2_idx) {
                let agg2 = f10.agg(d.pod, a2b);
                if usable(via, agg2) && usable(agg2, de) {
                    candidates.push(vec![
                        flow.src, se, a1, core, a2, via, agg2, de, flow.dst,
                    ]);
                }
            }
        }
        if !candidates.is_empty() {
            let pick = flow.pick_salted(candidates.len(), 2);
            return Some(candidates.swap_remove(pick));
        }
        net.bfs_path(flow.src, flow.dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharebackup_topo::{FatTreeConfig, HostAddr};

    fn f10_6() -> F10Topology {
        F10Topology::build(FatTreeConfig::new(6))
    }

    #[test]
    fn healthy_routes_are_shortest() {
        let f10 = f10_6();
        let f = FlowKey::new(
            f10.host(HostAddr { pod: 0, edge: 0, host: 0 }),
            f10.host(HostAddr { pod: 3, edge: 1, host: 1 }),
            5,
        );
        let p = F10Router::route(&f10, &f).expect("connected");
        assert_eq!(p.len(), 7);
        assert!(f10.net.path_usable(&p));
    }

    #[test]
    fn upward_failure_recovers_without_dilation() {
        let mut f10 = f10_6();
        let src = f10.host(HostAddr { pod: 0, edge: 0, host: 0 });
        let dst = f10.host(HostAddr { pod: 3, edge: 1, host: 1 });
        // Kill one agg in the source pod: flows re-pick a parent, same length.
        let dead = f10.agg(0, 0);
        f10.net.set_node_up(dead, false);
        for id in 0..32 {
            let p = F10Router::route(&f10, &FlowKey::new(src, dst, id)).expect("connected");
            assert_eq!(p.len(), 7, "upward recovery must not dilate");
            assert!(!p.contains(&dead));
            assert!(f10.net.path_usable(&p));
        }
    }

    #[test]
    fn downward_core_link_failure_takes_three_hop_detour() {
        let mut f10 = f10_6();
        let src = f10.host(HostAddr { pod: 0, edge: 0, host: 0 });
        let dst = f10.host(HostAddr { pod: 1, edge: 1, host: 1 });
        // Find the flow's core and cut its link into the destination pod.
        let healthy = F10Router::route(&f10, &FlowKey::new(src, dst, 9)).expect("connected");
        let core = healthy[3];
        let a2 = healthy[4];
        let l = f10.net.link_between(core, a2).expect("core downlink");
        f10.net.set_link_up(l, false);
        let p = F10Router::route(&f10, &FlowKey::new(src, dst, 9)).expect("recoverable");
        assert_eq!(p.len(), 9, "detour adds exactly 2 hops: {p:?}");
        assert!(f10.net.path_usable(&p));
        // The detour still passes through the original core (local repair).
        assert!(p.contains(&core));
    }

    #[test]
    fn downward_agg_edge_link_failure_detours_in_pod() {
        let mut f10 = f10_6();
        let src = f10.host(HostAddr { pod: 0, edge: 0, host: 0 });
        let dst = f10.host(HostAddr { pod: 1, edge: 1, host: 1 });
        let healthy = F10Router::route(&f10, &FlowKey::new(src, dst, 3)).expect("connected");
        let a2 = healthy[4];
        let de = healthy[5];
        let l = f10.net.link_between(a2, de).expect("agg downlink");
        f10.net.set_link_up(l, false);
        let p = F10Router::route(&f10, &FlowKey::new(src, dst, 3)).expect("recoverable");
        assert_eq!(p.len(), 9, "in-pod detour adds 2 hops: {p:?}");
        assert!(f10.net.path_usable(&p));
        assert!(p.contains(&a2), "repair happens below the failed hop");
    }

    #[test]
    fn intra_pod_agg_failure_repairs_locally() {
        let mut f10 = f10_6();
        let src = f10.host(HostAddr { pod: 2, edge: 0, host: 0 });
        let dst = f10.host(HostAddr { pod: 2, edge: 2, host: 1 });
        for a in 0..2 {
            f10.net.set_node_up(f10.agg(2, a), false);
        }
        // One agg left: all flows converge on it, same length.
        for id in 0..8 {
            let p = F10Router::route(&f10, &FlowKey::new(src, dst, id)).expect("connected");
            assert_eq!(p.len(), 5);
            assert_eq!(p[2], f10.agg(2, 2));
        }
    }

    #[test]
    fn upward_agg_core_failure_repairs_at_the_agg_only() {
        // The locality discipline Table 3 depends on: when an agg's uplink
        // dies, the agg picks another core — the path prefix up to and
        // including the agg is unchanged (no upstream repair).
        let mut f10 = f10_6();
        let src = f10.host(HostAddr { pod: 0, edge: 0, host: 0 });
        for id in 0..24 {
            let f10_fresh = f10_6();
            let flow = FlowKey::new(src, f10_fresh.host(HostAddr { pod: 2, edge: 1, host: 1 }), id);
            let before = F10Router::route(&f10_fresh, &flow).expect("healthy");
            let (a1, core) = (before[2], before[3]);
            let l = f10.net.link_between(a1, core);
            let Some(l) = l else { continue };
            f10.net.set_link_up(l, false);
            let after = F10Router::route(&f10, &flow).expect("recoverable");
            assert_eq!(&after[..3], &before[..3], "prefix through the agg unchanged");
            assert_ne!(after[3], core, "the agg picked another core");
            f10.net.set_link_up(l, true);
        }
    }

    #[test]
    fn edge_failure_is_unrecoverable() {
        let mut f10 = f10_6();
        let src = f10.host(HostAddr { pod: 0, edge: 0, host: 0 });
        let dst = f10.host(HostAddr { pod: 1, edge: 1, host: 1 });
        f10.net.set_node_up(f10.edge(1, 1), false);
        assert_eq!(F10Router::route(&f10, &FlowKey::new(src, dst, 0)), None);
    }

    #[test]
    fn same_edge_traffic_untouched_by_fabric_failures() {
        let mut f10 = f10_6();
        let src = f10.host(HostAddr { pod: 0, edge: 0, host: 0 });
        let dst = f10.host(HostAddr { pod: 0, edge: 0, host: 2 });
        // Kill every agg in the pod: same-edge traffic must not care.
        for a in 0..3 {
            f10.net.set_node_up(f10.agg(0, a), false);
        }
        let p = F10Router::route(&f10, &FlowKey::new(src, dst, 0)).expect("connected");
        assert_eq!(p.len(), 3);
    }
}
