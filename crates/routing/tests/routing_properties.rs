//! Property-based tests of the routing crate: ECMP validity, table-driven
//! forwarding, rerouting correctness, F10 local recovery, and
//! impersonation equivalence over random inputs.

use proptest::prelude::*;

use sharebackup_routing::{
    ecmp_path, impersonation::GroupTables, F10Router, FlowKey,
    GlobalReroute, TwoLevelTables,
};
use sharebackup_topo::{F10Topology, FatTree, FatTreeConfig, HostAddr, NodeKind};

fn ks() -> impl Strategy<Value = usize> {
    prop::sample::select(vec![4usize, 6, 8])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ecmp_paths_are_valid_and_stable(k in ks(), id in 0u64..10_000, h1 in 0usize..64, h2 in 0usize..64) {
        let ft = FatTree::build(FatTreeConfig::new(k));
        let count = ft.hosts().len();
        let src = ft.host_by_index(h1 % count);
        let dst = ft.host_by_index(h2 % count);
        prop_assume!(src != dst);
        let flow = FlowKey::new(src, dst, id);
        let p1 = ecmp_path(&ft, &flow);
        let p2 = ecmp_path(&ft, &flow);
        prop_assert_eq!(&p1, &p2, "ECMP must be stable");
        prop_assert!(ft.net.path_usable(&p1));
        prop_assert_eq!(*p1.first().expect("nonempty"), src);
        prop_assert_eq!(*p1.last().expect("nonempty"), dst);
    }

    #[test]
    fn table_forwarding_matches_path_shape(k in ks(), h1 in 0usize..64, h2 in 0usize..64) {
        let ft = FatTree::build(FatTreeConfig::new(k));
        let tables = TwoLevelTables::build(k);
        let count = ft.hosts().len();
        let src = ft.host_by_index(h1 % count);
        let dst = ft.host_by_index(h2 % count);
        prop_assume!(src != dst);
        let p = tables.forward_path(&ft, src, dst);
        prop_assert!(ft.net.path_usable(&p));
        let s = ft.addr_of(src);
        let d = ft.addr_of(dst);
        let expected_len = if s.pod == d.pod && s.edge == d.edge {
            3
        } else if s.pod == d.pod {
            5
        } else {
            7
        };
        prop_assert_eq!(p.len(), expected_len);
    }

    #[test]
    fn reroute_avoids_any_single_core_or_agg_failure(
        k in ks(), id in 0u64..1000, which in any::<bool>(), idx in 0usize..64
    ) {
        let mut ft = FatTree::build(FatTreeConfig::new(k));
        let half = k / 2;
        let src = ft.host(HostAddr { pod: 0, edge: 0, host: 0 });
        let dst = ft.host(HostAddr { pod: 1, edge: 1, host: 1 });
        let victim = if which {
            ft.core(idx % (half * half))
        } else {
            ft.agg(idx % k, (idx / k) % half)
        };
        ft.net.set_node_up(victim, false);
        let flow = FlowKey::new(src, dst, id);
        let p = GlobalReroute::route(&ft, &flow).expect("single fabric failure is survivable");
        prop_assert!(!p.contains(&victim));
        prop_assert!(ft.net.path_usable(&p));
        prop_assert_eq!(p.len(), 7, "rerouting keeps shortest length");
    }

    #[test]
    fn f10_survives_any_single_fabric_failure(
        k in ks(), id in 0u64..1000, idx in 0usize..256
    ) {
        let mut f10 = F10Topology::build(FatTreeConfig::new(k));
        let src = f10.host(HostAddr { pod: 0, edge: 0, host: 0 });
        let dst = f10.host(HostAddr { pod: 1, edge: 1, host: 1 });
        // Fail a random non-edge switch (edge failures strand hosts).
        let victims: Vec<_> = f10
            .net
            .node_ids()
            .filter(|&n| {
                matches!(f10.net.node(n).kind, NodeKind::Agg | NodeKind::Core)
            })
            .collect();
        let victim = victims[idx % victims.len()];
        f10.net.set_node_up(victim, false);
        let flow = FlowKey::new(src, dst, id);
        let p = F10Router::route(&f10, &flow).expect("local recovery exists");
        prop_assert!(!p.contains(&victim));
        prop_assert!(f10.net.path_usable(&p));
        // Local rerouting never dilates by more than the 3-hop detour.
        prop_assert!(p.len() <= 9);
    }

    #[test]
    fn impersonation_equivalence_random_k(k in ks()) {
        let gt = GroupTables::build(k);
        let half = k / 2;
        for pod in 0..k {
            let merged = gt.edge_group(pod);
            for vlan in 0..half {
                for dpod in 0..k {
                    for dh in 0..half {
                        let dst = HostAddr { pod: dpod, edge: (dh + 1) % half, host: dh };
                        let want = gt.tables.edge_next(pod, vlan, dst);
                        prop_assert_eq!(merged.lookup(Some(vlan), dst), want);
                    }
                }
            }
        }
    }

    #[test]
    fn flow_hash_is_uniformish(k in ks(), base in 0u64..1_000_000) {
        let ft = FatTree::build(FatTreeConfig::new(k));
        let src = ft.host(HostAddr { pod: 0, edge: 0, host: 0 });
        let dst = ft.host(HostAddr { pod: 1, edge: 0, host: 0 });
        let half = k / 2;
        let buckets = half * half;
        let mut counts = vec![0usize; buckets];
        let trials = 64 * buckets as u64;
        for id in base..base + trials {
            counts[FlowKey::new(src, dst, id).pick(buckets)] += 1;
        }
        // Chebyshev-ish sanity: no bucket further than 60% from the mean.
        let mean = 64.0;
        for (b, &c) in counts.iter().enumerate() {
            prop_assert!(
                (c as f64 - mean).abs() < mean * 0.6,
                "bucket {b}: {c} vs mean {mean}"
            );
        }
    }
}
