//! Trace-shape statistics: the distributional fingerprint that justifies
//! substituting the Facebook trace with a synthetic one.
//!
//! The published Coflow-Benchmark analyses characterize the workload by:
//! coflow *width* (flows per coflow — most coflows narrow, heavy tail),
//! coflow *size* (total bytes — a few giants carry most bytes), and
//! arrival intensity. [`TraceShape`] extracts exactly those statistics
//! from any [`CoflowTrace`], so a synthetic trace can be compared — number
//! for number — against the real file when it is available (via
//! [`crate::trace_io::BenchmarkTrace`]).

use sharebackup_sim::stats::percentile_sorted;

use crate::coflowgen::CoflowTrace;

/// Distributional fingerprint of a coflow trace.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceShape {
    /// Number of coflows.
    pub coflows: usize,
    /// Number of flows.
    pub flows: usize,
    /// Total bytes.
    pub total_bytes: u64,
    /// Width percentiles (p50, p90, p99, max).
    pub width: [f64; 4],
    /// Coflow-size percentiles in bytes (p50, p90, p99, max).
    pub size: [f64; 4],
    /// Fraction of total bytes carried by the largest 10% of coflows.
    pub top_decile_byte_share: f64,
    /// Fraction of coflows with at most 4 flows ("narrow").
    pub narrow_fraction: f64,
}

impl TraceShape {
    /// Compute the fingerprint of a trace.
    ///
    /// # Panics
    /// Panics on a trace with no coflows.
    pub fn of(trace: &CoflowTrace) -> TraceShape {
        assert!(!trace.coflows.is_empty(), "empty trace");
        let mut widths: Vec<f64> = trace
            .coflows
            .iter()
            .map(|c| c.flows.len() as f64)
            .collect();
        widths.sort_by(f64::total_cmp);
        let mut sizes: Vec<f64> = trace
            .coflows
            .iter()
            .map(|c| c.flows.iter().map(|&i| trace.specs[i].bytes).sum::<u64>() as f64)
            .collect();
        sizes.sort_by(f64::total_cmp);
        let total: f64 = sizes.iter().sum();
        let top_decile: f64 = sizes[sizes.len() * 9 / 10..].iter().sum();
        let narrow = widths.iter().filter(|&&w| w <= 4.0).count();
        let pct = |v: &[f64]| {
            [
                percentile_sorted(v, 0.50),
                percentile_sorted(v, 0.90),
                percentile_sorted(v, 0.99),
                // lint:allow(unwrap) — `of` asserts the trace is non-empty
                *v.last().expect("nonempty"),
            ]
        };
        TraceShape {
            coflows: trace.coflow_count(),
            flows: trace.flow_count(),
            total_bytes: trace.total_bytes(),
            width: pct(&widths),
            size: pct(&sizes),
            top_decile_byte_share: if total > 0.0 { top_decile / total } else { 0.0 },
            narrow_fraction: narrow as f64 / widths.len() as f64,
        }
    }

    /// Whether this trace has the Facebook-like heavy-tail fingerprint the
    /// paper's findings depend on: mostly-narrow coflows with a wide tail,
    /// and bytes concentrated in the top decile.
    pub fn is_heavy_tailed(&self) -> bool {
        self.narrow_fraction >= 0.4
            && self.width[3] >= 8.0 * self.width[0].max(1.0)
            && self.top_decile_byte_share >= 0.5
    }
}

impl std::fmt::Display for TraceShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "coflows={} flows={} bytes={:.2}GB",
            self.coflows,
            self.flows,
            self.total_bytes as f64 / 1e9
        )?;
        writeln!(
            f,
            "width  p50={:.0} p90={:.0} p99={:.0} max={:.0} (narrow≤4: {:.0}%)",
            self.width[0],
            self.width[1],
            self.width[2],
            self.width[3],
            100.0 * self.narrow_fraction
        )?;
        write!(
            f,
            "size   p50={:.1}MB p90={:.1}MB p99={:.1}MB max={:.1}MB (top-10% carry {:.0}% of bytes)",
            self.size[0] / 1e6,
            self.size[1] / 1e6,
            self.size[2] / 1e6,
            self.size[3] / 1e6,
            100.0 * self.top_decile_byte_share
        )
    }
}

#[cfg(test)]
#[allow(clippy::cast_possible_truncation)]
mod tests {
    use super::*;
    use crate::coflowgen::TraceConfig;
    use sharebackup_sim::{SimRng, Time};
    use sharebackup_topo::NodeId;

    fn trace() -> CoflowTrace {
        let cfg = TraceConfig::fb_like(64, Time::from_secs(300));
        let mut rng = SimRng::seed_from_u64(5);
        CoflowTrace::generate(&cfg, &mut rng, |rack, salt| {
            NodeId((rack as u32) * 4 + (salt % 4) as u32)
        })
    }

    #[test]
    fn synthetic_trace_has_the_facebook_fingerprint() {
        let shape = TraceShape::of(&trace());
        assert!(shape.is_heavy_tailed(), "{shape}");
        assert!(shape.narrow_fraction > 0.4);
        assert!(shape.top_decile_byte_share > 0.5);
        // Median coflow is small; the max dwarfs it.
        assert!(shape.size[3] > 20.0 * shape.size[0]);
    }

    #[test]
    fn display_is_complete() {
        let shape = TraceShape::of(&trace());
        let text = format!("{shape}");
        assert!(text.contains("coflows="));
        assert!(text.contains("narrow"));
        assert!(text.contains("top-10%"));
    }

    #[test]
    fn uniform_trace_is_not_heavy_tailed() {
        // Hand-build a degenerate trace: every coflow identical.
        use sharebackup_flowsim::{Coflow, CoflowId, FlowSpec};
        use sharebackup_routing::FlowKey;
        let mut specs = Vec::new();
        let mut coflows = Vec::new();
        for c in 0..20u32 {
            let mut members = Vec::new();
            for f in 0..5u64 {
                members.push(specs.len());
                specs.push(FlowSpec {
                    key: FlowKey::new(NodeId(0), NodeId(1), c as u64 * 5 + f),
                    bytes: 1_000_000,
                    arrival: Time::ZERO,
                });
            }
            coflows.push(Coflow { id: CoflowId(c), flows: members });
        }
        let shape = TraceShape::of(&CoflowTrace { specs, coflows });
        assert!(!shape.is_heavy_tailed());
        assert!((shape.top_decile_byte_share - 0.1).abs() < 1e-9);
    }
}
