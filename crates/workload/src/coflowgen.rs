//! Synthetic coflow trace generation (Facebook-like shape).
//!
//! Structure follows the Coflow-Benchmark format: each coflow has a set of
//! mapper racks and reducer racks; the shuffle creates one flow from every
//! mapper to every reducer. Widths and sizes are heavy-tailed with
//! parameters chosen to echo the published Facebook distributions: the
//! median coflow is narrow (few flows) and small (megabytes), while the
//! top few percent of coflows carry most bytes and have hundreds of flows.

use sharebackup_flowsim::{Coflow, CoflowId, FlowSpec};
use sharebackup_routing::FlowKey;
use sharebackup_sim::{SimRng, Time};
use sharebackup_topo::NodeId;

/// Parameters of a synthetic coflow trace.
#[derive(Clone, Debug)]
pub struct TraceConfig {
    /// Number of racks (mapped cyclically onto edge switches by the caller's
    /// `rack_to_host` function).
    pub racks: usize,
    /// Trace duration.
    pub duration: Time,
    /// Mean coflow inter-arrival time in seconds (Poisson arrivals).
    pub mean_interarrival_s: f64,
    /// Pareto shape for the mapper/reducer counts (smaller = heavier tail).
    pub width_alpha: f64,
    /// Maximum mappers or reducers per coflow (clamped to `racks`).
    pub max_width: usize,
    /// Pareto scale (bytes) for per-reducer shuffle size.
    pub bytes_scale: f64,
    /// Pareto shape for per-reducer shuffle size.
    pub bytes_alpha: f64,
    /// Cap on per-flow bytes (keeps single giants from dominating runtime).
    pub max_flow_bytes: u64,
}

impl TraceConfig {
    /// A Facebook-like trace scaled to the paper's setting: 150-rack-class
    /// cluster mapped onto a k=16 fat-tree, 5-minute partitions.
    pub fn fb_like(racks: usize, duration: Time) -> TraceConfig {
        TraceConfig {
            racks,
            duration,
            mean_interarrival_s: 3.0,
            width_alpha: 1.1,
            max_width: racks,
            bytes_scale: 4.0e6, // most reducers receive a few MB
            bytes_alpha: 1.3,
            max_flow_bytes: 2_000_000_000,
        }
    }

    /// Adjust the offered load by scaling the arrival rate.
    pub fn with_mean_interarrival_s(mut self, s: f64) -> TraceConfig {
        self.mean_interarrival_s = s;
        self
    }
}

/// A generated trace: flows plus their coflow grouping.
#[derive(Clone, Debug)]
pub struct CoflowTrace {
    /// Flow specifications, ready for the flow-level simulator.
    pub specs: Vec<FlowSpec>,
    /// Coflow grouping over `specs`.
    pub coflows: Vec<Coflow>,
}

impl CoflowTrace {
    /// Generate a trace.
    ///
    /// `rack_to_host(rack, salt)` maps a rack index to a concrete host
    /// `NodeId`; the salt lets the generator spread a rack's flows over the
    /// rack's hosts. The generator guarantees `src != dst` per flow.
    pub fn generate(
        cfg: &TraceConfig,
        rng: &mut SimRng,
        mut rack_to_host: impl FnMut(usize, u64) -> NodeId,
    ) -> CoflowTrace {
        assert!(cfg.racks >= 2, "need at least two racks");
        let mut specs = Vec::new();
        let mut coflows = Vec::new();
        let mut t = 0.0_f64;
        let mut flow_id = 0u64;
        loop {
            t += rng.exponential(cfg.mean_interarrival_s);
            let arrival = Time::from_secs_f64(t);
            if arrival > cfg.duration {
                break;
            }
            let id = CoflowId::from_index(coflows.len());
            let width_cap = cfg.max_width.min(cfg.racks);
            let mappers = Self::heavy_width(rng, cfg.width_alpha, width_cap);
            let reducers = Self::heavy_width(rng, cfg.width_alpha, width_cap);
            let mapper_racks = rng.sample_indices(cfg.racks, mappers);
            let reducer_racks = rng.sample_indices(cfg.racks, reducers);
            // Per-reducer shuffle volume, split evenly over mappers (the
            // Coflow-Benchmark convention).
            let mut members = Vec::with_capacity(mappers * reducers);
            for &r in &reducer_racks {
                let total = rng.pareto(cfg.bytes_scale, cfg.bytes_alpha);
                // Truncating the heavy-tailed sample to whole bytes is the
                // intended rounding; clamp bounds the value either way.
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                let per_flow =
                    ((total / mappers as f64) as u64).clamp(1, cfg.max_flow_bytes);
                for &m in &mapper_racks {
                    if m == r {
                        // Same-rack shuffle portion never enters the fabric.
                        continue;
                    }
                    let src = rack_to_host(m, flow_id);
                    let dst = rack_to_host(r, flow_id.wrapping_add(1));
                    if src == dst {
                        flow_id += 1;
                        continue;
                    }
                    members.push(specs.len());
                    specs.push(FlowSpec {
                        key: FlowKey::new(src, dst, flow_id),
                        bytes: per_flow,
                        arrival,
                    });
                    flow_id += 1;
                }
            }
            if members.is_empty() {
                continue; // degenerate coflow (all same-rack); skip
            }
            coflows.push(Coflow { id, flows: members });
        }
        CoflowTrace { specs, coflows }
    }

    /// Heavy-tailed integer width in `[1, cap]`.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    fn heavy_width(rng: &mut SimRng, alpha: f64, cap: usize) -> usize {
        (rng.pareto(1.0, alpha) as usize).clamp(1, cap.max(1))
    }

    /// Number of flows.
    pub fn flow_count(&self) -> usize {
        self.specs.len()
    }

    /// Number of coflows.
    pub fn coflow_count(&self) -> usize {
        self.coflows.len()
    }

    /// Total bytes over all flows.
    pub fn total_bytes(&self) -> u64 {
        self.specs.iter().map(|s| s.bytes).sum()
    }
}

#[cfg(test)]
#[allow(clippy::cast_possible_truncation)]
mod tests {
    use super::*;

    fn gen(seed: u64) -> CoflowTrace {
        let cfg = TraceConfig::fb_like(32, Time::from_secs(300));
        let mut rng = SimRng::seed_from_u64(seed);
        CoflowTrace::generate(&cfg, &mut rng, |rack, salt| {
            NodeId((rack as u32) * 4 + (salt % 4) as u32)
        })
    }

    #[test]
    fn deterministic_per_seed() {
        let a = gen(1);
        let b = gen(1);
        assert_eq!(a.flow_count(), b.flow_count());
        assert_eq!(a.total_bytes(), b.total_bytes());
        let c = gen(2);
        assert!(a.total_bytes() != c.total_bytes() || a.flow_count() != c.flow_count());
    }

    #[test]
    fn arrivals_within_duration_and_sorted_grouping() {
        let t = gen(3);
        assert!(t.coflow_count() > 10, "5 minutes should yield many coflows");
        for s in &t.specs {
            assert!(s.arrival <= Time::from_secs(300));
            assert!(s.bytes >= 1);
            assert_ne!(s.key.src, s.key.dst);
        }
        // Every flow belongs to exactly one coflow.
        let mut seen = vec![false; t.flow_count()];
        for cf in &t.coflows {
            assert!(!cf.flows.is_empty());
            for &i in &cf.flows {
                assert!(!seen[i], "flow in two coflows");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn widths_are_heavy_tailed() {
        let t = gen(4);
        let widths: Vec<usize> = t.coflows.iter().map(|c| c.flows.len()).collect();
        let narrow = widths.iter().filter(|&&w| w <= 4).count();
        let wide = widths.iter().filter(|&&w| w >= 32).count();
        assert!(
            narrow * 2 > widths.len(),
            "most coflows should be narrow: {narrow}/{}",
            widths.len()
        );
        assert!(wide >= 1, "tail should produce some wide coflows");
    }

    #[test]
    fn bytes_are_heavy_tailed() {
        let t = gen(5);
        let mut sizes: Vec<u64> = t
            .coflows
            .iter()
            .map(|c| c.flows.iter().map(|&i| t.specs[i].bytes).sum())
            .collect();
        sizes.sort_unstable();
        let total: u64 = sizes.iter().sum();
        let top10pct: u64 = sizes[sizes.len() * 9 / 10..].iter().sum();
        assert!(
            top10pct as f64 > 0.5 * total as f64,
            "top 10% of coflows should carry most bytes ({top10pct}/{total})"
        );
    }

    #[test]
    fn respects_max_width() {
        let cfg = TraceConfig {
            max_width: 3,
            ..TraceConfig::fb_like(32, Time::from_secs(300))
        };
        let mut rng = SimRng::seed_from_u64(6);
        let t = CoflowTrace::generate(&cfg, &mut rng, |rack, _| NodeId(rack as u32));
        for cf in &t.coflows {
            assert!(cf.flows.len() <= 9, "width cap 3x3 violated");
        }
    }

    #[test]
    #[should_panic(expected = "two racks")]
    fn one_rack_rejected() {
        let cfg = TraceConfig::fb_like(1, Time::from_secs(10));
        let mut rng = SimRng::seed_from_u64(0);
        CoflowTrace::generate(&cfg, &mut rng, |rack, _| NodeId(rack as u32));
    }
}
