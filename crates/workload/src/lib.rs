#![warn(missing_docs)]
//! # sharebackup-workload
//!
//! Workload substrate for the ShareBackup reproduction.
//!
//! The paper's §2.2 runs "the coflow trace of real data center traffic" —
//! the Facebook Coflow-Benchmark trace (rack-level traffic from a 150-rack,
//! 10:1 oversubscribed cluster) — on k=16 fat-tree / F10 simulators. That
//! trace is external data, so per the substitution policy this crate
//! generates a *synthetic* trace with the published shape of the Facebook
//! workload:
//!
//! * Poisson coflow arrivals;
//! * MapReduce-shuffle structure (M mapper racks × R reducer racks, so a
//!   coflow is a set of M·R flows);
//! * heavy-tailed widths (most coflows narrow, a few very wide);
//! * heavy-tailed sizes (most coflows small, bytes dominated by a few
//!   giants).
//!
//! The findings the harness must reproduce — coflow amplification of
//! failure impact and orders-of-magnitude CCT slowdown — depend on this
//! *shape*, not on the identity of specific Facebook jobs.
//!
//! [`failures`] injects the paper's failure model: rare, transient,
//! independent failures (99.99% device availability, minutes-long
//! outages), one node or link at a time for the §2.2 study, Poisson
//! failure processes for long-running scenarios — plus the chaos
//! extensions (correlated pod-domain bursts, link flapping) bundled
//! behind [`failures::ChaosProfile`].

pub mod coflowgen;
pub mod failures;
pub mod stats;
pub mod trace_io;

pub use coflowgen::{CoflowTrace, TraceConfig};
pub use failures::{
    controller_crash_process, ChaosProfile, ControllerCrashEvent, FailureEvent, FailureInjector,
    FailureKind,
};
pub use stats::TraceShape;
pub use trace_io::{BenchmarkCoflow, BenchmarkTrace, ParseError};
