//! Reading and writing coflow traces in the Coflow-Benchmark text format.
//!
//! The paper's §2.2 uses the public Facebook trace from
//! `github.com/coflow/coflow-benchmark` (`FB2010-1Hr-150-0.txt`). This
//! module parses that format, so the real trace can be dropped in whenever
//! it is available, and exports synthetic traces in the same format for
//! interchange with other simulators.
//!
//! Format (one line per coflow, after a header line):
//!
//! ```text
//! <num_racks> <num_coflows>
//! <id> <arrival_ms> <M> <m1> <m2> ... <R> <r1:MB> <r2:MB> ...
//! ```
//!
//! where `mX` are mapper rack ids and `rX:MB` are reducer rack ids with the
//! megabytes that reducer shuffles in.

use sharebackup_flowsim::{Coflow, CoflowId, FlowSpec};
use sharebackup_routing::FlowKey;
use sharebackup_sim::Time;
use sharebackup_topo::NodeId;

use crate::coflowgen::CoflowTrace;

/// A parsed Coflow-Benchmark job description (topology-independent).
#[derive(Clone, Debug, PartialEq)]
pub struct BenchmarkCoflow {
    /// Coflow id from the file.
    pub id: u64,
    /// Arrival time in milliseconds.
    pub arrival_ms: u64,
    /// Mapper rack indices.
    pub mappers: Vec<usize>,
    /// (reducer rack, megabytes shuffled into it).
    pub reducers: Vec<(usize, f64)>,
}

/// A parsed trace file.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchmarkTrace {
    /// Number of racks the trace was recorded on.
    pub racks: usize,
    /// The jobs.
    pub coflows: Vec<BenchmarkCoflow>,
}

/// Errors from trace parsing.
#[derive(Debug, PartialEq, Eq)]
pub enum ParseError {
    /// The header line is missing or malformed.
    BadHeader,
    /// A coflow line failed to parse (line number, description).
    BadLine(usize, String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadHeader => write!(f, "malformed header line"),
            ParseError::BadLine(n, what) => write!(f, "line {n}: {what}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl BenchmarkTrace {
    /// Parse a trace from Coflow-Benchmark text.
    pub fn parse(text: &str) -> Result<BenchmarkTrace, ParseError> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or(ParseError::BadHeader)?;
        let mut head = header.split_whitespace();
        let racks: usize = head
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or(ParseError::BadHeader)?;
        let expected: usize = head
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or(ParseError::BadHeader)?;
        let mut coflows = Vec::with_capacity(expected);
        for (lineno, line) in lines {
            if line.trim().is_empty() {
                continue;
            }
            let bad = |what: &str| ParseError::BadLine(lineno + 1, what.to_string());
            let mut toks = line.split_whitespace();
            let id: u64 = toks
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| bad("missing coflow id"))?;
            let arrival_ms: u64 = toks
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| bad("missing arrival time"))?;
            let m: usize = toks
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| bad("missing mapper count"))?;
            let mut mappers = Vec::with_capacity(m);
            for _ in 0..m {
                let rack: usize = toks
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| bad("missing mapper rack"))?;
                mappers.push(rack);
            }
            let r: usize = toks
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| bad("missing reducer count"))?;
            let mut reducers = Vec::with_capacity(r);
            for _ in 0..r {
                let tok = toks.next().ok_or_else(|| bad("missing reducer entry"))?;
                let (rack, mb) = tok
                    .split_once(':')
                    .ok_or_else(|| bad("reducer entry must be rack:MB"))?;
                let rack: usize = rack.parse().map_err(|_| bad("bad reducer rack"))?;
                let mb: f64 = mb.parse().map_err(|_| bad("bad reducer MB"))?;
                reducers.push((rack, mb));
            }
            coflows.push(BenchmarkCoflow {
                id,
                arrival_ms,
                mappers,
                reducers,
            });
        }
        Ok(BenchmarkTrace { racks, coflows })
    }

    /// Serialize to Coflow-Benchmark text.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{} {}", self.racks, self.coflows.len());
        for cf in &self.coflows {
            let _ = write!(out, "{} {} {}", cf.id, cf.arrival_ms, cf.mappers.len());
            for m in &cf.mappers {
                let _ = write!(out, " {m}");
            }
            let _ = write!(out, " {}", cf.reducers.len());
            for (r, mb) in &cf.reducers {
                let _ = write!(out, " {r}:{mb}");
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Instantiate as a simulable [`CoflowTrace`]: the per-reducer volume is
    /// split evenly across mappers (the benchmark's convention), same-rack
    /// portions are skipped, and racks map to hosts via `rack_to_host`.
    pub fn instantiate(
        &self,
        mut rack_to_host: impl FnMut(usize, u64) -> NodeId,
    ) -> CoflowTrace {
        let mut specs = Vec::new();
        let mut coflows = Vec::new();
        let mut flow_id = 0u64;
        for (i, cf) in self.coflows.iter().enumerate() {
            let arrival = Time::from_millis(cf.arrival_ms);
            let mut members = Vec::new();
            for &(r_rack, mb) in &cf.reducers {
                // Truncating megabyte sizes to whole bytes is the intended
                // rounding (sub-byte remainders are meaningless here).
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                let per_flow =
                    ((mb * 1e6 / cf.mappers.len().max(1) as f64) as u64).max(1);
                for &m_rack in &cf.mappers {
                    if m_rack == r_rack {
                        continue;
                    }
                    let src = rack_to_host(m_rack, flow_id);
                    let dst = rack_to_host(r_rack, flow_id.wrapping_add(1));
                    if src == dst {
                        flow_id += 1;
                        continue;
                    }
                    members.push(specs.len());
                    specs.push(FlowSpec {
                        key: FlowKey::new(src, dst, flow_id),
                        bytes: per_flow,
                        arrival,
                    });
                    flow_id += 1;
                }
            }
            if !members.is_empty() {
                coflows.push(Coflow {
                    id: CoflowId::from_index(i),
                    flows: members,
                });
            }
        }
        CoflowTrace { specs, coflows }
    }
}

#[cfg(test)]
#[allow(clippy::cast_possible_truncation)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
150 3
1 0 2 10 20 2 30:100 40:50
2 500 1 5 1 5:10
3 1200 3 1 2 3 1 7:30
";

    #[test]
    fn parses_the_benchmark_format() {
        let t = BenchmarkTrace::parse(SAMPLE).expect("parses");
        assert_eq!(t.racks, 150);
        assert_eq!(t.coflows.len(), 3);
        assert_eq!(t.coflows[0].mappers, vec![10, 20]);
        assert_eq!(t.coflows[0].reducers, vec![(30, 100.0), (40, 50.0)]);
        assert_eq!(t.coflows[1].arrival_ms, 500);
    }

    #[test]
    fn round_trips_through_text() {
        let t = BenchmarkTrace::parse(SAMPLE).expect("parses");
        let text = t.to_text();
        let again = BenchmarkTrace::parse(&text).expect("re-parses");
        assert_eq!(t, again);
    }

    #[test]
    fn instantiation_builds_shuffle_flows() {
        let t = BenchmarkTrace::parse(SAMPLE).expect("parses");
        let trace = t.instantiate(|rack, _| NodeId(rack as u32));
        // Coflow 1: 2 mappers × 2 reducers = 4 flows (no same-rack pairs).
        // Coflow 2: mapper rack 5 == reducer rack 5 → all same-rack, skipped.
        // Coflow 3: 3 mappers × 1 reducer = 3 flows.
        assert_eq!(trace.coflow_count(), 2);
        assert_eq!(trace.flow_count(), 7);
        // Per-flow bytes: 100 MB / 2 mappers = 50 MB.
        assert_eq!(trace.specs[0].bytes, 50_000_000);
        assert_eq!(trace.specs[0].arrival, Time::ZERO);
        // Coflow 3's flows carry 10 MB each.
        assert_eq!(trace.specs[4].bytes, 10_000_000);
    }

    #[test]
    fn bad_inputs_are_rejected() {
        assert_eq!(BenchmarkTrace::parse(""), Err(ParseError::BadHeader));
        assert_eq!(BenchmarkTrace::parse("abc"), Err(ParseError::BadHeader));
        let bad_line = "10 1\n1 0 1 5 1 nonsense\n";
        assert!(matches!(
            BenchmarkTrace::parse(bad_line),
            Err(ParseError::BadLine(2, _))
        ));
    }

    #[test]
    fn synthetic_traces_export_and_reimport() {
        // A generated trace can be exported rack-level and re-imported.
        let t = BenchmarkTrace {
            racks: 8,
            coflows: vec![BenchmarkCoflow {
                id: 7,
                arrival_ms: 42,
                mappers: vec![0, 1],
                reducers: vec![(2, 1.5)],
            }],
        };
        let again = BenchmarkTrace::parse(&t.to_text()).expect("parses");
        assert_eq!(t, again);
        let trace = again.instantiate(|rack, _| NodeId(rack as u32));
        assert_eq!(trace.flow_count(), 2);
        assert_eq!(trace.specs[0].bytes, 750_000);
    }
}
