//! Failure injection following the paper's failure model.
//!
//! Gill et al. (SIGCOMM'11), which the paper leans on throughout: failures
//! in data centers are *rare* (most devices have >99.99% availability),
//! *transient* (most last only a few minutes), and *independent*. The §2.2
//! study therefore injects exactly one node or link failure per 5-minute
//! trace partition; the capacity analysis (§5.1) sizes the backup pool
//! against the 0.01% failure rate.
//!
//! This module provides both: single-failure scenario sampling for the
//! Fig. 1 harness, and a Poisson failure/repair process for long-running
//! simulations.
//!
//! The chaos extensions deliberately *violate* the Gill et al.
//! independence assumption: [`FailureInjector::burst_process`] injects
//! correlated bursts inside a shared fault domain (a pod sharing a power
//! feed or a firmware rollout wave), and
//! [`FailureInjector::flapping_process`] models links oscillating between
//! up and down with configurable dwell times. [`ChaosProfile`] bundles all
//! three processes behind one knob set whose [`ChaosProfile::quiet`]
//! default is provably inert (no events, no RNG draws).

use sharebackup_sim::{Duration, SimRng, Time};
use sharebackup_topo::{LinkId, Network, NodeId};

/// What failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FailureKind {
    /// A whole switch died.
    Node(NodeId),
    /// A single link died.
    Link(LinkId),
}

/// One failure with its outage window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FailureEvent {
    /// What failed.
    pub kind: FailureKind,
    /// When it fails.
    pub at: Time,
    /// How long until repaired.
    pub duration: Duration,
}

impl FailureEvent {
    /// The repair instant.
    pub fn repaired_at(&self) -> Time {
        self.at + self.duration
    }
}

/// One controller-replica crash with its outage window — the control-plane
/// counterpart of [`FailureEvent`], consumed by scenario builders that
/// carry a `sharebackup_core` `FailoverPlane` (mapped to
/// `ControllerCrash`/`ControllerRestore` epoch events).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ControllerCrashEvent {
    /// Which replica crashes (index into the cluster).
    pub replica: usize,
    /// When it crashes.
    pub at: Time,
    /// How long until it is restored.
    pub duration: Duration,
}

impl ControllerCrashEvent {
    /// The restore instant.
    pub fn restored_at(&self) -> Time {
        self.at + self.duration
    }
}

/// Generate a controller-replica crash/restore schedule over `horizon`:
/// exponential inter-arrival between crashes (mean
/// [`ChaosProfile::controller_crash_interarrival`]), a uniformly chosen
/// victim among `replicas`, and an exponential outage with mean
/// [`ChaosProfile::controller_crash_dwell`]. Crashing an already-down
/// replica is deliberately possible — the plane treats it as an idempotent
/// no-op, and that path deserves chaos coverage too.
///
/// All draws come from the `"chaos-controller"` child stream of `rng`, so
/// enabling this component never perturbs the data-plane chaos schedules
/// (and a disabled component — `None` inter-arrival or zero replicas —
/// consumes no randomness at all).
pub fn controller_crash_process(
    rng: &SimRng,
    horizon: Time,
    replicas: usize,
    profile: &ChaosProfile,
) -> Vec<ControllerCrashEvent> {
    let Some(mean_interarrival) = profile.controller_crash_interarrival else {
        return Vec::new();
    };
    if replicas == 0 {
        return Vec::new();
    }
    let mut r = rng.child("chaos-controller");
    let mut events = Vec::new();
    let mut t = 0.0_f64;
    loop {
        t += r.exponential(mean_interarrival.as_secs_f64());
        let at = Time::from_secs_f64(t);
        if at > horizon {
            break;
        }
        let replica = r.range(0..replicas);
        let down = r.exponential(profile.controller_crash_dwell.as_secs_f64());
        events.push(ControllerCrashEvent {
            replica,
            at,
            duration: Duration::from_secs_f64(down),
        });
    }
    events
}

/// Samples failures over a network.
pub struct FailureInjector {
    switches: Vec<NodeId>,
    links: Vec<LinkId>,
}

impl FailureInjector {
    /// Build an injector for `net`. Candidate node failures are switches
    /// (hosts don't "fail" in the paper's model); candidate link failures
    /// are all links, including host links (the paper's §4.2 discusses
    /// host-edge link failures explicitly).
    pub fn new(net: &Network) -> FailureInjector {
        let switches = net
            .node_ids()
            .filter(|&n| net.node(n).kind.is_switch())
            .collect();
        let links = net.link_ids().collect();
        FailureInjector { switches, links }
    }

    /// Number of switch candidates.
    pub fn switch_count(&self) -> usize {
        self.switches.len()
    }

    /// Number of link candidates.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Sample `count` distinct switch failures.
    pub fn sample_nodes(&self, rng: &mut SimRng, count: usize) -> Vec<NodeId> {
        rng.sample_indices(self.switches.len(), count)
            .into_iter()
            .map(|i| self.switches[i])
            .collect()
    }

    /// Sample `count` distinct link failures.
    pub fn sample_links(&self, rng: &mut SimRng, count: usize) -> Vec<LinkId> {
        rng.sample_indices(self.links.len(), count)
            .into_iter()
            .map(|i| self.links[i])
            .collect()
    }

    /// The paper's §2.2 scenario: a single failure at `at` lasting
    /// `duration` (default: strikes early in a 5-minute partition, outlasts
    /// it).
    pub fn single_failure(
        &self,
        rng: &mut SimRng,
        node: bool,
        at: Time,
        duration: Duration,
    ) -> FailureEvent {
        let kind = if node {
            FailureKind::Node(self.sample_nodes(rng, 1)[0])
        } else {
            FailureKind::Link(self.sample_links(rng, 1)[0])
        };
        FailureEvent { kind, at, duration }
    }

    /// A Poisson failure process over `horizon`: each event picks a random
    /// element (node with probability `node_fraction`), exponential
    /// inter-arrival with mean `mean_interarrival`, and exponential outage
    /// with mean `mean_duration` (the paper: "a few minutes").
    /// Events are returned sorted by failure time.
    pub fn poisson_process(
        &self,
        rng: &mut SimRng,
        horizon: Time,
        mean_interarrival: Duration,
        mean_duration: Duration,
        node_fraction: f64,
    ) -> Vec<FailureEvent> {
        let mut events = Vec::new();
        let mut t = 0.0_f64;
        loop {
            t += rng.exponential(mean_interarrival.as_secs_f64());
            let at = Time::from_secs_f64(t);
            if at > horizon {
                break;
            }
            let duration =
                Duration::from_secs_f64(rng.exponential(mean_duration.as_secs_f64()));
            let kind = if rng.chance(node_fraction) {
                FailureKind::Node(self.sample_nodes(rng, 1)[0])
            } else {
                FailureKind::Link(self.sample_links(rng, 1)[0])
            };
            events.push(FailureEvent { kind, at, duration });
        }
        events
    }

    /// Group the switch candidates into shared fault domains: one domain
    /// per pod (edge + aggregation switches share the pod's power feed and
    /// rollout wave) plus one domain holding all cores (they share the
    /// spine's infrastructure). Domains are ordered by pod index, cores
    /// last, so the grouping is deterministic.
    pub fn pod_domains(&self, net: &Network) -> Vec<Vec<NodeId>> {
        let mut pods: Vec<(usize, Vec<NodeId>)> = Vec::new();
        let mut cores: Vec<NodeId> = Vec::new();
        for &n in &self.switches {
            match net.node(n).pod {
                Some(p) => {
                    if let Some(entry) = pods.iter_mut().find(|(pod, _)| *pod == p) {
                        entry.1.push(n);
                    } else {
                        pods.push((p, vec![n]));
                    }
                }
                None => cores.push(n),
            }
        }
        pods.sort_by_key(|(p, _)| *p);
        let mut domains: Vec<Vec<NodeId>> = pods.into_iter().map(|(_, d)| d).collect();
        if !cores.is_empty() {
            domains.push(cores);
        }
        domains
    }

    /// A correlated burst process: burst *arrivals* are Poisson with mean
    /// inter-arrival `mean_interarrival`; each burst picks one fault
    /// domain uniformly and takes down several of its switches nearly at
    /// once. The burst size is 1 + Geometric(p) with mean `mean_size`
    /// (truncated to the domain size), victims are distinct, and each
    /// victim's failure instant is jittered uniformly over `spread` (the
    /// skew of a power sag or a staged rollout). Outages are exponential
    /// with mean `mean_duration`. Events come back sorted by failure time.
    #[allow(clippy::too_many_arguments)] // mirrors poisson_process's knobs
    pub fn burst_process(
        &self,
        rng: &mut SimRng,
        domains: &[Vec<NodeId>],
        horizon: Time,
        mean_interarrival: Duration,
        mean_size: f64,
        spread: Duration,
        mean_duration: Duration,
    ) -> Vec<FailureEvent> {
        assert!(!domains.is_empty(), "burst process needs fault domains");
        assert!(mean_size >= 1.0, "a burst has at least one victim");
        // Size = 1 + Geometric(p_more): keep growing while chance(p_more)
        // fires, giving E[size] = 1/(1 - p_more) = mean_size.
        let p_more = 1.0 - 1.0 / mean_size;
        let mut events = Vec::new();
        let mut t = 0.0_f64;
        loop {
            t += rng.exponential(mean_interarrival.as_secs_f64());
            let at = Time::from_secs_f64(t);
            if at > horizon {
                break;
            }
            let domain = rng.choose(domains);
            let mut size = 1usize;
            while size < domain.len() && rng.chance(p_more) {
                size += 1;
            }
            let victims = rng.sample_indices(domain.len(), size);
            for i in victims {
                let offset = Duration::from_secs_f64(
                    rng.f64() * spread.as_secs_f64(),
                );
                let duration = Duration::from_secs_f64(
                    rng.exponential(mean_duration.as_secs_f64()),
                );
                events.push(FailureEvent {
                    kind: FailureKind::Node(domain[i]),
                    at: at + offset,
                    duration,
                });
            }
        }
        events.sort_by_key(|e| e.at);
        events
    }

    /// A link-flapping process: `flappers` distinct links each oscillate
    /// between up (exponential dwell, mean `mean_up_dwell`) and down
    /// (exponential dwell, mean `mean_down_dwell`) until `horizon`. Every
    /// down period becomes one [`FailureEvent`], so a flapping link hits
    /// the controller over and over — the stress case for diagnosis and
    /// pool churn. Events come back sorted by failure time.
    pub fn flapping_process(
        &self,
        rng: &mut SimRng,
        horizon: Time,
        flappers: usize,
        mean_up_dwell: Duration,
        mean_down_dwell: Duration,
    ) -> Vec<FailureEvent> {
        let links = self.sample_links(rng, flappers.min(self.links.len()));
        let mut events = Vec::new();
        for link in links {
            let mut t = 0.0_f64;
            loop {
                t += rng.exponential(mean_up_dwell.as_secs_f64());
                let at = Time::from_secs_f64(t);
                if at > horizon {
                    break;
                }
                let down = rng.exponential(mean_down_dwell.as_secs_f64());
                events.push(FailureEvent {
                    kind: FailureKind::Link(link),
                    at,
                    duration: Duration::from_secs_f64(down),
                });
                t += down;
            }
        }
        events.sort_by_key(|e| e.at);
        events
    }

    /// Generate the full chaos schedule for `profile` over `horizon`.
    ///
    /// Each enabled component draws from its own [`SimRng::child`] stream
    /// (`"chaos-poisson"`, `"chaos-burst"`, `"chaos-flap"`), so turning one
    /// component on or off never perturbs another's draws. A
    /// [`ChaosProfile::quiet`] profile returns no events and consumes no
    /// randomness at all.
    pub fn chaos_process(
        &self,
        rng: &SimRng,
        net: &Network,
        horizon: Time,
        profile: &ChaosProfile,
    ) -> Vec<FailureEvent> {
        let mut events = Vec::new();
        if let Some(mean_interarrival) = profile.poisson_interarrival {
            let mut r = rng.child("chaos-poisson");
            events.extend(self.poisson_process(
                &mut r,
                horizon,
                mean_interarrival,
                profile.mean_duration,
                profile.poisson_node_fraction,
            ));
        }
        if let Some(mean_interarrival) = profile.burst_interarrival {
            let domains = self.pod_domains(net);
            let mut r = rng.child("chaos-burst");
            events.extend(self.burst_process(
                &mut r,
                &domains,
                horizon,
                mean_interarrival,
                profile.mean_burst_size,
                profile.burst_spread,
                profile.mean_duration,
            ));
        }
        if profile.flapping_links > 0 {
            let mut r = rng.child("chaos-flap");
            events.extend(self.flapping_process(
                &mut r,
                horizon,
                profile.flapping_links,
                profile.flap_up_dwell,
                profile.flap_down_dwell,
            ));
        }
        events.sort_by_key(|e| e.at);
        events
    }

    /// Apply a failure to the network state.
    pub fn apply(net: &mut Network, kind: FailureKind) {
        match kind {
            FailureKind::Node(n) => net.set_node_up(n, false),
            FailureKind::Link(l) => net.set_link_up(l, false),
        }
    }

    /// Undo a failure (repair).
    pub fn repair(net: &mut Network, kind: FailureKind) {
        match kind {
            FailureKind::Node(n) => net.set_node_up(n, true),
            FailureKind::Link(l) => net.set_link_up(l, true),
        }
    }
}

/// Knobs for the combined chaos failure schedule, consumed by
/// [`FailureInjector::chaos_process`]. Each component is independently
/// optional; the [`ChaosProfile::quiet`] default disables all of them.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChaosProfile {
    /// Independent (Gill et al.) failures: mean inter-arrival between
    /// events, or `None` to disable the component.
    pub poisson_interarrival: Option<Duration>,
    /// Fraction of independent failures that are node (vs. link) failures.
    pub poisson_node_fraction: f64,
    /// Correlated bursts: mean inter-arrival between bursts, or `None` to
    /// disable the component.
    pub burst_interarrival: Option<Duration>,
    /// Mean victims per burst (1 + Geometric, truncated to domain size).
    pub mean_burst_size: f64,
    /// Window over which a burst's victims go down (uniform jitter).
    pub burst_spread: Duration,
    /// Number of flapping links (0 disables the component).
    pub flapping_links: usize,
    /// Mean up-dwell between a flapping link's outages.
    pub flap_up_dwell: Duration,
    /// Mean down-dwell of each flap outage.
    pub flap_down_dwell: Duration,
    /// Mean outage duration for Poisson and burst failures.
    pub mean_duration: Duration,
    /// Controller-replica crashes: mean inter-arrival between crashes, or
    /// `None` to disable the component (see [`controller_crash_process`]).
    pub controller_crash_interarrival: Option<Duration>,
    /// Mean outage of a crashed controller replica before restore.
    pub controller_crash_dwell: Duration,
}

impl ChaosProfile {
    /// The inert profile: every component disabled, no events generated,
    /// no RNG draws consumed.
    pub fn quiet() -> ChaosProfile {
        ChaosProfile {
            poisson_interarrival: None,
            poisson_node_fraction: 0.5,
            burst_interarrival: None,
            mean_burst_size: 3.0,
            burst_spread: Duration::from_millis(500),
            flapping_links: 0,
            flap_up_dwell: Duration::from_secs(60),
            flap_down_dwell: Duration::from_secs(5),
            mean_duration: Duration::from_secs(180),
            controller_crash_interarrival: None,
            controller_crash_dwell: Duration::from_secs(30),
        }
    }

    /// Whether any component is enabled.
    pub fn is_active(&self) -> bool {
        self.poisson_interarrival.is_some()
            || self.burst_interarrival.is_some()
            || self.flapping_links > 0
            || self.controller_crash_interarrival.is_some()
    }
}

/// Count of switches implied by a device availability figure: with
/// availability `a` (e.g. 0.9999), the expected fraction of switches down
/// at any instant is `1 - a` — the number the paper's §5.1 compares the
/// backup ratio n/(k/2) against.
pub fn expected_down_fraction(availability: f64) -> f64 {
    (1.0 - availability).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharebackup_topo::{FatTree, FatTreeConfig, NodeKind};

    fn inj() -> (FatTree, FailureInjector) {
        let ft = FatTree::build(FatTreeConfig::new(4));
        let inj = FailureInjector::new(&ft.net);
        (ft, inj)
    }

    #[test]
    fn candidates_counted_correctly() {
        let (_ft, inj) = inj();
        // k=4: 8 edge + 8 agg + 4 core switches, 16 + 32 links.
        assert_eq!(inj.switch_count(), 20);
        assert_eq!(inj.link_count(), 48);
    }

    #[test]
    fn sampled_nodes_are_switches_and_distinct() {
        let (ft, inj) = inj();
        let mut rng = SimRng::seed_from_u64(1);
        let nodes = inj.sample_nodes(&mut rng, 10);
        assert_eq!(nodes.len(), 10);
        let mut d = nodes.clone();
        d.sort();
        d.dedup();
        assert_eq!(d.len(), 10);
        for n in nodes {
            assert_ne!(ft.net.node(n).kind, NodeKind::Host);
        }
    }

    #[test]
    fn apply_and_repair_round_trip() {
        let (mut ft, inj) = inj();
        let mut rng = SimRng::seed_from_u64(2);
        let ev = inj.single_failure(
            &mut rng,
            true,
            Time::from_secs(10),
            Duration::from_secs(120),
        );
        assert_eq!(ev.repaired_at(), Time::from_secs(130));
        let FailureKind::Node(n) = ev.kind else {
            panic!("asked for a node failure")
        };
        FailureInjector::apply(&mut ft.net, ev.kind);
        assert!(!ft.net.node(n).up);
        FailureInjector::repair(&mut ft.net, ev.kind);
        assert!(ft.net.node(n).up);
    }

    #[test]
    fn poisson_process_is_sorted_and_bounded() {
        let (_ft, inj) = inj();
        let mut rng = SimRng::seed_from_u64(3);
        let events = inj.poisson_process(
            &mut rng,
            Time::from_secs(3600),
            Duration::from_secs(60),
            Duration::from_secs(180),
            0.5,
        );
        assert!(events.len() > 20, "one hour at 1/min should yield many");
        for w in events.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        assert!(events.iter().all(|e| e.at <= Time::from_secs(3600)));
        let nodes = events
            .iter()
            .filter(|e| matches!(e.kind, FailureKind::Node(_)))
            .count();
        assert!(nodes > 0 && nodes < events.len(), "both kinds appear");
    }

    #[test]
    fn pod_domains_cover_all_switches() {
        let (ft, inj) = inj();
        let domains = inj.pod_domains(&ft.net);
        // k=4: 4 pod domains of 4 switches each, plus one core domain of 4.
        assert_eq!(domains.len(), 5);
        assert!(domains[..4].iter().all(|d| d.len() == 4));
        assert_eq!(domains[4].len(), 4);
        let total: usize = domains.iter().map(Vec::len).sum();
        assert_eq!(total, inj.switch_count());
        let mut all: Vec<_> = domains.concat();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), inj.switch_count());
    }

    #[test]
    fn burst_victims_share_a_domain_and_are_distinct() {
        let (ft, inj) = inj();
        let domains = inj.pod_domains(&ft.net);
        let mut rng = SimRng::seed_from_u64(13);
        let events = inj.burst_process(
            &mut rng,
            &domains,
            Time::from_secs(3600),
            Duration::from_secs(300),
            3.0,
            Duration::from_millis(500),
            Duration::from_secs(120),
        );
        assert!(!events.is_empty(), "an hour at one burst / 5 min");
        for w in events.windows(2) {
            assert!(w[0].at <= w[1].at, "sorted by failure time");
        }
        // Group events into bursts by proximity (spread « inter-arrival)
        // and check every burst's victims live in one domain.
        let domain_of = |n: NodeId| {
            domains
                .iter()
                .position(|d| d.contains(&n))
                .expect("victim is a known switch")
        };
        let mut burst: Vec<NodeId> = Vec::new();
        let mut last = Time::ZERO;
        let check = |burst: &mut Vec<NodeId>| {
            if burst.is_empty() {
                return;
            }
            let d0 = domain_of(burst[0]);
            assert!(burst.iter().all(|&n| domain_of(n) == d0));
            let mut b = burst.clone();
            b.sort();
            b.dedup();
            assert_eq!(b.len(), burst.len(), "victims distinct within burst");
            burst.clear();
        };
        for e in &events {
            let FailureKind::Node(n) = e.kind else {
                panic!("bursts only fail nodes")
            };
            // Intra-burst gaps are bounded by the 0.5 s spread, so any
            // wider gap starts a new burst. (Two bursts *arriving* within
            // 0.6 s of each other would merge here, but with a 300 s mean
            // inter-arrival and this fixed seed that never happens.)
            if e.at > last + Duration::from_millis(600) {
                check(&mut burst);
            }
            burst.push(n);
            last = e.at;
        }
        check(&mut burst);
    }

    #[test]
    fn flapping_repeats_on_same_links_without_overlap() {
        let (_ft, inj) = inj();
        let mut rng = SimRng::seed_from_u64(11);
        let events = inj.flapping_process(
            &mut rng,
            Time::from_secs(3600),
            2,
            Duration::from_secs(60),
            Duration::from_secs(5),
        );
        assert!(events.len() > 20, "two flappers at ~1/min for an hour");
        let mut links: Vec<LinkId> = events
            .iter()
            .map(|e| match e.kind {
                FailureKind::Link(l) => l,
                FailureKind::Node(_) => panic!("flaps are link failures"),
            })
            .collect();
        links.sort();
        links.dedup();
        assert_eq!(links.len(), 2, "all flaps come from the chosen links");
        // Per link, down periods never overlap (up dwell separates them).
        for &link in &links {
            let mut last_repair = Time::ZERO;
            for e in events
                .iter()
                .filter(|e| e.kind == FailureKind::Link(link))
            {
                assert!(e.at >= last_repair, "flap starts after previous repair");
                last_repair = e.repaired_at();
            }
        }
    }

    #[test]
    fn quiet_profile_is_inert() {
        let (ft, inj) = inj();
        let rng = SimRng::seed_from_u64(5);
        let events = inj.chaos_process(
            &rng,
            &ft.net,
            Time::from_secs(86_400),
            &ChaosProfile::quiet(),
        );
        assert!(events.is_empty());
        assert!(!ChaosProfile::quiet().is_active());
    }

    #[test]
    fn chaos_components_are_independent_streams() {
        let (ft, inj) = inj();
        let rng = SimRng::seed_from_u64(9);
        let horizon = Time::from_secs(3600);
        let mut flap_only = ChaosProfile::quiet();
        flap_only.flapping_links = 2;
        let mut both = flap_only;
        both.poisson_interarrival = Some(Duration::from_secs(120));
        let flaps = |events: &[FailureEvent]| {
            events
                .iter()
                .filter(|e| matches!(e.kind, FailureKind::Link(_)))
                .count()
        };
        let a = inj.chaos_process(&rng, &ft.net, horizon, &flap_only);
        let b = inj.chaos_process(&rng, &ft.net, horizon, &both);
        // Enabling the Poisson component must not perturb the flap
        // component's draws: the flap events are identical in both runs.
        let a_only: Vec<_> = a.to_vec();
        let b_flaps: Vec<_> = b
            .iter()
            .copied()
            .filter(|e| matches!(e.kind, FailureKind::Link(_)))
            .collect();
        // The poisson stream also emits link failures, so compare counts
        // conservatively: every flap event of `a` appears in `b`.
        assert!(flaps(&b) >= flaps(&a));
        for e in &a_only {
            assert!(b_flaps.contains(e), "flap schedule preserved: {e:?}");
        }
        assert!(b.len() > a.len(), "poisson component added events");
    }

    #[test]
    fn availability_math() {
        assert!((expected_down_fraction(0.9999) - 0.0001).abs() < 1e-12);
        assert_eq!(expected_down_fraction(1.0), 0.0);
    }

    #[test]
    fn controller_crash_process_is_deterministic_and_in_range() {
        let profile = ChaosProfile {
            controller_crash_interarrival: Some(Duration::from_secs(40)),
            controller_crash_dwell: Duration::from_secs(20),
            ..ChaosProfile::quiet()
        };
        let rng = SimRng::seed_from_u64(77);
        let horizon = Time::from_secs(600);
        let a = controller_crash_process(&rng, horizon, 3, &profile);
        let b = controller_crash_process(&rng, horizon, 3, &profile);
        assert_eq!(a, b, "same seed, same schedule");
        assert!(!a.is_empty(), "600s at mean 40s yields crashes");
        let mut last = Time::ZERO;
        for ev in &a {
            assert!(ev.replica < 3, "victim within the cluster");
            assert!(ev.at <= horizon);
            assert!(ev.at >= last, "crashes arrive in time order");
            assert!(ev.restored_at() > ev.at, "outage has positive width");
            last = ev.at;
        }
    }

    #[test]
    fn controller_crash_component_is_inert_when_disabled() {
        let rng = SimRng::seed_from_u64(78);
        // Disabled by knob:
        let quiet = ChaosProfile::quiet();
        assert!(controller_crash_process(&rng, Time::from_secs(600), 3, &quiet).is_empty());
        // Disabled by an empty cluster:
        let on = ChaosProfile {
            controller_crash_interarrival: Some(Duration::from_secs(10)),
            ..quiet
        };
        assert!(controller_crash_process(&rng, Time::from_secs(600), 0, &on).is_empty());
        assert!(on.is_active(), "the knob alone activates the profile");
    }

    #[test]
    fn controller_crashes_ride_their_own_stream() {
        // Enabling the data-plane Poisson component must not perturb the
        // controller-crash schedule (and vice versa): both draw from
        // disjoint child streams of the same parent.
        let (ft, inj) = inj();
        let rng = SimRng::seed_from_u64(79);
        let horizon = Time::from_secs(600);
        let ctl_only = ChaosProfile {
            controller_crash_interarrival: Some(Duration::from_secs(60)),
            ..ChaosProfile::quiet()
        };
        let both = ChaosProfile {
            poisson_interarrival: Some(Duration::from_secs(30)),
            ..ctl_only
        };
        let a = controller_crash_process(&rng, horizon, 3, &ctl_only);
        let b = controller_crash_process(&rng, horizon, 3, &both);
        assert_eq!(a, b, "controller schedule ignores data-plane knobs");
        let da = inj.chaos_process(&rng, &ft.net, horizon, &both);
        let db = inj.chaos_process(
            &rng,
            &ft.net,
            horizon,
            &ChaosProfile {
                controller_crash_interarrival: None,
                ..both
            },
        );
        assert_eq!(da, db, "data-plane schedule ignores controller knobs");
    }
}
