//! Failure injection following the paper's failure model.
//!
//! Gill et al. (SIGCOMM'11), which the paper leans on throughout: failures
//! in data centers are *rare* (most devices have >99.99% availability),
//! *transient* (most last only a few minutes), and *independent*. The §2.2
//! study therefore injects exactly one node or link failure per 5-minute
//! trace partition; the capacity analysis (§5.1) sizes the backup pool
//! against the 0.01% failure rate.
//!
//! This module provides both: single-failure scenario sampling for the
//! Fig. 1 harness, and a Poisson failure/repair process for long-running
//! simulations.

use sharebackup_sim::{Duration, SimRng, Time};
use sharebackup_topo::{LinkId, Network, NodeId};

/// What failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FailureKind {
    /// A whole switch died.
    Node(NodeId),
    /// A single link died.
    Link(LinkId),
}

/// One failure with its outage window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FailureEvent {
    /// What failed.
    pub kind: FailureKind,
    /// When it fails.
    pub at: Time,
    /// How long until repaired.
    pub duration: Duration,
}

impl FailureEvent {
    /// The repair instant.
    pub fn repaired_at(&self) -> Time {
        self.at + self.duration
    }
}

/// Samples failures over a network.
pub struct FailureInjector {
    switches: Vec<NodeId>,
    fabric_links: Vec<LinkId>,
}

impl FailureInjector {
    /// Build an injector for `net`. Candidate node failures are switches
    /// (hosts don't "fail" in the paper's model); candidate link failures
    /// are all links, including host links (the paper's §4.2 discusses
    /// host-edge link failures explicitly).
    pub fn new(net: &Network) -> FailureInjector {
        let switches = net
            .node_ids()
            .filter(|&n| net.node(n).kind.is_switch())
            .collect();
        let fabric_links = net.link_ids().collect();
        FailureInjector {
            switches,
            fabric_links,
        }
    }

    /// Number of switch candidates.
    pub fn switch_count(&self) -> usize {
        self.switches.len()
    }

    /// Number of link candidates.
    pub fn link_count(&self) -> usize {
        self.fabric_links.len()
    }

    /// Sample `count` distinct switch failures.
    pub fn sample_nodes(&self, rng: &mut SimRng, count: usize) -> Vec<NodeId> {
        rng.sample_indices(self.switches.len(), count)
            .into_iter()
            .map(|i| self.switches[i])
            .collect()
    }

    /// Sample `count` distinct link failures.
    pub fn sample_links(&self, rng: &mut SimRng, count: usize) -> Vec<LinkId> {
        rng.sample_indices(self.fabric_links.len(), count)
            .into_iter()
            .map(|i| self.fabric_links[i])
            .collect()
    }

    /// The paper's §2.2 scenario: a single failure at `at` lasting
    /// `duration` (default: strikes early in a 5-minute partition, outlasts
    /// it).
    pub fn single_failure(
        &self,
        rng: &mut SimRng,
        node: bool,
        at: Time,
        duration: Duration,
    ) -> FailureEvent {
        let kind = if node {
            FailureKind::Node(self.sample_nodes(rng, 1)[0])
        } else {
            FailureKind::Link(self.sample_links(rng, 1)[0])
        };
        FailureEvent { kind, at, duration }
    }

    /// A Poisson failure process over `horizon`: each event picks a random
    /// element (node with probability `node_fraction`), exponential
    /// inter-arrival with mean `mean_interarrival`, and exponential outage
    /// with mean `mean_duration` (the paper: "a few minutes").
    /// Events are returned sorted by failure time.
    pub fn poisson_process(
        &self,
        rng: &mut SimRng,
        horizon: Time,
        mean_interarrival: Duration,
        mean_duration: Duration,
        node_fraction: f64,
    ) -> Vec<FailureEvent> {
        let mut events = Vec::new();
        let mut t = 0.0_f64;
        loop {
            t += rng.exponential(mean_interarrival.as_secs_f64());
            let at = Time::from_secs_f64(t);
            if at > horizon {
                break;
            }
            let duration =
                Duration::from_secs_f64(rng.exponential(mean_duration.as_secs_f64()));
            let kind = if rng.chance(node_fraction) {
                FailureKind::Node(self.sample_nodes(rng, 1)[0])
            } else {
                FailureKind::Link(self.sample_links(rng, 1)[0])
            };
            events.push(FailureEvent { kind, at, duration });
        }
        events
    }

    /// Apply a failure to the network state.
    pub fn apply(net: &mut Network, kind: FailureKind) {
        match kind {
            FailureKind::Node(n) => net.set_node_up(n, false),
            FailureKind::Link(l) => net.set_link_up(l, false),
        }
    }

    /// Undo a failure (repair).
    pub fn repair(net: &mut Network, kind: FailureKind) {
        match kind {
            FailureKind::Node(n) => net.set_node_up(n, true),
            FailureKind::Link(l) => net.set_link_up(l, true),
        }
    }
}

/// Count of switches implied by a device availability figure: with
/// availability `a` (e.g. 0.9999), the expected fraction of switches down
/// at any instant is `1 - a` — the number the paper's §5.1 compares the
/// backup ratio n/(k/2) against.
pub fn expected_down_fraction(availability: f64) -> f64 {
    (1.0 - availability).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharebackup_topo::{FatTree, FatTreeConfig, NodeKind};

    fn inj() -> (FatTree, FailureInjector) {
        let ft = FatTree::build(FatTreeConfig::new(4));
        let inj = FailureInjector::new(&ft.net);
        (ft, inj)
    }

    #[test]
    fn candidates_counted_correctly() {
        let (_ft, inj) = inj();
        // k=4: 8 edge + 8 agg + 4 core switches, 16 + 32 links.
        assert_eq!(inj.switch_count(), 20);
        assert_eq!(inj.link_count(), 48);
    }

    #[test]
    fn sampled_nodes_are_switches_and_distinct() {
        let (ft, inj) = inj();
        let mut rng = SimRng::seed_from_u64(1);
        let nodes = inj.sample_nodes(&mut rng, 10);
        assert_eq!(nodes.len(), 10);
        let mut d = nodes.clone();
        d.sort();
        d.dedup();
        assert_eq!(d.len(), 10);
        for n in nodes {
            assert_ne!(ft.net.node(n).kind, NodeKind::Host);
        }
    }

    #[test]
    fn apply_and_repair_round_trip() {
        let (mut ft, inj) = inj();
        let mut rng = SimRng::seed_from_u64(2);
        let ev = inj.single_failure(
            &mut rng,
            true,
            Time::from_secs(10),
            Duration::from_secs(120),
        );
        assert_eq!(ev.repaired_at(), Time::from_secs(130));
        let FailureKind::Node(n) = ev.kind else {
            panic!("asked for a node failure")
        };
        FailureInjector::apply(&mut ft.net, ev.kind);
        assert!(!ft.net.node(n).up);
        FailureInjector::repair(&mut ft.net, ev.kind);
        assert!(ft.net.node(n).up);
    }

    #[test]
    fn poisson_process_is_sorted_and_bounded() {
        let (_ft, inj) = inj();
        let mut rng = SimRng::seed_from_u64(3);
        let events = inj.poisson_process(
            &mut rng,
            Time::from_secs(3600),
            Duration::from_secs(60),
            Duration::from_secs(180),
            0.5,
        );
        assert!(events.len() > 20, "one hour at 1/min should yield many");
        for w in events.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        assert!(events.iter().all(|e| e.at <= Time::from_secs(3600)));
        let nodes = events
            .iter()
            .filter(|e| matches!(e.kind, FailureKind::Node(_)))
            .count();
        assert!(nodes > 0 && nodes < events.len(), "both kinds appear");
    }

    #[test]
    fn availability_math() {
        assert!((expected_down_fraction(0.9999) - 0.0001).abs() < 1e-12);
        assert_eq!(expected_down_fraction(1.0), 0.0);
    }
}
