#![warn(missing_docs)]
//! # sharebackup-flowsim
//!
//! Flow-level network simulator for the ShareBackup reproduction.
//!
//! The paper's §2.2 failure study measures the *final state* of the network
//! after failures, "without the transient dynamics" — which is precisely the
//! fluid (flow-level) limit: every flow drains at its max-min fair share of
//! the bottleneck capacity along its path. This crate implements:
//!
//! * [`maxmin`] — progressive-filling max-min fair allocation, with the
//!   dense reusable [`WaterFiller`] scratch state the simulator threads
//!   through its event loop (and [`maxmin_reference`], the tree-based
//!   original kept as perf baseline and differential oracle);
//! * [`sim`] — the event-driven flow-progress simulation over an
//!   [`sim::Environment`] (topology + routing policy), with *epochs* at which
//!   the environment may mutate (failures, recoveries) and flows re-route;
//! * [`coflow`] — coflow bookkeeping and Coflow Completion Time (CCT);
//! * [`impact`] — the static affected-flow/affected-coflow metrics of
//!   Fig. 1(a)/(b);
//! * [`properties`] — the Table 3 property checks (bandwidth loss, path
//!   dilation, upstream repair).

pub mod coflow;
pub mod impact;
pub mod maxmin;
pub mod maxmin_reference;
pub mod properties;
pub mod sim;

pub use coflow::{Coflow, CoflowId, CoflowOutcome};
pub use impact::ImpactReport;
pub use maxmin::{max_min_rates, SolveStats, WaterFiller};
pub use maxmin_reference::max_min_rates_reference;
pub use sim::{Environment, FlowOutcome, FlowSim, FlowSpec, SimOutcome};
