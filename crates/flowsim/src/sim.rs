//! Event-driven flow-progress simulation.
//!
//! The simulation advances from rate-change point to rate-change point:
//! flow arrivals, flow completions, and *epochs* — instants at which the
//! environment mutates (a failure strikes, the controller recovers it) and
//! all live flows are re-routed under the environment's policy. Between
//! events every flow drains at its max-min fair rate.
//!
//! The [`Environment`] trait is the seam between this simulator and the
//! topology/routing crates: fat-tree + global rerouting, F10 + local
//! rerouting, and ShareBackup + the recovery controller each implement it.

use std::collections::BTreeMap;

use sharebackup_routing::FlowKey;
use sharebackup_sim::{Duration, Time};
use sharebackup_telemetry::Tracer;
use sharebackup_topo::{LinkId, NodeId};

use crate::maxmin::WaterFiller;

/// One flow to simulate.
#[derive(Clone, Debug)]
pub struct FlowSpec {
    /// Endpoints and id.
    pub key: FlowKey,
    /// Bytes to transfer.
    pub bytes: u64,
    /// Arrival instant.
    pub arrival: Time,
}

/// The world a [`FlowSim`] runs against.
pub trait Environment {
    /// Capacity of a link, bits per second.
    fn capacity(&self, l: LinkId) -> f64;

    /// The link joining two adjacent path nodes, if it exists.
    fn link_between(&self, a: NodeId, b: NodeId) -> Option<LinkId>;

    /// Route a flow under the current state. `None` = currently
    /// unroutable (the flow stalls; it is retried at the next epoch).
    fn route(&mut self, flow: &FlowKey) -> Option<Vec<NodeId>>;

    /// Batch routing hook for policies that assign flows jointly (global
    /// optimal rerouting). Default: route each flow independently.
    fn route_all(&mut self, flows: &[FlowKey]) -> Vec<Option<Vec<NodeId>>> {
        flows.iter().map(|f| self.route(f)).collect()
    }

    /// Mutate the world at epoch `index` (failure injection, recovery, …).
    fn on_epoch(&mut self, index: usize, now: Time);

    /// Called each time simulated time advances to `now`, before any
    /// completion, epoch, or routing work at the new instant. Default:
    /// no-op. Worlds that keep time-stamped accounting (e.g. degraded-flow
    /// spells opened from [`Environment::route`], which carries no
    /// timestamp) override this to track the clock.
    fn on_advance(&mut self, _now: Time) {}
}

/// Per-flow result.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlowOutcome {
    /// Completion instant, if the flow finished before the horizon.
    pub completed: Option<Time>,
    /// Bytes actually delivered.
    pub delivered: u64,
    /// Whether the flow was ever stalled (no route) during its life.
    pub ever_stalled: bool,
    /// Whether the flow's path *changed* after it had one (resuming a
    /// stalled flow on the same path does not count).
    pub rerouted: bool,
}

/// Result of a simulation run.
#[derive(Clone, Debug)]
pub struct SimOutcome {
    /// Outcome per input flow, same order as the input.
    pub flows: Vec<FlowOutcome>,
    /// Instant at which the simulation stopped.
    pub finished_at: Time,
    /// Bits carried per link over the whole run (for utilization reports).
    /// Only links that actually carried traffic appear.
    pub link_bits: BTreeMap<LinkId, f64>,
    /// Event-loop steps executed (rate recomputations); a throughput
    /// denominator for benchmarking, not a semantic output.
    pub events: u64,
}

impl SimOutcome {
    /// Flow completion time (arrival → completion) of flow `i`.
    pub fn fct(&self, specs: &[FlowSpec], i: usize) -> Option<Duration> {
        self.flows[i].completed.map(|t| t.since(specs[i].arrival))
    }

    /// Mean utilization of `link` over the run: bits carried divided by
    /// `capacity_bps · run length`.
    pub fn utilization(&self, link: LinkId, capacity_bps: f64) -> f64 {
        let bits = self.link_bits.get(&link).copied().unwrap_or(0.0);
        let span = self.finished_at.as_secs_f64();
        if span <= 0.0 || capacity_bps <= 0.0 {
            0.0
        } else {
            bits / (capacity_bps * span)
        }
    }

    /// The most-utilized links, as (link, bits) pairs sorted descending.
    pub fn hottest_links(&self, top: usize) -> Vec<(LinkId, f64)> {
        let mut v: Vec<(LinkId, f64)> = self
            .link_bits
            .iter()
            .map(|(&l, &b)| (l, b))
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1));
        v.truncate(top);
        v
    }
}

struct LiveFlow {
    index: usize,
    key: FlowKey,
    remaining: f64, // bits
    /// Slot in the [`WaterFiller`] registry holding this flow's link list,
    /// stall state, and current rate.
    fid: usize,
}

/// The flow-level simulator.
pub struct FlowSim {
    /// Stop simulating at this instant (flows still running get
    /// `completed: None` but keep their delivered byte counts).
    pub horizon: Time,
}

impl Default for FlowSim {
    fn default() -> Self {
        FlowSim { horizon: Time::MAX }
    }
}

/// Intern every link of `path` into `wf`, returning dense link indices.
/// Capacities are refreshed as a side effect, so a post-epoch re-route
/// also picks up capacity changes.
fn dense_links_of_path(
    env: &impl Environment,
    wf: &mut WaterFiller,
    path: &[NodeId],
) -> Vec<u32> {
    path.windows(2)
        .map(|w| {
            let l = env
                .link_between(w[0], w[1])
                // A non-adjacent hop is a routing bug that must surface
                // loudly, not a recoverable condition.
                // lint:allow(unwrap) — Environment contract violation
                .expect("route returned a non-adjacent hop");
            let cap = env.capacity(l);
            wf.link_index(l, cap)
        })
        .collect()
}

impl FlowSim {
    /// A simulator with no horizon.
    pub fn new() -> FlowSim {
        FlowSim::default()
    }

    /// A simulator that stops at `horizon`.
    pub fn with_horizon(horizon: Time) -> FlowSim {
        FlowSim { horizon }
    }

    /// Run `flows` against `env`, applying `env.on_epoch(i, t)` at each
    /// `epochs[i]` (must be sorted ascending) and re-routing all live and
    /// stalled flows afterwards.
    pub fn run(
        &self,
        env: &mut impl Environment,
        flows: &[FlowSpec],
        epochs: &[Time],
    ) -> SimOutcome {
        self.run_traced(env, flows, epochs, &Tracer::off())
    }

    /// [`FlowSim::run`] with telemetry. With a recording tracer, emits one
    /// `flowsim/run` span over the whole simulation, per-solve histograms
    /// (active flows, filling rounds, links used, incremental mutations),
    /// cause counters for each loop step (completion / epoch / arrival),
    /// and an instant per fired epoch. With [`Tracer::off`] every
    /// instrumentation point is a single branch, so `run` delegates here
    /// unconditionally.
    pub fn run_traced(
        &self,
        env: &mut impl Environment,
        flows: &[FlowSpec],
        epochs: &[Time],
        tracer: &Tracer,
    ) -> SimOutcome {
        assert!(
            epochs.windows(2).all(|w| w[0] <= w[1]),
            "epochs must be sorted"
        );
        tracer.span_begin(Time::ZERO, "flowsim", "run");
        let mut outcome: Vec<FlowOutcome> = flows
            .iter()
            .map(|_| FlowOutcome {
                completed: None,
                delivered: 0,
                ever_stalled: false,
                rerouted: false,
            })
            .collect();

        let mut order: Vec<usize> = (0..flows.len()).collect();
        order.sort_by_key(|&i| flows[i].arrival);
        let mut next_arrival = 0usize;
        let mut next_epoch = 0usize;
        let mut live: Vec<LiveFlow> = Vec::new();
        let mut now = Time::ZERO;
        // Dense, reused allocator state: link interning, per-link flow
        // counts, and rate scratch all persist across events.
        let mut wf = WaterFiller::new();
        // Bits carried per dense link index; folded into a BTreeMap at the
        // end (zero entries are dropped — a link that never carried traffic
        // does not appear in the output).
        let mut bits: Vec<f64> = Vec::new();
        let mut events: u64 = 0;

        loop {
            // Max-min rates for the current live set (stalled flows get 0).
            wf.solve();
            if tracer.is_enabled() {
                let st = wf.last_solve_stats();
                tracer.record("flowsim.solve.active_flows", st.active_flows);
                tracer.record("flowsim.solve.rounds", st.rounds);
                tracer.record("flowsim.solve.links_used", st.links_used);
                tracer.record("flowsim.solve.flows_touched", st.flows_touched);
            }
            if bits.len() < wf.link_count() {
                bits.resize(wf.link_count(), 0.0);
            }

            // Candidate next-event instants. Completion deltas are clamped
            // to ≥ 1 ns: float residue in `remaining` must never produce a
            // zero-delta event, which would stall virtual time forever.
            let completion: Option<Time> = live
                .iter()
                .filter_map(|f| {
                    let r = wf.rate(f.fid);
                    if r > 0.0 {
                        let dt = Duration::from_secs_f64(f.remaining / r);
                        Some(now + dt.max(Duration::from_nanos(1)))
                    } else {
                        None
                    }
                })
                .min();
            let arrival = order.get(next_arrival).map(|&i| flows[i].arrival);
            let epoch = epochs.get(next_epoch).copied();

            let next_t = [completion, arrival, epoch]
                .into_iter()
                .flatten()
                .min();
            let Some(next_t) = next_t else {
                break; // nothing will ever happen again
            };
            if next_t > self.horizon {
                // Drain until the horizon, then stop. Same r > 0 guard as
                // the main advance: a zero-rate (stalled or starved) flow
                // carries nothing and must not mint zero-byte link entries.
                let dt = self.horizon.saturating_since(now).as_secs_f64();
                for f in live.iter_mut() {
                    let r = wf.rate(f.fid);
                    f.remaining = (f.remaining - r * dt).max(0.0);
                    if r > 0.0 {
                        for &li in wf.links(f.fid) {
                            bits[li as usize] += r * dt;
                        }
                    }
                }
                now = self.horizon;
                tracer.instant(now, "flowsim", "horizon");
                break;
            }

            // Advance. The epsilon is generous (1 millibit) — any flow that
            // close to done at its own completion instant *is* done; keeping
            // a sub-nanosecond-of-traffic residue alive only breeds
            // zero-progress events.
            let dt = next_t.since(now).as_secs_f64();
            for f in live.iter_mut() {
                let r = wf.rate(f.fid);
                f.remaining -= r * dt;
                if f.remaining < 1e-3 {
                    f.remaining = 0.0;
                }
                if r > 0.0 {
                    for &li in wf.links(f.fid) {
                        bits[li as usize] += r * dt;
                    }
                }
            }
            now = next_t;
            events += 1;
            env.on_advance(now);

            // 1. Completions.
            let mut completed_any = false;
            let mut j = 0;
            while j < live.len() {
                if live[j].remaining == 0.0 {
                    let f = live.swap_remove(j);
                    wf.remove_flow(f.fid);
                    outcome[f.index].completed = Some(now);
                    outcome[f.index].delivered = flows[f.index].bytes;
                    completed_any = true;
                } else {
                    j += 1;
                }
            }
            if completed_any {
                tracer.add("flowsim.cause.completion", 1);
            }

            // 2. Epochs due now (before arrivals, so new flows route under
            //    the post-epoch state).
            let mut epoch_fired = false;
            while next_epoch < epochs.len() && epochs[next_epoch] <= now {
                env.on_epoch(next_epoch, now);
                next_epoch += 1;
                epoch_fired = true;
            }
            if epoch_fired {
                tracer.add("flowsim.cause.epoch", 1);
                tracer.instant(now, "flowsim", "epoch");
                let keys: Vec<FlowKey> = live.iter().map(|f| f.key).collect();
                let routes = env.route_all(&keys);
                for (f, route) in live.iter().zip(routes) {
                    match route {
                        Some(path) => {
                            let links = dense_links_of_path(env, &mut wf, &path);
                            // "Rerouted" = the path changed after the flow
                            // had one. Resuming a stalled flow on the same
                            // path (ShareBackup) is not a reroute.
                            let prev = wf.links(f.fid);
                            if !prev.is_empty() && prev != links.as_slice() {
                                outcome[f.index].rerouted = true;
                            }
                            wf.set_links(f.fid, links);
                            wf.set_stalled(f.fid, false);
                        }
                        None => {
                            // A stalled flow keeps its link list, so
                            // resuming on the same path later is not a
                            // reroute.
                            wf.set_stalled(f.fid, true);
                            outcome[f.index].ever_stalled = true;
                        }
                    }
                }
            }

            // 3. Arrivals due now.
            if order.get(next_arrival).is_some_and(|&i| flows[i].arrival <= now) {
                tracer.add("flowsim.cause.arrival", 1);
            }
            while next_arrival < order.len() && flows[order[next_arrival]].arrival <= now {
                let idx = order[next_arrival];
                next_arrival += 1;
                let key = flows[idx].key;
                let flow_bits = flows[idx].bytes as f64 * 8.0;
                if flow_bits == 0.0 {
                    outcome[idx].completed = Some(now);
                    continue;
                }
                let fid = match env.route(&key) {
                    Some(path) => {
                        let links = dense_links_of_path(env, &mut wf, &path);
                        wf.add_flow(links)
                    }
                    None => {
                        outcome[idx].ever_stalled = true;
                        let fid = wf.add_flow(Vec::new());
                        wf.set_stalled(fid, true);
                        fid
                    }
                };
                live.push(LiveFlow {
                    index: idx,
                    key,
                    remaining: flow_bits,
                    fid,
                });
            }
        }

        // Delivered bytes for unfinished flows.
        for f in &live {
            let out = &mut outcome[f.index];
            if out.completed.is_none() {
                let sent_bits = flows[f.index].bytes as f64 * 8.0 - f.remaining;
                // Bounded by flows[i].bytes, and float->int `as` saturates.
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                {
                    out.delivered = (sent_bits / 8.0).floor().max(0.0) as u64;
                }
            }
        }
        let mut link_bits: BTreeMap<LinkId, f64> = BTreeMap::new();
        for (i, &b) in bits.iter().enumerate() {
            if b > 0.0 {
                link_bits.insert(wf.link_id(i), b);
            }
        }
        tracer.add("flowsim.loop_steps", events);
        tracer.span_end(now);
        SimOutcome {
            flows: outcome,
            finished_at: now,
            link_bits,
            events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A line network: h0 — s — h1, plus a second host pair sharing the
    /// middle link. Capacities in bits/s for easy arithmetic.
    struct LineEnv {
        net: sharebackup_topo::Network,
        /// Paths to hand out, keyed by flow id. `None` = unroutable.
        paths: BTreeMap<u64, Option<Vec<NodeId>>>,
        epoch_log: Vec<(usize, Time)>,
        /// When an epoch fires, switch flow routes to these.
        after_epoch: BTreeMap<u64, Option<Vec<NodeId>>>,
    }

    impl Environment for LineEnv {
        fn capacity(&self, l: LinkId) -> f64 {
            self.net.link(l).capacity_bps
        }
        fn link_between(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
            self.net.link_between(a, b)
        }
        fn route(&mut self, flow: &FlowKey) -> Option<Vec<NodeId>> {
            self.paths.get(&flow.id).cloned().flatten()
        }
        fn on_epoch(&mut self, index: usize, now: Time) {
            self.epoch_log.push((index, now));
            for (id, p) in std::mem::take(&mut self.after_epoch) {
                self.paths.insert(id, p);
            }
        }
    }

    fn line_env() -> (LineEnv, Vec<NodeId>) {
        use sharebackup_topo::NodeKind;
        let mut net = sharebackup_topo::Network::new();
        let h0 = net.add_node(NodeKind::Host, None, 0);
        let h1 = net.add_node(NodeKind::Host, None, 1);
        let s = net.add_node(NodeKind::Edge, None, 0);
        net.add_link(h0, s, 8.0); // 1 byte/s
        net.add_link(s, h1, 8.0);
        (
            LineEnv {
                net,
                paths: BTreeMap::new(),
                epoch_log: Vec::new(),
                after_epoch: BTreeMap::new(),
            },
            vec![h0, h1, s],
        )
    }

    fn spec(h0: NodeId, h1: NodeId, id: u64, bytes: u64, at: Time) -> FlowSpec {
        FlowSpec {
            key: FlowKey::new(h0, h1, id),
            bytes,
            arrival: at,
        }
    }

    #[test]
    fn single_flow_completes_at_capacity() {
        let (mut env, n) = line_env();
        env.paths.insert(0, Some(vec![n[0], n[2], n[1]]));
        let flows = vec![spec(n[0], n[1], 0, 10, Time::ZERO)];
        let out = FlowSim::new().run(&mut env, &flows, &[]);
        // 10 bytes at 1 byte/s → 10 s.
        assert_eq!(out.flows[0].completed, Some(Time::from_secs(10)));
        assert_eq!(out.flows[0].delivered, 10);
    }

    #[test]
    fn two_flows_share_fairly() {
        let (mut env, n) = line_env();
        env.paths.insert(0, Some(vec![n[0], n[2], n[1]]));
        env.paths.insert(1, Some(vec![n[0], n[2], n[1]]));
        let flows = vec![
            spec(n[0], n[1], 0, 10, Time::ZERO),
            spec(n[0], n[1], 1, 10, Time::ZERO),
        ];
        let out = FlowSim::new().run(&mut env, &flows, &[]);
        // Both share 1 byte/s → each takes 20 s.
        assert_eq!(out.flows[0].completed, Some(Time::from_secs(20)));
        assert_eq!(out.flows[1].completed, Some(Time::from_secs(20)));
    }

    #[test]
    fn short_flow_finishing_speeds_up_the_other() {
        let (mut env, n) = line_env();
        env.paths.insert(0, Some(vec![n[0], n[2], n[1]]));
        env.paths.insert(1, Some(vec![n[0], n[2], n[1]]));
        let flows = vec![
            spec(n[0], n[1], 0, 5, Time::ZERO),
            spec(n[0], n[1], 1, 10, Time::ZERO),
        ];
        let out = FlowSim::new().run(&mut env, &flows, &[]);
        // Share 0.5 B/s until flow 0 finishes at 10 s (5 B). Flow 1 has 5 B
        // left, then runs at 1 B/s → finishes at 15 s.
        assert_eq!(out.flows[0].completed, Some(Time::from_secs(10)));
        assert_eq!(out.flows[1].completed, Some(Time::from_secs(15)));
    }

    #[test]
    fn late_arrival_changes_rates() {
        let (mut env, n) = line_env();
        env.paths.insert(0, Some(vec![n[0], n[2], n[1]]));
        env.paths.insert(1, Some(vec![n[0], n[2], n[1]]));
        let flows = vec![
            spec(n[0], n[1], 0, 10, Time::ZERO),
            spec(n[0], n[1], 1, 10, Time::from_secs(5)),
        ];
        let out = FlowSim::new().run(&mut env, &flows, &[]);
        // Flow 0: 5 B alone (5 s), then shares: 5 B at 0.5 B/s → t=15.
        // Flow 1: from t=5 shares 0.5 B/s for 10 s → 5 B by t=15, then
        // alone at 1 B/s for remaining 5 B → t=20.
        assert_eq!(out.flows[0].completed, Some(Time::from_secs(15)));
        assert_eq!(out.flows[1].completed, Some(Time::from_secs(20)));
    }

    #[test]
    fn unroutable_flow_stalls_until_epoch_restores_it() {
        let (mut env, n) = line_env();
        env.paths.insert(0, None); // failed at arrival
        env.after_epoch.insert(0, Some(vec![n[0], n[2], n[1]]));
        let flows = vec![spec(n[0], n[1], 0, 10, Time::ZERO)];
        let out = FlowSim::new().run(&mut env, &flows, &[Time::from_secs(7)]);
        // Stalled for 7 s, then 10 s of transfer.
        assert_eq!(out.flows[0].completed, Some(Time::from_secs(17)));
        assert!(out.flows[0].ever_stalled);
        // Gaining a first path after an arrival-stall is not a reroute.
        assert!(!out.flows[0].rerouted);
        assert_eq!(env.epoch_log, vec![(0, Time::from_secs(7))]);
    }

    #[test]
    fn permanently_stalled_flow_never_completes() {
        let (mut env, n) = line_env();
        env.paths.insert(0, None);
        let flows = vec![spec(n[0], n[1], 0, 10, Time::ZERO)];
        let out = FlowSim::new().run(&mut env, &flows, &[]);
        assert_eq!(out.flows[0].completed, None);
        assert_eq!(out.flows[0].delivered, 0);
    }

    #[test]
    fn horizon_cuts_off_and_reports_partial_delivery() {
        let (mut env, n) = line_env();
        env.paths.insert(0, Some(vec![n[0], n[2], n[1]]));
        let flows = vec![spec(n[0], n[1], 0, 100, Time::ZERO)];
        let out = FlowSim::with_horizon(Time::from_secs(30)).run(&mut env, &flows, &[]);
        assert_eq!(out.flows[0].completed, None);
        assert_eq!(out.flows[0].delivered, 30);
        assert_eq!(out.finished_at, Time::from_secs(30));
    }

    #[test]
    fn zero_byte_flow_completes_on_arrival() {
        let (mut env, n) = line_env();
        env.paths.insert(0, Some(vec![n[0], n[2], n[1]]));
        let flows = vec![spec(n[0], n[1], 0, 0, Time::from_secs(3))];
        let out = FlowSim::new().run(&mut env, &flows, &[]);
        assert_eq!(out.flows[0].completed, Some(Time::from_secs(3)));
    }

    #[test]
    fn utilization_accounting_matches_bytes_sent() {
        let (mut env, n) = line_env();
        env.paths.insert(0, Some(vec![n[0], n[2], n[1]]));
        let flows = vec![spec(n[0], n[1], 0, 10, Time::ZERO)];
        let out = FlowSim::new().run(&mut env, &flows, &[]);
        // Both links carried all 80 bits.
        let l0 = env.net.link_between(n[0], n[2]).expect("link");
        let l1 = env.net.link_between(n[2], n[1]).expect("link");
        assert!((out.link_bits[&l0] - 80.0).abs() < 1e-6);
        assert!((out.link_bits[&l1] - 80.0).abs() < 1e-6);
        // Full utilization over the 10 s run at 8 bps.
        assert!((out.utilization(l0, 8.0) - 1.0).abs() < 1e-9);
        let hottest = out.hottest_links(1);
        assert_eq!(hottest.len(), 1);
        assert!((hottest[0].1 - 80.0).abs() < 1e-6);
    }

    #[test]
    fn zero_rate_flow_mints_no_link_entries_at_horizon() {
        // Flow 0 runs h0—s—h1 at 1 B/s; flow 1 is routed over a
        // zero-capacity link (h2—s) and drains at rate 0. The horizon
        // drain must apply the same r > 0 guard as the main advance: the
        // dead flow's links must not appear in link_bits as zero-byte
        // entries.
        use sharebackup_topo::NodeKind;
        let mut net = sharebackup_topo::Network::new();
        let h0 = net.add_node(NodeKind::Host, None, 0);
        let h1 = net.add_node(NodeKind::Host, None, 1);
        let h2 = net.add_node(NodeKind::Host, None, 2);
        let s = net.add_node(NodeKind::Edge, None, 0);
        let l0 = net.add_link(h0, s, 8.0);
        let l1 = net.add_link(s, h1, 8.0);
        let dead = net.add_link(h2, s, 0.0);
        let mut env = LineEnv {
            net,
            paths: BTreeMap::new(),
            epoch_log: Vec::new(),
            after_epoch: BTreeMap::new(),
        };
        env.paths.insert(0, Some(vec![h0, s, h1]));
        env.paths.insert(1, Some(vec![h2, s, h1]));
        let flows = vec![
            spec(h0, h1, 0, 10, Time::ZERO),
            spec(h2, h1, 1, 10, Time::ZERO),
        ];
        let out = FlowSim::with_horizon(Time::from_secs(5)).run(&mut env, &flows, &[]);
        // Flow 1's private link carried nothing and must be absent.
        assert!(!out.link_bits.contains_key(&dead), "{:?}", out.link_bits);
        assert_eq!(out.flows[1].delivered, 0);
        // Flow 0 drained to the horizon: 5 s at 8 bps on both its links.
        assert!((out.link_bits[&l0] - 40.0).abs() < 1e-6);
        assert!((out.link_bits[&l1] - 40.0).abs() < 1e-6);
        assert_eq!(out.flows[0].delivered, 5);
    }

    #[test]
    fn event_counter_tracks_loop_steps() {
        let (mut env, n) = line_env();
        env.paths.insert(0, Some(vec![n[0], n[2], n[1]]));
        let flows = vec![spec(n[0], n[1], 0, 10, Time::ZERO)];
        let out = FlowSim::new().run(&mut env, &flows, &[]);
        // One arrival step, one completion step.
        assert_eq!(out.events, 2);
    }

    #[test]
    fn traced_run_records_telemetry_without_changing_outcomes() {
        use sharebackup_telemetry::TraceEvent;
        let make = || {
            let (mut env, n) = line_env();
            env.paths.insert(0, None); // stalled until the epoch restores it
            env.after_epoch.insert(0, Some(vec![n[0], n[2], n[1]]));
            (env, n)
        };
        let (mut env, n) = make();
        let flows = vec![spec(n[0], n[1], 0, 10, Time::ZERO)];
        let epochs = [Time::from_secs(7)];
        let plain = FlowSim::new().run(&mut env, &flows, &epochs);

        let (tracer, sink) = sharebackup_telemetry::Tracer::recording();
        let (mut env, _) = make();
        let traced = FlowSim::new().run_traced(&mut env, &flows, &epochs, &tracer);
        assert_eq!(plain.flows, traced.flows, "tracing must not perturb the sim");
        assert_eq!(plain.events, traced.events);

        let buf = sink.borrow_mut().take();
        let spans = buf.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "run");
        assert_eq!(spans[0].end, Time::from_secs(17));
        assert_eq!(buf.counters.get("flowsim.cause.epoch"), Some(&1));
        assert_eq!(buf.counters.get("flowsim.cause.arrival"), Some(&1));
        assert_eq!(buf.counters.get("flowsim.cause.completion"), Some(&1));
        assert_eq!(buf.counters.get("flowsim.loop_steps"), Some(&traced.events));
        // One solve per loop iteration plus the initial one.
        let rounds = buf.hists.get("flowsim.solve.rounds").expect("recorded");
        assert_eq!(rounds.count(), traced.events + 1);
        // The epoch shows up as an instant event.
        assert!(buf.events.iter().any(|e| matches!(
            e,
            TraceEvent::Mark { name, at, .. } if name == "epoch" && *at == Time::from_secs(7)
        )));
    }

    #[test]
    fn fct_helper_subtracts_arrival() {
        let (mut env, n) = line_env();
        env.paths.insert(0, Some(vec![n[0], n[2], n[1]]));
        let flows = vec![spec(n[0], n[1], 0, 10, Time::from_secs(100))];
        let out = FlowSim::new().run(&mut env, &flows, &[]);
        assert_eq!(out.fct(&flows, 0), Some(Duration::from_secs(10)));
    }
}
