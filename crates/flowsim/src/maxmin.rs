//! Progressive-filling max-min fair bandwidth allocation.
//!
//! Given flows with fixed paths (as link-id lists) and link capacities, the
//! allocation raises all rates together until a link saturates, freezes the
//! flows crossing it, and repeats — the classic water-filling construction
//! of the unique max-min fair allocation. This is the steady state that
//! per-flow fair queueing (or long-run TCP with equal RTTs) converges to,
//! and the fluid limit the paper's packet-level final-state measurements
//! correspond to.

use std::collections::BTreeMap;

use sharebackup_topo::LinkId;

/// Compute max-min fair rates.
///
/// * `flow_links[i]` — the links flow `i` traverses (must be non-empty for
///   the flow to receive rate; an empty list gets `f64::INFINITY` since it
///   consumes nothing).
/// * `capacity(l)` — capacity of link `l` in bits/s.
///
/// Returns one rate per flow, in bits/s.
pub fn max_min_rates(
    flow_links: &[Vec<LinkId>],
    mut capacity: impl FnMut(LinkId) -> f64,
) -> Vec<f64> {
    let n = flow_links.len();
    let mut rate = vec![0.0_f64; n];
    let mut active: Vec<bool> = flow_links.iter().map(|ls| !ls.is_empty()).collect();
    for (i, ls) in flow_links.iter().enumerate() {
        if ls.is_empty() {
            rate[i] = f64::INFINITY;
        }
    }

    // Per-link state: remaining headroom and active-flow count.
    let mut headroom: BTreeMap<LinkId, f64> = BTreeMap::new();
    let mut count: BTreeMap<LinkId, u32> = BTreeMap::new();
    for (i, links) in flow_links.iter().enumerate() {
        if !active[i] {
            continue;
        }
        for &l in links {
            headroom.entry(l).or_insert_with(|| capacity(l));
            *count.entry(l).or_insert(0) += 1;
        }
    }

    let mut remaining: usize = active.iter().filter(|&&a| a).count();
    while remaining > 0 {
        // Smallest equal increment any active flow can absorb.
        let mut delta = f64::INFINITY;
        for (l, &c) in &count {
            if c > 0 {
                let share = headroom[l] / c as f64;
                if share < delta {
                    delta = share;
                }
            }
        }
        if !delta.is_finite() {
            break; // defensive: no constraining links left
        }
        // Raise every active flow by delta and drain the links.
        for (i, links) in flow_links.iter().enumerate() {
            if !active[i] {
                continue;
            }
            rate[i] += delta;
            for &l in links {
                // Every link of an active flow was seeded in the setup loop.
                if let Some(h) = headroom.get_mut(&l) {
                    *h -= delta;
                }
            }
        }
        // Freeze flows on saturated links.
        const EPS_FRACTION: f64 = 1e-9;
        let saturated: Vec<LinkId> = headroom
            .iter()
            .filter(|(l, &h)| count[l] > 0 && h <= EPS_FRACTION * delta.max(1.0))
            .map(|(&l, _)| l)
            .collect();
        let mut frozen_any = false;
        for (i, links) in flow_links.iter().enumerate() {
            if !active[i] {
                continue;
            }
            if links.iter().any(|l| saturated.contains(l)) {
                active[i] = false;
                frozen_any = true;
                remaining -= 1;
                for &l in links {
                    if let Some(c) = count.get_mut(&l) {
                        *c -= 1;
                    }
                }
            }
        }
        if !frozen_any {
            // Numerical safety: freeze everything at current rates rather
            // than loop forever.
            for (i, links) in flow_links.iter().enumerate() {
                if active[i] {
                    active[i] = false;
                    remaining -= 1;
                    for &l in links {
                        if let Some(c) = count.get_mut(&l) {
                            *c -= 1;
                        }
                    }
                }
            }
        }
    }
    rate
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u32) -> LinkId {
        LinkId(i)
    }

    #[test]
    fn single_bottleneck_shares_equally() {
        let flows = vec![vec![l(0)], vec![l(0)], vec![l(0)], vec![l(0)]];
        let rates = max_min_rates(&flows, |_| 10.0);
        for r in rates {
            assert!((r - 2.5).abs() < 1e-9);
        }
    }

    #[test]
    fn classic_three_flow_example() {
        // Flow A uses links 0 and 1, flow B uses link 0, flow C uses link 1.
        // cap(0) = 1, cap(1) = 2. Max-min: A = B = 0.5 (link 0 saturates),
        // then C fills link 1 to 1.5.
        let flows = vec![vec![l(0), l(1)], vec![l(0)], vec![l(1)]];
        let rates = max_min_rates(&flows, |l| if l.0 == 0 { 1.0 } else { 2.0 });
        assert!((rates[0] - 0.5).abs() < 1e-9, "{rates:?}");
        assert!((rates[1] - 0.5).abs() < 1e-9, "{rates:?}");
        assert!((rates[2] - 1.5).abs() < 1e-9, "{rates:?}");
    }

    #[test]
    fn disjoint_flows_get_full_capacity() {
        let flows = vec![vec![l(0)], vec![l(1)]];
        let rates = max_min_rates(&flows, |l| (l.0 + 1) as f64);
        assert!((rates[0] - 1.0).abs() < 1e-9);
        assert!((rates[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_path_is_unconstrained() {
        let flows = vec![vec![], vec![l(0)]];
        let rates = max_min_rates(&flows, |_| 5.0);
        assert!(rates[0].is_infinite());
        assert!((rates[1] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn no_flows_is_fine() {
        let rates = max_min_rates(&[], |_| 1.0);
        assert!(rates.is_empty());
    }

    #[test]
    fn allocation_is_feasible_and_saturating() {
        // Random-ish structured instance: verify feasibility (no link over
        // capacity) and max-min optimality witness (every flow is blocked by
        // some saturated link).
        let flows: Vec<Vec<LinkId>> = (0..20)
            .map(|i| {
                vec![
                    l(i % 5),
                    l(5 + (i * 7) % 3),
                    l(8 + (i * 3) % 4),
                ]
            })
            .collect();
        let cap = |link: LinkId| 1.0 + (link.0 % 4) as f64;
        let rates = max_min_rates(&flows, cap);
        // Feasibility.
        let mut usage: BTreeMap<LinkId, f64> = BTreeMap::new();
        for (i, links) in flows.iter().enumerate() {
            for &link in links {
                *usage.entry(link).or_insert(0.0) += rates[i];
            }
        }
        for (&link, &u) in &usage {
            assert!(u <= cap(link) + 1e-6, "link {link:?} over capacity");
        }
        // Max-min witness: every flow crosses a saturated link.
        for links in &flows {
            let blocked = links
                .iter()
                .any(|link| usage[link] >= cap(*link) - 1e-6);
            assert!(blocked, "flow not blocked by any saturated link");
        }
    }

    #[test]
    fn fair_share_respects_weights_of_path_length() {
        // A long flow crossing two congested links gets the min of its
        // bottleneck shares, not less.
        let flows = vec![
            vec![l(0), l(1)],
            vec![l(0)],
            vec![l(0)],
            vec![l(1)],
        ];
        let rates = max_min_rates(&flows, |_| 3.0);
        // Link 0: three flows → share 1 each; link 1: long flow frozen at 1,
        // flow 3 takes remaining 2.
        assert!((rates[0] - 1.0).abs() < 1e-9);
        assert!((rates[1] - 1.0).abs() < 1e-9);
        assert!((rates[2] - 1.0).abs() < 1e-9);
        assert!((rates[3] - 2.0).abs() < 1e-9);
    }
}
