//! Progressive-filling max-min fair bandwidth allocation.
//!
//! Given flows with fixed paths (as link-id lists) and link capacities, the
//! allocation raises all rates together until a link saturates, freezes the
//! flows crossing it, and repeats — the classic water-filling construction
//! of the unique max-min fair allocation. This is the steady state that
//! per-flow fair queueing (or long-run TCP with equal RTTs) converges to,
//! and the fluid limit the paper's packet-level final-state measurements
//! correspond to.
//!
//! Two entry points:
//!
//! * [`max_min_rates`] — one-shot convenience over link-id lists;
//! * [`WaterFiller`] — dense, index-mapped link state for callers that
//!   solve repeatedly over an evolving flow set (the [`crate::FlowSim`]
//!   event loop). Links are interned into dense indices once, per-link
//!   membership counts are maintained incrementally as flows arrive, stall,
//!   re-route, and complete, and a solve only re-seeds links that currently
//!   carry flows — no per-event allocation and no tree lookups in the hot
//!   rounds.
//!
//! The slower, allocation-heavy original lives on in
//! [`crate::maxmin_reference`] as the perf baseline and differential
//! oracle.

use std::collections::BTreeMap;

use sharebackup_topo::LinkId;

/// Saturation threshold, as a fraction of link *capacity*.
///
/// The epsilon must scale with the capacity, not with the per-round
/// increment: repeatedly draining a ~1e10 bits/s link leaves float residue
/// around `count · ulp(capacity)` ≈ 1e-6, so once round increments get
/// small an increment-scaled epsilon (the old `delta.max(1.0) * 1e-9`)
/// misses the saturation, no flow freezes, and the defensive freeze-all
/// branch silently pins *every* flow at the lowest bottleneck share — a
/// non-max-min allocation that starved unrelated flows by four orders of
/// magnitude at Gb/s scale (see `gbps_scale_asymmetric_bottlenecks`).
const EPS_FRACTION: f64 = 1e-9;

/// Counters describing the most recent [`WaterFiller::solve`] call, for
/// telemetry. Plain data kept by the solver itself (a few integer writes
/// per solve) so the solver stays free of any tracing dependency; callers
/// that record traces read these via
/// [`WaterFiller::last_solve_stats`] after each solve.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Flows that entered the water-filling loop unfrozen (running, with a
    /// non-empty path).
    pub active_flows: u64,
    /// Filling rounds until every flow froze.
    pub rounds: u64,
    /// Links carrying at least one running flow.
    pub links_used: u64,
    /// Incremental mutations (add/remove/stall/re-route) applied since the
    /// previous solve — the "flows touched per incremental update" signal.
    pub flows_touched: u64,
}

/// A flow slot in the [`WaterFiller`] registry.
#[derive(Debug, Default)]
struct FlowEntry {
    /// Dense indices of the links the flow traverses.
    links: Vec<u32>,
    /// Contributing demand right now (alive and not stalled).
    running: bool,
    /// Slot occupied; `false` once removed (the slot is then recycled).
    alive: bool,
}

/// Dense, reusable scratch state for repeated max-min solves over an
/// evolving flow set.
///
/// Intern links with [`WaterFiller::link_index`], register flows with
/// [`WaterFiller::add_flow`], then call [`WaterFiller::solve`] and read
/// rates back with [`WaterFiller::rate`]. Between solves, mutate the flow
/// set incrementally ([`WaterFiller::set_links`],
/// [`WaterFiller::set_stalled`], [`WaterFiller::remove_flow`]); per-link
/// flow counts are maintained as deltas, so a solve touches only the links
/// that carry at least one running flow and allocates nothing.
#[derive(Debug, Default)]
pub struct WaterFiller {
    /// `LinkId` → dense index; persistent across solves.
    index_of: BTreeMap<LinkId, u32>,
    /// Dense index → `LinkId` (inverse of `index_of`).
    link_of: Vec<LinkId>,
    /// Dense index → capacity in bits/s (refreshed on `link_index`).
    capacity: Vec<f64>,
    /// Dense index → running flows crossing the link (kept incrementally).
    count: Vec<u32>,
    /// Dense index → member of `used` right now.
    in_used: Vec<bool>,
    /// Links with at least one running flow; compacted lazily in `solve`.
    used: Vec<u32>,
    /// Scratch: remaining headroom per link during a solve.
    headroom: Vec<f64>,
    /// Scratch: unfrozen-flow count per link during a solve.
    live: Vec<u32>,
    /// Scratch: saturation flag per link during a solve.
    saturated: Vec<bool>,
    /// Flow registry, indexed by the ids `add_flow` hands out.
    flows: Vec<FlowEntry>,
    /// Recycled flow ids.
    free: Vec<usize>,
    /// Scratch: ids of still-unfrozen flows during a solve.
    active: Vec<usize>,
    /// Scratch: links still constraining some unfrozen flow during a
    /// solve. Seeded from `used`, then compacted every freezing round so
    /// the per-round delta/saturation scans skip dead links — `used`
    /// itself must survive the solve untouched (it is the cross-solve
    /// membership list that `gain_all` keeps incrementally).
    cand: Vec<u32>,
    /// Rates per flow id, written by `solve`.
    rate: Vec<f64>,
    /// Mutations since the last solve (rolled into `last_stats`).
    touched: u64,
    /// Counters from the most recent solve.
    last_stats: SolveStats,
}

impl WaterFiller {
    /// An empty filler.
    pub fn new() -> WaterFiller {
        WaterFiller::default()
    }

    /// Intern `link`, returning its dense index. The capacity is recorded,
    /// and refreshed on every call — callers re-intern a link whenever the
    /// environment may have changed it.
    pub fn link_index(&mut self, link: LinkId, capacity_bps: f64) -> u32 {
        if let Some(&i) = self.index_of.get(&link) {
            self.capacity[i as usize] = capacity_bps;
            return i;
        }
        // Bounded by the number of distinct links ever interned.
        #[allow(clippy::cast_possible_truncation)]
        let i = self.link_of.len() as u32;
        self.index_of.insert(link, i);
        self.link_of.push(link);
        self.capacity.push(capacity_bps);
        self.count.push(0);
        self.in_used.push(false);
        self.headroom.push(0.0);
        self.live.push(0);
        self.saturated.push(false);
        i
    }

    /// The `LinkId` behind a dense index.
    pub fn link_id(&self, index: usize) -> LinkId {
        self.link_of[index]
    }

    /// Number of distinct links interned so far.
    pub fn link_count(&self) -> usize {
        self.link_of.len()
    }

    /// Register a running flow crossing `links` (dense indices from
    /// [`WaterFiller::link_index`]); returns its flow id. Ids of removed
    /// flows are recycled.
    pub fn add_flow(&mut self, links: Vec<u32>) -> usize {
        let fid = match self.free.pop() {
            Some(fid) => fid,
            None => {
                self.flows.push(FlowEntry::default());
                self.rate.push(0.0);
                self.flows.len() - 1
            }
        };
        self.flows[fid] = FlowEntry {
            links,
            running: true,
            alive: true,
        };
        self.touched += 1;
        self.gain_all(fid);
        fid
    }

    /// Deregister a completed flow; its id may be recycled.
    pub fn remove_flow(&mut self, fid: usize) {
        if self.flows[fid].running {
            self.drop_all(fid);
        }
        self.flows[fid] = FlowEntry::default();
        self.rate[fid] = 0.0;
        self.free.push(fid);
        self.touched += 1;
    }

    /// Mark a flow stalled (no route: zero rate, consumes nothing) or
    /// running again. The flow's link list is preserved across the stall.
    pub fn set_stalled(&mut self, fid: usize, stalled: bool) {
        let want_running = !stalled;
        if self.flows[fid].running == want_running {
            return;
        }
        self.touched += 1;
        if want_running {
            self.flows[fid].running = true;
            self.gain_all(fid);
        } else {
            self.drop_all(fid);
            self.flows[fid].running = false;
        }
    }

    /// Replace a flow's path. Counts adjust incrementally; only links
    /// entering or leaving the flow's set see their tallies move.
    pub fn set_links(&mut self, fid: usize, links: Vec<u32>) {
        self.touched += 1;
        if self.flows[fid].running {
            self.drop_all(fid);
            self.flows[fid].links = links;
            self.gain_all(fid);
        } else {
            self.flows[fid].links = links;
        }
    }

    /// The dense link indices of a flow.
    pub fn links(&self, fid: usize) -> &[u32] {
        &self.flows[fid].links
    }

    /// The rate computed by the last [`WaterFiller::solve`], in bits/s.
    /// Stalled flows get `0.0`; running flows crossing no links get
    /// `f64::INFINITY` (they consume nothing).
    pub fn rate(&self, fid: usize) -> f64 {
        self.rate[fid]
    }

    /// Counters from the most recent [`WaterFiller::solve`].
    pub fn last_solve_stats(&self) -> SolveStats {
        self.last_stats
    }

    /// Bump the membership count of every link of flow `fid`.
    fn gain_all(&mut self, fid: usize) {
        let Self {
            flows,
            count,
            in_used,
            used,
            ..
        } = self;
        for &li in &flows[fid].links {
            let l = li as usize;
            count[l] += 1;
            if !in_used[l] {
                in_used[l] = true;
                used.push(li);
            }
        }
    }

    /// Drop the membership count of every link of flow `fid`. Links that
    /// reach zero stay in `used` until the next solve compacts them.
    fn drop_all(&mut self, fid: usize) {
        let Self { flows, count, .. } = self;
        for &li in &flows[fid].links {
            count[li as usize] -= 1;
        }
    }

    /// Compute max-min fair rates for the current flow set into the
    /// per-flow [`WaterFiller::rate`] slots.
    ///
    /// Allocation-free: all per-link and per-flow state is reused scratch,
    /// and the re-seed touches only links carrying at least one running
    /// flow (membership counts are already up to date from the incremental
    /// bookkeeping, so nothing is rebuilt).
    pub fn solve(&mut self) {
        let Self {
            capacity,
            count,
            in_used,
            used,
            headroom,
            live,
            saturated,
            flows,
            active,
            rate,
            cand,
            ..
        } = self;

        // Re-seed links that still carry flows; compact out the rest.
        used.retain(|&li| {
            let l = li as usize;
            if count[l] == 0 {
                in_used[l] = false;
                return false;
            }
            headroom[l] = capacity[l];
            live[l] = count[l];
            saturated[l] = false;
            true
        });

        active.clear();
        for (fid, fe) in flows.iter().enumerate() {
            if !fe.alive {
                continue;
            }
            rate[fid] = if !fe.running {
                0.0
            } else if fe.links.is_empty() {
                f64::INFINITY
            } else {
                active.push(fid);
                0.0
            };
        }

        let active_at_start = u64::try_from(active.len()).unwrap_or(u64::MAX);
        let links_used = u64::try_from(used.len()).unwrap_or(u64::MAX);
        let mut rounds = 0u64;

        // Per-solve working set: once a link saturates, every flow crossing
        // it freezes and its live count stays zero for the rest of the
        // solve, so it can never constrain `delta` again. Scanning `cand`
        // instead of `used` lets each freezing round shed dead links and
        // keeps late rounds proportional to what is still filling.
        cand.clear();
        cand.extend_from_slice(used);

        while !active.is_empty() {
            rounds += 1;
            // Smallest equal increment any unfrozen flow can absorb.
            let mut delta = f64::INFINITY;
            for &li in cand.iter() {
                let l = li as usize;
                if live[l] > 0 {
                    let share = headroom[l] / f64::from(live[l]);
                    if share < delta {
                        delta = share;
                    }
                }
            }
            if !delta.is_finite() {
                break; // defensive: no constraining links left
            }

            // Raise every unfrozen flow by delta and drain its links.
            for &fid in active.iter() {
                rate[fid] += delta;
                for &li in &flows[fid].links {
                    headroom[li as usize] -= delta;
                }
            }

            // Mark saturated links. Capacity-relative epsilon: the link
            // that set `delta` always lands within float residue of zero
            // headroom, which is far below EPS_FRACTION · capacity, so at
            // least one link registers every round.
            let mut frozen_any = false;
            for &li in cand.iter() {
                let l = li as usize;
                if live[l] > 0 && headroom[l] <= EPS_FRACTION * capacity[l] {
                    saturated[l] = true;
                    frozen_any = true;
                }
            }

            if frozen_any {
                // Freeze flows crossing a saturated link, in place.
                let mut keep = 0;
                for r in 0..active.len() {
                    let fid = active[r];
                    if flows[fid]
                        .links
                        .iter()
                        .any(|&li| saturated[li as usize])
                    {
                        for &li in &flows[fid].links {
                            live[li as usize] -= 1;
                        }
                    } else {
                        active[keep] = fid;
                        keep += 1;
                    }
                }
                active.truncate(keep);
                cand.retain(|&li| live[li as usize] > 0);
            } else {
                // Numerical safety net: freeze everything rather than spin.
                // Unreachable with the capacity-relative epsilon (see
                // above); kept as a hard termination guarantee.
                active.clear();
            }
        }

        self.last_stats = SolveStats {
            active_flows: active_at_start,
            rounds,
            links_used,
            flows_touched: self.touched,
        };
        self.touched = 0;
    }
}

/// Compute max-min fair rates.
///
/// * `flow_links[i]` — the links flow `i` traverses (must be non-empty for
///   the flow to receive rate; an empty list gets `f64::INFINITY` since it
///   consumes nothing).
/// * `capacity(l)` — capacity of link `l` in bits/s.
///
/// Returns one rate per flow, in bits/s. One-shot convenience over
/// [`WaterFiller`]; repeated callers should hold a `WaterFiller` and reuse
/// its scratch state instead.
pub fn max_min_rates(
    flow_links: &[Vec<LinkId>],
    mut capacity: impl FnMut(LinkId) -> f64,
) -> Vec<f64> {
    let mut wf = WaterFiller::new();
    let fids: Vec<usize> = flow_links
        .iter()
        .map(|links| {
            let dense: Vec<u32> = links
                .iter()
                .map(|&l| {
                    let cap = capacity(l);
                    wf.link_index(l, cap)
                })
                .collect();
            wf.add_flow(dense)
        })
        .collect();
    wf.solve();
    fids.into_iter().map(|fid| wf.rate(fid)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u32) -> LinkId {
        LinkId(i)
    }

    #[test]
    fn single_bottleneck_shares_equally() {
        let flows = vec![vec![l(0)], vec![l(0)], vec![l(0)], vec![l(0)]];
        let rates = max_min_rates(&flows, |_| 10.0);
        for r in rates {
            assert!((r - 2.5).abs() < 1e-9);
        }
    }

    #[test]
    fn classic_three_flow_example() {
        // Flow A uses links 0 and 1, flow B uses link 0, flow C uses link 1.
        // cap(0) = 1, cap(1) = 2. Max-min: A = B = 0.5 (link 0 saturates),
        // then C fills link 1 to 1.5.
        let flows = vec![vec![l(0), l(1)], vec![l(0)], vec![l(1)]];
        let rates = max_min_rates(&flows, |l| if l.0 == 0 { 1.0 } else { 2.0 });
        assert!((rates[0] - 0.5).abs() < 1e-9, "{rates:?}");
        assert!((rates[1] - 0.5).abs() < 1e-9, "{rates:?}");
        assert!((rates[2] - 1.5).abs() < 1e-9, "{rates:?}");
    }

    #[test]
    fn disjoint_flows_get_full_capacity() {
        let flows = vec![vec![l(0)], vec![l(1)]];
        let rates = max_min_rates(&flows, |l| (l.0 + 1) as f64);
        assert!((rates[0] - 1.0).abs() < 1e-9);
        assert!((rates[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_path_is_unconstrained() {
        let flows = vec![vec![], vec![l(0)]];
        let rates = max_min_rates(&flows, |_| 5.0);
        assert!(rates[0].is_infinite());
        assert!((rates[1] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn no_flows_is_fine() {
        let rates = max_min_rates(&[], |_| 1.0);
        assert!(rates.is_empty());
    }

    #[test]
    fn allocation_is_feasible_and_saturating() {
        // Random-ish structured instance: verify feasibility (no link over
        // capacity) and max-min optimality witness (every flow is blocked by
        // some saturated link).
        let flows: Vec<Vec<LinkId>> = (0..20)
            .map(|i| {
                vec![
                    l(i % 5),
                    l(5 + (i * 7) % 3),
                    l(8 + (i * 3) % 4),
                ]
            })
            .collect();
        let cap = |link: LinkId| 1.0 + (link.0 % 4) as f64;
        let rates = max_min_rates(&flows, cap);
        // Feasibility.
        let mut usage: BTreeMap<LinkId, f64> = BTreeMap::new();
        for (i, links) in flows.iter().enumerate() {
            for &link in links {
                *usage.entry(link).or_insert(0.0) += rates[i];
            }
        }
        for (&link, &u) in &usage {
            assert!(u <= cap(link) + 1e-6, "link {link:?} over capacity");
        }
        // Max-min witness: every flow crosses a saturated link.
        for links in &flows {
            let blocked = links
                .iter()
                .any(|link| usage[link] >= cap(*link) - 1e-6);
            assert!(blocked, "flow not blocked by any saturated link");
        }
    }

    #[test]
    fn fair_share_respects_weights_of_path_length() {
        // A long flow crossing two congested links gets the min of its
        // bottleneck shares, not less.
        let flows = vec![
            vec![l(0), l(1)],
            vec![l(0)],
            vec![l(0)],
            vec![l(1)],
        ];
        let rates = max_min_rates(&flows, |_| 3.0);
        // Link 0: three flows → share 1 each; link 1: long flow frozen at 1,
        // flow 3 takes remaining 2.
        assert!((rates[0] - 1.0).abs() < 1e-9);
        assert!((rates[1] - 1.0).abs() < 1e-9);
        assert!((rates[2] - 1.0).abs() < 1e-9);
        assert!((rates[3] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn gbps_scale_asymmetric_bottlenecks() {
        // Regression for the increment-scaled saturation epsilon. 6400
        // flows share a ~10 Gb/s link; one solo flow owns a 40 Gb/s link.
        // Draining the shared link leaves float residue around
        // count · ulp(1e10) ≈ 1e-2 — far above the old epsilon of
        // 1e-9 · delta — so no link registered saturated, the freeze-all
        // safety net fired, and the solo flow was pinned at the shared
        // flows' ~1.56 Mb/s share: 25,000× below its true allocation. The
        // capacity-relative epsilon (~10 bits/s here) sees the saturation.
        let shared = 6400usize;
        let cap0 = 10_000_000_003.25_f64;
        let flows: Vec<Vec<LinkId>> = (0..shared)
            .map(|_| vec![l(0)])
            .chain([vec![l(1)]])
            .collect();
        let rates = max_min_rates(&flows, |link| if link.0 == 0 { cap0 } else { 4e10 });
        let fair = cap0 / shared as f64;
        for r in &rates[..shared] {
            assert!(
                (r / fair - 1.0).abs() < 1e-6,
                "shared-link flow got {r}, want ~{fair}"
            );
        }
        assert!(
            (rates[shared] / 4e10 - 1.0).abs() < 1e-6,
            "solo flow got {}, want ~4e10",
            rates[shared]
        );
        // Feasibility at scale: the shared link is not oversubscribed.
        let usage: f64 = rates[..shared].iter().sum();
        assert!(usage <= cap0 * (1.0 + 1e-9), "shared link over capacity");
    }

    #[test]
    fn scratch_reuse_tracks_incremental_changes() {
        // Exercise the WaterFiller lifecycle the simulator relies on:
        // add/solve, stall, re-route, remove, id recycling.
        let mut wf = WaterFiller::new();
        let a = wf.link_index(l(0), 10.0);
        let b = wf.link_index(l(1), 4.0);
        let f0 = wf.add_flow(vec![a, b]);
        let f1 = wf.add_flow(vec![a]);
        wf.solve();
        // Link 1 (cap 4, 1 flow) vs link 0 (cap 10, 2 flows): f0 takes 4,
        // f1 the remaining 6.
        assert!((wf.rate(f0) - 4.0).abs() < 1e-9);
        assert!((wf.rate(f1) - 6.0).abs() < 1e-9);

        // Stall f0: f1 gets the whole of link 0.
        wf.set_stalled(f0, true);
        wf.solve();
        assert_eq!(wf.rate(f0), 0.0);
        assert!((wf.rate(f1) - 10.0).abs() < 1e-9);

        // Resume f0 on a new path avoiding link 1.
        wf.set_stalled(f0, false);
        wf.set_links(f0, vec![a]);
        wf.solve();
        assert!((wf.rate(f0) - 5.0).abs() < 1e-9);
        assert!((wf.rate(f1) - 5.0).abs() < 1e-9);

        // Remove f1; its id is recycled for the next arrival.
        wf.remove_flow(f1);
        let f2 = wf.add_flow(vec![b]);
        assert_eq!(f2, f1);
        wf.solve();
        assert!((wf.rate(f0) - 10.0).abs() < 1e-9);
        assert!((wf.rate(f2) - 4.0).abs() < 1e-9);

        // Capacity refresh on re-intern.
        assert_eq!(wf.link_index(l(1), 8.0), b);
        wf.solve();
        assert!((wf.rate(f2) - 8.0).abs() < 1e-9);
        assert_eq!(wf.link_count(), 2);
        assert_eq!(wf.link_id(a as usize), l(0));
    }

    #[test]
    fn solve_stats_count_rounds_and_touches() {
        let mut wf = WaterFiller::new();
        let a = wf.link_index(l(0), 1.0);
        let b = wf.link_index(l(1), 2.0);
        let f0 = wf.add_flow(vec![a, b]);
        let _f1 = wf.add_flow(vec![a]);
        let f2 = wf.add_flow(vec![b]);
        wf.solve();
        let s = wf.last_solve_stats();
        // Classic two-round instance: link 0 saturates first, then link 1.
        assert_eq!(s.active_flows, 3);
        assert_eq!(s.rounds, 2);
        assert_eq!(s.links_used, 2);
        assert_eq!(s.flows_touched, 3, "three add_flow calls since last solve");

        // No mutations between solves → zero touched; a stall + reroute +
        // remove → three.
        wf.solve();
        assert_eq!(wf.last_solve_stats().flows_touched, 0);
        wf.set_stalled(f0, true);
        wf.set_stalled(f0, true); // no-op: already stalled, not a touch
        wf.set_links(f0, vec![a]);
        wf.remove_flow(f2);
        wf.solve();
        assert_eq!(wf.last_solve_stats().flows_touched, 3);
    }

    #[test]
    fn stalled_flow_with_no_links_stays_at_zero() {
        // A flow that arrived unroutable: no links, stalled. It must not
        // report the INFINITY of an empty-path *running* flow.
        let mut wf = WaterFiller::new();
        let f = wf.add_flow(Vec::new());
        wf.set_stalled(f, true);
        wf.solve();
        assert_eq!(wf.rate(f), 0.0);
        wf.set_stalled(f, false);
        wf.solve();
        assert!(wf.rate(f).is_infinite());
    }
}
