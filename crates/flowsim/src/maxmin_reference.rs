//! Reference max-min allocator: the original `BTreeMap`-based progressive
//! filling, retained after the dense [`crate::WaterFiller`] replaced it in
//! the hot path.
//!
//! It serves two purposes:
//!
//! * **Perf baseline** — `bench_baseline` times the dense solver against
//!   this implementation and records the ratio in `BENCH_flowsim.json`, so
//!   the speedup claim stays measurable instead of anecdotal.
//! * **Differential oracle** — the property suite cross-checks the two
//!   independent implementations on random instances at both unit and
//!   Gb/s capacity scales; agreement between a tree-based and a dense
//!   solver is strong evidence neither has an indexing bug.
//!
//! The saturation epsilon here is the *fixed*, capacity-relative one (the
//! increment-scaled epsilon this module's ancestor shipped with was a bug;
//! see [`crate::maxmin`]), so both implementations compute the same
//! allocation.

use std::collections::BTreeMap;

use sharebackup_topo::LinkId;

/// Saturation threshold as a fraction of link capacity; matches
/// [`crate::maxmin`].
const EPS_FRACTION: f64 = 1e-9;

/// Compute max-min fair rates with per-round `BTreeMap` bookkeeping.
///
/// Same contract as [`crate::max_min_rates`]: one rate per flow in bits/s,
/// `f64::INFINITY` for empty link lists. Allocates fresh maps per call and
/// walks them per round — use only as a baseline or oracle.
pub fn max_min_rates_reference(
    flow_links: &[Vec<LinkId>],
    mut capacity: impl FnMut(LinkId) -> f64,
) -> Vec<f64> {
    let n = flow_links.len();
    let mut rate = vec![0.0_f64; n];
    let mut active: Vec<bool> = flow_links.iter().map(|ls| !ls.is_empty()).collect();
    for (i, ls) in flow_links.iter().enumerate() {
        if ls.is_empty() {
            rate[i] = f64::INFINITY;
        }
    }

    // Per-link state: capacity, remaining headroom, and active-flow count.
    let mut cap: BTreeMap<LinkId, f64> = BTreeMap::new();
    let mut headroom: BTreeMap<LinkId, f64> = BTreeMap::new();
    let mut count: BTreeMap<LinkId, u32> = BTreeMap::new();
    for (i, links) in flow_links.iter().enumerate() {
        if !active[i] {
            continue;
        }
        for &l in links {
            let c = *cap.entry(l).or_insert_with(|| capacity(l));
            headroom.entry(l).or_insert(c);
            *count.entry(l).or_insert(0) += 1;
        }
    }

    let mut remaining: usize = active.iter().filter(|&&a| a).count();
    while remaining > 0 {
        // Smallest equal increment any active flow can absorb.
        let mut delta = f64::INFINITY;
        for (l, &c) in &count {
            if c > 0 {
                let share = headroom[l] / f64::from(c);
                if share < delta {
                    delta = share;
                }
            }
        }
        if !delta.is_finite() {
            break; // defensive: no constraining links left
        }
        // Raise every active flow by delta and drain the links.
        for (i, links) in flow_links.iter().enumerate() {
            if !active[i] {
                continue;
            }
            rate[i] += delta;
            for &l in links {
                // Every link of an active flow was seeded in the setup loop.
                if let Some(h) = headroom.get_mut(&l) {
                    *h -= delta;
                }
            }
        }
        // Freeze flows on saturated links (capacity-relative epsilon).
        let saturated: Vec<LinkId> = headroom
            .iter()
            .filter(|(l, &h)| count[l] > 0 && h <= EPS_FRACTION * cap[l])
            .map(|(&l, _)| l)
            .collect();
        let mut frozen_any = false;
        for (i, links) in flow_links.iter().enumerate() {
            if !active[i] {
                continue;
            }
            if links.iter().any(|l| saturated.contains(l)) {
                active[i] = false;
                frozen_any = true;
                remaining -= 1;
                for &l in links {
                    if let Some(c) = count.get_mut(&l) {
                        *c -= 1;
                    }
                }
            }
        }
        if !frozen_any {
            // Numerical safety: freeze everything at current rates rather
            // than loop forever.
            for (i, links) in flow_links.iter().enumerate() {
                if active[i] {
                    active[i] = false;
                    remaining -= 1;
                    for &l in links {
                        if let Some(c) = count.get_mut(&l) {
                            *c -= 1;
                        }
                    }
                }
            }
        }
    }
    rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::max_min_rates;

    fn l(i: u32) -> LinkId {
        LinkId(i)
    }

    #[test]
    fn reference_matches_dense_solver_on_structured_instance() {
        let flows: Vec<Vec<LinkId>> = (0..50)
            .map(|i| vec![l(i % 7), l(7 + (i * 3) % 5), l(12 + (i * 11) % 6)])
            .collect();
        let cap = |link: LinkId| 1e10 * (1.0 + f64::from(link.0 % 5) / 3.0);
        let a = max_min_rates(&flows, cap);
        let b = max_min_rates_reference(&flows, cap);
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert!(
                (x - y).abs() <= 1e-6 * x.abs().max(1.0),
                "flow {i}: dense {x} vs reference {y}"
            );
        }
    }

    #[test]
    fn reference_handles_gbps_scale_asymmetric_bottlenecks() {
        // The epsilon fix applies to this implementation too.
        let shared = 6400usize;
        let cap0 = 10_000_000_003.25_f64;
        let flows: Vec<Vec<LinkId>> = (0..shared)
            .map(|_| vec![l(0)])
            .chain([vec![l(1)]])
            .collect();
        let rates =
            max_min_rates_reference(&flows, |link| if link.0 == 0 { cap0 } else { 4e10 });
        assert!(
            (rates[shared] / 4e10 - 1.0).abs() < 1e-6,
            "solo flow got {}, want ~4e10",
            rates[shared]
        );
    }
}
