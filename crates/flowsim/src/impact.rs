//! Static failure-impact metrics: the affected-flow and affected-coflow
//! fractions of Fig. 1(a) and 1(b).
//!
//! Paper §2.2: "A flow is considered affected if it traverses a failed node
//! or link, and a coflow is affected if at least one flow in its set gets
//! affected." This is a *static* property of the flows' pre-failure paths
//! against the failure set — no simulation involved — which is why the
//! coflow amplification (3.3×–90×) falls out of pure combinatorics.

use sharebackup_topo::{Network, NodeId};

use crate::coflow::Coflow;

/// Affected-flow / affected-coflow counts for one failure scenario.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ImpactReport {
    /// Total flows examined.
    pub flows: usize,
    /// Flows whose path traverses a failed element.
    pub affected_flows: usize,
    /// Total coflows examined.
    pub coflows: usize,
    /// Coflows with at least one affected flow.
    pub affected_coflows: usize,
}

impl ImpactReport {
    /// Fraction of flows affected, in `[0, 1]`.
    pub fn flow_fraction(&self) -> f64 {
        if self.flows == 0 {
            0.0
        } else {
            self.affected_flows as f64 / self.flows as f64
        }
    }

    /// Fraction of coflows affected, in `[0, 1]`.
    pub fn coflow_fraction(&self) -> f64 {
        if self.coflows == 0 {
            0.0
        } else {
            self.affected_coflows as f64 / self.coflows as f64
        }
    }

    /// The paper's amplification factor: affected-coflow fraction divided by
    /// affected-flow fraction (3.3×–90× in Fig. 1).
    pub fn amplification(&self) -> Option<f64> {
        let f = self.flow_fraction();
        if f == 0.0 {
            None
        } else {
            Some(self.coflow_fraction() / f)
        }
    }
}

/// Whether a flow path traverses a failed node or link under the current
/// state of `net`.
pub fn flow_affected(net: &Network, path: &[NodeId]) -> bool {
    !net.path_usable(path)
}

/// Compute the impact report for a set of flows (given their pre-failure
/// paths) and their grouping into coflows, against the failure state in
/// `net`.
pub fn impact(net: &Network, paths: &[Vec<NodeId>], coflows: &[Coflow]) -> ImpactReport {
    let affected: Vec<bool> = paths.iter().map(|p| flow_affected(net, p)).collect();
    let affected_flows = affected.iter().filter(|&&a| a).count();
    let affected_coflows = coflows
        .iter()
        .filter(|cf| cf.flows.iter().any(|&i| affected[i]))
        .count();
    ImpactReport {
        flows: paths.len(),
        affected_flows,
        coflows: coflows.len(),
        affected_coflows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coflow::CoflowId;
    use sharebackup_topo::{FatTree, FatTreeConfig, HostAddr};

    #[test]
    fn amplification_emerges_from_grouping() {
        let mut ft = FatTree::build(FatTreeConfig::new(4));
        // 8 flows from distinct pod-0 hosts to pod-1 hosts, one coflow of 4
        // flows plus 4 singleton coflows.
        let paths: Vec<Vec<_>> = (0..8)
            .map(|i| {
                let src = ft.host(HostAddr { pod: 0, edge: (i / 2) % 2, host: i % 2 });
                let dst = ft.host(HostAddr { pod: 1, edge: i % 2, host: (i / 2) % 2 });
                ft.host_paths(src, dst)[i % 4].clone()
            })
            .collect();
        let coflows = vec![
            Coflow { id: CoflowId(0), flows: vec![0, 1, 2, 3] },
            Coflow { id: CoflowId(1), flows: vec![4] },
            Coflow { id: CoflowId(2), flows: vec![5] },
            Coflow { id: CoflowId(3), flows: vec![6] },
            Coflow { id: CoflowId(4), flows: vec![7] },
        ];
        // No failure: nothing affected.
        let r = impact(&ft.net, &paths, &coflows);
        assert_eq!(r.affected_flows, 0);
        assert_eq!(r.affected_coflows, 0);
        assert_eq!(r.amplification(), None);
        // Fail the core used by flow 0 only.
        let core = paths[0][3];
        let others_use_it = paths[1..].iter().filter(|p| p.contains(&core)).count();
        ft.net.set_node_up(core, false);
        let r = impact(&ft.net, &paths, &coflows);
        assert_eq!(r.affected_flows, 1 + others_use_it);
        // The big coflow is affected via flow 0: coflow fraction ≥ 1/5 while
        // flow fraction could be as low as 1/8 → amplification ≥ 1.
        assert!(r.affected_coflows >= 1);
        assert!(r.amplification().expect("some affected") >= 1.0);
    }

    #[test]
    fn empty_inputs() {
        let ft = FatTree::build(FatTreeConfig::new(4));
        let r = impact(&ft.net, &[], &[]);
        assert_eq!(r.flow_fraction(), 0.0);
        assert_eq!(r.coflow_fraction(), 0.0);
    }

    #[test]
    fn link_failure_affects_exactly_traversing_flows() {
        let mut ft = FatTree::build(FatTreeConfig::new(4));
        let src = ft.host(HostAddr { pod: 0, edge: 0, host: 0 });
        let dst = ft.host(HostAddr { pod: 2, edge: 0, host: 0 });
        let all = ft.host_paths(src, dst);
        let paths = [all[0].clone(), all[3].clone()];
        // Cut a link on path 0 that path 3 does not use.
        let l = ft.net.link_between(all[0][2], all[0][3]).expect("link");
        ft.net.set_link_up(l, false);
        assert!(flow_affected(&ft.net, &paths[0]));
        assert!(!flow_affected(&ft.net, &paths[1]));
    }
}
