//! Coflows and Coflow Completion Time (CCT).
//!
//! A coflow (Chowdhury & Stoica, HotNets'12) is the set of flows one
//! application stage produces; the application can proceed only when *all*
//! of them finish, so CCT — "the lifetime of the most long-lived flow in a
//! coflow" (paper §2.2) — is the application-level metric, and the reason a
//! single straggler flow hit by a failure magnifies into orders-of-magnitude
//! application slowdown.

use sharebackup_sim::{Duration, Time};

use crate::sim::{FlowSpec, SimOutcome};

/// Identifier of a coflow within one experiment.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CoflowId(pub u32);

impl CoflowId {
    /// Construct from an arena index, saturating at `u32::MAX` (traces are
    /// bounded far below 4 G coflows).
    pub fn from_index(i: usize) -> CoflowId {
        debug_assert!(u32::try_from(i).is_ok(), "coflow id overflow");
        CoflowId(u32::try_from(i).unwrap_or(u32::MAX))
    }
}

/// A coflow: indices into the experiment's flow list.
#[derive(Clone, Debug)]
pub struct Coflow {
    /// Its id.
    pub id: CoflowId,
    /// Indices of member flows in the `FlowSpec` slice.
    pub flows: Vec<usize>,
}

/// Outcome of one coflow.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CoflowOutcome {
    /// Arrival of the earliest member flow.
    pub arrival: Time,
    /// Completion of the last member flow, if *all* members completed.
    pub completed: Option<Time>,
}

impl Coflow {
    /// Evaluate this coflow against a simulation outcome.
    ///
    /// # Panics
    /// Panics if the coflow has no flows.
    pub fn outcome(&self, specs: &[FlowSpec], out: &SimOutcome) -> CoflowOutcome {
        assert!(!self.flows.is_empty(), "empty coflow");
        let arrival = self
            .flows
            .iter()
            .map(|&i| specs[i].arrival)
            .min()
            .unwrap_or(Time::ZERO);
        let mut last = Time::ZERO;
        for &i in &self.flows {
            match out.flows[i].completed {
                Some(t) => last = last.max(t),
                None => {
                    return CoflowOutcome {
                        arrival,
                        completed: None,
                    }
                }
            }
        }
        CoflowOutcome {
            arrival,
            completed: Some(last),
        }
    }

    /// Coflow Completion Time under a simulation outcome.
    pub fn cct(&self, specs: &[FlowSpec], out: &SimOutcome) -> Option<Duration> {
        let o = self.outcome(specs, out);
        o.completed.map(|t| t.since(o.arrival))
    }
}

/// CCT slowdown: CCT with failure divided by CCT without (paper §2.2).
///
/// Returns `None` when either run left the coflow unfinished — the harness
/// reports those separately (an unfinished coflow is "infinite" slowdown).
pub fn cct_slowdown(baseline: Option<Duration>, with_failure: Option<Duration>) -> Option<f64> {
    match (baseline, with_failure) {
        (Some(b), Some(f)) if b > Duration::ZERO => Some(f.as_secs_f64() / b.as_secs_f64()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::FlowOutcome;
    use sharebackup_routing::FlowKey;
    use sharebackup_topo::NodeId;

    fn spec(at: u64) -> FlowSpec {
        FlowSpec {
            key: FlowKey::new(NodeId(0), NodeId(1), 0),
            bytes: 1,
            arrival: Time::from_secs(at),
        }
    }

    fn outcome(completions: &[Option<u64>]) -> SimOutcome {
        SimOutcome {
            flows: completions
                .iter()
                .map(|c| FlowOutcome {
                    completed: c.map(Time::from_secs),
                    delivered: 1,
                    ever_stalled: false,
                    rerouted: false,
                })
                .collect(),
            finished_at: Time::from_secs(100),
            link_bits: Default::default(),
            events: 0,
        }
    }

    #[test]
    fn cct_is_last_flow_minus_first_arrival() {
        let specs = vec![spec(10), spec(12), spec(11)];
        let out = outcome(&[Some(20), Some(35), Some(25)]);
        let cf = Coflow {
            id: CoflowId(0),
            flows: vec![0, 1, 2],
        };
        assert_eq!(cf.cct(&specs, &out), Some(Duration::from_secs(25)));
    }

    #[test]
    fn unfinished_member_means_no_cct() {
        let specs = vec![spec(0), spec(0)];
        let out = outcome(&[Some(5), None]);
        let cf = Coflow {
            id: CoflowId(0),
            flows: vec![0, 1],
        };
        assert_eq!(cf.cct(&specs, &out), None);
        assert_eq!(cf.outcome(&specs, &out).completed, None);
    }

    #[test]
    fn slowdown_math() {
        assert_eq!(
            cct_slowdown(
                Some(Duration::from_secs(10)),
                Some(Duration::from_secs(30))
            ),
            Some(3.0)
        );
        assert_eq!(cct_slowdown(None, Some(Duration::from_secs(1))), None);
        assert_eq!(cct_slowdown(Some(Duration::from_secs(1)), None), None);
        assert_eq!(cct_slowdown(Some(Duration::ZERO), Some(Duration::ZERO)), None);
    }

    #[test]
    fn single_flow_coflow() {
        let specs = vec![spec(5)];
        let out = outcome(&[Some(9)]);
        let cf = Coflow {
            id: CoflowId(1),
            flows: vec![0],
        };
        assert_eq!(cf.cct(&specs, &out), Some(Duration::from_secs(4)));
    }
}
