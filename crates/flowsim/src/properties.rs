//! The Table 3 property checks: bandwidth loss, path dilation, upstream
//! repair.
//!
//! The paper compares architectures on three binary properties after a
//! failure is "handled" (by rerouting or by replacement):
//!
//! * **Bandwidth loss** — is the network's usable capacity reduced?
//! * **Path dilation** — did any flow's path get longer?
//! * **Upstream repair** — did recovery require changing forwarding at
//!   switches *upstream* of (closer to the source than) the failure?
//!
//! These are measured, not asserted: the benchmark harness runs each
//! architecture through the same failure and reports what actually
//! happened, regenerating Table 3.

use sharebackup_topo::{Network, NodeId};

/// Sum of usable link capacity (bits/s), the simplest bandwidth-loss gauge.
pub fn total_usable_capacity(net: &Network) -> f64 {
    net.link_ids()
        .filter(|&l| net.link_usable(l))
        .map(|l| net.link(l).capacity_bps)
        .sum()
}

/// Relative bandwidth loss between two states of the same network, in
/// `[0, 1]`.
pub fn bandwidth_loss(before: &Network, after: &Network) -> f64 {
    let b = total_usable_capacity(before);
    let a = total_usable_capacity(after);
    if b <= 0.0 {
        0.0
    } else {
        ((b - a) / b).max(0.0)
    }
}

/// Whether any post-recovery path is longer than its pre-failure
/// counterpart. `None` entries (dead flows) are skipped — path dilation is
/// about flows that still run.
pub fn path_dilation(before: &[Vec<NodeId>], after: &[Option<Vec<NodeId>>]) -> bool {
    before
        .iter()
        .zip(after)
        .any(|(b, a)| a.as_ref().is_some_and(|a| a.len() > b.len()))
}

/// Maximum per-flow dilation in hops (0 = none).
pub fn max_dilation_hops(before: &[Vec<NodeId>], after: &[Option<Vec<NodeId>>]) -> usize {
    before
        .iter()
        .zip(after)
        .filter_map(|(b, a)| a.as_ref().map(|a| a.len().saturating_sub(b.len())))
        .max()
        .unwrap_or(0)
}

/// Whether repairing a flow changed its forwarding *upstream* of the
/// failure: the old and new paths diverge strictly before the failed
/// element's position on the old path.
///
/// `failed_at` is the index in `before` of the first node adjacent to the
/// failure (e.g. for a failed link `(before[i], before[i+1])`, pass `i`).
pub fn upstream_repair(before: &[NodeId], after: &[NodeId], failed_at: usize) -> bool {
    let common = before
        .iter()
        .zip(after.iter())
        .take_while(|(a, b)| a == b)
        .count();
    common < failed_at.saturating_add(1).min(before.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharebackup_topo::{FatTree, FatTreeConfig};

    #[test]
    fn capacity_drops_with_failures_and_recovers() {
        let mut ft = FatTree::build(FatTreeConfig::new(4));
        let before = ft.net.clone();
        let full = total_usable_capacity(&before);
        assert!(full > 0.0);
        let core = ft.core(0);
        ft.net.set_node_up(core, false);
        let loss = bandwidth_loss(&before, &ft.net);
        // Core 0 carries 4 of the 48 links.
        assert!((loss - 4.0 / 48.0).abs() < 1e-9, "loss = {loss}");
        ft.net.set_node_up(core, true);
        assert_eq!(bandwidth_loss(&before, &ft.net), 0.0);
    }

    #[test]
    fn dilation_detection() {
        let b = vec![vec![NodeId(0), NodeId(1), NodeId(2)]];
        let same = vec![Some(vec![NodeId(0), NodeId(3), NodeId(2)])];
        let longer = vec![Some(vec![NodeId(0), NodeId(3), NodeId(4), NodeId(2)])];
        let dead = vec![None];
        assert!(!path_dilation(&b, &same));
        assert!(path_dilation(&b, &longer));
        assert!(!path_dilation(&b, &dead));
        assert_eq!(max_dilation_hops(&b, &longer), 1);
        assert_eq!(max_dilation_hops(&b, &same), 0);
    }

    #[test]
    fn upstream_repair_detection() {
        let before = [NodeId(0), NodeId(1), NodeId(2), NodeId(3), NodeId(4)];
        // Failure at hop 2→3 (failed_at = 2).
        // Divergence at index 1 (< 2): repair reached upstream.
        let upstream = [NodeId(0), NodeId(9), NodeId(8), NodeId(7), NodeId(4)];
        assert!(upstream_repair(&before, &upstream, 2));
        // Divergence exactly at the failure-adjacent node: local repair.
        let local = [NodeId(0), NodeId(1), NodeId(2), NodeId(8), NodeId(4)];
        assert!(!upstream_repair(&before, &local, 2));
        // Identical path (ShareBackup): no repair at all.
        assert!(!upstream_repair(&before, &before, 2));
    }
}
