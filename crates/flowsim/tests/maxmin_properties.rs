//! Property-based tests of the max-min fair allocator: feasibility,
//! saturation witness, and the max-min dominance property on random
//! instances.

use std::collections::BTreeMap;

use proptest::prelude::*;
use sharebackup_flowsim::{max_min_rates, max_min_rates_reference};
use sharebackup_topo::LinkId;

/// Random instance: up to 40 flows over up to 12 links, 1-4 links each.
fn instances() -> impl Strategy<Value = (Vec<Vec<LinkId>>, Vec<f64>)> {
    let caps = prop::collection::vec(1.0f64..100.0, 12);
    let flows = prop::collection::vec(
        prop::collection::btree_set(0u32..12, 1..=4),
        1..40,
    );
    (flows, caps).prop_map(|(flows, caps)| {
        let flows = flows
            .into_iter()
            .map(|links| links.into_iter().map(LinkId).collect())
            .collect();
        (flows, caps)
    })
}

/// The same instances at either unit or Gb/s capacity scale. The 1e10
/// scale is where float residue dwarfs any fixed epsilon — an
/// increment-scaled saturation test passes the unit-scale suite and
/// silently corrupts allocations here.
fn scaled_instances() -> impl Strategy<Value = (Vec<Vec<LinkId>>, Vec<f64>)> {
    (instances(), prop::sample::select(vec![1.0f64, 1e10])).prop_map(
        |((flows, caps), scale)| {
            (flows, caps.into_iter().map(|c| c * scale).collect())
        },
    )
}

/// Check the two max-min witnesses: feasibility (no link oversubscribed
/// beyond epsilon) and optimality (every flow crosses a saturated link,
/// otherwise its rate could be raised).
fn assert_genuinely_max_min(
    flows: &[Vec<LinkId>],
    caps: &[f64],
    rates: &[f64],
) -> Result<(), String> {
    let mut usage: BTreeMap<LinkId, f64> = BTreeMap::new();
    for (i, links) in flows.iter().enumerate() {
        prop_assert!(rates[i] >= 0.0, "flow {i} has negative rate {}", rates[i]);
        for &l in links {
            *usage.entry(l).or_insert(0.0) += rates[i];
        }
    }
    for (&l, &u) in &usage {
        prop_assert!(
            u <= caps[l.0 as usize] * (1.0 + 1e-6),
            "link {l:?} over capacity: {u} > {}",
            caps[l.0 as usize]
        );
    }
    for (i, links) in flows.iter().enumerate() {
        let blocked = links
            .iter()
            .any(|&l| usage[&l] >= caps[l.0 as usize] * (1.0 - 1e-6));
        prop_assert!(blocked, "flow {i} (rate {}) unbottlenecked", rates[i]);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn allocation_is_feasible((flows, caps) in instances()) {
        let rates = max_min_rates(&flows, |l| caps[l.0 as usize]);
        let mut usage: BTreeMap<LinkId, f64> = BTreeMap::new();
        for (i, links) in flows.iter().enumerate() {
            prop_assert!(rates[i] >= 0.0);
            for &l in links {
                *usage.entry(l).or_insert(0.0) += rates[i];
            }
        }
        for (&l, &u) in &usage {
            prop_assert!(
                u <= caps[l.0 as usize] * (1.0 + 1e-6),
                "link {l:?} over capacity: {u} > {}",
                caps[l.0 as usize]
            );
        }
    }

    #[test]
    fn every_flow_is_bottlenecked((flows, caps) in instances()) {
        // Max-min witness: each flow crosses at least one saturated link
        // (otherwise its rate could be raised, contradicting max-min).
        let rates = max_min_rates(&flows, |l| caps[l.0 as usize]);
        let mut usage: BTreeMap<LinkId, f64> = BTreeMap::new();
        for (i, links) in flows.iter().enumerate() {
            for &l in links {
                *usage.entry(l).or_insert(0.0) += rates[i];
            }
        }
        for (i, links) in flows.iter().enumerate() {
            let blocked = links.iter().any(|&l| {
                usage[&l] >= caps[l.0 as usize] * (1.0 - 1e-6)
            });
            prop_assert!(blocked, "flow {i} (rate {}) unbottlenecked", rates[i]);
        }
    }

    #[test]
    fn bottleneck_sharing_is_fair((flows, caps) in instances()) {
        // On any saturated link, no flow crossing it may have a rate lower
        // than another crossing flow unless the lower one is itself
        // bottlenecked elsewhere at that smaller rate. Weaker checkable
        // form: the minimum rate over the link's flows is >= the fair share
        // the link would give them after removing what *smaller* flows
        // (bottlenecked elsewhere) consume — here we just verify the
        // classic condition: a flow's rate equals the max over its links of
        // the "fair share at saturation" is not violated by more than eps
        // in the downward direction for the link that bottlenecks it.
        let rates = max_min_rates(&flows, |l| caps[l.0 as usize]);
        let mut by_link: BTreeMap<LinkId, Vec<usize>> = BTreeMap::new();
        for (i, links) in flows.iter().enumerate() {
            for &l in links {
                by_link.entry(l).or_default().push(i);
            }
        }
        for (&l, members) in &by_link {
            let usage: f64 = members.iter().map(|&i| rates[i]).sum();
            if usage >= caps[l.0 as usize] * (1.0 - 1e-6) {
                // Saturated link: the largest rate on it must not exceed
                // the equal share among flows at the max (others may be
                // smaller only because they're stuck elsewhere).
                let max_rate = members.iter().map(|&i| rates[i]).fold(0.0, f64::max);
                let smaller_sum: f64 = members
                    .iter()
                    .map(|&i| rates[i])
                    .filter(|&r| r < max_rate * (1.0 - 1e-9))
                    .sum();
                let at_max = members
                    .iter()
                    .filter(|&&i| rates[i] >= max_rate * (1.0 - 1e-9))
                    .count() as f64;
                let share = (caps[l.0 as usize] - smaller_sum) / at_max;
                prop_assert!(
                    max_rate <= share * (1.0 + 1e-6),
                    "link {l:?}: max rate {max_rate} exceeds fair share {share}"
                );
            }
        }
    }

    #[test]
    fn allocation_is_genuinely_max_min_at_both_scales(
        (flows, caps) in scaled_instances()
    ) {
        // The full max-min certificate — feasibility plus a saturated
        // bottleneck for every flow — must hold identically at unit and
        // Gb/s capacity scales.
        let rates = max_min_rates(&flows, |l| caps[l.0 as usize]);
        assert_genuinely_max_min(&flows, &caps, &rates)?;
    }

    #[test]
    fn dense_and_reference_solvers_agree(
        (flows, caps) in scaled_instances()
    ) {
        // Differential oracle: the dense WaterFiller and the tree-based
        // reference are independent implementations of the same
        // construction and must produce the same allocation.
        let dense = max_min_rates(&flows, |l| caps[l.0 as usize]);
        let reference = max_min_rates_reference(&flows, |l| caps[l.0 as usize]);
        for (i, (a, b)) in dense.iter().zip(&reference).enumerate() {
            prop_assert!(
                (a - b).abs() <= 1e-6 * a.abs().max(1.0),
                "flow {i}: dense {a} vs reference {b}"
            );
        }
    }

    #[test]
    fn removal_is_leximin_improving((flows, caps) in instances()) {
        // Pointwise monotonicity is FALSE for max-min (removing a flow can
        // cascade and shrink a third flow) — proptest found the
        // counterexample. The true theorem: the reduced instance's max-min
        // allocation leximin-dominates the old allocation restricted to the
        // surviving flows, because the restriction is feasible for the
        // reduced instance and max-min is leximin-optimal.
        prop_assume!(flows.len() >= 2);
        let rates_with = max_min_rates(&flows, |l| caps[l.0 as usize]);
        let without: Vec<Vec<LinkId>> = flows[..flows.len() - 1].to_vec();
        let rates_without = max_min_rates(&without, |l| caps[l.0 as usize]);
        let mut a: Vec<f64> = rates_without.clone();
        let mut b: Vec<f64> = rates_with[..without.len()].to_vec();
        a.sort_by(|x, y| x.partial_cmp(y).expect("no NaN"));
        b.sort_by(|x, y| x.partial_cmp(y).expect("no NaN"));
        // Leximin comparison on ascending-sorted vectors.
        for i in 0..a.len() {
            if (a[i] - b[i]).abs() > 1e-6 * b[i].max(1.0) {
                prop_assert!(
                    a[i] > b[i],
                    "leximin violated at index {i}: {} < {}",
                    a[i],
                    b[i]
                );
                return Ok(()); // strictly better at first difference: done
            }
        }
    }
}

proptest! {
    // Fewer cases: thousands of flows per instance.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn heavily_shared_gbps_link_stays_max_min(
        shared in 2048usize..6000,
        cap_frac in 0u32..8192,
        solo_cap in 2e10f64..8e10,
    ) {
        // The regime that broke the increment-scaled epsilon: thousands of
        // flows draining one ~10 Gb/s link leave float residue of order
        // count · ulp(capacity) ≈ 1e-2, far above 1e-9 · delta once delta
        // is a per-flow share. A missed saturation fires the freeze-all
        // fallback and pins the solo flow on the other link at the shared
        // flows' tiny rate. The max-min certificate must hold regardless.
        let cap0 = 1e10 + f64::from(cap_frac) / 4.0;
        let flows: Vec<Vec<LinkId>> = (0..shared)
            .map(|_| vec![LinkId(0)])
            .chain([vec![LinkId(1)]])
            .collect();
        let caps = [cap0, solo_cap];
        let rates = max_min_rates(&flows, |l| caps[l.0 as usize]);
        assert_genuinely_max_min(&flows, &caps, &rates)?;
        // In particular the solo flow actually fills its own link.
        prop_assert!(
            (rates[shared] / solo_cap - 1.0).abs() < 1e-6,
            "solo flow got {}, want ~{solo_cap}",
            rates[shared]
        );
    }
}
