#![warn(missing_docs)]
//! A deterministic, dependency-free subset of the `proptest` API.
//!
//! The real `proptest` crate cannot be fetched in offline builds, so this
//! shim reimplements exactly the surface the workspace's property tests use:
//! the [`proptest!`] macro, `prop_assert*` macros, range/tuple/collection
//! strategies, `any::<bool|u32|u64|usize>()`, `prop::sample::select`, `Just`,
//! and `.prop_map`.
//!
//! Two deliberate differences from upstream:
//!
//! 1. **Determinism**: case generation is seeded from the test's module path
//!    and name, never from OS entropy, so every run of the suite sees the
//!    same inputs — in line with the repository's determinism policy.
//! 2. **No shrinking**: a failing case panics immediately with its case
//!    index; re-running reproduces it exactly.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// How many cases [`proptest!`] runs per property.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property function.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The generator driving case construction: xoshiro256** seeded via
/// SplitMix64 from the property's name and the case index.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl TestRng {
    /// The generator for case `case` of the property named `name`.
    pub fn for_case(name: &str, case: u32) -> TestRng {
        let mut sm = fnv1a64(name.as_bytes()) ^ (u64::from(case)).wrapping_mul(0xa076_1d64_78bd_642f);
        TestRng {
            state: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// One raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
    }

    /// A uniform index in `[0, n)`; `n` must be nonzero.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index into empty domain");
        // Multiply-shift mapping of one draw onto [0, n).
        #[allow(clippy::cast_possible_truncation)]
        let i = ((u128::from(self.next_u64()) * n as u128) >> 64) as usize;
        i
    }
}

/// A value generator. The subset of `proptest::strategy::Strategy` the
/// workspace uses: generation plus [`Strategy::prop_map`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        #[allow(clippy::cast_possible_truncation)]
        let v = rng.next_u64() as u32;
        v
    }
}
impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}
impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        #[allow(clippy::cast_possible_truncation)]
        let v = rng.next_u64() as usize;
        v
    }
}

/// The `any::<T>()` strategy: unconstrained values of `T`.
pub struct Any<T>(PhantomData<T>);

/// Unconstrained values of `T`, like `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Numeric types whose ranges are strategies.
pub trait RangeValue: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`.
    fn half_open(rng: &mut TestRng, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn closed(rng: &mut TestRng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_range_value_uint {
    ($($ty:ty),*) => {$(
        impl RangeValue for $ty {
            fn half_open(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                let span = (hi as u128) - (lo as u128);
                assert!(span > 0, "empty range");
                #[allow(clippy::cast_possible_truncation)]
                let off = ((u128::from(rng.next_u64()) * span) >> 64) as $ty;
                lo + off
            }
            fn closed(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                if lo == <$ty>::MIN && hi == <$ty>::MAX {
                    #[allow(clippy::cast_possible_truncation)]
                    return rng.next_u64() as $ty;
                }
                let span = (hi as u128) - (lo as u128) + 1;
                #[allow(clippy::cast_possible_truncation)]
                let off = ((u128::from(rng.next_u64()) * span) >> 64) as $ty;
                lo + off
            }
        }
    )*};
}
impl_range_value_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_value_int {
    ($($ty:ty => $uty:ty),*) => {$(
        impl RangeValue for $ty {
            fn half_open(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                let span = (hi as $uty).wrapping_sub(lo as $uty);
                assert!(span > 0, "empty range");
                #[allow(clippy::cast_possible_truncation)]
                let off = ((u128::from(rng.next_u64()) * span as u128) >> 64) as $uty;
                lo.wrapping_add(off as $ty)
            }
            fn closed(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                if lo == <$ty>::MIN && hi == <$ty>::MAX {
                    #[allow(clippy::cast_possible_truncation)]
                    return rng.next_u64() as $ty;
                }
                let span = ((hi as $uty).wrapping_sub(lo as $uty)) as u128 + 1;
                #[allow(clippy::cast_possible_truncation)]
                let off = ((u128::from(rng.next_u64()) * span) >> 64) as $uty;
                lo.wrapping_add(off as $ty)
            }
        }
    )*};
}
impl_range_value_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl RangeValue for f64 {
    fn half_open(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
        lo + (hi - lo) * rng.next_f64()
    }
    fn closed(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
        lo + (hi - lo) * rng.next_f64()
    }
}

impl<T: RangeValue> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::half_open(rng, self.start, self.end)
    }
}

impl<T: RangeValue> Strategy for RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::closed(rng, *self.start(), *self.end())
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Collection sizes: a fixed count or a (half-open / inclusive) range.
pub trait SizeRange {
    /// Draw a concrete size.
    fn pick(&self, rng: &mut TestRng) -> usize;
}
impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}
impl SizeRange for Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        usize::half_open(rng, self.start, self.end)
    }
}
impl SizeRange for RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        usize::closed(rng, *self.start(), *self.end())
    }
}

/// `prop::collection`: vector and ordered-set strategies.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use std::collections::BTreeSet;

    /// A `Vec` of `size` elements drawn from `element`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `BTreeSet` whose size lands in `size` (best-effort when the element
    /// domain is too small to reach the drawn size).
    pub fn btree_set<S, R>(element: S, size: R) -> BTreeSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Ord,
        R: SizeRange,
    {
        BTreeSetStrategy { element, size }
    }

    /// Strategy returned by [`btree_set`].
    pub struct BTreeSetStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S, R> Strategy for BTreeSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Ord,
        R: SizeRange,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            // Bounded attempts: duplicates may keep small domains short.
            for _ in 0..(target.saturating_mul(32).max(32)) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }
}

/// `prop::sample`: choosing among explicit candidates.
pub mod sample {
    use super::{Strategy, TestRng};

    /// Uniformly select one of the given candidates.
    pub fn select<T: Clone>(candidates: Vec<T>) -> Select<T> {
        assert!(!candidates.is_empty(), "select from empty candidates");
        Select { candidates }
    }

    /// Strategy returned by [`select`].
    #[derive(Clone, Debug)]
    pub struct Select<T> {
        candidates: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.candidates[rng.index(self.candidates.len())].clone()
        }
    }
}

/// `prop::option`: optional values, like upstream's `proptest::option`.
pub mod option {
    use super::{Strategy, TestRng};

    /// `Some` of a value from `inner` three quarters of the time, `None`
    /// otherwise (upstream defaults to a 75% `Some` weight too).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Strategy returned by [`of`].
    #[derive(Clone, Debug)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 3 == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// The `prop::` namespace mirrored from upstream.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::sample;
}

/// Glue that lets `proptest!` bodies either end in `()` (plain assertions)
/// or return `Result<(), String>` (upstream's `return Ok(())` idiom).
pub trait CaseOutcome {
    /// Normalise the body's value to the closure's `Result` return type.
    fn into_case_result(self) -> Result<(), String>;
}

impl CaseOutcome for () {
    fn into_case_result(self) -> Result<(), String> {
        Ok(())
    }
}

impl CaseOutcome for Result<(), String> {
    fn into_case_result(self) -> Result<(), String> {
        self
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        Just, ProptestConfig, Strategy, TestRng,
    };
}

/// Assert inside a property; panics (no shrinking) with the failing message.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skip the rest of the current case when the precondition does not hold.
/// The case body runs inside a closure, so an early `return` abandons just
/// this case (no shrinking, no rejection bookkeeping).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Define deterministic property tests.
///
/// Supports the upstream form used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0u64..100, (a, b) in my_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    (@impl $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..cfg.cases {
                    let mut rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    // The body runs in a closure returning `Result<(), String>`
                    // so upstream idioms (`return Ok(())`, `prop_assume!`)
                    // type-check; `CaseOutcome` coerces both `()` and
                    // `Result` bodies.
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(
                            || -> ::std::result::Result<(), ::std::string::String> {
                                $crate::CaseOutcome::into_case_result($body)
                            },
                        ),
                    );
                    if let ::std::result::Result::Ok(::std::result::Result::Err(msg)) = &outcome {
                        ::std::panic!("property `{}` returned Err at case {}: {}", stringify!($name), case, msg);
                    }
                    if let ::std::result::Result::Err(payload) = outcome {
                        ::std::eprintln!(
                            "proptest shim: property `{}` failed at case {}/{} (deterministic; rerun reproduces it)",
                            stringify!($name), case, cfg.cases,
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::ProptestConfig::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::for_case("x", 0);
        let mut b = TestRng::for_case("x", 0);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("x", 1);
        assert_ne!(TestRng::for_case("x", 0).next_u64(), c.next_u64());
    }

    #[test]
    fn strategies_cover_shapes() {
        let mut rng = TestRng::for_case("shapes", 0);
        for _ in 0..200 {
            let v = (0usize..10).generate(&mut rng);
            assert!(v < 10);
            let w = (3u64..=5).generate(&mut rng);
            assert!((3..=5).contains(&w));
            let t = (0u32..4, any::<bool>(), -2i64..3).generate(&mut rng);
            assert!(t.0 < 4 && (-2..3).contains(&t.2));
            let xs = prop::collection::vec(0u8..niche(), 1..7).generate(&mut rng);
            assert!((1..7).contains(&xs.len()));
            let set = prop::collection::btree_set(0u32..12, 1..=4).generate(&mut rng);
            assert!(!set.is_empty() && set.len() <= 4);
            let k = prop::sample::select(vec![4usize, 6, 8]).generate(&mut rng);
            assert!([4, 6, 8].contains(&k));
            let j = Just(17).generate(&mut rng);
            assert_eq!(j, 17);
            let m = (0u8..10).prop_map(|x| u32::from(x) * 2).generate(&mut rng);
            assert!(m < 20 && m % 2 == 0);
        }
    }

    fn niche() -> u8 {
        200
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro itself compiles with patterns, tuples and trailing commas.
        #[test]
        fn macro_smoke((a, b) in (0usize..5, 0usize..5), flip in any::<bool>(),) {
            prop_assert!(a < 5 && b < 5);
            if flip {
                prop_assert_ne!(a + 10, b);
            } else {
                prop_assert_eq!(a + b, b + a);
            }
        }
    }
}
