//! Property-based tests of the simulation engine and statistics helpers.

use proptest::prelude::*;

use sharebackup_sim::{Cdf, Engine, Histogram, SimRng, Summary, Time};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Events always come out in (time, insertion) order, regardless of the
    /// insertion order, and the clock matches each event's timestamp.
    #[test]
    fn engine_delivery_is_time_then_fifo(times in prop::collection::vec(0u64..1000, 1..200)) {
        let mut engine: Engine<(u64, usize)> = Engine::new();
        for (seq, &t) in times.iter().enumerate() {
            engine.schedule(Time::from_nanos(t), (t, seq));
        }
        let mut seen: Vec<(u64, u64, usize)> = Vec::new();
        engine.run(&mut |_: &mut Engine<(u64, usize)>, now: Time, ev: (u64, usize)| {
            seen.push((now.as_nanos(), ev.0, ev.1));
        });
        for &(now, t, _) in &seen {
            prop_assert_eq!(now, t, "clock must equal the event timestamp");
        }
        // Sorted by (time, insertion sequence).
        for w in seen.windows(2) {
            prop_assert!(w[0].1 < w[1].1 || (w[0].1 == w[1].1 && w[0].2 < w[1].2));
        }
        prop_assert_eq!(seen.len(), times.len());
    }

    /// The horizon never lets a later event through and always advances the
    /// clock exactly to the horizon when one is pending beyond it.
    #[test]
    fn horizon_is_exact(times in prop::collection::vec(0u64..1000, 1..100), h in 0u64..1000) {
        let mut engine: Engine<u64> = Engine::new();
        for &t in &times {
            engine.schedule(Time::from_nanos(t), t);
        }
        engine.set_horizon(Time::from_nanos(h));
        let mut max_seen = None;
        engine.run(&mut |_: &mut Engine<u64>, _now: Time, ev: u64| {
            max_seen = Some(max_seen.unwrap_or(0).max(ev));
        });
        if let Some(m) = max_seen {
            prop_assert!(m <= h);
        }
        let beyond = times.iter().filter(|&&t| t > h).count();
        prop_assert_eq!(engine.pending(), beyond);
    }

    /// Summary invariants: min ≤ p50 ≤ p90 ≤ p99 ≤ max and min ≤ mean ≤ max.
    #[test]
    fn summary_is_ordered(samples in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let s = Summary::of(&samples).expect("nonempty");
        prop_assert!(s.min <= s.p50 + 1e-9);
        prop_assert!(s.p50 <= s.p90 + 1e-9);
        prop_assert!(s.p90 <= s.p99 + 1e-9);
        prop_assert!(s.p99 <= s.max + 1e-9);
        prop_assert!(s.min <= s.mean + 1e-9 && s.mean <= s.max + 1e-9);
    }

    /// CDF: fraction_at_most is monotone and hits 0/1 at the extremes.
    #[test]
    fn cdf_is_monotone(samples in prop::collection::vec(0f64..100.0, 1..100)) {
        let cdf = Cdf::from_samples(samples.iter().copied());
        let mut last = 0.0;
        for i in 0..=100 {
            let f = cdf.fraction_at_most(i as f64);
            prop_assert!(f >= last - 1e-12);
            last = f;
        }
        prop_assert_eq!(cdf.fraction_at_most(-1.0), 0.0);
        prop_assert_eq!(cdf.fraction_at_most(101.0), 1.0);
        // Quantile is within sample range.
        let q = cdf.quantile(0.5);
        prop_assert!(q >= cdf.quantile(0.0) && q <= cdf.quantile(1.0));
    }

    /// Histogram conserves counts.
    #[test]
    fn histogram_conserves(samples in prop::collection::vec(-10f64..110.0, 0..200)) {
        let mut h = Histogram::new(0.0, 100.0, 10);
        for &s in &samples {
            h.record(s);
        }
        let binned: u64 = h.bins().iter().sum();
        prop_assert_eq!(
            binned + h.underflow() + h.overflow(),
            samples.len() as u64
        );
        prop_assert_eq!(h.count(), samples.len() as u64);
    }

    /// Seeded RNG streams are reproducible and children independent.
    #[test]
    fn rng_reproducibility(seed in any::<u64>()) {
        let mut a = SimRng::seed_from_u64(seed);
        let mut b = SimRng::seed_from_u64(seed);
        for _ in 0..32 {
            prop_assert_eq!(a.u64(), b.u64());
        }
        let r1 = SimRng::seed_from_u64(seed);
        let mut c1 = r1.child("x");
        let r2 = SimRng::seed_from_u64(seed);
        let mut c2 = r2.child("x");
        for _ in 0..8 {
            prop_assert_eq!(c1.u64(), c2.u64());
        }
    }
}
