//! Virtual time for the simulation: nanosecond-resolution instants and spans.
//!
//! [`Time`] is an instant on the simulation clock; [`Duration`] is a span
//! between instants. Both wrap a `u64` nanosecond count, which covers
//! simulations of up to ~584 years — comfortably more than the 5-minute trace
//! partitions the paper runs.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Round a float nanosecond count to a whole one — the single audited place
/// where fractional time becomes ticks.
///
/// # Panics
/// Panics on NaN, infinite, or negative input. Those arise from pathological
/// rate arithmetic (e.g. `remaining / rate` with a corrupted rate) and used
/// to saturate silently — NaN and negatives to `Time(0)` — tripping the
/// engine's scheduled-in-the-past panic far from the root cause.
fn ns_from_f64(ns: f64) -> u64 {
    assert!(
        ns.is_finite() && ns >= 0.0,
        "time conversion needs a finite, non-negative nanosecond count, got {ns}"
    );
    // Validated finite and non-negative above; a count beyond u64::MAX
    // (~584 years) saturates to the maximal horizon under `as` semantics.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    {
        ns.round() as u64
    }
}

/// An instant on the simulation clock, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

impl Time {
    /// The start of the simulation.
    pub const ZERO: Time = Time(0);
    /// The largest representable instant; useful as an "infinite" horizon.
    pub const MAX: Time = Time(u64::MAX);

    /// Construct from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Time(ns)
    }
    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Time(us * 1_000)
    }
    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Time(ms * 1_000_000)
    }
    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Time(s * 1_000_000_000)
    }
    /// Construct from fractional seconds (rounds to nearest nanosecond).
    ///
    /// # Panics
    /// Panics on NaN, infinite, or negative input.
    pub fn from_secs_f64(s: f64) -> Self {
        Time(ns_from_f64(s * 1e9))
    }

    /// The raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    /// This instant expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
    /// Span from an earlier instant to this one.
    ///
    /// # Panics
    /// Panics in debug builds if `earlier` is after `self`.
    pub fn since(self, earlier: Time) -> Duration {
        debug_assert!(earlier <= self, "time went backwards");
        Duration(self.0 - earlier.0)
    }
    /// Saturating difference: zero if `earlier` is after `self`.
    pub fn saturating_since(self, earlier: Time) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// The empty span.
    pub const ZERO: Duration = Duration(0);
    /// The largest representable span.
    pub const MAX: Duration = Duration(u64::MAX);

    /// Construct from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Duration(ns)
    }
    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Duration(us * 1_000)
    }
    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000_000)
    }
    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000_000)
    }
    /// Construct from fractional seconds (rounds to nearest nanosecond).
    ///
    /// # Panics
    /// Panics on NaN, infinite, or negative input.
    pub fn from_secs_f64(s: f64) -> Self {
        Duration(ns_from_f64(s * 1e9))
    }

    /// The raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    /// This span expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
    /// This span expressed in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
    /// Multiply by a non-negative float, rounding to nearest nanosecond.
    ///
    /// # Panics
    /// Panics if `factor` is NaN, infinite, or negative.
    pub fn mul_f64(self, factor: f64) -> Duration {
        Duration(ns_from_f64(self.0 as f64 * factor))
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    fn add(self, rhs: Duration) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }
}
impl AddAssign<Duration> for Time {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}
impl Sub<Duration> for Time {
    type Output = Time;
    fn sub(self, rhs: Duration) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }
}
impl Sub<Time> for Time {
    type Output = Duration;
    fn sub(self, rhs: Time) -> Duration {
        self.since(rhs)
    }
}
impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }
}
impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}
impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        debug_assert!(rhs <= self, "duration underflow");
        Duration(self.0 - rhs.0)
    }
}
impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        *self = *self - rhs;
    }
}
impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0.saturating_mul(rhs))
    }
}
impl Div<u64> for Duration {
    type Output = Duration;
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T+{}", Duration(self.0))
    }
}
impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}
impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns == 0 {
            write!(f, "0s")
        } else if ns.is_multiple_of(1_000_000_000) {
            write!(f, "{}s", ns / 1_000_000_000)
        } else if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}
impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Time::from_secs(1), Time::from_millis(1000));
        assert_eq!(Time::from_millis(1), Time::from_micros(1000));
        assert_eq!(Time::from_micros(1), Time::from_nanos(1000));
        assert_eq!(Duration::from_secs(2), Duration::from_nanos(2_000_000_000));
    }

    #[test]
    fn arithmetic() {
        let t = Time::from_secs(1) + Duration::from_millis(500);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert_eq!(t - Time::from_secs(1), Duration::from_millis(500));
        assert_eq!(Duration::from_secs(1) * 3, Duration::from_secs(3));
        assert_eq!(Duration::from_secs(3) / 3, Duration::from_secs(1));
    }

    #[test]
    fn float_round_trip() {
        let d = Duration::from_secs_f64(0.123456789);
        assert!((d.as_secs_f64() - 0.123456789).abs() < 1e-9);
        let t = Time::from_secs_f64(2.5);
        assert_eq!(t, Time::from_millis(2500));
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!(Time::ZERO - Duration::from_secs(1), Time::ZERO);
        assert_eq!(
            Time::from_secs(1).saturating_since(Time::from_secs(2)),
            Duration::ZERO
        );
        assert_eq!(Time::MAX + Duration::from_secs(1), Time::MAX);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Duration::from_secs(5).to_string(), "5s");
        assert_eq!(Duration::from_millis(1).to_string(), "1.000ms");
        assert_eq!(Duration::from_nanos(70).to_string(), "70ns");
        assert_eq!(Duration::from_micros(40).to_string(), "40.000us");
        assert_eq!(Duration::ZERO.to_string(), "0s");
    }

    #[test]
    fn mul_f64_rounds() {
        assert_eq!(Duration::from_nanos(10).mul_f64(0.25), Duration::from_nanos(3));
        assert_eq!(Duration::from_secs(1).mul_f64(2.0), Duration::from_secs(2));
    }

    #[test]
    #[should_panic(expected = "finite, non-negative nanosecond count")]
    fn nan_seconds_panic_at_the_conversion() {
        let _ = Duration::from_secs_f64(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite, non-negative nanosecond count")]
    fn infinite_seconds_panic_at_the_conversion() {
        let _ = Time::from_secs_f64(f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "finite, non-negative nanosecond count")]
    fn negative_seconds_panic_at_the_conversion() {
        let _ = Duration::from_secs_f64(-1.0);
    }

    #[test]
    fn huge_finite_seconds_saturate_to_the_max_horizon() {
        // ~584 years fits; anything finite beyond clamps to Time::MAX
        // rather than wrapping.
        assert_eq!(Time::from_secs_f64(1e30), Time::MAX);
    }
}
