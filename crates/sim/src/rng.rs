//! Deterministic randomness for simulations.
//!
//! All stochastic behaviour (workload generation, failure injection, ECMP
//! hashing salt) flows through a [`SimRng`] seeded explicitly per experiment,
//! so every run is reproducible. Child RNGs can be split off by label, which
//! decouples the random streams of independent subsystems: adding a draw in
//! the workload generator does not perturb the failure injector.
//!
//! The generator is a self-contained xoshiro256** seeded through SplitMix64,
//! so the whole workspace builds without any external randomness crate and
//! the streams are bit-identical across platforms and toolchains.

use std::ops::{Range, RangeInclusive};

/// A seeded pseudo-random number generator for simulation use.
///
/// Internally a xoshiro256** generator whose 256-bit state is expanded from
/// the 64-bit seed with SplitMix64. The creation seed is retained so that
/// [`SimRng::child`] streams depend only on `(seed, label)` — never on how
/// many values the parent has produced.
#[derive(Clone, Debug)]
pub struct SimRng {
    state: [u64; 4],
    seed: u64,
}

/// SplitMix64 step: the standard state-expansion mixer.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { state, seed }
    }

    /// Derive an independent child generator for the subsystem named `label`.
    ///
    /// The child stream depends only on the parent's seed and the label, not
    /// on how many values the parent has produced, so independent subsystems
    /// keep decoupled streams no matter the split order.
    pub fn child(&self, label: &str) -> SimRng {
        let h = fnv1a64(label.as_bytes());
        SimRng::seed_from_u64(h ^ self.seed.rotate_left(31))
    }

    /// Uniform sample from a range, e.g. `rng.range(0..10)` or `rng.range(0..=9)`.
    pub fn range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// A uniform f64 in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 high bits of the stream give a uniform dyadic in [0, 1).
        (self.u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
    }

    /// A uniform u64 (one raw xoshiro256** output).
    pub fn u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponentially distributed sample with the given mean.
    ///
    /// Used for Poisson arrival processes (coflow arrivals, failure events).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0, "exponential mean must be positive");
        let u: f64 = self.f64();
        // 1-u is in (0, 1], so ln is finite and non-positive.
        -mean * (1.0 - u).ln()
    }

    /// Pareto-distributed sample with scale `xm > 0` and shape `alpha > 0`.
    ///
    /// Heavy-tailed sizes (coflow bytes) follow this family.
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        debug_assert!(xm > 0.0 && alpha > 0.0);
        let u: f64 = self.f64();
        xm / (1.0 - u).powf(1.0 / alpha)
    }

    /// Choose a uniformly random element of a slice.
    ///
    /// # Panics
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        let i = self.range(0..items.len());
        &items[i]
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range(0..=i);
            items.swap(i, j);
        }
    }

    /// Sample `count` distinct indices from `0..n` (reservoir-free; `count <= n`).
    ///
    /// # Panics
    /// Panics if `count > n`.
    pub fn sample_indices(&mut self, n: usize, count: usize) -> Vec<usize> {
        assert!(count <= n, "cannot sample {count} of {n}");
        // Partial Fisher–Yates over an index vector.
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..count {
            let j = self.range(i..n);
            idx.swap(i, j);
        }
        idx.truncate(count);
        idx
    }
}

/// Types that [`SimRng::range`] can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from the half-open interval `[lo, hi)`.
    fn sample_half_open(rng: &mut SimRng, lo: Self, hi: Self) -> Self;
    /// Uniform sample from the closed interval `[lo, hi]`.
    fn sample_inclusive(rng: &mut SimRng, lo: Self, hi: Self) -> Self;
}

/// Range shapes accepted by [`SimRng::range`].
pub trait SampleRange<T> {
    /// Draw one uniform sample from this range.
    fn sample_from(self, rng: &mut SimRng) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from(self, rng: &mut SimRng) -> T {
        assert!(self.start < self.end, "empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from(self, rng: &mut SimRng) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Multiply-shift bounded sample: maps one u64 draw onto `[0, span)`.
fn bounded(rng: &mut SimRng, span: u128) -> u128 {
    debug_assert!(span > 0);
    (u128::from(rng.u64()) * span) >> 64
}

macro_rules! impl_sample_uniform_uint {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_half_open(rng: &mut SimRng, lo: Self, hi: Self) -> Self {
                let span = (hi as u128) - (lo as u128);
                let draw = bounded(rng, span);
                // `draw < span <= Self::MAX as u128`, so the narrowing is exact.
                #[allow(clippy::cast_possible_truncation)]
                let off = draw as $ty;
                lo + off
            }
            fn sample_inclusive(rng: &mut SimRng, lo: Self, hi: Self) -> Self {
                if lo == <$ty>::MIN && hi == <$ty>::MAX {
                    #[allow(clippy::cast_possible_truncation)]
                    return rng.u64() as $ty;
                }
                let span = (hi as u128) - (lo as u128) + 1;
                let draw = bounded(rng, span);
                #[allow(clippy::cast_possible_truncation)]
                let off = draw as $ty;
                lo + off
            }
        }
    )*};
}
impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($ty:ty => $uty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_half_open(rng: &mut SimRng, lo: Self, hi: Self) -> Self {
                // Shift into the unsigned domain to measure the span.
                let span = (hi as $uty).wrapping_sub(lo as $uty);
                let draw = bounded(rng, span as u128);
                #[allow(clippy::cast_possible_truncation)]
                let off = draw as $uty;
                lo.wrapping_add(off as $ty)
            }
            fn sample_inclusive(rng: &mut SimRng, lo: Self, hi: Self) -> Self {
                if lo == <$ty>::MIN && hi == <$ty>::MAX {
                    #[allow(clippy::cast_possible_truncation)]
                    return rng.u64() as $ty;
                }
                let span = (hi as $uty).wrapping_sub(lo as $uty) as u128 + 1;
                let draw = bounded(rng, span);
                #[allow(clippy::cast_possible_truncation)]
                let off = draw as $uty;
                lo.wrapping_add(off as $ty)
            }
        }
    )*};
}
impl_sample_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleUniform for f64 {
    fn sample_half_open(rng: &mut SimRng, lo: Self, hi: Self) -> Self {
        lo + (hi - lo) * rng.f64()
    }
    fn sample_inclusive(rng: &mut SimRng, lo: Self, hi: Self) -> Self {
        // The closed/half-open distinction is immaterial at f64 resolution.
        lo + (hi - lo) * rng.f64()
    }
}

/// FNV-1a 64-bit hash: a stable, dependency-free hash used wherever the
/// simulation needs deterministic hashing across runs and platforms (ECMP
/// flow hashing, child-RNG derivation).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Hash a sequence of u64 words with FNV-1a (for ECMP tuple hashing).
pub fn fnv1a64_words(words: &[u64]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &w in words {
        for i in 0..8 {
            h ^= (w >> (i * 8)) & 0xff;
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn children_are_independent_of_sibling_labels() {
        let root = SimRng::seed_from_u64(7);
        let mut w1 = root.child("workload");
        let mut f1 = root.child("failures");
        // Recreate in the opposite order — streams must be identical.
        let root2 = SimRng::seed_from_u64(7);
        let mut f2 = root2.child("failures");
        let mut w2 = root2.child("workload");
        for _ in 0..16 {
            assert_eq!(w1.u64(), w2.u64());
            assert_eq!(f1.u64(), f2.u64());
        }
    }

    #[test]
    fn children_survive_parent_consumption() {
        let mut root = SimRng::seed_from_u64(11);
        let mut before = root.child("x");
        for _ in 0..100 {
            root.u64();
        }
        let mut after = root.child("x");
        for _ in 0..16 {
            assert_eq!(before.u64(), after.u64());
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::seed_from_u64(3);
        let n = 20_000;
        let mean = 5.0;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let got = sum / f64::from(n);
        assert!((got - mean).abs() / mean < 0.05, "mean {got} vs {mean}");
    }

    #[test]
    fn pareto_respects_scale() {
        let mut rng = SimRng::seed_from_u64(4);
        for _ in 0..1000 {
            assert!(rng.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn range_stays_in_bounds() {
        let mut rng = SimRng::seed_from_u64(12);
        for _ in 0..10_000 {
            let v = rng.range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
        // Full-width inclusive range must not overflow.
        let _ = rng.range(0u64..=u64::MAX);
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = SimRng::seed_from_u64(13);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all bucket values reachable");
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = SimRng::seed_from_u64(5);
        let got = rng.sample_indices(50, 20);
        assert_eq!(got.len(), 20);
        let mut sorted = got.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20, "indices must be distinct");
        assert!(got.iter().all(|&i| i < 50));
    }

    #[test]
    fn sample_all_indices_is_permutation() {
        let mut rng = SimRng::seed_from_u64(6);
        let mut got = rng.sample_indices(10, 10);
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn fnv_is_stable() {
        // Golden values pin the hash across refactors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64_words(&[0]), fnv1a64(&[0u8; 8]));
    }

    #[test]
    fn xoshiro_reference_stream() {
        // Golden values pin the generator across refactors: xoshiro256**
        // seeded via SplitMix64(1) must match the published algorithms.
        let mut rng = SimRng::seed_from_u64(1);
        let first: Vec<u64> = (0..3).map(|_| rng.u64()).collect();
        let mut again = SimRng::seed_from_u64(1);
        let repeat: Vec<u64> = (0..3).map(|_| again.u64()).collect();
        assert_eq!(first, repeat);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::seed_from_u64(8);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from_u64(9);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }
}
