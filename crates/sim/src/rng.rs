//! Deterministic randomness for simulations.
//!
//! All stochastic behaviour (workload generation, failure injection, ECMP
//! hashing salt) flows through a [`SimRng`] seeded explicitly per experiment,
//! so every run is reproducible. Child RNGs can be split off by label, which
//! decouples the random streams of independent subsystems: adding a draw in
//! the workload generator does not perturb the failure injector.

use rand::distributions::uniform::{SampleRange, SampleUniform};
use rand::{Rng, RngCore, SeedableRng};

/// A seeded pseudo-random number generator for simulation use.
#[derive(Clone, Debug)]
pub struct SimRng {
    inner: rand::rngs::StdRng,
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: rand::rngs::StdRng::seed_from_u64(seed),
        }
    }

    /// Derive an independent child generator for the subsystem named `label`.
    ///
    /// The child stream depends only on the parent's seed and the label, not
    /// on how many values the parent has produced, as long as children are
    /// split before the parent is used for sampling.
    pub fn child(&self, label: &str) -> SimRng {
        // Mix the label into a fresh seed with FNV-1a over the label bytes.
        let mut h = fnv1a64(label.as_bytes());
        h ^= self.base_hint();
        SimRng::seed_from_u64(h)
    }

    // A stable per-instance hint used for child derivation. StdRng exposes no
    // seed readback, so we clone and draw one value — the clone leaves `self`
    // untouched.
    fn base_hint(&self) -> u64 {
        self.inner.clone().next_u64()
    }

    /// Uniform sample from a range, e.g. `rng.range(0..10)`.
    pub fn range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        self.inner.gen_range(range)
    }

    /// A uniform f64 in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// A uniform u64.
    pub fn u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponentially distributed sample with the given mean.
    ///
    /// Used for Poisson arrival processes (coflow arrivals, failure events).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0, "exponential mean must be positive");
        let u: f64 = self.f64();
        // 1-u is in (0, 1], so ln is finite and non-positive.
        -mean * (1.0 - u).ln()
    }

    /// Pareto-distributed sample with scale `xm > 0` and shape `alpha > 0`.
    ///
    /// Heavy-tailed sizes (coflow bytes) follow this family.
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        debug_assert!(xm > 0.0 && alpha > 0.0);
        let u: f64 = self.f64();
        xm / (1.0 - u).powf(1.0 / alpha)
    }

    /// Choose a uniformly random element of a slice.
    ///
    /// # Panics
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        let i = self.range(0..items.len());
        &items[i]
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range(0..=i);
            items.swap(i, j);
        }
    }

    /// Sample `count` distinct indices from `0..n` (reservoir-free; `count <= n`).
    ///
    /// # Panics
    /// Panics if `count > n`.
    pub fn sample_indices(&mut self, n: usize, count: usize) -> Vec<usize> {
        assert!(count <= n, "cannot sample {count} of {n}");
        // Partial Fisher–Yates over an index vector.
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..count {
            let j = self.range(i..n);
            idx.swap(i, j);
        }
        idx.truncate(count);
        idx
    }
}

/// FNV-1a 64-bit hash: a stable, dependency-free hash used wherever the
/// simulation needs deterministic hashing across runs and platforms (ECMP
/// flow hashing, child-RNG derivation).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Hash a sequence of u64 words with FNV-1a (for ECMP tuple hashing).
pub fn fnv1a64_words(words: &[u64]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &w in words {
        for i in 0..8 {
            h ^= (w >> (i * 8)) & 0xff;
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn children_are_independent_of_sibling_labels() {
        let root = SimRng::seed_from_u64(7);
        let mut w1 = root.child("workload");
        let mut f1 = root.child("failures");
        // Recreate in the opposite order — streams must be identical.
        let root2 = SimRng::seed_from_u64(7);
        let mut f2 = root2.child("failures");
        let mut w2 = root2.child("workload");
        for _ in 0..16 {
            assert_eq!(w1.u64(), w2.u64());
            assert_eq!(f1.u64(), f2.u64());
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::seed_from_u64(3);
        let n = 20_000;
        let mean = 5.0;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let got = sum / n as f64;
        assert!((got - mean).abs() / mean < 0.05, "mean {got} vs {mean}");
    }

    #[test]
    fn pareto_respects_scale() {
        let mut rng = SimRng::seed_from_u64(4);
        for _ in 0..1000 {
            assert!(rng.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = SimRng::seed_from_u64(5);
        let got = rng.sample_indices(50, 20);
        assert_eq!(got.len(), 20);
        let mut sorted = got.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20, "indices must be distinct");
        assert!(got.iter().all(|&i| i < 50));
    }

    #[test]
    fn sample_all_indices_is_permutation() {
        let mut rng = SimRng::seed_from_u64(6);
        let mut got = rng.sample_indices(10, 10);
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn fnv_is_stable() {
        // Golden values pin the hash across refactors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64_words(&[0]), fnv1a64(&[0u8; 8]));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::seed_from_u64(8);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from_u64(9);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }
}
