//! Statistics helpers for experiment output: summaries, CDFs, histograms.
//!
//! Every figure in the paper is either a CDF (Fig. 1c), a rate curve
//! (Fig. 1a/1b), or a bar chart (Fig. 5); these types carry the sample sets
//! and render the series the benchmark harness prints.

use std::fmt;

/// Five-number-style summary of a sample set.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest sample.
    pub min: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Largest sample.
    pub max: f64,
}

impl Summary {
    /// Summarize a sample set. Returns `None` for an empty set.
    pub fn of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let sum: f64 = sorted.iter().sum();
        Some(Summary {
            count: sorted.len(),
            mean: sum / sorted.len() as f64,
            min: sorted[0],
            p50: percentile_sorted(&sorted, 0.50),
            p90: percentile_sorted(&sorted, 0.90),
            p99: percentile_sorted(&sorted, 0.99),
            // lint:allow(unwrap) — the empty case returned None above
            max: *sorted.last().expect("nonempty"),
        })
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} min={:.4} p50={:.4} p90={:.4} p99={:.4} max={:.4}",
            self.count, self.mean, self.min, self.p50, self.p90, self.p99, self.max
        )
    }
}

/// Nearest-rank-with-interpolation percentile over a pre-sorted slice.
///
/// `q` is in `[0, 1]`. Uses linear interpolation between closest ranks, the
/// same convention as numpy's default.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    // pos is in [0, len-1], so floor/ceil fit in usize by construction.
    #[allow(clippy::cast_possible_truncation)]
    let lo = pos.floor() as usize;
    #[allow(clippy::cast_possible_truncation)]
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// An empirical cumulative distribution function over a sample set.
#[derive(Clone, Debug)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build a CDF from samples. NaN samples are rejected.
    ///
    /// # Panics
    /// Panics if any sample is NaN.
    pub fn from_samples(samples: impl IntoIterator<Item = f64>) -> Cdf {
        let mut sorted: Vec<f64> = samples.into_iter().collect();
        assert!(sorted.iter().all(|x| !x.is_nan()), "NaN sample in CDF");
        sorted.sort_by(f64::total_cmp);
        Cdf { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF has no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples `<= x`.
    pub fn fraction_at_most(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&s| s <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (inverse CDF), `q` in `[0, 1]`.
    ///
    /// # Panics
    /// Panics on an empty CDF.
    pub fn quantile(&self, q: f64) -> f64 {
        percentile_sorted(&self.sorted, q)
    }

    /// Render the CDF as `points` evenly spaced (quantile, value) pairs,
    /// suitable for plotting. Includes both endpoints.
    pub fn series(&self, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2, "need at least both endpoints");
        (0..points)
            .map(|i| {
                let q = i as f64 / (points - 1) as f64;
                (q, self.quantile(q))
            })
            .collect()
    }

    /// The underlying sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }
}

/// A fixed-bin histogram over `[lo, hi)`, with underflow/overflow buckets.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// A histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(lo < hi, "invalid histogram range");
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            // x is in [lo, hi), so the quotient is in [0, bins); clamped
            // below anyway for the exact-upper-edge float case.
            #[allow(clippy::cast_possible_truncation)]
            let idx = ((x - self.lo) / width) as usize;
            // Floating point can land exactly on the upper edge; clamp.
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total samples recorded, including under/overflow.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Per-bin counts (excluding under/overflow).
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// (bin center, count) pairs for plotting.
    pub fn series(&self) -> Vec<(f64, u64)> {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + (i as f64 + 0.5) * width, c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_set() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).expect("nonempty");
        assert_eq!(s.count, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.p50, 3.0);
        assert_eq!(s.max, 5.0);
    }

    #[test]
    fn summary_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn percentile_interpolates() {
        let sorted = [0.0, 10.0];
        assert_eq!(percentile_sorted(&sorted, 0.5), 5.0);
        assert_eq!(percentile_sorted(&sorted, 0.0), 0.0);
        assert_eq!(percentile_sorted(&sorted, 1.0), 10.0);
    }

    #[test]
    fn cdf_fraction_and_quantile_are_inverses() {
        let cdf = Cdf::from_samples((1..=100).map(|i| i as f64));
        assert_eq!(cdf.fraction_at_most(50.0), 0.5);
        assert_eq!(cdf.fraction_at_most(0.0), 0.0);
        assert_eq!(cdf.fraction_at_most(100.0), 1.0);
        assert!((cdf.quantile(0.5) - 50.5).abs() < 1e-9);
    }

    #[test]
    fn cdf_series_endpoints() {
        let cdf = Cdf::from_samples([3.0, 1.0, 2.0]);
        let series = cdf.series(3);
        assert_eq!(series[0], (0.0, 1.0));
        assert_eq!(series[2], (1.0, 3.0));
    }

    #[test]
    fn histogram_bins_and_flows() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.record(i as f64 + 0.5);
        }
        h.record(-1.0);
        h.record(10.0);
        h.record(99.0);
        assert_eq!(h.count(), 13);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert!(h.bins().iter().all(|&c| c == 1));
    }

    #[test]
    fn histogram_series_centers() {
        let mut h = Histogram::new(0.0, 2.0, 2);
        h.record(0.5);
        let s = h.series();
        assert_eq!(s, vec![(0.5, 1), (1.5, 0)]);
    }
}
