#![warn(missing_docs)]
//! # sharebackup-sim
//!
//! A small, deterministic discrete-event simulation engine.
//!
//! Everything in the ShareBackup reproduction — the flow-level simulator, the
//! packet-level simulator, and the control plane — runs on this engine. The
//! design goals follow the smoltcp philosophy: simplicity and robustness over
//! cleverness, with no async runtime (a discrete-event simulator is CPU-bound;
//! an async runtime would add nothing but nondeterminism).
//!
//! Key guarantees:
//!
//! * **Virtual time** is a `u64` count of nanoseconds ([`Time`]). There is no
//!   wall-clock anywhere in the simulation.
//! * **Determinism**: events scheduled for the same instant are delivered in
//!   the order they were scheduled (a monotone sequence number breaks ties),
//!   and all randomness flows through explicitly seeded [`SimRng`]s. Two runs
//!   with the same seed produce byte-identical results.
//!
//! ## Example
//!
//! ```
//! use sharebackup_sim::{Duration, Engine, Time, World};
//!
//! enum Ev { Ping(u32) }
//!
//! struct Counter { pings: u32 }
//! impl World<Ev> for Counter {
//!     fn handle(&mut self, engine: &mut Engine<Ev>, now: Time, ev: Ev) {
//!         let Ev::Ping(n) = ev;
//!         self.pings += 1;
//!         if n > 0 {
//!             engine.schedule_in(Duration::from_millis(1), Ev::Ping(n - 1));
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new();
//! engine.schedule(Time::ZERO, Ev::Ping(3));
//! let mut world = Counter { pings: 0 };
//! engine.run(&mut world);
//! assert_eq!(world.pings, 4);
//! assert_eq!(engine.now(), Time::from_millis(3));
//! ```

pub mod engine;
pub mod rng;
pub mod stats;
pub mod time;

pub use engine::{Engine, World};
pub use rng::SimRng;
pub use stats::{Cdf, Histogram, Summary};
pub use time::{Duration, Time};
