//! The discrete-event engine: a time-ordered event queue and a run loop.
//!
//! The engine is generic over the event payload type `E`, so each simulator in
//! the workspace (flow-level, packet-level, control plane) defines its own
//! event enum and a [`World`] that reacts to it.
//!
//! Ties at the same instant are broken by scheduling order (FIFO), which makes
//! runs fully deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{Duration, Time};

/// The behaviour driven by the engine: a state machine that receives events.
pub trait World<E> {
    /// Handle `event` occurring at instant `now`. New events may be scheduled
    /// on `engine`; they must not be scheduled in the past.
    fn handle(&mut self, engine: &mut Engine<E>, now: Time, event: E);
}

/// Blanket impl so closures `FnMut(&mut Engine<E>, Time, E)` are worlds too.
impl<E, F: FnMut(&mut Engine<E>, Time, E)> World<E> for F {
    fn handle(&mut self, engine: &mut Engine<E>, now: Time, event: E) {
        self(engine, now, event)
    }
}

struct Entry<E> {
    at: Time,
    seq: u64,
    event: E,
}

// BinaryHeap is a max-heap; invert ordering to pop the earliest event first.
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

/// A discrete-event simulation engine.
///
/// Holds the pending-event queue and the virtual clock. See the crate-level
/// example for typical use.
pub struct Engine<E> {
    queue: BinaryHeap<Entry<E>>,
    now: Time,
    seq: u64,
    processed: u64,
    horizon: Time,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// A fresh engine with the clock at [`Time::ZERO`] and no horizon.
    pub fn new() -> Self {
        Engine {
            queue: BinaryHeap::new(),
            now: Time::ZERO,
            seq: 0,
            processed: 0,
            horizon: Time::MAX,
        }
    }

    /// Stop delivering events scheduled strictly after `horizon`.
    ///
    /// Events beyond the horizon stay in the queue (so statistics about
    /// unfinished work remain available) but [`run`](Engine::run) returns once
    /// the next event would exceed it, with the clock advanced to the horizon.
    pub fn set_horizon(&mut self, horizon: Time) {
        self.horizon = horizon;
    }

    /// The current virtual instant.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of events delivered so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedule `event` at absolute instant `at`.
    ///
    /// # Panics
    /// Panics if `at` is before the current instant — scheduling into the past
    /// is always a simulation bug.
    pub fn schedule(&mut self, at: Time, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: {at:?} < {:?}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Entry { at, seq, event });
    }

    /// Schedule `event` to occur `delay` after the current instant.
    pub fn schedule_in(&mut self, delay: Duration, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Remove and return the earliest pending event, advancing the clock.
    ///
    /// Returns `None` when the queue is empty or the next event lies beyond
    /// the horizon (in which case the clock advances to the horizon).
    pub fn pop(&mut self) -> Option<(Time, E)> {
        match self.queue.peek() {
            None => None,
            Some(head) if head.at > self.horizon => {
                self.now = self.horizon;
                None
            }
            Some(_) => {
                // lint:allow(unwrap) — peek() just returned Some on this queue
                let entry = self.queue.pop().expect("peeked entry vanished");
                // Time monotonicity: the queue must never yield an event
                // earlier than the current instant. A hard assert under
                // `strict-invariants`, a debug assert otherwise.
                #[cfg(feature = "strict-invariants")]
                assert!(entry.at >= self.now, "queue yielded a past event");
                #[cfg(not(feature = "strict-invariants"))]
                debug_assert!(entry.at >= self.now, "queue yielded a past event");
                self.now = entry.at;
                self.processed += 1;
                Some((entry.at, entry.event))
            }
        }
    }

    /// Run `world` until the queue drains or the horizon is reached.
    pub fn run(&mut self, world: &mut impl World<E>) {
        while let Some((at, event)) = self.pop() {
            world.handle(self, at, event);
        }
    }

    /// Run until at most `limit` more events have been delivered. Returns the
    /// number actually delivered (less than `limit` iff the queue drained or
    /// the horizon was reached).
    pub fn run_steps(&mut self, world: &mut impl World<E>, limit: u64) -> u64 {
        let mut delivered = 0;
        while delivered < limit {
            match self.pop() {
                Some((at, event)) => {
                    world.handle(self, at, event);
                    delivered += 1;
                }
                None => break,
            }
        }
        delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        A(u32),
        Stop,
    }

    #[test]
    fn delivers_in_time_order() {
        let mut engine: Engine<Ev> = Engine::new();
        engine.schedule(Time::from_secs(3), Ev::A(3));
        engine.schedule(Time::from_secs(1), Ev::A(1));
        engine.schedule(Time::from_secs(2), Ev::A(2));
        let mut seen = Vec::new();
        engine.run(&mut |_: &mut Engine<Ev>, now: Time, ev: Ev| {
            if let Ev::A(n) = ev {
                seen.push((now.as_nanos() / 1_000_000_000, n));
            }
        });
        assert_eq!(seen, vec![(1, 1), (2, 2), (3, 3)]);
        assert_eq!(engine.events_processed(), 3);
    }

    #[test]
    fn same_instant_is_fifo() {
        let mut engine: Engine<Ev> = Engine::new();
        for n in 0..100 {
            engine.schedule(Time::from_secs(1), Ev::A(n));
        }
        let mut seen = Vec::new();
        engine.run(&mut |_: &mut Engine<Ev>, _now, ev: Ev| {
            if let Ev::A(n) = ev {
                seen.push(n);
            }
        });
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn horizon_stops_delivery_and_advances_clock() {
        let mut engine: Engine<Ev> = Engine::new();
        engine.schedule(Time::from_secs(1), Ev::A(1));
        engine.schedule(Time::from_secs(10), Ev::A(10));
        engine.set_horizon(Time::from_secs(5));
        let mut seen = Vec::new();
        engine.run(&mut |_: &mut Engine<Ev>, _now, ev: Ev| {
            if let Ev::A(n) = ev {
                seen.push(n);
            }
        });
        assert_eq!(seen, vec![1]);
        assert_eq!(engine.now(), Time::from_secs(5));
        assert_eq!(engine.pending(), 1);
    }

    #[test]
    fn event_exactly_at_horizon_is_delivered() {
        let mut engine: Engine<Ev> = Engine::new();
        engine.set_horizon(Time::from_secs(5));
        engine.schedule(Time::from_secs(5), Ev::A(5));
        let mut seen = 0;
        engine.run(&mut |_: &mut Engine<Ev>, _now, _ev: Ev| seen += 1);
        assert_eq!(seen, 1);
    }

    #[test]
    fn handler_can_reschedule() {
        let mut engine: Engine<Ev> = Engine::new();
        engine.schedule(Time::ZERO, Ev::A(5));
        let mut count = 0;
        engine.run(&mut |e: &mut Engine<Ev>, _now, ev: Ev| match ev {
            Ev::A(0) => e.schedule_in(Duration::from_secs(1), Ev::Stop),
            Ev::A(n) => {
                count += 1;
                e.schedule_in(Duration::from_secs(1), Ev::A(n - 1));
            }
            Ev::Stop => {}
        });
        assert_eq!(count, 5);
        assert_eq!(engine.now(), Time::from_secs(6));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut engine: Engine<Ev> = Engine::new();
        engine.schedule(Time::from_secs(2), Ev::Stop);
        engine.run(&mut |e: &mut Engine<Ev>, _now, _ev: Ev| {
            e.schedule(Time::from_secs(1), Ev::Stop);
        });
    }

    #[test]
    fn run_steps_limits_delivery() {
        let mut engine: Engine<Ev> = Engine::new();
        for n in 0..10 {
            engine.schedule(Time::from_secs(n as u64), Ev::A(n));
        }
        let delivered = engine.run_steps(&mut |_: &mut Engine<Ev>, _now, _ev: Ev| {}, 4);
        assert_eq!(delivered, 4);
        assert_eq!(engine.pending(), 6);
        let rest = engine.run_steps(&mut |_: &mut Engine<Ev>, _now, _ev: Ev| {}, 100);
        assert_eq!(rest, 6);
    }
}
