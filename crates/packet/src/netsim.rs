//! The packet-level network simulation: queues, links, forwarding, and the
//! event loop gluing transports to the wire.
//!
//! Forwarding is source-routed: each flow carries the node path the routing
//! crate selected (data forward, ACKs on the reverse path), so the packet
//! simulator exercises exactly the paths the flow-level simulator assumed —
//! which is what makes cross-validation between the two meaningful.
//!
//! Failure realism: packets are dropped when they meet a down link (at
//! enqueue or at transmission end), when a drop-tail queue overflows, and
//! when they belong to a stale path version after a re-route.

use std::collections::VecDeque;

use sharebackup_sim::{Duration, Engine, Time, World};
use sharebackup_topo::{LinkId, Network, NodeId};

use crate::transport::{Receiver, RenoFlow};

/// Wire/protocol constants of the simulation.
#[derive(Clone, Copy, Debug)]
pub struct PacketNetConfig {
    /// Maximum segment size (payload bytes).
    pub mss: u32,
    /// Per-segment header overhead on the wire, bytes.
    pub header_bytes: u32,
    /// ACK packet wire size, bytes.
    pub ack_bytes: u32,
    /// Drop-tail queue capacity per output port, packets.
    pub queue_packets: usize,
    /// Per-link propagation delay.
    pub prop_delay: Duration,
    /// Retransmission timeout (fixed; generations handle staleness).
    pub rto: Duration,
}

impl Default for PacketNetConfig {
    fn default() -> Self {
        PacketNetConfig {
            mss: 1460,
            header_bytes: 40,
            ack_bytes: 64,
            queue_packets: 64,
            prop_delay: Duration::from_micros(5),
            rto: Duration::from_millis(10),
        }
    }
}

/// One flow to simulate at packet level.
#[derive(Clone, Debug)]
pub struct PktFlowSpec {
    /// Node path from source host to destination host (inclusive).
    pub path: Vec<NodeId>,
    /// Bytes to transfer.
    pub bytes: u64,
    /// Start instant.
    pub start: Time,
}

/// Mid-run events.
#[derive(Clone, Debug)]
pub enum PktEvent {
    /// A link goes down (packets meeting it are lost).
    FailLink(LinkId),
    /// A link comes back.
    RepairLink(LinkId),
    /// A node goes down (its links become unusable).
    FailNode(NodeId),
    /// A node comes back.
    RepairNode(NodeId),
    /// Re-route a flow (None = no path; the flow stalls and retries via
    /// RTO until a later `SetPath` restores one). In-flight packets of the
    /// old path are lost.
    SetPath {
        /// Flow index.
        flow: usize,
        /// New path, or `None` while unroutable.
        path: Option<Vec<NodeId>>,
    },
}

/// Per-flow result.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PktFlowOutcome {
    /// When the last byte was acknowledged, if the flow finished.
    pub completed: Option<Time>,
    /// Bytes received in order at the destination.
    pub delivered: u64,
    /// Fast retransmissions.
    pub retransmits: u64,
    /// RTO events.
    pub timeouts: u64,
}

#[derive(Clone, Debug)]
struct QPacket {
    flow: usize,
    seq: u64,
    len: u32,
    wire: u32,
    ack: bool,
    hop: usize,
    ver: u32,
}

struct DirState {
    queue: VecDeque<QPacket>,
    busy: bool,
}

struct FlowState {
    path: Option<Vec<NodeId>>,
    rev: Option<Vec<NodeId>>,
    sender: RenoFlow,
    receiver: Receiver,
    completed: Option<Time>,
    armed_gen: Option<u64>,
    ver: u32,
    started: bool,
}

enum Ev {
    Start(usize),
    TxDone(usize),
    Arrive(QPacket),
    Rto { flow: usize, gen: u64 },
    Topo(usize),
}

/// The packet-level simulator.
pub struct PacketSim {
    /// Configuration.
    pub cfg: PacketNetConfig,
}

struct NetWorld {
    cfg: PacketNetConfig,
    net: Network,
    dirs: Vec<DirState>,
    flows: Vec<FlowState>,
    events: Vec<Option<PktEvent>>,
    drops: u64,
}

impl PacketSim {
    /// A simulator with the given configuration.
    pub fn new(cfg: PacketNetConfig) -> PacketSim {
        PacketSim { cfg }
    }

    /// Run flows over (a clone of) `net` until `horizon`, applying
    /// `events[i].1` at `events[i].0`. Returns one outcome per flow plus
    /// the total packet-drop count.
    pub fn run(
        &self,
        net: &Network,
        flows: &[PktFlowSpec],
        events: Vec<(Time, PktEvent)>,
        horizon: Time,
    ) -> (Vec<PktFlowOutcome>, u64) {
        let mut engine: Engine<Ev> = Engine::new();
        engine.set_horizon(horizon);
        let mut world = NetWorld {
            cfg: self.cfg,
            net: net.clone(),
            dirs: (0..net.link_count() * 2)
                .map(|_| DirState {
                    queue: VecDeque::new(),
                    busy: false,
                })
                .collect(),
            flows: flows
                .iter()
                .map(|s| FlowState {
                    path: Some(s.path.clone()),
                    rev: Some(s.path.iter().rev().copied().collect()),
                    sender: RenoFlow::new(s.bytes, self.cfg.mss),
                    receiver: Receiver::new(),
                    completed: None,
                    armed_gen: None,
                    ver: 0,
                    started: false,
                })
                .collect(),
            events: events.iter().map(|(_, e)| Some(e.clone())).collect(),
            drops: 0,
        };
        for (i, s) in flows.iter().enumerate() {
            engine.schedule(s.start, Ev::Start(i));
        }
        for (i, (t, _)) in events.iter().enumerate() {
            engine.schedule(*t, Ev::Topo(i));
        }
        engine.run(&mut world);
        let outcomes = world
            .flows
            .iter()
            .map(|f| PktFlowOutcome {
                completed: f.completed,
                delivered: f.receiver.expected().min(f.sender.total_bytes),
                retransmits: f.sender.retransmits(),
                timeouts: f.sender.timeouts(),
            })
            .collect();
        (outcomes, world.drops)
    }
}

impl NetWorld {
    fn dir_index(&self, from: NodeId, to: NodeId) -> Option<usize> {
        let l = self.net.link_between(from, to)?;
        let link = self.net.link(l);
        let d = if link.a == from { 0 } else { 1 };
        Some((l.0 as usize) * 2 + d)
    }

    fn link_of_dir(&self, dir: usize) -> LinkId {
        LinkId::from_index(dir / 2)
    }

    /// Wire time of a packet on a link.
    fn tx_time(&self, dir: usize, wire: u32) -> Duration {
        let cap = self.net.link(self.link_of_dir(dir)).capacity_bps;
        Duration::from_secs_f64(wire as f64 * 8.0 / cap)
    }

    /// Enqueue `pkt` for its next hop; drops on down links / full queues.
    fn forward(&mut self, engine: &mut Engine<Ev>, pkt: QPacket) {
        let flow = &self.flows[pkt.flow];
        if pkt.ver != flow.ver {
            self.drops += 1;
            return;
        }
        let path = if pkt.ack { &flow.rev } else { &flow.path };
        let Some(path) = path else {
            self.drops += 1;
            return;
        };
        let (from, to) = (path[pkt.hop], path[pkt.hop + 1]);
        let Some(dir) = self.dir_index(from, to) else {
            self.drops += 1;
            return;
        };
        if !self.net.link_usable(self.link_of_dir(dir)) {
            self.drops += 1;
            return;
        }
        if self.dirs[dir].queue.len() >= self.cfg.queue_packets {
            self.drops += 1;
            return;
        }
        self.dirs[dir].queue.push_back(pkt);
        if !self.dirs[dir].busy {
            self.start_tx(engine, dir);
        }
    }

    fn start_tx(&mut self, engine: &mut Engine<Ev>, dir: usize) {
        let wire = self.dirs[dir]
            .queue
            .front()
            // lint:allow(unwrap) — callers check the queue before starting tx
            .expect("start_tx on empty queue")
            .wire;
        self.dirs[dir].busy = true;
        engine.schedule_in(self.tx_time(dir, wire), Ev::TxDone(dir));
    }

    /// Send whatever the window permits and (re)arm the RTO.
    fn pump(&mut self, engine: &mut Engine<Ev>, flow: usize, now: Time) {
        let ver = self.flows[flow].ver;
        let sends = self.flows[flow].sender.take_sends();
        for (seq, len) in sends {
            let wire = len + self.cfg.header_bytes;
            self.forward(
                engine,
                QPacket {
                    flow,
                    seq,
                    len,
                    wire,
                    ack: false,
                    hop: 0,
                    ver,
                },
            );
        }
        self.arm_rto(engine, flow, now);
    }

    fn arm_rto(&mut self, engine: &mut Engine<Ev>, flow: usize, _now: Time) {
        let f = &mut self.flows[flow];
        if f.sender.finished() {
            return;
        }
        let gen = f.sender.rto_generation();
        if f.armed_gen == Some(gen) {
            return;
        }
        f.armed_gen = Some(gen);
        let rto = self.cfg.rto * f.sender.rto_multiplier() as u64;
        engine.schedule_in(rto, Ev::Rto { flow, gen });
    }

    fn apply_topo(&mut self, ev: PktEvent) {
        match ev {
            PktEvent::FailLink(l) => self.net.set_link_up(l, false),
            PktEvent::RepairLink(l) => self.net.set_link_up(l, true),
            PktEvent::FailNode(n) => self.net.set_node_up(n, false),
            PktEvent::RepairNode(n) => self.net.set_node_up(n, true),
            PktEvent::SetPath { flow, path } => {
                let f = &mut self.flows[flow];
                f.rev = path.as_ref().map(|p| p.iter().rev().copied().collect());
                f.path = path;
                f.ver += 1; // in-flight packets of the old path are lost
            }
        }
    }
}

impl World<Ev> for NetWorld {
    fn handle(&mut self, engine: &mut Engine<Ev>, now: Time, ev: Ev) {
        match ev {
            Ev::Start(i) => {
                self.flows[i].started = true;
                self.pump(engine, i, now);
            }
            Ev::TxDone(dir) => {
                let pkt = self.dirs[dir]
                    .queue
                    .pop_front()
                    // lint:allow(unwrap) — a TxDone is scheduled only while a packet occupies the head
                    .expect("TxDone with empty queue");
                self.dirs[dir].busy = false;
                // The packet survives only if the link is still up.
                if self.net.link_usable(self.link_of_dir(dir)) {
                    let mut pkt = pkt;
                    pkt.hop += 1;
                    engine.schedule_in(self.cfg.prop_delay, Ev::Arrive(pkt));
                } else {
                    self.drops += 1;
                }
                if !self.dirs[dir].queue.is_empty() {
                    self.start_tx(engine, dir);
                }
            }
            Ev::Arrive(pkt) => {
                let flow_idx = pkt.flow;
                // Stale-path packets are lost.
                if pkt.ver != self.flows[flow_idx].ver {
                    self.drops += 1;
                    return;
                }
                let path_len = {
                    let f = &self.flows[flow_idx];
                    let p = if pkt.ack { &f.rev } else { &f.path };
                    p.as_ref().map(|p| p.len()).unwrap_or(0)
                };
                if path_len == 0 {
                    self.drops += 1;
                    return;
                }
                if pkt.hop + 1 < path_len {
                    // Transit node: forward along the path.
                    self.forward(engine, pkt);
                    return;
                }
                if pkt.ack {
                    // ACK reached the sender.
                    let fast_rtx = self.flows[flow_idx].sender.on_ack(pkt.seq);
                    if self.flows[flow_idx].sender.finished() {
                        if self.flows[flow_idx].completed.is_none() {
                            self.flows[flow_idx].completed = Some(now);
                        }
                        return;
                    }
                    let _ = fast_rtx; // rolled-back next_seq makes pump resend
                    self.pump(engine, flow_idx, now);
                } else {
                    // Data reached the receiver: emit a cumulative ACK.
                    let ackno = self.flows[flow_idx].receiver.on_segment(pkt.seq, pkt.len);
                    let ver = self.flows[flow_idx].ver;
                    self.forward(
                        engine,
                        QPacket {
                            flow: flow_idx,
                            seq: ackno,
                            len: 0,
                            wire: self.cfg.ack_bytes,
                            ack: true,
                            hop: 0,
                            ver,
                        },
                    );
                }
            }
            Ev::Rto { flow, gen } => {
                let f = &mut self.flows[flow];
                if f.sender.finished() || f.sender.rto_generation() != gen {
                    return;
                }
                f.sender.on_rto();
                f.armed_gen = None;
                self.pump(engine, flow, now);
            }
            Ev::Topo(i) => {
                if let Some(ev) = self.events[i].take() {
                    self.apply_topo(ev);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharebackup_topo::NodeKind;

    /// h0 — s0 — s1 — h1 line, 100 Mbps links.
    fn line() -> (Network, Vec<NodeId>) {
        let mut net = Network::new();
        let h0 = net.add_node(NodeKind::Host, None, 0);
        let s0 = net.add_node(NodeKind::Edge, None, 0);
        let s1 = net.add_node(NodeKind::Edge, None, 1);
        let h1 = net.add_node(NodeKind::Host, None, 1);
        net.add_link(h0, s0, 100e6);
        net.add_link(s0, s1, 100e6);
        net.add_link(s1, h1, 100e6);
        (net, vec![h0, s0, s1, h1])
    }

    /// Two hosts on each side of a shared bottleneck.
    fn dumbbell() -> (Network, Vec<NodeId>) {
        let mut net = Network::new();
        let h0 = net.add_node(NodeKind::Host, None, 0);
        let h1 = net.add_node(NodeKind::Host, None, 1);
        let s0 = net.add_node(NodeKind::Edge, None, 0);
        let s1 = net.add_node(NodeKind::Edge, None, 1);
        let h2 = net.add_node(NodeKind::Host, None, 2);
        let h3 = net.add_node(NodeKind::Host, None, 3);
        net.add_link(h0, s0, 1e9);
        net.add_link(h1, s0, 1e9);
        net.add_link(s0, s1, 100e6); // bottleneck
        net.add_link(s1, h2, 1e9);
        net.add_link(s1, h3, 1e9);
        (net, vec![h0, h1, s0, s1, h2, h3])
    }

    #[test]
    fn single_flow_achieves_near_line_rate() {
        let (net, n) = line();
        let flows = vec![PktFlowSpec {
            path: vec![n[0], n[1], n[2], n[3]],
            bytes: 1_250_000, // 0.1 s at 100 Mbps
            start: Time::ZERO,
        }];
        let (out, _drops) =
            PacketSim::new(PacketNetConfig::default()).run(&net, &flows, vec![], Time::from_secs(10));
        let t = out[0].completed.expect("finishes");
        let goodput = 1_250_000.0 * 8.0 / t.as_secs_f64();
        assert!(
            goodput > 55e6,
            "goodput {goodput:.0} too low (slow start + acks overhead expected)"
        );
        assert_eq!(out[0].delivered, 1_250_000);
    }

    #[test]
    fn two_flows_share_bottleneck_roughly_fairly() {
        let (net, n) = dumbbell();
        let flows = vec![
            PktFlowSpec {
                path: vec![n[0], n[2], n[3], n[4]],
                bytes: 2_000_000,
                start: Time::ZERO,
            },
            PktFlowSpec {
                path: vec![n[1], n[2], n[3], n[5]],
                bytes: 2_000_000,
                start: Time::ZERO,
            },
        ];
        let (out, _) = PacketSim::new(PacketNetConfig::default()).run(
            &net,
            &flows,
            vec![],
            Time::from_secs(30),
        );
        let t0 = out[0].completed.expect("f0 done").as_secs_f64();
        let t1 = out[1].completed.expect("f1 done").as_secs_f64();
        // Equal demands sharing one bottleneck: completion within 2× of
        // each other (AIMD fairness is approximate).
        let ratio = t0.max(t1) / t0.min(t1);
        assert!(ratio < 2.0, "unfair sharing: {t0} vs {t1}");
        // And both significantly slower than a lone flow would be.
        assert!(t0.max(t1) > 0.25, "two 2MB flows over 100Mbps take > 0.25s");
    }

    #[test]
    fn link_failure_stalls_flow_and_repair_revives_it() {
        let (net, n) = line();
        let l = net.link_between(n[1], n[2]).expect("middle link");
        let flows = vec![PktFlowSpec {
            path: vec![n[0], n[1], n[2], n[3]],
            bytes: 2_500_000, // 0.2 s at 100 Mbps
            start: Time::ZERO,
        }];
        let events = vec![
            (Time::from_millis(50), PktEvent::FailLink(l)),
            (Time::from_millis(250), PktEvent::RepairLink(l)),
        ];
        let (out, drops) = PacketSim::new(PacketNetConfig::default()).run(
            &net,
            &flows,
            events,
            Time::from_secs(30),
        );
        let t = out[0].completed.expect("finishes after repair");
        assert!(t > Time::from_millis(250), "cannot finish while down: {t:?}");
        assert!(out[0].timeouts >= 1, "RTO must fire during the outage");
        assert!(drops > 0);
        assert_eq!(out[0].delivered, 2_500_000);
    }

    #[test]
    fn permanent_failure_leaves_flow_unfinished() {
        let (net, n) = line();
        let l = net.link_between(n[1], n[2]).expect("middle link");
        let flows = vec![PktFlowSpec {
            path: vec![n[0], n[1], n[2], n[3]],
            bytes: 10_000_000,
            start: Time::ZERO,
        }];
        let events = vec![(Time::from_millis(10), PktEvent::FailLink(l))];
        let (out, _) = PacketSim::new(PacketNetConfig::default()).run(
            &net,
            &flows,
            events,
            Time::from_secs(2),
        );
        assert_eq!(out[0].completed, None);
        assert!(out[0].delivered < 10_000_000);
    }

    #[test]
    fn reroute_via_setpath_recovers_delivery() {
        // Diamond: h0 - s0 - {s1|s2} - s3 - h1.
        let mut net = Network::new();
        let h0 = net.add_node(NodeKind::Host, None, 0);
        let s0 = net.add_node(NodeKind::Edge, None, 0);
        let s1 = net.add_node(NodeKind::Agg, None, 1);
        let s2 = net.add_node(NodeKind::Agg, None, 2);
        let s3 = net.add_node(NodeKind::Edge, None, 3);
        let h1 = net.add_node(NodeKind::Host, None, 1);
        net.add_link(h0, s0, 100e6);
        net.add_link(s0, s1, 100e6);
        net.add_link(s0, s2, 100e6);
        net.add_link(s1, s3, 100e6);
        net.add_link(s2, s3, 100e6);
        net.add_link(s3, h1, 100e6);
        let via_s1 = vec![h0, s0, s1, s3, h1];
        let via_s2 = vec![h0, s0, s2, s3, h1];
        let flows = vec![PktFlowSpec {
            path: via_s1,
            bytes: 2_500_000,
            start: Time::ZERO,
        }];
        let events = vec![
            (Time::from_millis(50), PktEvent::FailNode(s1)),
            (
                Time::from_millis(60),
                PktEvent::SetPath {
                    flow: 0,
                    path: Some(via_s2),
                },
            ),
        ];
        let (out, _) = PacketSim::new(PacketNetConfig::default()).run(
            &net,
            &flows,
            events,
            Time::from_secs(10),
        );
        let t = out[0].completed.expect("finishes on detour");
        assert!(t > Time::from_millis(60));
        assert!(t < Time::from_secs(1), "{t:?}");
    }

    #[test]
    fn drops_occur_under_incast_overload() {
        // Four senders into one 100 Mbps sink link with small queues.
        let mut net = Network::new();
        let mut hosts = Vec::new();
        let s0 = net.add_node(NodeKind::Edge, None, 0);
        let s1 = net.add_node(NodeKind::Edge, None, 1);
        net.add_link(s0, s1, 100e6);
        let sink = net.add_node(NodeKind::Host, None, 99);
        net.add_link(s1, sink, 100e6);
        for i in 0..4 {
            let h = net.add_node(NodeKind::Host, None, i);
            net.add_link(h, s0, 1e9);
            hosts.push(h);
        }
        let flows: Vec<PktFlowSpec> = hosts
            .iter()
            .map(|&h| PktFlowSpec {
                path: vec![h, s0, s1, sink],
                bytes: 1_000_000,
                start: Time::ZERO,
            })
            .collect();
        let cfg = PacketNetConfig {
            queue_packets: 16,
            ..PacketNetConfig::default()
        };
        let (out, drops) = PacketSim::new(cfg).run(&net, &flows, vec![], Time::from_secs(30));
        assert!(drops > 0, "incast must overflow the small queue");
        assert!(out.iter().all(|o| o.completed.is_some()));
        assert!(out.iter().any(|o| o.retransmits + o.timeouts > 0));
    }
}
