#![warn(missing_docs)]
//! # sharebackup-packet
//!
//! A packet-level network simulator, used to cross-validate the flow-level
//! results on small instances and to observe the microscopic view of a
//! ShareBackup failover (packets in flight while the circuit resets).
//!
//! The paper evaluates on packet-level simulators; this one models:
//!
//! * store-and-forward output-queued switches with drop-tail FIFO queues
//!   ([`netsim`]),
//! * links with serialization (rate) and propagation delay,
//! * a Reno-like window-based transport per flow ([`transport`]): slow
//!   start, congestion avoidance, triple-duplicate-ACK fast retransmit with
//!   window halving, and RTO-driven go-back-N recovery,
//! * source-routed forwarding along the path the routing crate selected
//!   (consistent with the flow-level simulator), with mid-run topology
//!   events (fail/repair/re-path) for failover experiments.

pub mod netsim;
pub mod transport;

pub use netsim::{PacketNetConfig, PacketSim, PktEvent, PktFlowOutcome, PktFlowSpec};
pub use transport::RenoFlow;
