//! A Reno-like window-based transport, as a pure state machine.
//!
//! One instance drives one flow's sender. The network simulator calls
//! [`RenoFlow::on_ack`] / [`RenoFlow::on_rto`] / [`RenoFlow::take_sends`]
//! and owns all timing; this module owns only the congestion-control state:
//!
//! * slow start (cwnd += 1 MSS per ACK) until `ssthresh`;
//! * congestion avoidance (cwnd += MSS²/cwnd per ACK);
//! * fast retransmit on 3 duplicate ACKs, halving the window;
//! * RTO: window back to 1 MSS, go-back-N from the last cumulative ACK.
//!
//! Sequence numbers are byte offsets; ACKs are cumulative.

/// Sender-side Reno state for one flow.
#[derive(Clone, Debug)]
pub struct RenoFlow {
    /// Total bytes to transfer.
    pub total_bytes: u64,
    /// Maximum segment size in bytes.
    pub mss: u32,
    /// Highest byte sent + 1 (next fresh byte to send).
    next_seq: u64,
    /// Cumulative bytes acknowledged.
    acked: u64,
    /// Congestion window, bytes (float for smooth CA growth).
    cwnd: f64,
    /// Slow-start threshold, bytes.
    ssthresh: f64,
    dupacks: u32,
    /// Retransmissions queued by fast retransmit, drained by `take_sends`.
    pending_rtx: Vec<(u64, u32)>,
    /// Monotone counter invalidating stale RTO timers.
    rto_generation: u64,
    /// Consecutive RTOs without progress (drives exponential backoff).
    backoff: u32,
    retransmits: u64,
    timeouts: u64,
}

impl RenoFlow {
    /// A fresh sender for `total_bytes` with the given MSS.
    ///
    /// # Panics
    /// Panics if `mss == 0`.
    pub fn new(total_bytes: u64, mss: u32) -> RenoFlow {
        assert!(mss > 0, "mss must be positive");
        RenoFlow {
            total_bytes,
            mss,
            next_seq: 0,
            acked: 0,
            cwnd: mss as f64 * 2.0,
            ssthresh: f64::INFINITY,
            dupacks: 0,
            pending_rtx: Vec::new(),
            rto_generation: 0,
            backoff: 0,
            retransmits: 0,
            timeouts: 0,
        }
    }

    /// Bytes successfully acknowledged so far.
    pub fn acked_bytes(&self) -> u64 {
        self.acked
    }

    /// Whether every byte has been acknowledged.
    pub fn finished(&self) -> bool {
        self.acked >= self.total_bytes
    }

    /// Current congestion window in bytes.
    pub fn cwnd_bytes(&self) -> f64 {
        self.cwnd
    }

    /// Fast retransmissions performed.
    pub fn retransmits(&self) -> u64 {
        self.retransmits
    }

    /// RTO events taken.
    pub fn timeouts(&self) -> u64 {
        self.timeouts
    }

    /// Current RTO-timer generation; an expiring timer with a stale
    /// generation must be ignored.
    pub fn rto_generation(&self) -> u64 {
        self.rto_generation
    }

    fn in_flight(&self) -> u64 {
        self.next_seq.saturating_sub(self.acked)
    }

    /// Segments the window currently permits: `(seq, len)` pairs. Pending
    /// retransmissions drain first; then fresh data up to the window. Call
    /// after construction, after ACKs, and after RTOs; the caller turns
    /// them into packets.
    pub fn take_sends(&mut self) -> Vec<(u64, u32)> {
        let mut out = Vec::new();
        out.append(&mut self.pending_rtx);
        while !self.finished()
            && self.next_seq < self.total_bytes
            && (self.in_flight() + self.mss as u64) as f64 <= self.cwnd.max(self.mss as f64)
        {
            let len = self
                .mss
                .min(u32::try_from(self.total_bytes - self.next_seq).unwrap_or(u32::MAX));
            out.push((self.next_seq, len));
            self.next_seq += len as u64;
        }
        out
    }

    /// Process a cumulative ACK for byte `ack` (first unreceived byte at
    /// the receiver). Returns `true` on a *fast retransmit* trigger; the
    /// retransmitted segment is queued and will come out of the next
    /// [`RenoFlow::take_sends`].
    pub fn on_ack(&mut self, ack: u64) -> bool {
        if ack > self.acked {
            // Fresh ACK: progress resets the RTO backoff.
            let newly = ack - self.acked;
            self.acked = ack;
            self.dupacks = 0;
            self.backoff = 0;
            self.rto_generation += 1;
            if self.cwnd < self.ssthresh {
                // Slow start: one MSS per ACK (approximately per-segment).
                self.cwnd += self.mss as f64 * (newly as f64 / self.mss as f64).min(2.0);
            } else {
                // Congestion avoidance: MSS²/cwnd per ACK.
                self.cwnd += (self.mss as f64 * self.mss as f64) / self.cwnd;
            }
            if self.next_seq < self.acked {
                self.next_seq = self.acked;
            }
            false
        } else {
            // Duplicate ACK.
            self.dupacks += 1;
            if self.dupacks == 3 {
                // Fast retransmit: halve the window and resend only the
                // missing segment (the receiver buffers out-of-order data).
                self.ssthresh = (self.cwnd / 2.0).max(2.0 * self.mss as f64);
                self.cwnd = self.ssthresh;
                let len = self
                    .mss
                    .min(u32::try_from(self.total_bytes - self.acked).unwrap_or(u32::MAX));
                self.pending_rtx.push((self.acked, len));
                self.dupacks = 0;
                self.retransmits += 1;
                self.rto_generation += 1;
                true
            } else {
                false
            }
        }
    }

    /// Process a retransmission timeout: collapse to one MSS and go back to
    /// the last cumulative ACK. Consecutive timeouts without progress raise
    /// the backoff level.
    pub fn on_rto(&mut self) {
        self.ssthresh = (self.cwnd / 2.0).max(2.0 * self.mss as f64);
        self.cwnd = self.mss as f64;
        self.next_seq = self.acked;
        self.pending_rtx.clear();
        self.dupacks = 0;
        self.backoff = (self.backoff + 1).min(8);
        self.timeouts += 1;
        self.rto_generation += 1;
    }

    /// The multiplier the caller applies to the base RTO when re-arming the
    /// timer: 2^backoff, capped at 256× (classic exponential backoff; it
    /// keeps a flow stranded by a long outage from firing timers at full
    /// rate for the whole outage).
    pub fn rto_multiplier(&self) -> u32 {
        1u32 << self.backoff
    }
}

/// Receiver-side state: cumulative reassembly with out-of-order buffering
/// (so a single fast-retransmitted segment plugs the hole and the
/// cumulative ACK jumps past everything already buffered).
#[derive(Clone, Debug, Default)]
pub struct Receiver {
    expected: u64,
    /// Buffered out-of-order ranges, disjoint and sorted: (start, end).
    buffered: Vec<(u64, u64)>,
}

impl Receiver {
    /// A fresh receiver.
    pub fn new() -> Receiver {
        Receiver::default()
    }

    /// Process an arriving segment; returns the cumulative ACK to send.
    /// Out-of-order segments are buffered; duplicate ACKs signal the hole.
    pub fn on_segment(&mut self, seq: u64, len: u32) -> u64 {
        let end = seq + len as u64;
        if end <= self.expected {
            return self.expected; // wholly duplicate
        }
        // Insert/merge the range into the buffer.
        self.buffered.push((seq.max(self.expected), end));
        self.buffered.sort_unstable();
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(self.buffered.len());
        for &(s, e) in self.buffered.iter() {
            match merged.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }
        self.buffered = merged;
        // Advance the cumulative point over any now-contiguous prefix.
        while let Some(&(s, e)) = self.buffered.first() {
            if s <= self.expected {
                self.expected = self.expected.max(e);
                self.buffered.remove(0);
            } else {
                break;
            }
        }
        self.expected
    }

    /// First byte not yet received in order.
    pub fn expected(&self) -> u64 {
        self.expected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_start_doubles_window() {
        let mut f = RenoFlow::new(1_000_000, 1000);
        let w0 = f.cwnd_bytes();
        let sends = f.take_sends();
        assert_eq!(sends.len(), 2, "initial window = 2 MSS");
        // ACK both segments: window grows by ~1 MSS per ACK.
        f.on_ack(1000);
        f.on_ack(2000);
        assert!(f.cwnd_bytes() >= w0 + 1900.0, "{}", f.cwnd_bytes());
    }

    #[test]
    fn sends_respect_window_and_total() {
        let mut f = RenoFlow::new(2500, 1000);
        let sends = f.take_sends();
        // 2 MSS window → segments (0,1000) and (1000,1000).
        assert_eq!(sends, vec![(0, 1000), (1000, 1000)]);
        assert!(f.take_sends().is_empty(), "window exhausted");
        f.on_ack(2000);
        let sends = f.take_sends();
        assert_eq!(sends, vec![(2000, 500)], "runt final segment");
    }

    #[test]
    fn triple_dupack_triggers_fast_retransmit() {
        let mut f = RenoFlow::new(100_000, 1000);
        for _ in 0..10 {
            f.take_sends();
            let a = f.acked_bytes() + 1000;
            f.on_ack(a);
        }
        let w = f.cwnd_bytes();
        f.take_sends();
        assert!(!f.on_ack(f.acked_bytes()));
        assert!(!f.on_ack(f.acked_bytes()));
        assert!(f.on_ack(f.acked_bytes()), "third dupack retransmits");
        assert!(f.cwnd_bytes() <= w / 2.0 + 1.0);
        assert_eq!(f.retransmits(), 1);
        // The queued retransmission targets the hole, once.
        let sends = f.take_sends();
        assert_eq!(sends[0], (f.acked_bytes(), 1000));
        assert!(!f.take_sends().iter().any(|&(s, _)| s == f.acked_bytes()));
    }

    #[test]
    fn rto_collapses_window() {
        let mut f = RenoFlow::new(100_000, 1000);
        for _ in 0..8 {
            f.take_sends();
            let a = f.acked_bytes() + 1000;
            f.on_ack(a);
        }
        f.take_sends();
        let gen = f.rto_generation();
        f.on_rto();
        assert_eq!(f.cwnd_bytes(), 1000.0);
        assert_eq!(f.timeouts(), 1);
        assert!(f.rto_generation() > gen);
        let sends = f.take_sends();
        assert_eq!(sends.len(), 1, "one MSS window after RTO");
        assert_eq!(sends[0].0, f.acked_bytes());
    }

    #[test]
    fn rto_backoff_grows_and_resets_on_progress() {
        let mut f = RenoFlow::new(100_000, 1000);
        assert_eq!(f.rto_multiplier(), 1);
        f.take_sends();
        f.on_rto();
        assert_eq!(f.rto_multiplier(), 2);
        f.on_rto();
        f.on_rto();
        assert_eq!(f.rto_multiplier(), 8);
        // Backoff is capped at 2^8.
        for _ in 0..20 {
            f.on_rto();
        }
        assert_eq!(f.rto_multiplier(), 256);
        // Progress resets it.
        f.take_sends();
        f.on_ack(1000);
        assert_eq!(f.rto_multiplier(), 1);
    }

    #[test]
    fn finishes_exactly_at_total() {
        let mut f = RenoFlow::new(1500, 1000);
        let sends = f.take_sends();
        assert_eq!(sends, vec![(0, 1000), (1000, 500)]);
        f.on_ack(1500);
        assert!(f.finished());
        assert!(f.take_sends().is_empty());
    }

    #[test]
    fn receiver_buffers_out_of_order_and_jumps_on_fill() {
        let mut r = Receiver::new();
        assert_eq!(r.on_segment(0, 1000), 1000);
        // Out of order: hole at 1000, later data buffered.
        assert_eq!(r.on_segment(2000, 1000), 1000);
        assert_eq!(r.on_segment(3000, 1000), 1000);
        // Hole filled: cumulative ACK jumps past the buffered data.
        assert_eq!(r.on_segment(1000, 1000), 4000);
        // Duplicates are harmless.
        assert_eq!(r.on_segment(2000, 1000), 4000);
    }

    #[test]
    fn receiver_merges_overlapping_ranges() {
        let mut r = Receiver::new();
        assert_eq!(r.on_segment(500, 1000), 0);
        assert_eq!(r.on_segment(1200, 1000), 0);
        assert_eq!(r.on_segment(0, 600), 2200);
    }
}
