//! Property-based tests of the packet simulator: conservation, recovery,
//! and transport invariants over randomized scenarios.

use proptest::prelude::*;

use sharebackup_packet::{PacketNetConfig, PacketSim, PktEvent, PktFlowSpec};
use sharebackup_sim::{Duration, Time};
use sharebackup_topo::{Network, NodeId, NodeKind};

/// h0 — s0 — s1 — h1 line with configurable middle capacity.
fn line(mid_bps: f64) -> (Network, Vec<NodeId>) {
    let mut net = Network::new();
    let h0 = net.add_node(NodeKind::Host, None, 0);
    let s0 = net.add_node(NodeKind::Edge, None, 0);
    let s1 = net.add_node(NodeKind::Edge, None, 1);
    let h1 = net.add_node(NodeKind::Host, None, 1);
    net.add_link(h0, s0, 1e9);
    net.add_link(s0, s1, mid_bps);
    net.add_link(s1, h1, 1e9);
    (net, vec![h0, s0, s1, h1])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the transfer size and queue depth, a healthy network
    /// delivers every byte exactly once (cumulative ACK reaches the total).
    #[test]
    fn healthy_network_delivers_everything(
        bytes in 1_000u64..2_000_000,
        queue in 4usize..64,
    ) {
        let (net, n) = line(100e6);
        let cfg = PacketNetConfig {
            queue_packets: queue,
            ..PacketNetConfig::default()
        };
        let (out, _) = PacketSim::new(cfg).run(
            &net,
            &[PktFlowSpec {
                path: vec![n[0], n[1], n[2], n[3]],
                bytes,
                start: Time::ZERO,
            }],
            vec![],
            Time::from_secs(60),
        );
        prop_assert!(out[0].completed.is_some());
        prop_assert_eq!(out[0].delivered, bytes);
    }

    /// A transient outage of any duration, placed anywhere in the transfer,
    /// never corrupts delivery: after repair, the flow finishes with every
    /// byte accounted for.
    #[test]
    fn transient_outage_is_always_survivable(
        fail_ms in 1u64..100,
        outage_ms in 1u64..500,
    ) {
        let (net, n) = line(100e6);
        let l = net.link_between(n[1], n[2]).expect("middle");
        let bytes = 2_000_000u64; // ~160 ms at 100 Mbps
        let events = vec![
            (Time::from_millis(fail_ms), PktEvent::FailLink(l)),
            (
                Time::from_millis(fail_ms + outage_ms),
                PktEvent::RepairLink(l),
            ),
        ];
        let (out, _) = PacketSim::new(PacketNetConfig::default()).run(
            &net,
            &[PktFlowSpec {
                path: vec![n[0], n[1], n[2], n[3]],
                bytes,
                start: Time::ZERO,
            }],
            events,
            Time::from_secs(120),
        );
        prop_assert!(out[0].completed.is_some(), "must finish after repair");
        prop_assert_eq!(out[0].delivered, bytes);
        // Completion cannot precede the repair unless the transfer finished
        // before the failure hit.
        let t = out[0].completed.expect("completed");
        if t > Time::from_millis(fail_ms) {
            // The flow was still running at failure time: either it was
            // effectively done (all data past the failed link) or it ends
            // after the repair.
            prop_assert!(
                t >= Time::from_millis(fail_ms + outage_ms)
                    || t <= Time::from_millis(fail_ms + 20),
                "completion {t:?} inside the outage window"
            );
        }
    }

    /// Two flows over the same bottleneck always deliver fully, and their
    /// total service time is bounded below by the serialized optimum.
    #[test]
    fn sharing_conserves_work(bytes in 100_000u64..1_000_000) {
        let (mut net, n) = line(100e6);
        let h2 = net.add_node(NodeKind::Host, None, 2);
        let h3 = net.add_node(NodeKind::Host, None, 3);
        net.add_link(h2, n[1], 1e9);
        net.add_link(n[2], h3, 1e9);
        let flows = vec![
            PktFlowSpec {
                path: vec![n[0], n[1], n[2], n[3]],
                bytes,
                start: Time::ZERO,
            },
            PktFlowSpec {
                path: vec![h2, n[1], n[2], h3],
                bytes,
                start: Time::ZERO,
            },
        ];
        let (out, _) = PacketSim::new(PacketNetConfig::default()).run(
            &net,
            &flows,
            vec![],
            Time::from_secs(120),
        );
        for o in &out {
            prop_assert!(o.completed.is_some());
            prop_assert_eq!(o.delivered, bytes);
        }
        // The bottleneck can carry at most 100 Mbps of goodput: finishing
        // both transfers cannot beat the fluid bound.
        let bound = Duration::from_secs_f64((2 * bytes) as f64 * 8.0 / 100e6);
        let last = out
            .iter()
            .map(|o| o.completed.expect("done"))
            .max()
            .expect("two flows");
        prop_assert!(
            last >= Time::ZERO + bound.mul_f64(0.95),
            "finished faster than physics allows: {last:?} < {bound}"
        );
    }
}
