//! Deterministic plain-text digest of trace buffers.
//!
//! A human-skimmable (and CI-diffable) rendering: the span/instant event
//! stream with virtual timestamps and nesting indentation, followed by
//! sorted counter and histogram tables. Byte-identical for identical
//! buffers — the companion to the chrome-trace exporter when a JSON
//! viewer is overkill.

use std::fmt::Write as _;

use crate::buffer::{TraceBuffer, TraceEvent};

/// Render `buffers` — one `(track id, buffer)` pair per trial/case — as a
/// text digest. Track ids are emitted in the order given.
pub fn text_digest(buffers: &[(u64, &TraceBuffer)]) -> String {
    let mut out = String::new();
    for &(tid, buf) in buffers {
        let _ = writeln!(out, "== trace {tid}");
        let mut depth = 0usize;
        for ev in &buf.events {
            match ev {
                TraceEvent::Begin { at, cat, name } => {
                    let _ = writeln!(out, "{:>14}  {}B {cat}/{name}", at.to_string(), "  ".repeat(depth));
                    depth += 1;
                }
                TraceEvent::End { at } => {
                    depth = depth.saturating_sub(1);
                    let _ = writeln!(out, "{:>14}  {}E", at.to_string(), "  ".repeat(depth));
                }
                TraceEvent::Mark { at, cat, name } => {
                    let _ = writeln!(out, "{:>14}  {}i {cat}/{name}", at.to_string(), "  ".repeat(depth));
                }
            }
        }
        if !buf.counters.is_empty() {
            let _ = writeln!(out, "counters:");
            for (name, v) in &buf.counters {
                let _ = writeln!(out, "  {name} = {v}");
            }
        }
        if !buf.hists.is_empty() {
            let _ = writeln!(out, "histograms:");
            for (name, h) in &buf.hists {
                let _ = writeln!(out, "  {name}: {h}");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::Tracer;
    use sharebackup_sim::Time;

    #[test]
    fn digest_shows_nesting_counters_and_histograms() {
        let (t, sink) = Tracer::recording();
        t.span_begin(Time::from_millis(30), "recovery", "recovery");
        t.span(Time::from_millis(30), Time::from_millis(31), "recovery", "detection");
        t.span_end(Time::from_millis(31));
        t.add("engine.events", 7);
        t.record("flowsim.solve.rounds", 2);
        let buf = sink.borrow_mut().take();
        let d = text_digest(&[(3, &buf)]);
        assert!(d.starts_with("== trace 3\n"), "{d}");
        assert!(d.contains("B recovery/recovery"), "{d}");
        // The nested span is indented one level deeper.
        assert!(d.contains("  B recovery/detection"), "{d}");
        assert!(d.contains("engine.events = 7"), "{d}");
        assert!(d.contains("flowsim.solve.rounds: count=1"), "{d}");
    }

    #[test]
    fn digest_is_deterministic() {
        let (t, sink) = Tracer::recording();
        t.instant(Time::from_secs(1), "a", "x");
        t.add("z", 1);
        t.add("a", 1);
        let buf = sink.borrow_mut().take();
        let a = text_digest(&[(0, &buf)]);
        let b = text_digest(&[(0, &buf)]);
        assert_eq!(a, b);
        // Counters print in sorted (BTreeMap) order.
        let ia = a.find("  a = 1").expect("counter a");
        let iz = a.find("  z = 1").expect("counter z");
        assert!(ia < iz);
    }

    #[test]
    fn empty_buffers_render_header_only() {
        let buf = TraceBuffer::default();
        assert_eq!(text_digest(&[(0, &buf)]), "== trace 0\n");
        assert_eq!(text_digest(&[]), "");
    }
}
