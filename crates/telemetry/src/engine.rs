//! Instrumentation adapter for the discrete-event engine: wrap any
//! [`World`] in a [`TracedWorld`] to record per-event telemetry without
//! touching the world's own `handle` logic.

use sharebackup_sim::{Engine, Time, World};

use crate::sink::Tracer;

/// A [`World`] decorator that records, per dispatched event: the
/// `engine.events` counter, the `engine.queue_depth` histogram (pending
/// events at dispatch), and an instant named by the caller-supplied
/// `name_of` function (typically mapping an event enum to its variant
/// name). All recording short-circuits when the tracer is off.
pub struct TracedWorld<'a, W, F> {
    inner: &'a mut W,
    tracer: Tracer,
    name_of: F,
}

impl<'a, W, F> TracedWorld<'a, W, F> {
    /// Wrap `inner`, naming events via `name_of`.
    pub fn new(inner: &'a mut W, tracer: Tracer, name_of: F) -> Self {
        TracedWorld {
            inner,
            tracer,
            name_of,
        }
    }
}

impl<E, W: World<E>, F: FnMut(&E) -> &'static str> World<E> for TracedWorld<'_, W, F> {
    fn handle(&mut self, engine: &mut Engine<E>, now: Time, event: E) {
        if self.tracer.is_enabled() {
            self.tracer.add("engine.events", 1);
            let depth = u64::try_from(engine.pending()).unwrap_or(u64::MAX);
            self.tracer.record("engine.queue_depth", depth);
            self.tracer.instant(now, "engine", (self.name_of)(&event));
        }
        self.inner.handle(engine, now, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharebackup_sim::Duration;

    #[derive(Debug, PartialEq, Eq)]
    enum Ev {
        Tick,
        Stop,
    }

    struct Counting {
        ticks: usize,
    }

    impl World<Ev> for Counting {
        fn handle(&mut self, engine: &mut Engine<Ev>, now: Time, event: Ev) {
            if event == Ev::Tick {
                self.ticks += 1;
                if self.ticks < 3 {
                    engine.schedule(now + Duration::from_millis(1), Ev::Tick);
                } else {
                    engine.schedule(now + Duration::from_millis(1), Ev::Stop);
                }
            }
        }
    }

    #[test]
    fn traced_world_records_events_and_delegates() {
        let (tracer, sink) = Tracer::recording();
        let mut world = Counting { ticks: 0 };
        let mut engine = Engine::new();
        engine.schedule(Time::ZERO, Ev::Tick);
        {
            let mut traced = TracedWorld::new(&mut world, tracer, |ev: &Ev| match ev {
                Ev::Tick => "tick",
                Ev::Stop => "stop",
            });
            engine.run(&mut traced);
        }
        assert_eq!(world.ticks, 3, "inner world still ran");
        let buf = sink.borrow_mut().take();
        assert_eq!(buf.counters.get("engine.events"), Some(&4));
        let depth = buf.hists.get("engine.queue_depth").expect("recorded");
        assert_eq!(depth.count(), 4);
        let ticks = buf
            .events
            .iter()
            .filter(|e| matches!(e, crate::TraceEvent::Mark { name, .. } if name == "tick"))
            .count();
        assert_eq!(ticks, 3);
    }

    #[test]
    fn off_tracer_adds_no_events() {
        let mut world = Counting { ticks: 0 };
        let mut engine = Engine::new();
        engine.schedule(Time::ZERO, Ev::Tick);
        let mut traced = TracedWorld::new(&mut world, Tracer::off(), |_: &Ev| "ev");
        engine.run(&mut traced);
        assert_eq!(world.ticks, 3);
    }
}
