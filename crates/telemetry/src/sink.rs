//! The [`Sink`] receiver trait, the discarding [`NullSink`], and the
//! cheaply cloneable [`Tracer`] handle that instrumented code holds.
//!
//! Instrumentation sites call through a [`Tracer`]. A disabled tracer
//! ([`Tracer::off`], the default) carries no sink at all, so every
//! operation is a single `Option` discriminant check that the optimizer
//! folds away — hot loops can stay instrumented unconditionally.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use sharebackup_sim::Time;

use crate::buffer::MemSink;

/// Receiver for telemetry events. All timestamps are virtual [`Time`]
/// values from the simulation clock — never wall-clock readings, which
/// would break run-to-run determinism (DESIGN.md §7).
///
/// Spans nest per sink: `span_end` closes the most recently opened span,
/// exactly like the chrome-trace `B`/`E` event pairing the exporter emits.
pub trait Sink {
    /// Open a span named `name` (category `cat`) at virtual time `at`.
    fn span_begin(&mut self, at: Time, cat: &'static str, name: &str);
    /// Close the most recently opened span at virtual time `at`.
    fn span_end(&mut self, at: Time);
    /// Record a zero-duration instant event.
    fn instant(&mut self, at: Time, cat: &'static str, name: &str);
    /// Add `delta` to the monotonic counter `counter`.
    fn add(&mut self, counter: &'static str, delta: u64);
    /// Record `value` into the log-bucketed histogram `hist`.
    fn record(&mut self, hist: &'static str, value: u64);
}

/// A sink that discards everything. Exists so callers that want to pass
/// "no sink" explicitly have a named zero-cost implementation; a
/// [`Tracer::off`] handle short-circuits before even reaching it.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl Sink for NullSink {
    #[inline]
    fn span_begin(&mut self, _at: Time, _cat: &'static str, _name: &str) {}
    #[inline]
    fn span_end(&mut self, _at: Time) {}
    #[inline]
    fn instant(&mut self, _at: Time, _cat: &'static str, _name: &str) {}
    #[inline]
    fn add(&mut self, _counter: &'static str, _delta: u64) {}
    #[inline]
    fn record(&mut self, _hist: &'static str, _value: u64) {}
}

/// Cloneable handle to an optional [`Sink`]. Clones share the same sink,
/// so one recording can be fed from several instrumented layers (engine,
/// flow simulator, controller) of the same trial.
///
/// `Tracer` deliberately holds an `Rc`, not an `Arc`: a trace buffer
/// belongs to exactly one trial, and parallel trial harnesses create one
/// tracer *inside* each worker and ship only the plain-data
/// [`crate::TraceBuffer`] across threads (DESIGN.md §7.1).
#[derive(Clone, Default)]
pub struct Tracer {
    sink: Option<Rc<RefCell<dyn Sink>>>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Tracer {
    /// A disabled tracer: every operation is a no-op costing one branch.
    pub fn off() -> Tracer {
        Tracer { sink: None }
    }

    /// A tracer recording into a fresh in-memory buffer. Returns the
    /// tracer plus a handle to the sink; call [`MemSink::take`] on the
    /// handle after the instrumented run to extract the buffer.
    pub fn recording() -> (Tracer, Rc<RefCell<MemSink>>) {
        let sink = Rc::new(RefCell::new(MemSink::new()));
        (Tracer::from_sink(sink.clone()), sink)
    }

    /// A tracer feeding an arbitrary shared sink.
    pub fn from_sink(sink: Rc<RefCell<dyn Sink>>) -> Tracer {
        Tracer { sink: Some(sink) }
    }

    /// Whether events are being recorded. Instrumentation that must do
    /// work *before* emitting (formatting a name, gathering stats) should
    /// guard on this; plain emit calls need not bother.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Open a span at virtual time `at`.
    #[inline]
    pub fn span_begin(&self, at: Time, cat: &'static str, name: &str) {
        if let Some(s) = &self.sink {
            s.borrow_mut().span_begin(at, cat, name);
        }
    }

    /// Close the most recently opened span at virtual time `at`.
    #[inline]
    pub fn span_end(&self, at: Time) {
        if let Some(s) = &self.sink {
            s.borrow_mut().span_end(at);
        }
    }

    /// Record a complete span `[from, to]` in one call.
    #[inline]
    pub fn span(&self, from: Time, to: Time, cat: &'static str, name: &str) {
        if let Some(s) = &self.sink {
            let mut s = s.borrow_mut();
            s.span_begin(from, cat, name);
            s.span_end(to);
        }
    }

    /// Record a zero-duration instant event.
    #[inline]
    pub fn instant(&self, at: Time, cat: &'static str, name: &str) {
        if let Some(s) = &self.sink {
            s.borrow_mut().instant(at, cat, name);
        }
    }

    /// Add `delta` to the monotonic counter `counter`.
    #[inline]
    pub fn add(&self, counter: &'static str, delta: u64) {
        if let Some(s) = &self.sink {
            s.borrow_mut().add(counter, delta);
        }
    }

    /// Record `value` into the log-bucketed histogram `hist`.
    #[inline]
    pub fn record(&self, hist: &'static str, value: u64) {
        if let Some(s) = &self.sink {
            s.borrow_mut().record(hist, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_tracer_is_disabled_and_inert() {
        let t = Tracer::off();
        assert!(!t.is_enabled());
        // No sink: these must all be no-ops, not panics.
        t.span_begin(Time::ZERO, "x", "y");
        t.span_end(Time::from_secs(1));
        t.instant(Time::ZERO, "x", "y");
        t.add("c", 1);
        t.record("h", 42);
    }

    #[test]
    fn default_tracer_is_off() {
        assert!(!Tracer::default().is_enabled());
    }

    #[test]
    fn clones_share_the_same_sink() {
        let (t, sink) = Tracer::recording();
        let t2 = t.clone();
        t.add("c", 1);
        t2.add("c", 2);
        let buf = sink.borrow_mut().take();
        assert_eq!(buf.counters.get("c"), Some(&3));
    }

    #[test]
    fn recording_tracer_captures_span_tree() {
        let (t, sink) = Tracer::recording();
        assert!(t.is_enabled());
        t.span_begin(Time::ZERO, "cat", "outer");
        t.span(Time::from_millis(1), Time::from_millis(2), "cat", "inner");
        t.span_end(Time::from_millis(3));
        let buf = sink.borrow_mut().take();
        let spans = buf.spans();
        assert_eq!(spans.len(), 2);
        // spans() reports in begin order: outer first.
        assert_eq!(spans[0].name, "outer");
        assert_eq!(spans[1].name, "inner");
        assert_eq!(spans[0].end.since(spans[0].begin), Time::from_millis(3).since(Time::ZERO));
    }
}
