//! In-memory recording: [`TraceEvent`], [`TraceBuffer`], and the
//! [`MemSink`] that accumulates one trial's telemetry.
//!
//! A `TraceBuffer` is plain owned data (`Send`), so parallel trial
//! harnesses record into per-worker sinks and ship the buffers back for
//! trial-ordered merging — the step that keeps `--jobs N` output
//! byte-identical (DESIGN.md §7.1).

use std::collections::BTreeMap;

use sharebackup_sim::Time;

use crate::hist::LogHistogram;
use crate::sink::Sink;

/// One recorded event, in emission order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A span opened at `at`.
    Begin {
        /// Virtual open time.
        at: Time,
        /// Category (fixed at the instrumentation site).
        cat: &'static str,
        /// Span name.
        name: String,
    },
    /// The most recently opened span closed at `at`.
    End {
        /// Virtual close time.
        at: Time,
    },
    /// A zero-duration ("instant") event at `at`. Named `Mark` (after
    /// `performance.mark`) so the identifier can't be confused with the
    /// wall-clock type the ambient-rng lint bans from this crate.
    Mark {
        /// Virtual time of the event.
        at: Time,
        /// Category (fixed at the instrumentation site).
        cat: &'static str,
        /// Event name.
        name: String,
    },
}

/// A completed span reconstructed from a buffer's `Begin`/`End` pairs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// Category.
    pub cat: &'static str,
    /// Name.
    pub name: String,
    /// Open time.
    pub begin: Time,
    /// Close time.
    pub end: Time,
    /// Nesting depth at open (0 = top level).
    pub depth: usize,
}

/// One trial's worth of recorded telemetry: the event stream plus final
/// counter values and histograms. Plain data — `Send`, `Clone`, ordered
/// maps only, so every export of the same buffer is byte-identical.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceBuffer {
    /// Span/instant events in emission order.
    pub events: Vec<TraceEvent>,
    /// Final monotonic counter values.
    pub counters: BTreeMap<&'static str, u64>,
    /// Log-bucketed histograms by name.
    pub hists: BTreeMap<&'static str, LogHistogram>,
}

impl TraceBuffer {
    /// Reconstruct completed spans (in `Begin` order) by matching each
    /// `End` to the innermost open `Begin`. Unclosed spans are omitted.
    pub fn spans(&self) -> Vec<Span> {
        let mut out: Vec<Span> = Vec::new();
        // Stack of indices into `out` for spans still open.
        let mut open: Vec<usize> = Vec::new();
        for ev in &self.events {
            match ev {
                TraceEvent::Begin { at, cat, name } => {
                    open.push(out.len());
                    out.push(Span {
                        cat,
                        name: name.clone(),
                        begin: *at,
                        end: *at,
                        depth: open.len() - 1,
                    });
                }
                TraceEvent::End { at } => {
                    if let Some(i) = open.pop() {
                        out[i].end = *at;
                    }
                }
                TraceEvent::Mark { .. } => {}
            }
        }
        // Drop spans never closed.
        for &i in open.iter().rev() {
            out.remove(i);
        }
        out
    }

    /// Completed spans restricted to category `cat`, in `Begin` order.
    /// Depths are still measured against the full stream (a filtered span
    /// nested inside another category keeps its true depth).
    pub fn spans_in(&self, cat: &str) -> Vec<Span> {
        self.spans().into_iter().filter(|s| s.cat == cat).collect()
    }

    /// Instant ("mark") events restricted to category `cat`, as
    /// `(name, at)` pairs in emission order.
    pub fn marks_in(&self, cat: &str) -> Vec<(String, Time)> {
        self.events
            .iter()
            .filter_map(|ev| match ev {
                TraceEvent::Mark { at, cat: c, name } if *c == cat => {
                    Some((name.clone(), *at))
                }
                _ => None,
            })
            .collect()
    }

    /// The latest timestamp appearing in the event stream, or
    /// [`Time::ZERO`] if there are no events.
    pub fn last_event_time(&self) -> Time {
        self.events
            .iter()
            .map(|ev| match ev {
                TraceEvent::Begin { at, .. }
                | TraceEvent::End { at }
                | TraceEvent::Mark { at, .. } => *at,
            })
            .max()
            .unwrap_or(Time::ZERO)
    }
}

/// A [`Sink`] that records into a [`TraceBuffer`].
#[derive(Debug, Default)]
pub struct MemSink {
    buf: TraceBuffer,
    depth: usize,
}

impl MemSink {
    /// An empty sink.
    pub fn new() -> MemSink {
        MemSink::default()
    }

    /// Extract the recorded buffer, leaving the sink empty (and resetting
    /// span depth). Usable through the `Rc<RefCell<MemSink>>` handle even
    /// while instrumented structures still hold tracer clones.
    pub fn take(&mut self) -> TraceBuffer {
        self.depth = 0;
        std::mem::take(&mut self.buf)
    }

    /// Read-only view of the buffer recorded so far.
    pub fn buffer(&self) -> &TraceBuffer {
        &self.buf
    }

    /// Spans currently open (begun but not ended).
    pub fn open_spans(&self) -> usize {
        self.depth
    }
}

impl Sink for MemSink {
    fn span_begin(&mut self, at: Time, cat: &'static str, name: &str) {
        self.depth += 1;
        self.buf.events.push(TraceEvent::Begin {
            at,
            cat,
            name: name.to_string(),
        });
    }

    fn span_end(&mut self, at: Time) {
        // An unmatched end would corrupt every later pairing; drop it.
        if self.depth == 0 {
            return;
        }
        self.depth -= 1;
        self.buf.events.push(TraceEvent::End { at });
    }

    fn instant(&mut self, at: Time, cat: &'static str, name: &str) {
        self.buf.events.push(TraceEvent::Mark {
            at,
            cat,
            name: name.to_string(),
        });
    }

    fn add(&mut self, counter: &'static str, delta: u64) {
        *self.buf.counters.entry(counter).or_insert(0) += delta;
    }

    fn record(&mut self, hist: &'static str, value: u64) {
        self.buf.hists.entry(hist).or_default().record(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_match_ends_to_innermost_begin() {
        let mut s = MemSink::new();
        s.span_begin(Time::from_secs(1), "a", "outer");
        s.span_begin(Time::from_secs(2), "a", "inner");
        s.span_end(Time::from_secs(3));
        s.span_end(Time::from_secs(4));
        let spans = s.take().spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(
            (spans[0].name.as_str(), spans[0].begin, spans[0].end, spans[0].depth),
            ("outer", Time::from_secs(1), Time::from_secs(4), 0)
        );
        assert_eq!(
            (spans[1].name.as_str(), spans[1].begin, spans[1].end, spans[1].depth),
            ("inner", Time::from_secs(2), Time::from_secs(3), 1)
        );
    }

    #[test]
    fn unmatched_end_is_dropped_and_unclosed_begin_omitted() {
        let mut s = MemSink::new();
        s.span_end(Time::from_secs(9)); // stray end: ignored
        s.span_begin(Time::from_secs(1), "a", "closed");
        s.span_end(Time::from_secs(2));
        s.span_begin(Time::from_secs(3), "a", "dangling");
        assert_eq!(s.open_spans(), 1);
        let spans = s.take().spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "closed");
    }

    #[test]
    fn counters_accumulate_and_histograms_bucket() {
        let mut s = MemSink::new();
        s.add("x", 2);
        s.add("x", 3);
        s.record("h", 7);
        s.record("h", 9);
        let buf = s.take();
        assert_eq!(buf.counters.get("x"), Some(&5));
        let h = buf.hists.get("h").expect("recorded");
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), Some(7));
        assert_eq!(h.max(), Some(9));
    }

    #[test]
    fn take_resets_the_sink() {
        let mut s = MemSink::new();
        s.add("x", 1);
        s.span_begin(Time::ZERO, "a", "open");
        let first = s.take();
        assert_eq!(first.events.len(), 1);
        assert_eq!(s.open_spans(), 0);
        assert_eq!(s.take(), TraceBuffer::default());
    }

    #[test]
    fn category_filters_select_spans_and_marks() {
        let mut s = MemSink::new();
        s.span_begin(Time::from_secs(1), "failover", "election");
        s.instant(Time::from_secs(2), "failover", "control-retry");
        s.instant(Time::from_secs(2), "chaos", "flow-degraded");
        s.span_end(Time::from_secs(3));
        s.span_begin(Time::from_secs(4), "chaos", "burst");
        s.span_end(Time::from_secs(5));
        let buf = s.take();
        let f = buf.spans_in("failover");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].name, "election");
        assert_eq!(buf.spans_in("chaos").len(), 1);
        assert_eq!(
            buf.marks_in("failover"),
            vec![("control-retry".to_string(), Time::from_secs(2))]
        );
        assert!(buf.marks_in("nope").is_empty());
    }

    #[test]
    fn last_event_time_tracks_maximum() {
        let mut s = MemSink::new();
        assert_eq!(s.buffer().last_event_time(), Time::ZERO);
        s.instant(Time::from_secs(5), "a", "late");
        s.instant(Time::from_secs(2), "a", "early");
        assert_eq!(s.buffer().last_event_time(), Time::from_secs(5));
    }
}
