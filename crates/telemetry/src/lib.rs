//! Virtual-time observability for the ShareBackup simulation stack.
//!
//! The paper's central claim is a recovery-*breakdown* — failure →
//! detection → diagnosis → circuit reconfiguration → traffic restored —
//! so this crate records structured telemetry stamped with the sim's
//! virtual [`Time`](sharebackup_sim::Time), never wall-clock readings:
//!
//! | module | provides |
//! |---|---|
//! | [`sink`] | [`Sink`] trait, no-op [`NullSink`], cloneable [`Tracer`] handle |
//! | [`buffer`] | [`MemSink`] / [`TraceBuffer`]: plain-data per-trial recordings |
//! | [`hist`] | [`LogHistogram`]: O(1) log₂-bucketed `u64` histogram |
//! | [`chrome`] | [`chrome_trace`]: Trace Event Format JSON for `ui.perfetto.dev` |
//! | [`digest`] | [`text_digest`]: deterministic plain-text rendering |
//! | [`summary`] | [`summarize_chrome_trace`]: per-phase duration tables |
//! | [`engine`] | [`TracedWorld`]: drop-in event-loop instrumentation |
//!
//! Design rules:
//!
//! * **~Zero cost when off.** Instrumented code holds a [`Tracer`]; the
//!   disabled handle ([`Tracer::off`]) carries no sink, so every call is
//!   one branch. Hot paths need no `#[cfg]` gating.
//! * **Deterministic output.** Buffers are plain ordered data; exporters
//!   iterate in insertion/`BTreeMap` order only. Parallel harnesses
//!   record per-trial buffers and merge them in trial order, so trace
//!   files are byte-identical for every `--jobs N` (DESIGN.md §7.1).
//! * **Virtual time only.** Timestamps come from the simulation clock;
//!   the `cargo xtask lint` ambient-rng rule keeps `Instant`/`SystemTime`
//!   out of this crate like every other sim-path crate.

#![warn(missing_docs)]

pub mod buffer;
pub mod chrome;
pub mod digest;
pub mod engine;
pub mod hist;
pub mod sink;
pub mod summary;

pub use buffer::{MemSink, Span, TraceBuffer, TraceEvent};
pub use chrome::chrome_trace;
pub use digest::text_digest;
pub use engine::TracedWorld;
pub use hist::LogHistogram;
pub use sink::{NullSink, Sink, Tracer};
pub use summary::summarize_chrome_trace;
