//! Chrome-trace (Trace Event Format) export, loadable in `ui.perfetto.dev`
//! or `chrome://tracing`.
//!
//! Virtual nanoseconds map to trace microseconds (the format's native
//! unit), so a 1 ms virtual span renders as 1 ms. Buffers are emitted in
//! the order given — callers pass trial-ordered slices, which is what
//! keeps the file byte-identical across `--jobs N` (DESIGN.md §7.1).

use minijson::{json, Value};
use sharebackup_sim::Time;

use crate::buffer::{TraceBuffer, TraceEvent};

/// Trace-format timestamp (µs) for a virtual instant.
fn ts_us(at: Time) -> f64 {
    // Exact for all sim times below 2^53 ns (~104 virtual days); division
    // by 1000 is the ns→µs unit change the trace format expects.
    #[allow(clippy::cast_precision_loss)]
    let ns = at.as_nanos() as f64;
    ns / 1000.0
}

/// Render `buffers` — one `(track id, buffer)` pair per trial/case — as a
/// chrome-trace JSON document. Spans become `B`/`E` pairs, instants `i`
/// events, counters one `C` sample at the buffer's last event time, and
/// histograms one `C` sample per summary statistic. Each buffer gets its
/// own `tid` track, named via a `thread_name` metadata event.
pub fn chrome_trace(buffers: &[(u64, &TraceBuffer)]) -> String {
    let mut events: Vec<Value> = Vec::new();
    for &(tid, buf) in buffers {
        events.push(json!({
            "ph": "M",
            "pid": 0,
            "tid": tid,
            "name": "thread_name",
            "args": { "name": format!("trial {tid}") },
        }));
        for ev in &buf.events {
            events.push(match ev {
                TraceEvent::Begin { at, cat, name } => json!({
                    "ph": "B",
                    "ts": ts_us(*at),
                    "pid": 0,
                    "tid": tid,
                    "cat": *cat,
                    "name": name.as_str(),
                }),
                TraceEvent::End { at } => json!({
                    "ph": "E",
                    "ts": ts_us(*at),
                    "pid": 0,
                    "tid": tid,
                }),
                TraceEvent::Mark { at, cat, name } => json!({
                    "ph": "i",
                    "ts": ts_us(*at),
                    "pid": 0,
                    "tid": tid,
                    "cat": *cat,
                    "name": name.as_str(),
                    "s": "t",
                }),
            });
        }
        let end = ts_us(buf.last_event_time());
        for (name, value) in &buf.counters {
            events.push(json!({
                "ph": "C",
                "ts": end,
                "pid": 0,
                "tid": tid,
                "cat": "counter",
                "name": *name,
                "args": { "value": *value },
            }));
        }
        for (name, h) in &buf.hists {
            events.push(json!({
                "ph": "C",
                "ts": end,
                "pid": 0,
                "tid": tid,
                "cat": "histogram",
                "name": *name,
                "args": {
                    "count": h.count(),
                    "min": h.min().unwrap_or(0),
                    "p50": h.quantile(0.50).unwrap_or(0),
                    "p90": h.quantile(0.90).unwrap_or(0),
                    "p99": h.quantile(0.99).unwrap_or(0),
                    "max": h.max().unwrap_or(0),
                },
            }));
        }
    }
    let doc = json!({
        "displayTimeUnit": "ms",
        "traceEvents": events,
    });
    let mut s = minijson::to_string(&doc).expect("trace json is finite"); // lint:allow(unwrap)
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{Sink, Tracer};

    fn sample_buffer() -> TraceBuffer {
        let (t, sink) = Tracer::recording();
        t.span_begin(Time::from_millis(1), "recovery", "recovery");
        t.span(Time::from_millis(1), Time::from_millis(2), "recovery", "detection");
        t.instant(Time::from_millis(3), "recovery", "restored");
        t.span_end(Time::from_millis(3));
        t.add("engine.events", 4);
        sink.borrow_mut().record("flowsim.solve.rounds", 3);
        let buf = sink.borrow_mut().take();
        buf
    }

    #[test]
    fn exports_well_formed_trace_events() {
        let buf = sample_buffer();
        let s = chrome_trace(&[(0, &buf)]);
        let doc = minijson::from_str(&s).expect("valid json");
        let events = doc["traceEvents"].as_array().expect("array");
        // metadata + 2 B + 2 E + 1 i + 1 counter C + 1 histogram C = 8
        assert_eq!(events.len(), 8);
        assert_eq!(events[0]["ph"], "M");
        assert_eq!(events[1]["ph"], "B");
        assert_eq!(events[1]["name"], "recovery");
        // 1 ms virtual → 1000 µs trace time.
        assert_eq!(events[1]["ts"], 1000.0);
        let counter = events
            .iter()
            .find(|e| e["ph"] == "C" && e["name"] == "engine.events")
            .expect("counter event");
        assert_eq!(counter["args"]["value"], 4);
    }

    #[test]
    fn output_is_deterministic_and_track_ordered() {
        let buf = sample_buffer();
        let a = chrome_trace(&[(0, &buf), (1, &buf)]);
        let b = chrome_trace(&[(0, &buf), (1, &buf)]);
        assert_eq!(a, b);
        // Track ids appear in the order given, not sorted by content.
        let doc = minijson::from_str(&a).expect("valid json");
        let events = doc["traceEvents"].as_array().expect("array");
        let first_tid = events[0]["tid"].as_i64().expect("tid");
        assert_eq!(first_tid, 0);
    }

    #[test]
    fn empty_input_still_yields_a_document() {
        let s = chrome_trace(&[]);
        let doc = minijson::from_str(&s).expect("valid json");
        assert_eq!(doc["traceEvents"].as_array().map(<[Value]>::len), Some(0));
    }
}
