//! Per-phase summary tables from an exported chrome-trace file — the
//! engine behind `cargo xtask trace summarize <file>`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use minijson::Value;
use sharebackup_sim::Summary;

/// Parse a chrome-trace JSON document (as produced by
/// [`crate::chrome_trace`], but any conformant `B`/`E`/`X` stream works)
/// and render per-span-name duration [`Summary`] tables plus instant-event
/// counts. Durations are in trace microseconds; spans are matched per
/// `(pid, tid)` track with a LIFO stack, mirroring the trace format's
/// pairing rule. Returns a human-readable table or a parse-error message.
pub fn summarize_chrome_trace(text: &str) -> Result<String, String> {
    let doc = minijson::from_str(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or_else(|| "missing \"traceEvents\" array".to_string())?;

    // Open-span stacks per (pid, tid) track.
    let mut stacks: BTreeMap<(i64, i64), Vec<(String, f64)>> = BTreeMap::new();
    let mut durations: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    let mut instants: BTreeMap<String, u64> = BTreeMap::new();
    let mut tracks: std::collections::BTreeSet<(i64, i64)> = std::collections::BTreeSet::new();

    for ev in events {
        let ph = ev.get("ph").and_then(Value::as_str).unwrap_or("");
        let track = (
            ev.get("pid").and_then(Value::as_i64).unwrap_or(0),
            ev.get("tid").and_then(Value::as_i64).unwrap_or(0),
        );
        let ts = ev.get("ts").and_then(Value::as_f64);
        let name = ev.get("name").and_then(Value::as_str);
        match ph {
            "B" => {
                let (Some(ts), Some(name)) = (ts, name) else {
                    return Err("\"B\" event missing ts or name".to_string());
                };
                tracks.insert(track);
                stacks.entry(track).or_default().push((name.to_string(), ts));
            }
            "E" => {
                let Some(ts) = ts else {
                    return Err("\"E\" event missing ts".to_string());
                };
                let Some((name, begin)) = stacks.entry(track).or_default().pop() else {
                    return Err(format!("unmatched \"E\" event on track {track:?}"));
                };
                durations.entry(name).or_default().push(ts - begin);
            }
            "X" => {
                let (Some(name), Some(dur)) =
                    (name, ev.get("dur").and_then(Value::as_f64))
                else {
                    return Err("\"X\" event missing name or dur".to_string());
                };
                tracks.insert(track);
                durations.entry(name.to_string()).or_default().push(dur);
            }
            "i" | "I" => {
                if let Some(name) = name {
                    tracks.insert(track);
                    *instants.entry(name.to_string()).or_insert(0) += 1;
                }
            }
            _ => {} // metadata, counters, flow events: not summarized
        }
    }
    let dangling: usize = stacks.values().map(Vec::len).sum();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} span name(s) over {} track(s){}",
        durations.len(),
        tracks.len(),
        if dangling > 0 {
            format!(" ({dangling} unclosed span(s) ignored)")
        } else {
            String::new()
        }
    );
    let _ = writeln!(
        out,
        "{:<28} {:>7} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "span (us)", "count", "mean", "p50", "p90", "p99", "max"
    );
    for (name, samples) in &durations {
        if let Some(s) = Summary::of(samples) {
            let _ = writeln!(
                out,
                "{name:<28} {:>7} {:>12.3} {:>12.3} {:>12.3} {:>12.3} {:>12.3}",
                s.count, s.mean, s.p50, s.p90, s.p99, s.max
            );
        }
    }
    if !instants.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(out, "{:<28} {:>7}", "instant", "count");
        for (name, n) in &instants {
            let _ = writeln!(out, "{name:<28} {n:>7}");
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::TraceBuffer;
    use crate::chrome::chrome_trace;
    use crate::sink::Tracer;
    use sharebackup_sim::Time;

    fn recovery_buffer() -> TraceBuffer {
        let (t, sink) = Tracer::recording();
        let t0 = Time::from_secs(30);
        t.span_begin(t0, "recovery", "recovery");
        t.span(t0, t0 + sharebackup_sim::Duration::from_millis(1), "recovery", "detection");
        t.instant(t0 + sharebackup_sim::Duration::from_millis(2), "recovery", "restored");
        t.span_end(t0 + sharebackup_sim::Duration::from_millis(2));
        let buf = sink.borrow_mut().take();
        drop(t);
        buf
    }

    #[test]
    fn summarizes_round_tripped_trace() {
        let buf = recovery_buffer();
        let json = chrome_trace(&[(0, &buf), (1, &buf)]);
        let table = summarize_chrome_trace(&json).expect("summarize");
        assert!(table.contains("2 span name(s) over 2 track(s)"), "{table}");
        // detection: 1 ms = 1000 µs on both tracks.
        let detection = table
            .lines()
            .find(|l| l.starts_with("detection"))
            .expect("detection row");
        assert!(detection.contains("2"), "{detection}");
        assert!(detection.contains("1000.000"), "{detection}");
        assert!(table.contains("restored"), "{table}");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(summarize_chrome_trace("not json").is_err());
        assert!(summarize_chrome_trace("{}").is_err());
        assert!(
            summarize_chrome_trace(r#"{"traceEvents": [{"ph": "E", "ts": 1.0}]}"#)
                .unwrap_err()
                .contains("unmatched"),
        );
    }

    #[test]
    fn accepts_complete_x_events() {
        let json = r#"{"traceEvents": [
            {"ph": "X", "ts": 0.0, "dur": 5.0, "pid": 0, "tid": 0, "name": "solve"}
        ]}"#;
        let table = summarize_chrome_trace(json).expect("summarize");
        assert!(table.lines().any(|l| l.starts_with("solve")), "{table}");
    }
}
