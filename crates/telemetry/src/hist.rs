//! Log-bucketed histogram for `u64` samples.
//!
//! Fixed memory (65 power-of-two buckets), O(1) insert, deterministic
//! quantile estimates — the right trade-off for hot-loop telemetry where
//! exact sample retention would dominate the cost of the code under
//! observation.

/// One bucket per power of two: bucket 0 holds the value 0, bucket `b ≥ 1`
/// holds values in `[2^(b-1), 2^b)`; bucket 64 holds `[2^63, u64::MAX]`.
const BUCKETS: usize = 65;

/// A log₂-bucketed histogram of `u64` samples.
///
/// Quantiles are *bucket lower bounds*: `quantile(q)` returns the lower
/// bound of the bucket containing the rank-`q` sample, i.e. an
/// underestimate by at most 2×. Exact `min`/`max`/`count`/`sum` are kept
/// alongside, so means are exact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// Index of the bucket holding `v`.
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

/// Lower bound of bucket `b` (inclusive).
fn bucket_floor(b: usize) -> u64 {
    if b == 0 {
        0
    } else {
        1u64 << (b - 1)
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Exact arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        #[allow(clippy::cast_precision_loss)] // telemetry display precision
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Lower bound of the bucket containing the rank-`q` sample
    /// (`0.0 ≤ q ≤ 1.0`), clamped to the exact `min`/`max`. `None` if
    /// empty or `q` is not a valid probability.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        // Rank of the q-th sample, 1-based; q=0 → first, q=1 → last.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        #[allow(clippy::cast_precision_loss)]
        let rank = ((q * (self.count - 1) as f64).round() as u64) + 1;
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(bucket_floor(b).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (b, n) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += n;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl std::fmt::Display for LogHistogram {
    /// `count=… min=… p50~… p90~… p99~… max=… mean~…` — the `~` marks
    /// bucket-resolution estimates.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (self.min(), self.max(), self.mean()) {
            (Some(min), Some(max), Some(mean)) => write!(
                f,
                "count={} min={} p50~{} p90~{} p99~{} max={} mean~{:.2}",
                self.count,
                min,
                self.quantile(0.50).unwrap_or(0),
                self.quantile(0.90).unwrap_or(0),
                self.quantile(0.99).unwrap_or(0),
                max,
                mean,
            ),
            _ => write!(f, "count=0"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_floor(64), 1u64 << 63);
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX] {
            let b = bucket_of(v);
            assert!(bucket_floor(b) <= v, "floor({b}) > {v}");
        }
    }

    #[test]
    fn empty_histogram_reports_none() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.to_string(), "count=0");
    }

    #[test]
    fn single_sample_quantiles_are_exact() {
        let mut h = LogHistogram::new();
        h.record(100);
        assert_eq!(h.quantile(0.0), Some(100)); // clamped to min
        assert_eq!(h.quantile(0.5), Some(100));
        assert_eq!(h.quantile(1.0), Some(100));
        assert_eq!(h.mean(), Some(100.0));
    }

    #[test]
    fn quantiles_are_bucket_floors_within_2x() {
        let mut h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5).expect("nonempty");
        // True median 500 lives in bucket [256, 512).
        assert_eq!(p50, 256);
        let p99 = h.quantile(0.99).expect("nonempty");
        assert_eq!(p99, 512); // 990 is in [512, 1024)
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(1000));
        assert_eq!(h.mean(), Some(500.5));
    }

    #[test]
    fn invalid_quantile_is_none() {
        let mut h = LogHistogram::new();
        h.record(1);
        assert_eq!(h.quantile(-0.1), None);
        assert_eq!(h.quantile(1.1), None);
        assert_eq!(h.quantile(f64::NAN), None);
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.record(1);
        a.record(10);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), Some(1));
        assert_eq!(a.max(), Some(1000));
        assert_eq!(a.sum(), 1011);
    }
}
