//! Property-based structural tests of the topology crates, over random
//! parameters and random operation sequences.

use proptest::prelude::*;

use sharebackup_topo::{
    CircuitSwitch, CircuitTech, CsPort, F10Topology, FatTree, FatTreeConfig, GroupId,
    HostAddr, NodeKind, ShareBackup, ShareBackupConfig,
};

fn ks() -> impl Strategy<Value = usize> {
    prop::sample::select(vec![4usize, 6, 8])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn fattree_structure_holds(k in ks()) {
        let ft = FatTree::build(FatTreeConfig::new(k));
        let half = k / 2;
        prop_assert_eq!(ft.hosts().len(), k * k * k / 4);
        // Every switch has degree k; every host degree 1.
        for n in ft.net.node_ids() {
            let deg = ft.net.incident(n).len();
            match ft.net.node(n).kind {
                NodeKind::Host => prop_assert_eq!(deg, 1),
                _ => prop_assert_eq!(deg, k),
            }
        }
        // Cross-pod path count is (k/2)² and all are disjoint in the core.
        let a = ft.host(HostAddr { pod: 0, edge: 0, host: 0 });
        let b = ft.host(HostAddr { pod: 1, edge: 0, host: 0 });
        let paths = ft.host_paths(a, b);
        prop_assert_eq!(paths.len(), half * half);
        let mut cores: Vec<_> = paths.iter().map(|p| p[3]).collect();
        cores.sort();
        cores.dedup();
        prop_assert_eq!(cores.len(), half * half, "each path uses its own core");
    }

    #[test]
    fn f10_equals_fattree_in_counts(k in ks()) {
        let ft = FatTree::build(FatTreeConfig::new(k));
        let f10 = F10Topology::build(FatTreeConfig::new(k));
        prop_assert_eq!(ft.net.node_count(), f10.net.node_count());
        prop_assert_eq!(ft.net.link_count(), f10.net.link_count());
        // Both connect every host pair at the same distance.
        let a_ft = ft.host(HostAddr { pod: 0, edge: 0, host: 0 });
        let b_ft = ft.host(HostAddr { pod: k - 1, edge: 0, host: 0 });
        let a_f10 = f10.host(HostAddr { pod: 0, edge: 0, host: 0 });
        let b_f10 = f10.host(HostAddr { pod: k - 1, edge: 0, host: 0 });
        prop_assert_eq!(ft.net.distance(a_ft, b_ft), f10.net.distance(a_f10, b_f10));
    }

    #[test]
    fn random_circuit_operations_keep_matching_valid(
        ops in prop::collection::vec((0usize..12, 0usize..12, any::<bool>()), 1..60)
    ) {
        let mut cs = CircuitSwitch::new(CircuitTech::Crosspoint, 12);
        for (a, b, connect) in ops {
            if connect {
                if a != b {
                    cs.connect(CsPort(a), CsPort(b));
                }
            } else {
                cs.disconnect(CsPort(a));
            }
            // Invariant: the matching is symmetric and irreflexive.
            for p in 0..12 {
                if let Some(q) = cs.mate(CsPort(p)) {
                    prop_assert_ne!(q.0, p);
                    prop_assert_eq!(cs.mate(q), Some(CsPort(p)));
                }
            }
        }
    }

    #[test]
    fn sharebackup_build_realizes_fattree(k in ks(), n in 1usize..3) {
        let sb = ShareBackup::build(ShareBackupConfig::new(k, n));
        // Same node/link counts as the plain fat-tree.
        let ft = FatTree::build(FatTreeConfig::new(k));
        prop_assert_eq!(sb.slots.net.link_count(), ft.net.link_count());
        // Derived circuit connectivity equals the slot links.
        let derived = sb.derived_links();
        prop_assert_eq!(derived.len(), ft.net.link_count());
        // Every group's spares are exactly n.
        for g in sb.group_ids() {
            prop_assert_eq!(sb.spares(g).len(), n);
        }
    }

    #[test]
    fn replacement_chains_preserve_realization(
        k in prop::sample::select(vec![4usize, 6]),
        chain in prop::collection::vec((0usize..15, 0usize..3), 1..10)
    ) {
        let mut sb = ShareBackup::build(ShareBackupConfig::new(k, 1));
        for (gi, si) in chain {
            let groups = sb.group_ids();
            let g = groups[gi % groups.len()];
            let slot = g.slot(si % (k / 2));
            if let Some(&spare) = sb.spares(g).first() {
                sb.replace(slot, spare);
            }
        }
        let expected = sb.slots.net.link_count();
        prop_assert_eq!(sb.derived_links().len(), expected);
        // All slots still occupied by exactly one healthy switch.
        for g in sb.group_ids() {
            for s in 0..k / 2 {
                let occ = sb.occupant(g.slot(s));
                prop_assert!(sb.phys(occ).healthy);
            }
        }
    }

    #[test]
    fn host_addr_bijection(k in ks()) {
        let count = k * k * k / 4;
        let mut seen = vec![false; count];
        for pod in 0..k {
            for e in 0..k / 2 {
                for h in 0..k / 2 {
                    let idx = HostAddr { pod, edge: e, host: h }.to_index(k);
                    prop_assert!(!seen[idx], "collision at {idx}");
                    seen[idx] = true;
                }
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }
}

#[test]
fn diagnosis_configs_never_involve_hosts_or_occupied_interfaces() {
    // Scan every interface of every switch: diagnosis partners must be
    // switches (never hosts), and at most 3 configurations are offered.
    let sb = ShareBackup::build(ShareBackupConfig::new(6, 1));
    for g in sb.group_ids() {
        for &p in sb.group_members(g) {
            for iface in 0..6 {
                let configs = sb.diagnosis_configs(p, iface);
                assert!(configs.len() <= 3);
                for c in configs {
                    // Partner is a physical switch id — by type. Check it
                    // belongs to a plausible group.
                    let partner_group = sb.phys(c.partner.0).group;
                    let _ = partner_group; // existence is the check
                    assert!(c.side_hops <= 1);
                }
            }
        }
    }
}

#[test]
fn core_group_stride_matches_paper() {
    // "core switches whose indices are in k/2 intervals form a failure
    // group": group u = { j·k/2 + u }.
    let sb = ShareBackup::build(ShareBackupConfig::new(8, 1));
    let half = 4;
    for u in 0..half {
        for j in 0..half {
            let slot = GroupId::core(u).slot(j);
            let node = sb.slot_node(slot);
            assert_eq!(sb.slots.net.node(node).index, j * half + u);
        }
    }
}
