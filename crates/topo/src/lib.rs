#![warn(missing_docs)]
//! # sharebackup-topo
//!
//! Topology substrate for the ShareBackup reproduction.
//!
//! This crate builds every network the paper simulates or proposes:
//!
//! * [`fattree`] — the k-ary fat-tree of Al-Fares et al. (SIGCOMM'08), the
//!   base architecture ShareBackup augments and one of the two rerouting
//!   baselines of the paper's §2.2 failure study.
//! * [`f10`] — the F10 AB fat-tree of Liu et al. (NSDI'13), the second
//!   baseline, whose alternating striping enables local 3-hop rerouting.
//! * [`circuit`] — the configurable circuit-switch crossbar (electrical
//!   crosspoint or 2D-MEMS optical), the paper's §3 enabling technology.
//! * [`sharebackup`] — the ShareBackup physical architecture: a fat-tree
//!   whose switch positions are *slots* occupied by physical switches, with
//!   per-failure-group backup switches reachable through circuit switches.
//!
//! The split between *slots* (logical fat-tree positions that routing and the
//! data plane see) and *physical switches* (devices that can fail, be
//! replaced, and swap roles) mirrors the paper's key idea: after recovery the
//! slot topology is bit-identical to the pre-failure fat-tree, which is why
//! ShareBackup has no bandwidth loss and no path dilation.

pub mod cabling;
pub mod circuit;
pub mod f10;
pub mod fattree;
pub mod graph;
pub mod ids;
pub mod sharebackup;

pub use cabling::CablingReport;
pub use circuit::{Attachment, CircuitSwitch, CircuitTech, CsPort};
pub use f10::{F10Topology, PodType};
pub use fattree::{FatTree, FatTreeConfig, HostAddr};
pub use graph::{Network, NodeKind};
pub use ids::{GroupId, GroupKind, LinkId, NodeId, PhysId, SlotId};
pub use sharebackup::{CsId, DiagConfig, ReplaceReport, ShareBackup, ShareBackupConfig};
