//! Strongly-typed identifiers used throughout the topology crates.
//!
//! All identifiers are small arena indices; newtypes keep host, link, slot,
//! physical-switch, and group index spaces from being mixed up at compile
//! time.

use std::fmt;

/// Index of a node (host or switch slot) in a [`crate::graph::Network`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Index of a link in a [`crate::graph::Network`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

/// Identifier of a *physical* packet switch in a ShareBackup network.
///
/// Physical switches occupy slots or sit as spares; they are what fails,
/// gets diagnosed, repaired, and reused — distinct from the logical
/// [`SlotId`] positions the data plane routes over.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysId(pub u32);

/// Which layer of the fat-tree a failure group protects.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum GroupKind {
    /// Edge switches of one pod.
    Edge,
    /// Aggregation switches of one pod.
    Agg,
    /// Core switches with index ≡ u (mod k/2).
    Core,
}

/// A failure group: the unit of backup sharing (paper §3).
///
/// * `Edge`/`Agg` groups are indexed by pod.
/// * `Core` groups are indexed by the residue u ∈ [0, k/2).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroupId {
    /// The protected layer.
    pub kind: GroupKind,
    /// Pod index (edge/agg groups) or core residue (core groups).
    pub index: usize,
}

/// A logical switch position in the fat-tree: slot `slot` of group `group`.
///
/// Slot `(EdgeGroup(i), j)` is the fat-tree position E_{i,j}; whichever
/// physical switch currently occupies it carries E_{i,j}'s routing identity.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlotId {
    /// The failure group this slot belongs to.
    pub group: GroupId,
    /// Position within the group, in `[0, k/2)`.
    pub slot: usize,
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}
impl fmt::Debug for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}
impl fmt::Debug for PhysId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sw{}", self.0)
    }
}
impl fmt::Debug for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            GroupKind::Edge => write!(f, "FG-edge[pod{}]", self.index),
            GroupKind::Agg => write!(f, "FG-agg[pod{}]", self.index),
            GroupKind::Core => write!(f, "FG-core[u{}]", self.index),
        }
    }
}
impl fmt::Debug for SlotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}#{}", self.group, self.slot)
    }
}

/// Checked index→id constructors: ids are arena indices, so they are built
/// from `usize` container lengths everywhere. Saturating at `u32::MAX`
/// instead of a bare `as` cast keeps an (impossible in practice) overflow
/// from silently aliasing a small id; the debug assert makes it loud.
macro_rules! impl_from_index {
    ($($ty:ident),* $(,)?) => { $(
        impl $ty {
            /// Construct from an arena index, saturating at `u32::MAX`.
            pub fn from_index(i: usize) -> $ty {
                debug_assert!(u32::try_from(i).is_ok(), "id space overflow");
                $ty(u32::try_from(i).unwrap_or(u32::MAX))
            }
            /// The arena index this id names.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }
    )* };
}
impl_from_index!(NodeId, LinkId, PhysId);

impl GroupId {
    /// Edge-layer group of pod `pod`.
    pub fn edge(pod: usize) -> GroupId {
        GroupId {
            kind: GroupKind::Edge,
            index: pod,
        }
    }
    /// Aggregation-layer group of pod `pod`.
    pub fn agg(pod: usize) -> GroupId {
        GroupId {
            kind: GroupKind::Agg,
            index: pod,
        }
    }
    /// Core-layer group with residue `u`.
    pub fn core(u: usize) -> GroupId {
        GroupId {
            kind: GroupKind::Core,
            index: u,
        }
    }
    /// Slot `slot` of this group.
    pub fn slot(self, slot: usize) -> SlotId {
        SlotId { group: self, slot }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_constructors() {
        assert_eq!(GroupId::edge(3).kind, GroupKind::Edge);
        assert_eq!(GroupId::agg(3).index, 3);
        assert_eq!(GroupId::core(1).kind, GroupKind::Core);
        let s = GroupId::edge(2).slot(4);
        assert_eq!(s.slot, 4);
        assert_eq!(s.group, GroupId::edge(2));
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", NodeId(7)), "n7");
        assert_eq!(format!("{:?}", GroupId::core(2).slot(1)), "FG-core[u2]#1");
    }
}
