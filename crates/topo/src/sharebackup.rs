//! The ShareBackup physical architecture (paper §3).
//!
//! A ShareBackup network is a fat-tree whose switch positions are **slots**:
//! logical fat-tree identities (E_{i,j}, A_{i,j}, C_j) that the data plane and
//! routing tables see. Each slot is *occupied* by one **physical switch**.
//! Physical switches belong to **failure groups** — the k/2 edge (or agg)
//! switches of a pod, or the k/2 core switches with index ≡ u (mod k/2) —
//! and every group owns `n` extra physical switches as shared backups.
//!
//! Between adjacent layers sit **circuit switches** (3 sets of k/2 per pod):
//!
//! * `CS_{1,i,m}` — between pod *i*'s hosts and edge switches; host *m* of
//!   every edge connects here (straight-through wiring).
//! * `CS_{2,i,m}` — between pod *i*'s edge and aggregation switches, with the
//!   *rotational* wiring `edge j ↔ agg (j+m) mod k/2` so the pod's full
//!   bipartite edge↔agg connectivity emerges across the k/2 switches.
//! * `CS_{3,i,u}` — between pod *i*'s aggregation switches and core group
//!   *u* (cores `j·k/2+u`), straight-through `agg j ↔ core-slot j`.
//!
//! Every member of a failure group — backup switches included — is cabled to
//! the same set of circuit switches with the same wiring pattern, so *any*
//! member can take over *any* slot of the group by circuit reconfiguration
//! alone. That is the paper's sharable-backup building block (Fig. 3a).
//!
//! Circuit switches of the same layer within a pod are chained into a ring
//! through 2 side ports; the offline failure-diagnosis procedure (paper §4.2,
//! Fig. 4) uses the ring to connect a suspect interface to up to three test
//! interfaces without touching the live network.

use std::collections::BTreeMap;

use crate::circuit::{Attachment, CircuitSwitch, CircuitTech, CsPort};
use crate::fattree::{FatTree, FatTreeConfig, HostAddr};
use crate::graph::NodeKind;
use crate::ids::{GroupId, GroupKind, NodeId, PhysId, SlotId};

/// Parameters of a ShareBackup network.
///
/// Backup counts may be *non-uniform* across layers (paper §6: "we can
/// have more backup on critical devices and less backup on unimportant
/// ones") — e.g. extra edge backups, since an edge failure strands hosts
/// that no rerouting can save.
#[derive(Clone, Copy, Debug)]
pub struct ShareBackupConfig {
    /// The underlying fat-tree parameters.
    pub ft: FatTreeConfig,
    /// Backup switches per *edge* failure group.
    pub n_edge: usize,
    /// Backup switches per *aggregation* failure group.
    pub n_agg: usize,
    /// Backup switches per *core* failure group.
    pub n_core: usize,
    /// Circuit-switch implementation technology.
    pub tech: CircuitTech,
}

impl ShareBackupConfig {
    /// ShareBackup over a full-bisection 10 Gbps fat-tree with `n` backups
    /// per group (uniform — the paper's baseline design) and electrical
    /// crosspoint circuit switches.
    pub fn new(k: usize, n: usize) -> ShareBackupConfig {
        ShareBackupConfig {
            ft: FatTreeConfig::new(k),
            n_edge: n,
            n_agg: n,
            n_core: n,
            tech: CircuitTech::Crosspoint,
        }
    }

    /// ShareBackup over an existing fat-tree configuration with uniform
    /// `n` backups per group.
    pub fn for_fattree(ft: FatTreeConfig, n: usize) -> ShareBackupConfig {
        ShareBackupConfig {
            ft,
            n_edge: n,
            n_agg: n,
            n_core: n,
            tech: CircuitTech::Crosspoint,
        }
    }

    /// Use a different circuit technology.
    pub fn with_tech(mut self, tech: CircuitTech) -> ShareBackupConfig {
        self.tech = tech;
        self
    }

    /// Non-uniform backup pools per layer (paper §6 extension).
    pub fn with_backups(mut self, edge: usize, agg: usize, core: usize) -> ShareBackupConfig {
        self.n_edge = edge;
        self.n_agg = agg;
        self.n_core = core;
        self
    }

    /// Backups of the groups protecting `kind`.
    pub fn n_for(&self, kind: GroupKind) -> usize {
        match kind {
            GroupKind::Edge => self.n_edge,
            GroupKind::Agg => self.n_agg,
            GroupKind::Core => self.n_core,
        }
    }

    /// Members of a `kind` failure group: k/2 active + its backups.
    pub fn group_size_for(&self, kind: GroupKind) -> usize {
        self.ft.k / 2 + self.n_for(kind)
    }
}

/// A physical packet switch: the unit that fails, is diagnosed and repaired.
#[derive(Clone, Debug)]
pub struct PhysSwitch {
    /// The failure group this switch is wired into (fixed at build time).
    pub group: GroupId,
    /// Member index within the group's circuit-switch wiring, `[0, k/2+n)`.
    pub member: usize,
    /// Whether the switch itself is operational.
    pub healthy: bool,
    /// Per-interface ground-truth fault state (`true` = broken). Interface
    /// numbering: edge/agg switches use ports `0..k/2` downward (one per
    /// circuit switch of the lower set) and `k/2..k` upward; core switches
    /// use port `i` for pod `i`.
    pub iface_broken: Vec<bool>,
}

/// Which circuit switch, identified by layer and position.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum CsId {
    /// `CS_{1,pod,m}`: hosts ↔ edge layer.
    HostEdge {
        /// Pod index.
        pod: usize,
        /// Set index m in `[0, k/2)`.
        m: usize,
    },
    /// `CS_{2,pod,m}`: edge ↔ aggregation layer.
    EdgeAgg {
        /// Pod index.
        pod: usize,
        /// Set index m in `[0, k/2)`.
        m: usize,
    },
    /// `CS_{3,pod,u}`: aggregation ↔ core group u.
    AggCore {
        /// Pod index.
        pod: usize,
        /// Core-group residue u in `[0, k/2)`.
        u: usize,
    },
}

/// Result of one slot-replacement operation (paper §4.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplaceReport {
    /// Circuit switches that received a reconfiguration request.
    pub circuit_switches_touched: usize,
    /// Individual circuit set-up/tear-down operations performed.
    pub circuit_ops: u32,
}

/// One offline-diagnosis circuit configuration (paper §4.2, Fig. 4): connect
/// the suspect interface to `partner` through `side_hops` side-port hops.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DiagConfig {
    /// The interface the suspect interface is tested against.
    pub partner: (PhysId, usize),
    /// Side-port hops between circuit switches used by this configuration.
    pub side_hops: usize,
}

/// A built ShareBackup network: slots (a fat-tree), physical switches,
/// occupancy, and the circuit-switch fabric.
#[derive(Clone, Debug)]
pub struct ShareBackup {
    /// The configuration.
    pub cfg: ShareBackupConfig,
    /// The slot-level fat-tree: what routing and the data plane see. Node and
    /// link up/down state is kept in sync with physical ground truth by
    /// [`ShareBackup::refresh_state`].
    pub slots: FatTree,
    phys: Vec<PhysSwitch>,
    /// Group → member-index-ordered physical switches.
    groups: BTreeMap<GroupId, Vec<PhysId>>,
    occupancy: BTreeMap<SlotId, PhysId>,
    slot_of_phys: BTreeMap<PhysId, SlotId>,
    node_slot: BTreeMap<NodeId, SlotId>,
    cs1: Vec<CircuitSwitch>, // [pod * k/2 + m]
    cs2: Vec<CircuitSwitch>, // [pod * k/2 + m]
    cs3: Vec<CircuitSwitch>, // [pod * k/2 + u]
    /// Host NICs with ground-truth faults.
    host_nic_broken: BTreeMap<NodeId, bool>,
}

impl ShareBackup {
    /// Build a ShareBackup network with all slots occupied by members
    /// `0..k/2` of each group and members `k/2..k/2+n` as spares.
    pub fn build(cfg: ShareBackupConfig) -> ShareBackup {
        let k = cfg.ft.k;
        let half = k / 2;
        let slots = FatTree::build(cfg.ft);

        // --- Physical switch registry, group by group. ---
        let mut phys = Vec::new();
        let mut groups = BTreeMap::new();
        let mut occupancy = BTreeMap::new();
        let mut slot_of_phys = BTreeMap::new();
        let mut make_group = |group: GroupId, phys: &mut Vec<PhysSwitch>| {
            let ifaces = k; // every packet switch has k interfaces
            let members: Vec<PhysId> = (0..cfg.group_size_for(group.kind))
                .map(|member| {
                    let id = PhysId::from_index(phys.len());
                    phys.push(PhysSwitch {
                        group,
                        member,
                        healthy: true,
                        iface_broken: vec![false; ifaces],
                    });
                    id
                })
                .collect();
            for (j, &p) in members.iter().enumerate().take(half) {
                occupancy.insert(group.slot(j), p);
                slot_of_phys.insert(p, group.slot(j));
            }
            members
        };
        for pod in 0..k {
            let g = GroupId::edge(pod);
            let members = make_group(g, &mut phys);
            groups.insert(g, members);
            let g = GroupId::agg(pod);
            let members = make_group(g, &mut phys);
            groups.insert(g, members);
        }
        for u in 0..half {
            let g = GroupId::core(u);
            let members = make_group(g, &mut phys);
            groups.insert(g, members);
        }

        // --- Node → slot reverse map over the slot fat-tree. ---
        let mut node_slot = BTreeMap::new();
        for pod in 0..k {
            for j in 0..half {
                node_slot.insert(slots.edge(pod, j), GroupId::edge(pod).slot(j));
                node_slot.insert(slots.agg(pod, j), GroupId::agg(pod).slot(j));
            }
        }
        for j in 0..half {
            for u in 0..half {
                node_slot.insert(slots.core(j * half + u), GroupId::core(u).slot(j));
            }
        }

        // --- Circuit switches. Port layout (flat space):
        //   [0, G)         north: group members (G = k/2 + n_north)
        //   [G, G+2)       side ports (ring within the pod's layer)
        //   [G+2, ...)     south: hosts / agg members / core-group members
        // North sizes differ per layer under non-uniform backup pools.
        let edge_size = cfg.group_size_for(GroupKind::Edge);
        let agg_size = cfg.group_size_for(GroupKind::Agg);
        let core_size = cfg.group_size_for(GroupKind::Core);

        let mut sb = ShareBackup {
            cfg,
            slots,
            phys,
            groups,
            occupancy,
            slot_of_phys,
            node_slot,
            cs1: Vec::with_capacity(k * half),
            cs2: Vec::with_capacity(k * half),
            cs3: Vec::with_capacity(k * half),
            host_nic_broken: BTreeMap::new(),
        };

        for pod in 0..k {
            for m in 0..half {
                // CS_{1,pod,m}: north = edge group, south = host m of each edge.
                let (side0, side1, south0) = (edge_size, edge_size + 1, edge_size + 2);
                let mut cs = CircuitSwitch::new(sb.cfg.tech, south0 + half);
                let edge_members = sb.groups[&GroupId::edge(pod)].clone();
                for (w, &p) in edge_members.iter().enumerate() {
                    cs.attach(CsPort(w), Attachment::Switch { switch: p, port: m });
                }
                cs.attach(
                    CsPort(side0),
                    Attachment::Side {
                        cs: (m + half - 1) % half,
                        port: CsPort(side1),
                    },
                );
                cs.attach(
                    CsPort(side1),
                    Attachment::Side {
                        cs: (m + 1) % half,
                        port: CsPort(side0),
                    },
                );
                for j in 0..half {
                    let host = sb.slots.host(HostAddr { pod, edge: j, host: m });
                    cs.attach(CsPort(south0 + j), Attachment::Host(host));
                }
                sb.cs1.push(cs);

                // CS_{2,pod,m}: north = edge group, south = agg group.
                let mut cs = CircuitSwitch::new(sb.cfg.tech, south0 + agg_size);
                for (w, &p) in edge_members.iter().enumerate() {
                    cs.attach(
                        CsPort(w),
                        Attachment::Switch { switch: p, port: half + m },
                    );
                }
                cs.attach(
                    CsPort(side0),
                    Attachment::Side { cs: (m + half - 1) % half, port: CsPort(side1) },
                );
                cs.attach(
                    CsPort(side1),
                    Attachment::Side { cs: (m + 1) % half, port: CsPort(side0) },
                );
                let agg_members = sb.groups[&GroupId::agg(pod)].clone();
                for (w, &p) in agg_members.iter().enumerate() {
                    cs.attach(
                        CsPort(south0 + w),
                        Attachment::Switch { switch: p, port: m },
                    );
                }
                sb.cs2.push(cs);

                // CS_{3,pod,u} with u = m: north = agg group, south = core group u.
                let u = m;
                let (side0, side1, south0) = (agg_size, agg_size + 1, agg_size + 2);
                let mut cs = CircuitSwitch::new(sb.cfg.tech, south0 + core_size);
                for (w, &p) in agg_members.iter().enumerate() {
                    cs.attach(
                        CsPort(w),
                        Attachment::Switch { switch: p, port: half + u },
                    );
                }
                cs.attach(
                    CsPort(side0),
                    Attachment::Side { cs: (u + half - 1) % half, port: CsPort(side1) },
                );
                cs.attach(
                    CsPort(side1),
                    Attachment::Side { cs: (u + 1) % half, port: CsPort(side0) },
                );
                let core_members = sb.groups[&GroupId::core(u)].clone();
                for (w, &p) in core_members.iter().enumerate() {
                    cs.attach(
                        CsPort(south0 + w),
                        Attachment::Switch { switch: p, port: pod },
                    );
                }
                sb.cs3.push(cs);
            }
        }

        // --- Default circuits: straight-through / rotational wiring. ---
        for pod in 0..k {
            for j in 0..half {
                sb.reconnect_slot(GroupId::edge(pod).slot(j));
                sb.reconnect_slot(GroupId::agg(pod).slot(j));
            }
        }
        for u in 0..half {
            for j in 0..half {
                sb.reconnect_slot(GroupId::core(u).slot(j));
            }
        }
        sb.refresh_state();
        sb
    }

    // ------------------------------------------------------------------
    // Lookup helpers.
    // ------------------------------------------------------------------

    /// Fat-tree parameter k.
    pub fn k(&self) -> usize {
        self.cfg.ft.k
    }

    fn half(&self) -> usize {
        self.cfg.ft.k / 2
    }

    /// Number of circuit switches in the network (`3·k·k/2 = 3k²/2`).
    pub fn circuit_switch_count(&self) -> usize {
        self.cs1.len() + self.cs2.len() + self.cs3.len()
    }

    /// Access a circuit switch.
    pub fn circuit_switch(&self, id: CsId) -> &CircuitSwitch {
        let half = self.half();
        match id {
            CsId::HostEdge { pod, m } => &self.cs1[pod * half + m],
            CsId::EdgeAgg { pod, m } => &self.cs2[pod * half + m],
            CsId::AggCore { pod, u } => &self.cs3[pod * half + u],
        }
    }

    fn circuit_switch_mut(&mut self, id: CsId) -> &mut CircuitSwitch {
        let half = self.half();
        match id {
            CsId::HostEdge { pod, m } => &mut self.cs1[pod * half + m],
            CsId::EdgeAgg { pod, m } => &mut self.cs2[pod * half + m],
            CsId::AggCore { pod, u } => &mut self.cs3[pod * half + u],
        }
    }

    /// All circuit-switch ids.
    pub fn circuit_switch_ids(&self) -> Vec<CsId> {
        let k = self.k();
        let half = self.half();
        let mut ids = Vec::with_capacity(3 * k * half);
        for pod in 0..k {
            for m in 0..half {
                ids.push(CsId::HostEdge { pod, m });
                ids.push(CsId::EdgeAgg { pod, m });
                ids.push(CsId::AggCore { pod, u: m });
            }
        }
        ids
    }

    /// The physical switch registry entry for `p`.
    pub fn phys(&self, p: PhysId) -> &PhysSwitch {
        &self.phys[p.0 as usize]
    }

    /// Number of physical packet switches (excluding hosts).
    pub fn phys_count(&self) -> usize {
        self.phys.len()
    }

    /// Member switches of a failure group, in member-index order.
    pub fn group_members(&self, g: GroupId) -> &[PhysId] {
        &self.groups[&g]
    }

    /// All failure groups, in a canonical deterministic order.
    pub fn group_ids(&self) -> Vec<GroupId> {
        let k = self.k();
        let half = self.half();
        let mut ids = Vec::with_capacity(2 * k + half);
        for pod in 0..k {
            ids.push(GroupId::edge(pod));
            ids.push(GroupId::agg(pod));
        }
        for u in 0..half {
            ids.push(GroupId::core(u));
        }
        ids
    }

    /// The physical switch currently occupying `slot`.
    pub fn occupant(&self, slot: SlotId) -> PhysId {
        self.occupancy[&slot]
    }

    /// The slot occupied by `p`, if any (`None` = spare).
    pub fn slot_of(&self, p: PhysId) -> Option<SlotId> {
        self.slot_of_phys.get(&p).copied()
    }

    /// Healthy, non-occupying members of a group — the available backups.
    pub fn spares(&self, g: GroupId) -> Vec<PhysId> {
        self.groups[&g]
            .iter()
            .copied()
            .filter(|p| self.slot_of(*p).is_none() && self.phys(*p).healthy)
            .collect()
    }

    /// The slot-network node for a slot.
    pub fn slot_node(&self, slot: SlotId) -> NodeId {
        let half = self.half();
        match slot.group.kind {
            GroupKind::Edge => self.slots.edge(slot.group.index, slot.slot),
            GroupKind::Agg => self.slots.agg(slot.group.index, slot.slot),
            GroupKind::Core => self.slots.core(slot.slot * half + slot.group.index),
        }
    }

    /// The slot a slot-network switch node corresponds to.
    pub fn node_slot(&self, n: NodeId) -> Option<SlotId> {
        self.node_slot.get(&n).copied()
    }

    // ------------------------------------------------------------------
    // Ground-truth fault state.
    // ------------------------------------------------------------------

    /// Mark a physical switch healthy/failed and propagate to the slot net.
    pub fn set_phys_healthy(&mut self, p: PhysId, healthy: bool) {
        self.phys[p.0 as usize].healthy = healthy;
        if healthy {
            // A repaired switch comes back with all interfaces working.
            for b in self.phys[p.0 as usize].iface_broken.iter_mut() {
                *b = false;
            }
        }
        self.refresh_state();
    }

    /// Break or repair one interface of a physical switch.
    pub fn set_iface_broken(&mut self, p: PhysId, iface: usize, broken: bool) {
        self.phys[p.0 as usize].iface_broken[iface] = broken;
        self.refresh_state();
    }

    /// Whether an interface is broken (ground truth; diagnosis discovers it).
    pub fn iface_broken(&self, p: PhysId, iface: usize) -> bool {
        self.phys[p.0 as usize].iface_broken[iface]
    }

    /// Break or repair a host NIC.
    pub fn set_host_nic_broken(&mut self, host: NodeId, broken: bool) {
        assert_eq!(self.slots.net.node(host).kind, NodeKind::Host);
        self.host_nic_broken.insert(host, broken);
        self.refresh_state();
    }

    /// Mark a circuit switch up/down and propagate to the slot network.
    pub fn set_circuit_switch_up(&mut self, id: CsId, up: bool) {
        self.circuit_switch_mut(id).set_up(up);
        self.refresh_state();
    }

    // ------------------------------------------------------------------
    // Replacement: the paper's recovery primitive.
    // ------------------------------------------------------------------

    /// Install `replacement` into `slot`, evicting the current occupant,
    /// which becomes a spare (and future backup once repaired — paper §4.2's
    /// role swap). Reconfigures every circuit switch that realizes the
    /// slot's links.
    ///
    /// # Panics
    /// Panics if `replacement` is not a member of the slot's failure group or
    /// already occupies a slot.
    pub fn replace(&mut self, slot: SlotId, replacement: PhysId) -> ReplaceReport {
        assert_eq!(
            self.phys(replacement).group,
            slot.group,
            "replacement from a different failure group"
        );
        assert!(
            self.slot_of(replacement).is_none(),
            "{replacement:?} already occupies a slot"
        );
        let old = self.occupancy[&slot];
        self.slot_of_phys.remove(&old);
        self.occupancy.insert(slot, replacement);
        self.slot_of_phys.insert(replacement, slot);
        let report = self.reconnect_slot(slot);
        self.refresh_state();
        report
    }

    /// (Re)establish the circuits that realize `slot`'s links, pointing them
    /// at the current occupant. Returns how many circuit switches were
    /// touched and how many circuit operations were needed.
    fn reconnect_slot(&mut self, slot: SlotId) -> ReplaceReport {
        let half = self.half();
        // South-port offsets depend on the north group's size (per-layer
        // under non-uniform backup pools): CS1/CS2 are north-edged, CS3 is
        // north-agged.
        let south0_12 = self.cfg.group_size_for(GroupKind::Edge) + 2;
        let south0_3 = self.cfg.group_size_for(GroupKind::Agg) + 2;
        let occ = self.occupancy[&slot];
        let w = self.phys(occ).member;
        let mut touched = 0;
        let mut ops = 0;
        match slot.group.kind {
            GroupKind::Edge => {
                let pod = slot.group.index;
                let j = slot.slot;
                for m in 0..half {
                    // CS1: occupant's north port ↔ host j.
                    ops += self.cs1[pod * half + m].connect(CsPort(w), CsPort(south0_12 + j));
                    touched += 1;
                    // CS2: occupant ↔ member occupying agg slot (j+m) % k/2.
                    let agg_slot = GroupId::agg(pod).slot((j + m) % half);
                    let aw = self.phys(self.occupancy[&agg_slot]).member;
                    ops += self.cs2[pod * half + m].connect(CsPort(w), CsPort(south0_12 + aw));
                    touched += 1;
                }
            }
            GroupKind::Agg => {
                let pod = slot.group.index;
                let a = slot.slot;
                for m in 0..half {
                    // CS2: edge slot (a-m) mod k/2 ↔ occupant (south side).
                    let edge_slot = GroupId::edge(pod).slot((a + half - m) % half);
                    let ew = self.phys(self.occupancy[&edge_slot]).member;
                    ops += self.cs2[pod * half + m].connect(CsPort(ew), CsPort(south0_12 + w));
                    touched += 1;
                    // CS3 (u = m): occupant (north) ↔ core-group-u slot a.
                    let core_slot = GroupId::core(m).slot(a);
                    let cw = self.phys(self.occupancy[&core_slot]).member;
                    ops += self.cs3[pod * half + m].connect(CsPort(w), CsPort(south0_3 + cw));
                    touched += 1;
                }
            }
            GroupKind::Core => {
                let u = slot.group.index;
                let j = slot.slot;
                for pod in 0..self.k() {
                    // CS3 in every pod: agg slot j (north) ↔ occupant (south).
                    let agg_slot = GroupId::agg(pod).slot(j);
                    let aw = self.phys(self.occupancy[&agg_slot]).member;
                    ops += self.cs3[pod * half + u].connect(CsPort(aw), CsPort(south0_3 + w));
                    touched += 1;
                }
            }
        }
        ReplaceReport {
            circuit_switches_touched: touched,
            circuit_ops: ops,
        }
    }

    // ------------------------------------------------------------------
    // Slot-network state derivation.
    // ------------------------------------------------------------------

    /// Recompute the slot network's node/link up state from physical ground
    /// truth: occupant health, broken interfaces, host NICs, and circuit
    /// switch health.
    pub fn refresh_state(&mut self) {
        let k = self.k();
        let half = self.half();
        // Slot nodes: up iff occupant healthy.
        let slot_states: Vec<(NodeId, bool)> = self
            .occupancy
            .iter()
            .map(|(&slot, &p)| (self.slot_node(slot), self.phys(p).healthy))
            .collect();
        for (node, up) in slot_states {
            self.slots.net.set_node_up(node, up);
        }
        // Links.
        let mut updates: Vec<(NodeId, NodeId, bool)> = Vec::new();
        for pod in 0..k {
            for j in 0..half {
                let edge_occ = self.occupancy[&GroupId::edge(pod).slot(j)];
                for m in 0..half {
                    // Host link: host(pod, j, m) ↔ edge slot j via CS1[pod][m].
                    let host = self.slots.host(HostAddr { pod, edge: j, host: m });
                    let up = self.cs1[pod * half + m].is_up()
                        && !self.iface_broken(edge_occ, m)
                        && !self.host_nic_broken.get(&host).copied().unwrap_or(false);
                    updates.push((host, self.slots.edge(pod, j), up));
                    // Edge j ↔ agg (j+m)%half via CS2[pod][m].
                    let a = (j + m) % half;
                    let agg_occ = self.occupancy[&GroupId::agg(pod).slot(a)];
                    let up = self.cs2[pod * half + m].is_up()
                        && !self.iface_broken(edge_occ, half + m)
                        && !self.iface_broken(agg_occ, m);
                    updates.push((self.slots.edge(pod, j), self.slots.agg(pod, a), up));
                }
                // Agg j ↔ core j*half+u via CS3[pod][u].
                let agg_occ = self.occupancy[&GroupId::agg(pod).slot(j)];
                for u in 0..half {
                    let core_occ = self.occupancy[&GroupId::core(u).slot(j)];
                    let up = self.cs3[pod * half + u].is_up()
                        && !self.iface_broken(agg_occ, half + u)
                        && !self.iface_broken(core_occ, pod);
                    updates.push((
                        self.slots.agg(pod, j),
                        self.slots.core(j * half + u),
                        up,
                    ));
                }
            }
        }
        for (a, b, up) in updates {
            let l = self
                .slots
                .net
                .link_between(a, b)
                // Slot-network links are created for every fat-tree edge at
                // build time; absence is a builder bug, not a runtime state.
                // lint:allow(unwrap) — build-time structural invariant
                .expect("slot link must exist");
            self.slots.net.set_link_up(l, up);
        }
        // Every reconfiguration and fault-state change funnels through here,
        // so this one hook re-verifies the structure after each transition.
        #[cfg(feature = "strict-invariants")]
        self.check_invariants();
    }

    /// Derive (endpoint, endpoint) logical links by walking circuit-switch
    /// matchings — used by tests to prove the circuit layer realizes exactly
    /// the fat-tree. Endpoints are slot-network node ids.
    pub fn derived_links(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::new();
        for id in self.circuit_switch_ids() {
            let cs = self.circuit_switch(id);
            for (a, b) in cs.circuits() {
                let na = self.endpoint_node(cs.attachment(a));
                let nb = self.endpoint_node(cs.attachment(b));
                if let (Some(na), Some(nb)) = (na, nb) {
                    out.push(if na <= nb { (na, nb) } else { (nb, na) });
                }
            }
        }
        out.sort();
        out
    }

    fn endpoint_node(&self, att: Attachment) -> Option<NodeId> {
        match att {
            Attachment::Host(h) => Some(h),
            Attachment::Switch { switch, .. } => self.slot_of(switch).map(|s| self.slot_node(s)),
            _ => None,
        }
    }

    // ------------------------------------------------------------------
    // Structural invariants.
    // ------------------------------------------------------------------

    /// Assert the architecture's structural invariants: slot-occupancy
    /// bijectivity, crossbar matching validity, and circuit realization of
    /// the slot fat-tree. Cheap relative to a reconfiguration, but O(network)
    /// — under the `strict-invariants` feature it runs automatically after
    /// every [`ShareBackup::refresh_state`]; callers (tests, the controller)
    /// may also invoke it directly at any quiescent point.
    ///
    /// # Panics
    /// Panics with a description of the violated invariant.
    pub fn check_invariants(&self) {
        self.check_occupancy();
        self.check_matchings();
        self.check_circuit_realization();
    }

    /// Occupancy bijectivity: every slot has exactly one occupant, every
    /// physical switch occupies at most one slot (in its own group), and
    /// spares never exceed the group's backup pool.
    fn check_occupancy(&self) {
        let half = self.half();
        for g in self.group_ids() {
            let members = self.group_members(g);
            let mut occupying = 0;
            for &p in members {
                if let Some(slot) = self.slot_of(p) {
                    assert_eq!(slot.group, g, "{p:?} occupies a slot outside {g:?}");
                    assert_eq!(
                        self.occupant(slot),
                        p,
                        "occupancy maps disagree about {slot:?}"
                    );
                    occupying += 1;
                }
            }
            assert_eq!(occupying, half, "every slot of {g:?} must be occupied");
            let spares = self.spares(g).len();
            assert!(
                spares <= members.len() - half,
                "{g:?} reports {spares} spares with only {} backups",
                members.len() - half
            );
        }
        // Global view: the two occupancy maps are inverse bijections.
        assert_eq!(self.occupancy.len(), self.slot_of_phys.len());
        for (&slot, &p) in &self.occupancy {
            assert_eq!(
                self.slot_of_phys.get(&p),
                Some(&slot),
                "slot_of_phys is not the inverse of occupancy at {slot:?}"
            );
        }
    }

    /// Every circuit switch holds a valid (symmetric, self-loop-free)
    /// partial matching.
    fn check_matchings(&self) {
        for id in self.circuit_switch_ids() {
            self.circuit_switch(id).check_matching();
        }
    }

    /// The circuit layer realizes exactly the slot fat-tree's links: walking
    /// every crossbar circuit between attachments yields the slot network's
    /// edge set, no more and no less.
    fn check_circuit_realization(&self) {
        let mut expected: Vec<(NodeId, NodeId)> = self
            .slots
            .net
            .link_ids()
            .map(|l| {
                let link = self.slots.net.link(l);
                if link.a <= link.b {
                    (link.a, link.b)
                } else {
                    (link.b, link.a)
                }
            })
            .collect();
        expected.sort();
        assert_eq!(
            self.derived_links(),
            expected,
            "circuit layer does not realize the slot fat-tree"
        );
    }

    // ------------------------------------------------------------------
    // Offline diagnosis support (paper §4.2, Fig. 4).
    // ------------------------------------------------------------------

    /// The up-to-three circuit configurations through which the suspect
    /// interface `(p, iface)` can be tested: against a spare switch's
    /// matching interface on the same circuit switch (0 side hops), and
    /// against the suspect switch's *own* neighboring interfaces through one
    /// side-port hop in each ring direction.
    ///
    /// Host-facing edge interfaces cannot be diagnosed this way if the test
    /// would involve a host (hosts are actively in use — paper §4.2); the
    /// returned configurations only ever involve offline switches.
    pub fn diagnosis_configs(&self, p: PhysId, iface: usize) -> Vec<DiagConfig> {
        let half = self.half();
        let mut configs = Vec::new();
        let me = self.phys(p);
        // Partner 1: a spare member of the *opposite* side group on the same
        // circuit switch (crossbar can connect north↔south directly).
        if let Some(other_group) = self.opposite_group(me.group, iface) {
            let spares = self.spares(other_group);
            if let Some(&partner) = spares.first() {
                let partner_iface = self.opposite_iface(me.group, iface);
                configs.push(DiagConfig {
                    partner: (partner, partner_iface),
                    side_hops: 0,
                });
            }
        }
        // Partners 2 and 3: the suspect switch's own interface on the ring
        // neighbors of this circuit switch (Fig. 4's chained configurations).
        for delta in [half - 1, 1] {
            let neighbor = self.neighbor_iface(me.group, iface, delta);
            if let Some(other) = neighbor {
                configs.push(DiagConfig {
                    partner: (p, other),
                    side_hops: 1,
                });
            }
            if configs.len() >= 3 {
                break;
            }
        }
        configs.truncate(3);
        configs
    }

    /// The group on the other side of the circuit switch that `iface` of a
    /// switch in `group` attaches to, if that side holds packet switches.
    fn opposite_group(&self, group: GroupId, iface: usize) -> Option<GroupId> {
        let half = self.half();
        match group.kind {
            GroupKind::Edge => {
                if iface < half {
                    None // host side: no offline diagnosis against hosts
                } else {
                    Some(GroupId::agg(group.index))
                }
            }
            GroupKind::Agg => {
                if iface < half {
                    Some(GroupId::edge(group.index))
                } else {
                    Some(GroupId::core(iface - half))
                }
            }
            // Core iface = pod index; other side is that pod's agg group.
            GroupKind::Core => Some(GroupId::agg(iface)),
        }
    }

    /// Interface index the opposite-side partner uses on the same circuit
    /// switch.
    fn opposite_iface(&self, group: GroupId, iface: usize) -> usize {
        let half = self.half();
        match group.kind {
            GroupKind::Edge => iface - half, // CS2[m]: agg's down-port m
            GroupKind::Agg => {
                if iface < half {
                    half + iface // CS2[m]: edge's up-port m
                } else {
                    group.index // CS3: core's pod port
                }
            }
            GroupKind::Core => half + group.index, // CS3[u]: agg's up-port u
        }
    }

    /// The suspect switch's own interface attached to the ring neighbor
    /// (`delta` positions away) of the circuit switch holding `iface`.
    fn neighbor_iface(&self, group: GroupId, iface: usize, delta: usize) -> Option<usize> {
        let half = self.half();
        match group.kind {
            GroupKind::Edge | GroupKind::Agg => {
                if iface < half {
                    Some((iface + delta) % half)
                } else {
                    Some(half + (iface - half + delta) % half)
                }
            }
            // Core-layer rings run across u within a pod; a core switch has
            // exactly one interface per pod, attached to CS_{3,pod,u} for its
            // own u — its ring neighbors carry other groups' cores, where the
            // suspect has no port. No own-interface neighbor test.
            GroupKind::Core => None,
        }
    }

    /// The circuit switch and port where interface `iface` of `p` attaches.
    pub fn iface_attachment(&self, p: PhysId, iface: usize) -> (CsId, CsPort) {
        let half = self.half();
        let me = self.phys(p);
        let w = me.member;
        match me.group.kind {
            GroupKind::Edge => {
                let pod = me.group.index;
                if iface < half {
                    (CsId::HostEdge { pod, m: iface }, CsPort(w))
                } else {
                    (CsId::EdgeAgg { pod, m: iface - half }, CsPort(w))
                }
            }
            GroupKind::Agg => {
                let pod = me.group.index;
                if iface < half {
                    let south0 = self.cfg.group_size_for(GroupKind::Edge) + 2;
                    (CsId::EdgeAgg { pod, m: iface }, CsPort(south0 + w))
                } else {
                    (CsId::AggCore { pod, u: iface - half }, CsPort(w))
                }
            }
            GroupKind::Core => {
                let south0 = self.cfg.group_size_for(GroupKind::Agg) + 2;
                (CsId::AggCore { pod: iface, u: me.group.index }, CsPort(south0 + w))
            }
        }
    }

    /// Side-port indices (toward ring-previous, toward ring-next) of a
    /// circuit switch.
    fn side_ports(&self, cs: CsId) -> (CsPort, CsPort) {
        let north = match cs {
            CsId::HostEdge { .. } | CsId::EdgeAgg { .. } => {
                self.cfg.group_size_for(GroupKind::Edge)
            }
            CsId::AggCore { .. } => self.cfg.group_size_for(GroupKind::Agg),
        };
        (CsPort(north), CsPort(north + 1))
    }

    /// Ring position (m or u) of a circuit switch within its pod's layer.
    fn ring_index(&self, cs: CsId) -> usize {
        match cs {
            CsId::HostEdge { m, .. } | CsId::EdgeAgg { m, .. } => m,
            CsId::AggCore { u, .. } => u,
        }
    }

    /// Physically execute one offline-diagnosis test (paper §4.2, Fig. 4):
    /// set up the test circuit(s) on the real circuit switches — directly
    /// for a same-crossbar partner, through the side-port ring for a
    /// neighbor-crossbar partner — evaluate connectivity against ground
    /// truth, then tear the test circuits down.
    ///
    /// Returns `None` if the test cannot run without disturbing the live
    /// network (a port involved still carries a production circuit — the
    /// paper's rule that diagnosis only involves offline switches), or
    /// `Some(connectivity)` otherwise.
    pub fn run_diagnosis_test(
        &mut self,
        suspect: PhysId,
        iface: usize,
        cfg: DiagConfig,
    ) -> Option<bool> {
        let (cs_a, port_a) = self.iface_attachment(suspect, iface);
        let (cs_b, port_b) = self.iface_attachment(cfg.partner.0, cfg.partner.1);
        // Never touch ports that carry live circuits.
        if self.circuit_switch(cs_a).mate(port_a).is_some()
            || self.circuit_switch(cs_b).mate(port_b).is_some()
        {
            return None;
        }
        let healthy = self.phys(suspect).healthy
            && !self.iface_broken(suspect, iface)
            && self.phys(cfg.partner.0).healthy
            && !self.iface_broken(cfg.partner.0, cfg.partner.1);

        let connectivity = if cs_a == cs_b {
            // One crossbar: direct circuit.
            let cs = self.circuit_switch_mut(cs_a);
            cs.connect(port_a, port_b);
            let ok = self.circuit_switch(cs_a).is_up() && healthy;
            self.circuit_switch_mut(cs_a).disconnect(port_a);
            ok
        } else {
            // Ring neighbors: route through the side-port pair facing each
            // other. With a ring of size k/2, +1 and -1 can coincide (k=4);
            // pick the side pair by which neighbor cs_b actually is.
            let half = self.half();
            let (a_prev, a_next) = self.side_ports(cs_a);
            let (b_prev, b_next) = self.side_ports(cs_b);
            let ma = self.ring_index(cs_a);
            let mb = self.ring_index(cs_b);
            let (sa, sb) = if (ma + 1) % half == mb {
                (a_next, b_prev) // cs_b is the next ring member
            } else if (mb + 1) % half == ma {
                (a_prev, b_next) // cs_b is the previous ring member
            } else {
                return None; // not adjacent on the ring
            };
            if self.circuit_switch(cs_a).mate(sa).is_some()
                || self.circuit_switch(cs_b).mate(sb).is_some()
            {
                return None; // side ports busy with another diagnosis
            }
            self.circuit_switch_mut(cs_a).connect(port_a, sa);
            self.circuit_switch_mut(cs_b).connect(sb, port_b);
            let ok = self.circuit_switch(cs_a).is_up()
                && self.circuit_switch(cs_b).is_up()
                && healthy;
            self.circuit_switch_mut(cs_a).disconnect(port_a);
            self.circuit_switch_mut(cs_b).disconnect(port_b);
            ok
        };
        Some(connectivity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(k: usize, n: usize) -> ShareBackup {
        ShareBackup::build(ShareBackupConfig::new(k, n))
    }

    #[test]
    fn inventory_matches_paper_formulas() {
        let k = 6;
        let n = 1;
        let sb = build(k, n);
        // 5/2·k failure groups (2k pod groups + k/2 core groups).
        assert_eq!(sb.group_ids().len(), 5 * k / 2);
        // Physical switches: (k/2+n) per group.
        assert_eq!(sb.phys_count(), (5 * k / 2) * (k / 2 + n));
        // Circuit switches: 3 sets of k/2 per pod = 3k²/2.
        assert_eq!(sb.circuit_switch_count(), 3 * k * k / 2);
        // Spares: n per group.
        for g in sb.group_ids() {
            assert_eq!(sb.spares(g).len(), n);
        }
    }

    #[test]
    fn circuit_layer_realizes_exactly_the_fat_tree() {
        let sb = build(4, 1);
        let mut expected: Vec<(NodeId, NodeId)> = sb
            .slots
            .net
            .link_ids()
            .map(|l| {
                let link = sb.slots.net.link(l);
                if link.a <= link.b {
                    (link.a, link.b)
                } else {
                    (link.b, link.a)
                }
            })
            .collect();
        expected.sort();
        assert_eq!(sb.derived_links(), expected);
    }

    #[test]
    fn replacement_preserves_fat_tree_connectivity() {
        let mut sb = build(4, 1);
        for g in sb.group_ids() {
            let slot = g.slot(1);
            let spare = sb.spares(g)[0];
            let report = sb.replace(slot, spare);
            assert!(report.circuit_ops > 0);
            assert_eq!(sb.occupant(slot), spare);
        }
        // After replacing a slot in every group, the circuit layer must
        // still realize exactly the fat-tree.
        let mut expected: Vec<(NodeId, NodeId)> = sb
            .slots
            .net
            .link_ids()
            .map(|l| {
                let link = sb.slots.net.link(l);
                if link.a <= link.b {
                    (link.a, link.b)
                } else {
                    (link.b, link.a)
                }
            })
            .collect();
        expected.sort();
        assert_eq!(sb.derived_links(), expected);
    }

    #[test]
    fn replacement_touches_expected_circuit_switch_counts() {
        let mut sb = build(6, 1);
        let half = 3;
        // Edge slot: k/2 CS1 + k/2 CS2 = k circuit switches.
        let g = GroupId::edge(0);
        let spare = sb.spares(g)[0];
        let r = sb.replace(g.slot(0), spare);
        assert_eq!(r.circuit_switches_touched, 2 * half);
        // Core slot: one CS3 per pod = k circuit switches.
        let g = GroupId::core(1);
        let spare = sb.spares(g)[0];
        let r = sb.replace(g.slot(0), spare);
        assert_eq!(r.circuit_switches_touched, 6);
    }

    #[test]
    fn failed_switch_takes_slot_down_and_replacement_restores_it() {
        let mut sb = build(4, 1);
        let slot = GroupId::agg(2).slot(0);
        let victim = sb.occupant(slot);
        let node = sb.slot_node(slot);
        sb.set_phys_healthy(victim, false);
        assert!(!sb.slots.net.node(node).up);
        let spare = sb.spares(slot.group)[0];
        sb.replace(slot, spare);
        assert!(sb.slots.net.node(node).up);
        // Old occupant is now a spare-position switch, but unhealthy.
        assert_eq!(sb.slot_of(victim), None);
        assert!(sb.spares(slot.group).is_empty());
        // Repair it: it becomes an available backup (role swap, §4.2).
        sb.set_phys_healthy(victim, true);
        assert_eq!(sb.spares(slot.group), vec![victim]);
    }

    #[test]
    fn broken_interface_downs_one_link_only() {
        let mut sb = build(4, 1);
        let slot = GroupId::edge(0).slot(0);
        let occ = sb.occupant(slot);
        let k_half = 2;
        // Break edge up-port 0 (to CS2[0] → agg slot (0+0)%2 = 0).
        sb.set_iface_broken(occ, k_half, true);
        let e = sb.slots.edge(0, 0);
        let a0 = sb.slots.agg(0, 0);
        let a1 = sb.slots.agg(0, 1);
        let l0 = sb.slots.net.link_between(e, a0).expect("link");
        let l1 = sb.slots.net.link_between(e, a1).expect("link");
        assert!(!sb.slots.net.link_usable(l0));
        assert!(sb.slots.net.link_usable(l1));
        // Replacing the switch fixes the link (new occupant, fresh iface).
        let spare = sb.spares(slot.group)[0];
        sb.replace(slot, spare);
        let l0 = sb.slots.net.link_between(e, a0).expect("link");
        assert!(sb.slots.net.link_usable(l0));
    }

    #[test]
    fn circuit_switch_failure_downs_its_links() {
        let mut sb = build(4, 1);
        sb.set_circuit_switch_up(CsId::HostEdge { pod: 0, m: 1 }, false);
        // Host 1 of every edge in pod 0 loses its link.
        for j in 0..2 {
            let host = sb.slots.host(HostAddr { pod: 0, edge: j, host: 1 });
            let edge = sb.slots.edge(0, j);
            let l = sb.slots.net.link_between(host, edge).expect("link");
            assert!(!sb.slots.net.link_usable(l));
        }
        // Hosts with index 0 are unaffected.
        let host = sb.slots.host(HostAddr { pod: 0, edge: 0, host: 0 });
        let edge = sb.slots.edge(0, 0);
        let l = sb.slots.net.link_between(host, edge).expect("link");
        assert!(sb.slots.net.link_usable(l));
    }

    #[test]
    fn host_nic_failure_downs_host_link() {
        let mut sb = build(4, 1);
        let host = sb.slots.host(HostAddr { pod: 1, edge: 0, host: 0 });
        sb.set_host_nic_broken(host, true);
        let edge = sb.slots.edge(1, 0);
        let l = sb.slots.net.link_between(host, edge).expect("link");
        assert!(!sb.slots.net.link_usable(l));
        sb.set_host_nic_broken(host, false);
        assert!(sb.slots.net.link_usable(l));
    }

    #[test]
    fn diagnosis_configs_cover_three_tests() {
        let sb = build(6, 1);
        // Agg up-interface: spare core partner + two own-iface ring tests.
        let agg = sb.occupant(GroupId::agg(0).slot(0));
        let configs = sb.diagnosis_configs(agg, 3); // up-port u=0
        assert_eq!(configs.len(), 3);
        assert_eq!(configs.iter().filter(|c| c.side_hops == 0).count(), 1);
        assert_eq!(configs.iter().filter(|c| c.side_hops == 1).count(), 2);
        // The side-hop partners are the suspect's own other up-interfaces.
        for c in configs.iter().filter(|c| c.side_hops == 1) {
            assert_eq!(c.partner.0, agg);
            assert!(c.partner.1 >= 3, "must be another up-port");
        }
    }

    #[test]
    fn diagnosis_for_host_facing_iface_avoids_hosts() {
        let sb = build(6, 1);
        let edge = sb.occupant(GroupId::edge(0).slot(0));
        // Down-port (host side): only ring self-tests, no host partners.
        let configs = sb.diagnosis_configs(edge, 0);
        assert_eq!(configs.len(), 2);
        assert!(configs.iter().all(|c| c.partner.0 == edge));
    }

    #[test]
    fn core_diagnosis_uses_spare_agg_partner() {
        let sb = build(6, 1);
        let core = sb.occupant(GroupId::core(0).slot(0));
        let configs = sb.diagnosis_configs(core, 2); // pod-2 interface
        assert_eq!(configs.len(), 1);
        let (partner, iface) = configs[0].partner;
        assert_eq!(sb.phys(partner).group, GroupId::agg(2));
        assert_eq!(iface, 3); // agg up-port u=0 at k=6
    }

    #[test]
    fn non_uniform_backup_pools() {
        // §6 extension: more backups on critical (edge) groups, fewer on
        // cores. Everything — inventory, replacement, circuit realization —
        // must still hold.
        let cfg = ShareBackupConfig::new(6, 1).with_backups(2, 1, 0);
        let mut sb = ShareBackup::build(cfg);
        assert_eq!(sb.group_members(GroupId::edge(0)).len(), 5);
        assert_eq!(sb.group_members(GroupId::agg(0)).len(), 4);
        assert_eq!(sb.group_members(GroupId::core(0)).len(), 3);
        assert_eq!(sb.spares(GroupId::edge(0)).len(), 2);
        assert_eq!(sb.spares(GroupId::core(0)).len(), 0);
        // Two successive edge replacements succeed (two backups).
        for _ in 0..2 {
            let slot = GroupId::edge(0).slot(0);
            let spare = sb.spares(GroupId::edge(0))[0];
            sb.replace(slot, spare);
        }
        // Agg replacement also succeeds.
        let spare = sb.spares(GroupId::agg(3))[0];
        sb.replace(GroupId::agg(3).slot(2), spare);
        // The circuit layer still realizes exactly the fat-tree.
        let mut expected: Vec<(NodeId, NodeId)> = sb
            .slots
            .net
            .link_ids()
            .map(|l| {
                let link = sb.slots.net.link(l);
                if link.a <= link.b {
                    (link.a, link.b)
                } else {
                    (link.b, link.a)
                }
            })
            .collect();
        expected.sort();
        assert_eq!(sb.derived_links(), expected);
    }

    #[test]
    fn zero_backup_layer_has_no_spares_to_offer() {
        let cfg = ShareBackupConfig::new(4, 1).with_backups(1, 1, 0);
        let sb = ShareBackup::build(cfg);
        assert!(sb.spares(GroupId::core(0)).is_empty());
        assert_eq!(sb.spares(GroupId::edge(2)).len(), 1);
    }

    #[test]
    #[should_panic(expected = "different failure group")]
    fn cross_group_replacement_rejected() {
        let mut sb = build(4, 1);
        let spare = sb.spares(GroupId::edge(0))[0];
        sb.replace(GroupId::agg(0).slot(0), spare);
    }

    #[test]
    fn replace_with_no_slot_change_is_stable() {
        // Replacing back and forth returns to an equivalent configuration.
        let mut sb = build(4, 2);
        let slot = GroupId::edge(1).slot(1);
        let first = sb.occupant(slot);
        let spare = sb.spares(slot.group)[0];
        sb.replace(slot, spare);
        sb.replace(slot, first);
        assert_eq!(sb.occupant(slot), first);
        let mut expected: Vec<(NodeId, NodeId)> = sb
            .slots
            .net
            .link_ids()
            .map(|l| {
                let link = sb.slots.net.link(l);
                if link.a <= link.b {
                    (link.a, link.b)
                } else {
                    (link.b, link.a)
                }
            })
            .collect();
        expected.sort();
        assert_eq!(sb.derived_links(), expected);
    }
}
