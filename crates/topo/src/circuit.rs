//! The configurable circuit switch: a reconfigurable partial matching.
//!
//! ShareBackup's enabling technology (paper §3, §5.2) is a small circuit
//! switch — an electrical crosspoint switch or a 2D-MEMS optical switch —
//! placed between adjacent layers of packet switches (and between edge
//! switches and hosts). A circuit switch imposes no packet processing; it
//! simply cross-connects pairs of its ports. Reconfiguring a circuit takes
//! 70 ns (crosspoint) or 40 µs (2D MEMS) — datasheet numbers the paper cites
//! for XFabric and optical MEMS respectively.
//!
//! The model here is a symmetric partial matching over ports plus an
//! *attachment* table describing what device is cabled to each port. The
//! ShareBackup builder derives logical (data-plane) links by following
//! port→port circuits between attachments.

use sharebackup_sim::Duration;

use crate::ids::{NodeId, PhysId};

/// Implementation technology of a circuit switch, with datasheet parameters.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CircuitTech {
    /// Electrical crosspoint switch (XFabric): 70 ns reconfiguration,
    /// scales to 256 ports, $3/port.
    Crosspoint,
    /// 2D MEMS optical switch: 40 µs reconfiguration, scales to 32 ports,
    /// $10/port.
    Mems2D,
}

impl CircuitTech {
    /// Time to reset one circuit.
    pub fn reconfiguration_delay(self) -> Duration {
        match self {
            CircuitTech::Crosspoint => Duration::from_nanos(70),
            CircuitTech::Mems2D => Duration::from_micros(40),
        }
    }

    /// Largest commercially plausible port count (paper §5.3).
    pub fn max_ports(self) -> usize {
        match self {
            CircuitTech::Crosspoint => 256,
            CircuitTech::Mems2D => 32,
        }
    }

    /// Per-port market price in dollars (paper Table 2).
    pub fn per_port_cost(self) -> f64 {
        match self {
            CircuitTech::Crosspoint => 3.0,
            CircuitTech::Mems2D => 10.0,
        }
    }
}

/// A port index on one circuit switch.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CsPort(pub usize);

/// What is cabled to a circuit-switch port.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Attachment {
    /// Nothing attached.
    Empty,
    /// Interface `port` of physical packet switch `switch`.
    Switch {
        /// The packet switch.
        switch: PhysId,
        /// The interface index on that switch.
        port: usize,
    },
    /// An end host.
    Host(NodeId),
    /// A side-port cable to port `port` of circuit switch `cs` (the ring
    /// used for offline failure diagnosis, paper §4.2 / Fig. 4).
    Side {
        /// Index of the peer circuit switch within its ring.
        cs: usize,
        /// The peer's side port.
        port: CsPort,
    },
}

/// A circuit switch: attachments plus a symmetric partial matching.
#[derive(Clone, Debug)]
pub struct CircuitSwitch {
    tech: CircuitTech,
    attachments: Vec<Attachment>,
    /// `mate[p] == Some(q)` iff a circuit connects ports p and q (symmetric).
    mate: Vec<Option<usize>>,
    reconfigurations: u64,
    up: bool,
}

impl CircuitSwitch {
    /// A circuit switch with `ports` ports, all empty and unconnected.
    ///
    /// # Panics
    /// Panics if `ports` exceeds the technology's port-count limit.
    pub fn new(tech: CircuitTech, ports: usize) -> CircuitSwitch {
        assert!(
            ports <= tech.max_ports(),
            "{ports} ports exceeds {tech:?} limit of {}",
            tech.max_ports()
        );
        CircuitSwitch {
            tech,
            attachments: vec![Attachment::Empty; ports],
            mate: vec![None; ports],
            reconfigurations: 0,
            up: true,
        }
    }

    /// The implementation technology.
    pub fn tech(&self) -> CircuitTech {
        self.tech
    }

    /// Number of ports.
    pub fn port_count(&self) -> usize {
        self.attachments.len()
    }

    /// Record what is cabled to `port` (cabling is done once at build time).
    pub fn attach(&mut self, port: CsPort, what: Attachment) {
        self.attachments[port.0] = what;
    }

    /// What is cabled to `port`.
    pub fn attachment(&self, port: CsPort) -> Attachment {
        self.attachments[port.0]
    }

    /// The port currently circuit-connected to `port`, if any.
    pub fn mate(&self, port: CsPort) -> Option<CsPort> {
        self.mate[port.0].map(CsPort)
    }

    /// Establish a circuit between `a` and `b`, severing any existing
    /// circuits on either port. Returns the number of circuit operations
    /// performed (tear-downs plus the set-up), each costing one
    /// [`CircuitTech::reconfiguration_delay`]; in practice a crossbar applies
    /// them simultaneously, so callers charge a single delay per request.
    ///
    /// # Panics
    /// Panics if `a == b`.
    pub fn connect(&mut self, a: CsPort, b: CsPort) -> u32 {
        assert_ne!(a, b, "cannot connect a port to itself");
        let mut ops = 0;
        if self.mate[a.0] == Some(b.0) {
            return 0; // already connected
        }
        if self.mate[a.0].is_some() {
            self.disconnect(a);
            ops += 1;
        }
        if self.mate[b.0].is_some() {
            self.disconnect(b);
            ops += 1;
        }
        self.mate[a.0] = Some(b.0);
        self.mate[b.0] = Some(a.0);
        self.reconfigurations += 1;
        ops + 1
    }

    /// Tear down the circuit on `port`, if any.
    pub fn disconnect(&mut self, port: CsPort) {
        if let Some(q) = self.mate[port.0].take() {
            self.mate[q] = None;
            self.reconfigurations += 1;
        }
    }

    /// Total circuit set-up/tear-down operations performed so far.
    pub fn reconfigurations(&self) -> u64 {
        self.reconfigurations
    }

    /// Whether the circuit switch is operational. A failed circuit switch
    /// takes down every logical link through it (paper §5.1 handles this by
    /// thresholded human-intervention escalation).
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Mark the switch up or down.
    pub fn set_up(&mut self, up: bool) {
        self.up = up;
    }

    /// All (a, b) circuit pairs with a < b.
    pub fn circuits(&self) -> Vec<(CsPort, CsPort)> {
        self.mate
            .iter()
            .enumerate()
            .filter_map(|(p, &m)| match m {
                Some(q) if p < q => Some((CsPort(p), CsPort(q))),
                _ => None,
            })
            .collect()
    }

    /// Assert that the matching is structurally valid: every circuit is
    /// symmetric (`mate[p] == q ⇒ mate[q] == p`) and no port is connected
    /// to itself. Called after every reconfiguration under the
    /// `strict-invariants` feature.
    ///
    /// # Panics
    /// Panics if the matching is asymmetric or contains a self-circuit.
    pub fn check_matching(&self) {
        for (p, &m) in self.mate.iter().enumerate() {
            if let Some(q) = m {
                assert_ne!(p, q, "self-circuit on port {p}");
                assert_eq!(
                    self.mate[q],
                    Some(p),
                    "asymmetric matching: {p} -> {q} but {q} -> {:?}",
                    self.mate[q]
                );
            }
        }
    }

    /// Find the port to which `what` is attached, if any.
    pub fn port_of(&self, what: Attachment) -> Option<CsPort> {
        self.attachments
            .iter()
            .position(|&a| a == what)
            .map(CsPort)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tech_parameters_match_paper() {
        assert_eq!(
            CircuitTech::Crosspoint.reconfiguration_delay(),
            Duration::from_nanos(70)
        );
        assert_eq!(
            CircuitTech::Mems2D.reconfiguration_delay(),
            Duration::from_micros(40)
        );
        assert_eq!(CircuitTech::Mems2D.max_ports(), 32);
        assert_eq!(CircuitTech::Crosspoint.max_ports(), 256);
        assert_eq!(CircuitTech::Crosspoint.per_port_cost(), 3.0);
        assert_eq!(CircuitTech::Mems2D.per_port_cost(), 10.0);
    }

    #[test]
    fn matching_is_symmetric() {
        let mut cs = CircuitSwitch::new(CircuitTech::Crosspoint, 8);
        cs.connect(CsPort(0), CsPort(5));
        assert_eq!(cs.mate(CsPort(0)), Some(CsPort(5)));
        assert_eq!(cs.mate(CsPort(5)), Some(CsPort(0)));
        assert_eq!(cs.mate(CsPort(1)), None);
        assert_eq!(cs.circuits(), vec![(CsPort(0), CsPort(5))]);
    }

    #[test]
    fn reconnect_severs_old_circuits() {
        let mut cs = CircuitSwitch::new(CircuitTech::Crosspoint, 8);
        cs.connect(CsPort(0), CsPort(1));
        cs.connect(CsPort(2), CsPort(3));
        // Rewire 0 to 2: both old circuits must be severed.
        let ops = cs.connect(CsPort(0), CsPort(2));
        assert_eq!(ops, 3);
        assert_eq!(cs.mate(CsPort(0)), Some(CsPort(2)));
        assert_eq!(cs.mate(CsPort(1)), None);
        assert_eq!(cs.mate(CsPort(3)), None);
    }

    #[test]
    fn connecting_already_connected_is_noop() {
        let mut cs = CircuitSwitch::new(CircuitTech::Mems2D, 4);
        cs.connect(CsPort(0), CsPort(1));
        let before = cs.reconfigurations();
        assert_eq!(cs.connect(CsPort(0), CsPort(1)), 0);
        assert_eq!(cs.reconfigurations(), before);
    }

    #[test]
    fn disconnect_is_idempotent() {
        let mut cs = CircuitSwitch::new(CircuitTech::Mems2D, 4);
        cs.connect(CsPort(0), CsPort(1));
        cs.disconnect(CsPort(1));
        assert_eq!(cs.mate(CsPort(0)), None);
        let count = cs.reconfigurations();
        cs.disconnect(CsPort(1));
        assert_eq!(cs.reconfigurations(), count);
    }

    #[test]
    fn attachments_round_trip() {
        let mut cs = CircuitSwitch::new(CircuitTech::Mems2D, 4);
        let att = Attachment::Switch {
            switch: PhysId(3),
            port: 2,
        };
        cs.attach(CsPort(1), att);
        assert_eq!(cs.attachment(CsPort(1)), att);
        assert_eq!(cs.port_of(att), Some(CsPort(1)));
        assert_eq!(cs.attachment(CsPort(0)), Attachment::Empty);
        assert_eq!(cs.port_of(Attachment::Host(NodeId(9))), None);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn port_limit_enforced() {
        CircuitSwitch::new(CircuitTech::Mems2D, 33);
    }

    #[test]
    #[should_panic(expected = "itself")]
    fn self_circuit_rejected() {
        let mut cs = CircuitSwitch::new(CircuitTech::Mems2D, 4);
        cs.connect(CsPort(2), CsPort(2));
    }
}
