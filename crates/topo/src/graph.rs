//! The logical network graph: nodes, capacity-weighted links, up/down state.
//!
//! [`Network`] is the data-plane view every simulator routes over. In a plain
//! fat-tree or F10 network the switch nodes are physical devices; in a
//! ShareBackup network they are *slots* whose occupant may be swapped by the
//! control plane. Failure state lives here: nodes and links can be marked
//! down, and all path queries respect that state.

use crate::ids::{LinkId, NodeId};

/// What kind of device a node is.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum NodeKind {
    /// An end host.
    Host,
    /// A top-of-rack (edge) switch position.
    Edge,
    /// An aggregation switch position.
    Agg,
    /// A core switch position.
    Core,
}

impl NodeKind {
    /// True for any switch kind (everything but `Host`).
    pub fn is_switch(self) -> bool {
        !matches!(self, NodeKind::Host)
    }
}

/// A node of the network graph.
#[derive(Clone, Debug)]
pub struct Node {
    /// Device kind.
    pub kind: NodeKind,
    /// Pod index for hosts/edge/agg nodes; `None` for cores.
    pub pod: Option<usize>,
    /// Index within its layer (global for cores/hosts, in-pod for edge/agg).
    pub index: usize,
    /// Whether the node is currently operational.
    pub up: bool,
}

/// An undirected capacity-weighted link.
#[derive(Clone, Debug)]
pub struct Link {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Capacity in bits per second.
    pub capacity_bps: f64,
    /// Whether the link itself is operational (independent of endpoints).
    pub up: bool,
}

impl Link {
    /// The endpoint opposite to `n`.
    ///
    /// # Panics
    /// Panics if `n` is not an endpoint of this link.
    pub fn other(&self, n: NodeId) -> NodeId {
        if n == self.a {
            self.b
        } else if n == self.b {
            self.a
        } else {
            panic!("{n:?} is not an endpoint of this link");
        }
    }
}

/// The logical network: an arena of nodes and undirected links.
#[derive(Clone, Debug, Default)]
pub struct Network {
    nodes: Vec<Node>,
    links: Vec<Link>,
    adjacency: Vec<Vec<LinkId>>,
}

impl Network {
    /// An empty network.
    pub fn new() -> Network {
        Network::default()
    }

    /// Add a node and return its id.
    pub fn add_node(&mut self, kind: NodeKind, pod: Option<usize>, index: usize) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(Node {
            kind,
            pod,
            index,
            up: true,
        });
        self.adjacency.push(Vec::new());
        id
    }

    /// Add an undirected link of the given capacity and return its id.
    ///
    /// # Panics
    /// Panics on a self-loop.
    pub fn add_link(&mut self, a: NodeId, b: NodeId, capacity_bps: f64) -> LinkId {
        assert_ne!(a, b, "self-loop");
        let id = LinkId::from_index(self.links.len());
        self.links.push(Link {
            a,
            b,
            capacity_bps,
            up: true,
        });
        self.adjacency[a.0 as usize].push(id);
        self.adjacency[b.0 as usize].push(id);
        id
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Immutable node accessor.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Immutable link accessor.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0 as usize]
    }

    /// Iterate over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId::from_index)
    }

    /// Iterate over all link ids.
    pub fn link_ids(&self) -> impl Iterator<Item = LinkId> + '_ {
        (0..self.links.len()).map(LinkId::from_index)
    }

    /// All links incident to `n` (up or down).
    pub fn incident(&self, n: NodeId) -> &[LinkId] {
        &self.adjacency[n.0 as usize]
    }

    /// Mark a node up or down.
    pub fn set_node_up(&mut self, n: NodeId, up: bool) {
        self.nodes[n.0 as usize].up = up;
    }

    /// Mark a link up or down.
    pub fn set_link_up(&mut self, l: LinkId, up: bool) {
        self.links[l.0 as usize].up = up;
    }

    /// A link is usable iff it and both endpoints are up.
    pub fn link_usable(&self, l: LinkId) -> bool {
        let link = self.link(l);
        link.up && self.node(link.a).up && self.node(link.b).up
    }

    /// The link between `a` and `b`, if one exists (regardless of state).
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
        self.incident(a)
            .iter()
            .copied()
            .find(|&l| self.link(l).other(a) == b)
    }

    /// Usable neighbors of `n`, with the connecting link.
    pub fn up_neighbors(&self, n: NodeId) -> impl Iterator<Item = (NodeId, LinkId)> + '_ {
        self.incident(n)
            .iter()
            .copied()
            .filter(move |&l| self.link_usable(l))
            .map(move |l| (self.link(l).other(n), l))
    }

    /// Whether every consecutive pair in `path` is joined by a usable link
    /// and every node on the path is up.
    pub fn path_usable(&self, path: &[NodeId]) -> bool {
        if path.is_empty() {
            return false;
        }
        if !path.iter().all(|&n| self.node(n).up) {
            return false;
        }
        path.windows(2).all(|w| {
            self.link_between(w[0], w[1])
                .is_some_and(|l| self.link_usable(l))
        })
    }

    /// Breadth-first shortest path from `src` to `dst` over usable links.
    ///
    /// Returns the node sequence including both endpoints, or `None` if
    /// disconnected. Deterministic: neighbors are explored in link-insertion
    /// order.
    pub fn bfs_path(&self, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        if src == dst {
            return Some(vec![src]);
        }
        if !self.node(src).up || !self.node(dst).up {
            return None;
        }
        let mut prev: Vec<Option<NodeId>> = vec![None; self.nodes.len()];
        let mut visited = vec![false; self.nodes.len()];
        visited[src.0 as usize] = true;
        let mut frontier = std::collections::VecDeque::new();
        frontier.push_back(src);
        while let Some(cur) = frontier.pop_front() {
            for (next, _link) in self.up_neighbors(cur) {
                if visited[next.0 as usize] {
                    continue;
                }
                visited[next.0 as usize] = true;
                prev[next.0 as usize] = Some(cur);
                if next == dst {
                    let mut path = vec![dst];
                    let mut at = dst;
                    while let Some(p) = prev[at.0 as usize] {
                        path.push(p);
                        at = p;
                    }
                    path.reverse();
                    return Some(path);
                }
                frontier.push_back(next);
            }
        }
        None
    }

    /// Hop distance (link count) of the shortest usable path, if connected.
    pub fn distance(&self, src: NodeId, dst: NodeId) -> Option<usize> {
        self.bfs_path(src, dst).map(|p| p.len() - 1)
    }

    /// Ids of all hosts.
    pub fn hosts(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&n| self.node(n).kind == NodeKind::Host)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Triangle network with one extra pendant host.
    fn triangle() -> (Network, Vec<NodeId>, Vec<LinkId>) {
        let mut net = Network::new();
        let a = net.add_node(NodeKind::Host, Some(0), 0);
        let b = net.add_node(NodeKind::Edge, Some(0), 0);
        let c = net.add_node(NodeKind::Edge, Some(0), 1);
        let d = net.add_node(NodeKind::Host, Some(0), 1);
        let ab = net.add_link(a, b, 10e9);
        let bc = net.add_link(b, c, 10e9);
        let ca = net.add_link(c, a, 10e9);
        let cd = net.add_link(c, d, 10e9);
        (net, vec![a, b, c, d], vec![ab, bc, ca, cd])
    }

    #[test]
    fn adjacency_and_lookup() {
        let (net, n, l) = triangle();
        assert_eq!(net.node_count(), 4);
        assert_eq!(net.link_count(), 4);
        assert_eq!(net.incident(n[2]).len(), 3);
        assert_eq!(net.link_between(n[0], n[1]), Some(l[0]));
        assert_eq!(net.link_between(n[1], n[3]), None);
        assert_eq!(net.link(l[0]).other(n[0]), n[1]);
    }

    #[test]
    fn bfs_finds_shortest() {
        let (net, n, _) = triangle();
        assert_eq!(net.bfs_path(n[0], n[3]), Some(vec![n[0], n[2], n[3]]));
        assert_eq!(net.distance(n[0], n[3]), Some(2));
        assert_eq!(net.distance(n[0], n[0]), Some(0));
    }

    #[test]
    fn link_failure_forces_detour() {
        let (mut net, n, l) = triangle();
        net.set_link_up(l[2], false); // cut c-a
        assert_eq!(
            net.bfs_path(n[0], n[3]),
            Some(vec![n[0], n[1], n[2], n[3]])
        );
        assert!(!net.link_usable(l[2]));
    }

    #[test]
    fn node_failure_disconnects() {
        let (mut net, n, _) = triangle();
        net.set_node_up(n[2], false); // c is the only way to d
        assert_eq!(net.bfs_path(n[0], n[3]), None);
        // Links through c are unusable even though the link itself is up.
        let bc = net.link_between(n[1], n[2]).expect("link exists");
        assert!(net.link(bc).up);
        assert!(!net.link_usable(bc));
    }

    #[test]
    fn path_usable_checks_every_hop() {
        let (mut net, n, l) = triangle();
        assert!(net.path_usable(&[n[0], n[2], n[3]]));
        assert!(!net.path_usable(&[n[0], n[3]])); // no direct link
        net.set_link_up(l[3], false);
        assert!(!net.path_usable(&[n[0], n[2], n[3]]));
        assert!(!net.path_usable(&[]));
    }

    #[test]
    fn recovery_restores_paths() {
        let (mut net, n, l) = triangle();
        net.set_link_up(l[2], false);
        net.set_node_up(n[2], false);
        assert_eq!(net.bfs_path(n[0], n[3]), None);
        net.set_node_up(n[2], true);
        net.set_link_up(l[2], true);
        assert_eq!(net.distance(n[0], n[3]), Some(2));
    }

    #[test]
    fn hosts_lists_only_hosts() {
        let (net, n, _) = triangle();
        assert_eq!(net.hosts(), vec![n[0], n[3]]);
    }
}
