//! The k-ary fat-tree of Al-Fares et al. (SIGCOMM'08).
//!
//! A fat-tree with parameter `k` has `k` pods; each pod holds `k/2` edge and
//! `k/2` aggregation switches; `(k/2)²` core switches join the pods; each edge
//! switch serves `k/2` hosts, for `k³/4` hosts total.
//!
//! The paper's §2.2 failure study maps a 150-rack 10:1-oversubscribed
//! production trace onto a k=16 fat-tree with the same oversubscription at
//! the edge, so the builder takes an oversubscription factor: uplinks carry
//! `host_link_bps / oversubscription` each, making the edge layer's
//! down:up capacity ratio equal to `oversubscription`.

use crate::graph::{Network, NodeKind};
use crate::ids::NodeId;

/// Parameters of a fat-tree instance.
#[derive(Clone, Copy, Debug)]
pub struct FatTreeConfig {
    /// Switch port count and pod count. Must be even and ≥ 4.
    pub k: usize,
    /// Capacity of host-to-edge links, bits per second.
    pub host_link_bps: f64,
    /// Edge oversubscription ratio (1.0 = full bisection).
    pub oversubscription: f64,
}

impl FatTreeConfig {
    /// A full-bisection 10 Gbps fat-tree of the given `k`.
    pub fn new(k: usize) -> FatTreeConfig {
        FatTreeConfig {
            k,
            host_link_bps: 10e9,
            oversubscription: 1.0,
        }
    }

    /// Set the edge oversubscription ratio (paper §2.2 uses 10:1).
    pub fn with_oversubscription(mut self, ratio: f64) -> FatTreeConfig {
        self.oversubscription = ratio;
        self
    }

    /// Set the host link capacity in bits per second.
    pub fn with_host_link_bps(mut self, bps: f64) -> FatTreeConfig {
        self.host_link_bps = bps;
        self
    }

    /// Capacity of switch-to-switch links under this configuration.
    pub fn uplink_bps(&self) -> f64 {
        self.host_link_bps / self.oversubscription
    }

    /// Number of hosts, `k³/4`.
    pub fn host_count(&self) -> usize {
        self.k * self.k * self.k / 4
    }

    /// Number of core switches, `(k/2)²`.
    pub fn core_count(&self) -> usize {
        (self.k / 2) * (self.k / 2)
    }
}

/// A host's position: pod, edge switch within the pod, port on that edge.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct HostAddr {
    /// Pod index in `[0, k)`.
    pub pod: usize,
    /// Edge switch index within the pod, `[0, k/2)`.
    pub edge: usize,
    /// Host index under that edge switch, `[0, k/2)`.
    pub host: usize,
}

impl HostAddr {
    /// Global host index: `pod·k²/4 + edge·k/2 + host`.
    pub fn to_index(self, k: usize) -> usize {
        self.pod * (k * k / 4) + self.edge * (k / 2) + self.host
    }

    /// Inverse of [`HostAddr::to_index`].
    pub fn from_index(index: usize, k: usize) -> HostAddr {
        let per_pod = k * k / 4;
        let per_edge = k / 2;
        HostAddr {
            pod: index / per_pod,
            edge: (index % per_pod) / per_edge,
            host: index % per_edge,
        }
    }
}

/// A built fat-tree: the graph plus layer indexes for O(1) lookup.
#[derive(Clone, Debug)]
pub struct FatTree {
    /// The configuration this tree was built from.
    pub cfg: FatTreeConfig,
    /// The underlying graph.
    pub net: Network,
    hosts: Vec<NodeId>,
    edges: Vec<Vec<NodeId>>,
    aggs: Vec<Vec<NodeId>>,
    cores: Vec<NodeId>,
}

impl FatTree {
    /// Build a fat-tree.
    ///
    /// # Panics
    /// Panics if `k` is odd or less than 4.
    #[allow(clippy::needless_range_loop)] // indices double as addresses
    pub fn build(cfg: FatTreeConfig) -> FatTree {
        assert!(cfg.k >= 4 && cfg.k.is_multiple_of(2), "k must be even and >= 4");
        let k = cfg.k;
        let half = k / 2;
        let mut net = Network::new();

        let cores: Vec<NodeId> = (0..cfg.core_count())
            .map(|j| net.add_node(NodeKind::Core, None, j))
            .collect();
        let mut edges = Vec::with_capacity(k);
        let mut aggs = Vec::with_capacity(k);
        let mut hosts = Vec::with_capacity(cfg.host_count());
        for pod in 0..k {
            edges.push(
                (0..half)
                    .map(|j| net.add_node(NodeKind::Edge, Some(pod), j))
                    .collect::<Vec<_>>(),
            );
            aggs.push(
                (0..half)
                    .map(|j| net.add_node(NodeKind::Agg, Some(pod), j))
                    .collect::<Vec<_>>(),
            );
            for e in 0..half {
                for h in 0..half {
                    let addr = HostAddr {
                        pod,
                        edge: e,
                        host: h,
                    };
                    let id = net.add_node(NodeKind::Host, Some(pod), addr.to_index(k));
                    hosts.push(id);
                }
            }
        }

        let uplink = cfg.uplink_bps();
        for pod in 0..k {
            // Host <-> edge.
            for e in 0..half {
                for h in 0..half {
                    let idx = HostAddr {
                        pod,
                        edge: e,
                        host: h,
                    }
                    .to_index(k);
                    net.add_link(hosts[idx], edges[pod][e], cfg.host_link_bps);
                }
            }
            // Edge <-> agg: full bipartite within the pod.
            for e in 0..half {
                for a in 0..half {
                    net.add_link(edges[pod][e], aggs[pod][a], uplink);
                }
            }
            // Agg j <-> cores j·k/2 .. j·k/2 + k/2 − 1.
            for a in 0..half {
                for m in 0..half {
                    net.add_link(aggs[pod][a], cores[a * half + m], uplink);
                }
            }
        }

        FatTree {
            cfg,
            net,
            hosts,
            edges,
            aggs,
            cores,
        }
    }

    /// Fat-tree parameter `k`.
    pub fn k(&self) -> usize {
        self.cfg.k
    }

    /// Node id of the host at `addr`.
    pub fn host(&self, addr: HostAddr) -> NodeId {
        self.hosts[addr.to_index(self.cfg.k)]
    }

    /// Node id of the host with the given global index.
    pub fn host_by_index(&self, index: usize) -> NodeId {
        self.hosts[index]
    }

    /// All host node ids, in global-index order.
    pub fn hosts(&self) -> &[NodeId] {
        &self.hosts
    }

    /// Edge switch E_{pod,j}.
    pub fn edge(&self, pod: usize, j: usize) -> NodeId {
        self.edges[pod][j]
    }

    /// Aggregation switch A_{pod,j}.
    pub fn agg(&self, pod: usize, j: usize) -> NodeId {
        self.aggs[pod][j]
    }

    /// Core switch C_j (global index).
    pub fn core(&self, j: usize) -> NodeId {
        self.cores[j]
    }

    /// All core switch ids in index order.
    pub fn cores(&self) -> &[NodeId] {
        &self.cores
    }

    /// The address of a host node.
    ///
    /// # Panics
    /// Panics if `n` is not a host.
    pub fn addr_of(&self, n: NodeId) -> HostAddr {
        let node = self.net.node(n);
        assert_eq!(node.kind, NodeKind::Host, "{n:?} is not a host");
        HostAddr::from_index(node.index, self.cfg.k)
    }

    /// The core switch an aggregation switch with in-pod index `a` reaches on
    /// its `m`-th uplink: global core index `a·k/2 + m`.
    pub fn core_index(&self, a: usize, m: usize) -> usize {
        a * (self.cfg.k / 2) + m
    }

    /// All equal-cost shortest paths between two hosts, as node sequences
    /// including both endpoints (ignores failure state — callers filter with
    /// [`Network::path_usable`]).
    ///
    /// * Same edge switch: 1 path of 2 hops.
    /// * Same pod, different edge: k/2 paths of 4 hops.
    /// * Different pods: (k/2)² paths of 6 hops.
    pub fn host_paths(&self, src: NodeId, dst: NodeId) -> Vec<Vec<NodeId>> {
        let half = self.cfg.k / 2;
        let s = self.addr_of(src);
        let d = self.addr_of(dst);
        assert!(src != dst, "src == dst");
        let se = self.edges[s.pod][s.edge];
        let de = self.edges[d.pod][d.edge];
        if s.pod == d.pod && s.edge == d.edge {
            return vec![vec![src, se, dst]];
        }
        if s.pod == d.pod {
            return (0..half)
                .map(|a| vec![src, se, self.aggs[s.pod][a], de, dst])
                .collect();
        }
        let mut paths = Vec::with_capacity(half * half);
        for a in 0..half {
            for m in 0..half {
                let core = self.cores[self.core_index(a, m)];
                paths.push(vec![
                    src,
                    se,
                    self.aggs[s.pod][a],
                    core,
                    self.aggs[d.pod][a],
                    de,
                    dst,
                ]);
            }
        }
        paths
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_formulas() {
        for k in [4, 6, 8, 16] {
            let ft = FatTree::build(FatTreeConfig::new(k));
            let half = k / 2;
            assert_eq!(ft.hosts().len(), k * k * k / 4, "hosts for k={k}");
            assert_eq!(ft.cores().len(), half * half, "cores for k={k}");
            // Links: hosts k³/4 + edge-agg k·(k/2)² + agg-core k·(k/2)².
            let expect = k * k * k / 4 + 2 * k * half * half;
            assert_eq!(ft.net.link_count(), expect, "links for k={k}");
            // Switch degrees: every switch has exactly k links.
            for pod in 0..k {
                for j in 0..half {
                    assert_eq!(ft.net.incident(ft.edge(pod, j)).len(), k);
                    assert_eq!(ft.net.incident(ft.agg(pod, j)).len(), k);
                }
            }
            for j in 0..half * half {
                assert_eq!(ft.net.incident(ft.core(j)).len(), k);
            }
        }
    }

    #[test]
    fn host_addr_round_trip() {
        let k = 8;
        for idx in 0..(k * k * k / 4) {
            let addr = HostAddr::from_index(idx, k);
            assert_eq!(addr.to_index(k), idx);
            assert!(addr.pod < k && addr.edge < k / 2 && addr.host < k / 2);
        }
    }

    #[test]
    fn paths_have_expected_multiplicity_and_length() {
        let ft = FatTree::build(FatTreeConfig::new(6));
        let same_edge = ft.host_paths(
            ft.host(HostAddr { pod: 0, edge: 0, host: 0 }),
            ft.host(HostAddr { pod: 0, edge: 0, host: 1 }),
        );
        assert_eq!(same_edge.len(), 1);
        assert_eq!(same_edge[0].len(), 3);

        let same_pod = ft.host_paths(
            ft.host(HostAddr { pod: 0, edge: 0, host: 0 }),
            ft.host(HostAddr { pod: 0, edge: 2, host: 1 }),
        );
        assert_eq!(same_pod.len(), 3);
        assert!(same_pod.iter().all(|p| p.len() == 5));

        let cross_pod = ft.host_paths(
            ft.host(HostAddr { pod: 0, edge: 0, host: 0 }),
            ft.host(HostAddr { pod: 3, edge: 2, host: 1 }),
        );
        assert_eq!(cross_pod.len(), 9);
        assert!(cross_pod.iter().all(|p| p.len() == 7));
    }

    #[test]
    fn all_enumerated_paths_are_usable() {
        let ft = FatTree::build(FatTreeConfig::new(4));
        let hosts = ft.hosts();
        for (i, &src) in hosts.iter().enumerate() {
            for &dst in &hosts[i + 1..] {
                for path in ft.host_paths(src, dst) {
                    assert!(ft.net.path_usable(&path), "unusable path {path:?}");
                }
            }
        }
    }

    #[test]
    fn bfs_distance_matches_enumerated_paths() {
        let ft = FatTree::build(FatTreeConfig::new(4));
        let a = ft.host(HostAddr { pod: 0, edge: 0, host: 0 });
        let b = ft.host(HostAddr { pod: 1, edge: 1, host: 1 });
        assert_eq!(ft.net.distance(a, b), Some(6));
        let c = ft.host(HostAddr { pod: 0, edge: 1, host: 0 });
        assert_eq!(ft.net.distance(a, c), Some(4));
    }

    #[test]
    fn oversubscription_scales_uplinks_only() {
        let cfg = FatTreeConfig::new(8).with_oversubscription(10.0);
        let ft = FatTree::build(cfg);
        let host = ft.host(HostAddr { pod: 0, edge: 0, host: 0 });
        let edge = ft.edge(0, 0);
        let agg = ft.agg(0, 0);
        let hl = ft.net.link_between(host, edge).expect("host link");
        let ul = ft.net.link_between(edge, agg).expect("uplink");
        assert_eq!(ft.net.link(hl).capacity_bps, 10e9);
        assert_eq!(ft.net.link(ul).capacity_bps, 1e9);
    }

    #[test]
    fn core_wiring_is_strided_by_agg_index() {
        let ft = FatTree::build(FatTreeConfig::new(6));
        // Agg a in every pod connects to the same cores a·k/2+m.
        for pod in 0..6 {
            for a in 0..3 {
                for m in 0..3 {
                    let core = ft.core(ft.core_index(a, m));
                    assert!(
                        ft.net.link_between(ft.agg(pod, a), core).is_some(),
                        "agg({pod},{a}) should reach core {}",
                        ft.core_index(a, m)
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "k must be even")]
    fn odd_k_rejected() {
        FatTree::build(FatTreeConfig::new(5));
    }
}
