//! The F10 AB fat-tree of Liu et al. (NSDI'13).
//!
//! F10 keeps the fat-tree's node inventory but alternates the striping
//! between aggregation and core layers across pods: *type A* pods use the
//! standard consecutive striping (agg `a` → cores `a·k/2+m`), *type B* pods
//! use the transposed striping (agg `a` → cores `m·k/2+a`). Consequently a
//! core reaches different in-pod aggregation indices in A and B pods, which
//! is what makes F10's local (3-extra-hop) rerouting possible: from a core
//! that lost its link into a pod, a detour through any type-opposite pod
//! reaches an *alternate* core that enters the target pod through a
//! different aggregation switch.
//!
//! The paper's §2.2 uses F10 with its local rerouting as the second
//! rerouting baseline; the detour construction itself lives in
//! `sharebackup-routing`.

use crate::graph::{Network, NodeKind};
use crate::ids::NodeId;
use crate::fattree::{FatTreeConfig, HostAddr};

/// The two striping types of F10 pods.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PodType {
    /// Consecutive striping: agg `a` → cores `a·k/2 + m`.
    A,
    /// Transposed striping: agg `a` → cores `m·k/2 + a`.
    B,
}

/// A built F10 network.
#[derive(Clone, Debug)]
pub struct F10Topology {
    /// The configuration (shared with plain fat-trees).
    pub cfg: FatTreeConfig,
    /// The underlying graph.
    pub net: Network,
    hosts: Vec<NodeId>,
    edges: Vec<Vec<NodeId>>,
    aggs: Vec<Vec<NodeId>>,
    cores: Vec<NodeId>,
}

impl F10Topology {
    /// Build an F10 AB fat-tree; even pods are type A, odd pods type B.
    ///
    /// # Panics
    /// Panics if `k` is odd or less than 4.
    #[allow(clippy::needless_range_loop)] // indices double as addresses
    pub fn build(cfg: FatTreeConfig) -> F10Topology {
        assert!(cfg.k >= 4 && cfg.k.is_multiple_of(2), "k must be even and >= 4");
        let k = cfg.k;
        let half = k / 2;
        let mut net = Network::new();

        let cores: Vec<NodeId> = (0..cfg.core_count())
            .map(|j| net.add_node(NodeKind::Core, None, j))
            .collect();
        let mut edges = Vec::with_capacity(k);
        let mut aggs = Vec::with_capacity(k);
        let mut hosts = Vec::with_capacity(cfg.host_count());
        for pod in 0..k {
            edges.push(
                (0..half)
                    .map(|j| net.add_node(NodeKind::Edge, Some(pod), j))
                    .collect::<Vec<_>>(),
            );
            aggs.push(
                (0..half)
                    .map(|j| net.add_node(NodeKind::Agg, Some(pod), j))
                    .collect::<Vec<_>>(),
            );
            for e in 0..half {
                for h in 0..half {
                    let addr = HostAddr { pod, edge: e, host: h };
                    let id = net.add_node(NodeKind::Host, Some(pod), addr.to_index(k));
                    hosts.push(id);
                }
            }
        }

        let uplink = cfg.uplink_bps();
        for pod in 0..k {
            for e in 0..half {
                for h in 0..half {
                    let idx = HostAddr { pod, edge: e, host: h }.to_index(k);
                    net.add_link(hosts[idx], edges[pod][e], cfg.host_link_bps);
                }
            }
            for e in 0..half {
                for a in 0..half {
                    net.add_link(edges[pod][e], aggs[pod][a], uplink);
                }
            }
            for a in 0..half {
                for m in 0..half {
                    let core_idx = match Self::pod_type_of(pod) {
                        PodType::A => a * half + m,
                        PodType::B => m * half + a,
                    };
                    net.add_link(aggs[pod][a], cores[core_idx], uplink);
                }
            }
        }

        F10Topology {
            cfg,
            net,
            hosts,
            edges,
            aggs,
            cores,
        }
    }

    fn pod_type_of(pod: usize) -> PodType {
        if pod.is_multiple_of(2) {
            PodType::A
        } else {
            PodType::B
        }
    }

    /// Striping type of `pod`.
    pub fn pod_type(&self, pod: usize) -> PodType {
        Self::pod_type_of(pod)
    }

    /// Fat-tree parameter `k`.
    pub fn k(&self) -> usize {
        self.cfg.k
    }

    /// Node id of the host at `addr`.
    pub fn host(&self, addr: HostAddr) -> NodeId {
        self.hosts[addr.to_index(self.cfg.k)]
    }

    /// All host node ids in global-index order.
    pub fn hosts(&self) -> &[NodeId] {
        &self.hosts
    }

    /// Edge switch E_{pod,j}.
    pub fn edge(&self, pod: usize, j: usize) -> NodeId {
        self.edges[pod][j]
    }

    /// Aggregation switch A_{pod,j}.
    pub fn agg(&self, pod: usize, j: usize) -> NodeId {
        self.aggs[pod][j]
    }

    /// Core switch C_j.
    pub fn core(&self, j: usize) -> NodeId {
        self.cores[j]
    }

    /// All cores in index order.
    pub fn cores(&self) -> &[NodeId] {
        &self.cores
    }

    /// The address of a host node.
    ///
    /// # Panics
    /// Panics if `n` is not a host.
    pub fn addr_of(&self, n: NodeId) -> HostAddr {
        let node = self.net.node(n);
        assert_eq!(node.kind, NodeKind::Host, "{n:?} is not a host");
        HostAddr::from_index(node.index, self.cfg.k)
    }

    /// Global indices of the cores reachable from agg `a` of `pod`.
    pub fn cores_of_agg(&self, pod: usize, a: usize) -> Vec<usize> {
        let half = self.cfg.k / 2;
        (0..half)
            .map(|m| match self.pod_type(pod) {
                PodType::A => a * half + m,
                PodType::B => m * half + a,
            })
            .collect()
    }

    /// In-pod index of the aggregation switch that core `c` connects to in
    /// `pod`. Every core reaches exactly one agg per pod.
    pub fn agg_for_core(&self, pod: usize, c: usize) -> usize {
        let half = self.cfg.k / 2;
        match self.pod_type(pod) {
            PodType::A => c / half,
            PodType::B => c % half,
        }
    }

    /// All equal-cost shortest paths between two hosts (see
    /// [`crate::FatTree::host_paths`] for the path-shape conventions).
    pub fn host_paths(&self, src: NodeId, dst: NodeId) -> Vec<Vec<NodeId>> {
        let half = self.cfg.k / 2;
        let s = self.addr_of(src);
        let d = self.addr_of(dst);
        assert!(src != dst, "src == dst");
        let se = self.edges[s.pod][s.edge];
        let de = self.edges[d.pod][d.edge];
        if s.pod == d.pod && s.edge == d.edge {
            return vec![vec![src, se, dst]];
        }
        if s.pod == d.pod {
            return (0..half)
                .map(|a| vec![src, se, self.aggs[s.pod][a], de, dst])
                .collect();
        }
        let mut paths = Vec::with_capacity(half * half);
        for a in 0..half {
            for c in self.cores_of_agg(s.pod, a) {
                let da = self.agg_for_core(d.pod, c);
                paths.push(vec![
                    src,
                    se,
                    self.aggs[s.pod][a],
                    self.cores[c],
                    self.aggs[d.pod][da],
                    de,
                    dst,
                ]);
            }
        }
        paths
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_fattree() {
        let f10 = F10Topology::build(FatTreeConfig::new(8));
        assert_eq!(f10.hosts().len(), 128);
        assert_eq!(f10.cores().len(), 16);
        assert_eq!(f10.net.link_count(), 128 + 2 * 8 * 16);
    }

    #[test]
    fn ab_striping_differs() {
        let f10 = F10Topology::build(FatTreeConfig::new(8));
        assert_eq!(f10.pod_type(0), PodType::A);
        assert_eq!(f10.pod_type(1), PodType::B);
        assert_eq!(f10.cores_of_agg(0, 1), vec![4, 5, 6, 7]); // consecutive
        assert_eq!(f10.cores_of_agg(1, 1), vec![1, 5, 9, 13]); // strided
    }

    #[test]
    fn every_core_reaches_one_agg_per_pod() {
        let f10 = F10Topology::build(FatTreeConfig::new(6));
        for pod in 0..6 {
            for c in 0..9 {
                let a = f10.agg_for_core(pod, c);
                assert!(
                    f10.net.link_between(f10.agg(pod, a), f10.core(c)).is_some(),
                    "core {c} should reach agg({pod},{a})"
                );
            }
        }
    }

    #[test]
    fn core_degree_is_k() {
        let f10 = F10Topology::build(FatTreeConfig::new(6));
        for j in 0..9 {
            assert_eq!(f10.net.incident(f10.core(j)).len(), 6);
        }
    }

    #[test]
    fn cross_pod_paths_valid_and_complete() {
        let f10 = F10Topology::build(FatTreeConfig::new(4));
        let a = f10.host(HostAddr { pod: 0, edge: 0, host: 0 });
        let b = f10.host(HostAddr { pod: 1, edge: 1, host: 0 });
        let paths = f10.host_paths(a, b);
        assert_eq!(paths.len(), 4);
        for p in &paths {
            assert_eq!(p.len(), 7);
            assert!(f10.net.path_usable(p), "unusable path {p:?}");
        }
        // Paths must use distinct cores.
        let mut cores: Vec<NodeId> = paths.iter().map(|p| p[3]).collect();
        cores.sort();
        cores.dedup();
        assert_eq!(cores.len(), 4);
    }

    #[test]
    fn f10_detour_property_holds() {
        // The property local rerouting relies on: for a core c and a type-A
        // target pod, some type-B pod contains an agg connected to both c and
        // an alternate core c' that enters the target pod at a different agg.
        let f10 = F10Topology::build(FatTreeConfig::new(6));
        let target_pod = 0; // type A
        for c in 0..9 {
            let blocked_agg = f10.agg_for_core(target_pod, c);
            let mut found = false;
            'search: for b_pod in (0..6).filter(|p| f10.pod_type(*p) == PodType::B) {
                let via = f10.agg_for_core(b_pod, c);
                for c2 in f10.cores_of_agg(b_pod, via) {
                    if c2 != c && f10.agg_for_core(target_pod, c2) != blocked_agg {
                        found = true;
                        break 'search;
                    }
                }
            }
            assert!(found, "no 3-hop detour for core {c} into pod {target_pod}");
        }
    }
}
