//! Deployment cabling audit (paper §3's packaging discussion).
//!
//! The paper argues ShareBackup packages cleanly: backup switches and the
//! 3 sets of k/2 circuit switches fold into the original fat-tree pods,
//! keeping the pod-host and pod-core wiring patterns. This module walks the
//! built fabric's *actual* attachments and produces the physical cabling
//! bill: per-pod cable counts, circuit-switch port usage, and — crucially
//! for tests — conservation checks (every packet-switch interface lands on
//! exactly one circuit-switch port; every host NIC on exactly one; side
//! ports pair up into rings).

use std::collections::BTreeMap;

use crate::circuit::Attachment;
use crate::ids::PhysId;
use crate::sharebackup::ShareBackup;

/// Physical cable/port bill of a built ShareBackup fabric.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CablingReport {
    /// Circuit switches deployed.
    pub circuit_switches: usize,
    /// Total circuit-switch ports provisioned (both sides).
    pub circuit_ports_provisioned: usize,
    /// Circuit-switch ports actually cabled.
    pub circuit_ports_used: usize,
    /// Cables from packet-switch interfaces to circuit switches.
    pub switch_cables: usize,
    /// Cables from host NICs to circuit switches.
    pub host_cables: usize,
    /// Side-port cables forming the diagnosis rings.
    pub side_cables: usize,
}

impl CablingReport {
    /// Audit a built network.
    ///
    /// # Panics
    /// Panics if the fabric violates a conservation rule — that is a
    /// builder bug, not a runtime condition.
    pub fn of(sb: &ShareBackup) -> CablingReport {
        let mut switch_ends: BTreeMap<(PhysId, usize), usize> = BTreeMap::new();
        let mut host_ends: BTreeMap<crate::ids::NodeId, usize> = BTreeMap::new();
        let mut side_ends = 0usize;
        let mut provisioned = 0usize;
        let mut used = 0usize;
        let mut switches = 0usize;
        for id in sb.circuit_switch_ids() {
            switches += 1;
            let cs = sb.circuit_switch(id);
            provisioned += cs.port_count();
            for p in 0..cs.port_count() {
                match cs.attachment(crate::circuit::CsPort(p)) {
                    Attachment::Empty => {}
                    Attachment::Switch { switch, port } => {
                        used += 1;
                        *switch_ends.entry((switch, port)).or_insert(0) += 1;
                    }
                    Attachment::Host(h) => {
                        used += 1;
                        *host_ends.entry(h).or_insert(0) += 1;
                    }
                    Attachment::Side { .. } => {
                        used += 1;
                        side_ends += 1;
                    }
                }
            }
        }
        // Conservation: every cabled interface/NIC appears exactly once.
        for ((p, port), count) in &switch_ends {
            assert_eq!(
                *count, 1,
                "interface {port} of {p:?} cabled {count} times"
            );
        }
        for (h, count) in &host_ends {
            assert_eq!(*count, 1, "host {h:?} cabled {count} times");
        }
        assert_eq!(side_ends % 2, 0, "side cables must pair up");
        CablingReport {
            circuit_switches: switches,
            circuit_ports_provisioned: provisioned,
            circuit_ports_used: used,
            switch_cables: switch_ends.len(),
            host_cables: host_ends.len(),
            side_cables: side_ends / 2,
        }
    }

    /// All cables (each splicing one pre-ShareBackup cable into two halves,
    /// which the paper prices as one original cable — §5.2).
    pub fn total_cables(&self) -> usize {
        self.switch_cables + self.host_cables + self.side_cables
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sharebackup::ShareBackupConfig;

    #[test]
    fn bill_matches_closed_forms() {
        let k = 6;
        let n = 1;
        let sb = ShareBackup::build(ShareBackupConfig::new(k, n));
        let r = CablingReport::of(&sb);
        let half = k / 2;
        // 3 sets of k/2 circuit switches per pod.
        assert_eq!(r.circuit_switches, 3 * k * half);
        // Every packet switch cables all k interfaces: (k/2+n) switches per
        // group × 5k/2 groups × k interfaces... except core switches whose k
        // interfaces are one per pod — still k each. So:
        let switches = (5 * k / 2) * (half + n);
        assert_eq!(r.switch_cables, switches * k);
        // One cable per host.
        assert_eq!(r.host_cables, k * k * k / 4);
        // Side rings: k/2 circuit switches per ring, one cable per adjacent
        // pair (a ring of m nodes has m cables) — 3 rings per pod... the
        // ring is within (pod, layer): 3·k rings of k/2 cables.
        assert_eq!(r.side_cables, 3 * k * half);
        assert_eq!(
            r.total_cables(),
            switches * k + k * k * k / 4 + 3 * k * half
        );
    }

    #[test]
    fn port_usage_never_exceeds_provisioning() {
        for (k, n) in [(4, 1), (6, 2), (8, 1)] {
            let sb = ShareBackup::build(ShareBackupConfig::new(k, n));
            let r = CablingReport::of(&sb);
            assert!(r.circuit_ports_used <= r.circuit_ports_provisioned);
            // CS1 host sides are fully used; spares' ports are cabled too
            // (that is the point of sharable backup), so utilization is
            // high.
            let ratio = r.circuit_ports_used as f64 / r.circuit_ports_provisioned as f64;
            assert!(ratio > 0.9, "port utilization {ratio}");
        }
    }

    #[test]
    fn non_uniform_pools_audit_cleanly() {
        let cfg = ShareBackupConfig::new(6, 1).with_backups(2, 1, 0);
        let sb = ShareBackup::build(cfg);
        let r = CablingReport::of(&sb);
        // Switch cables: edges 6·5, aggs 6·4, cores 3·3 — each × k.
        assert_eq!(r.switch_cables, (6 * 5 + 6 * 4 + 3 * 3) * 6);
    }

    #[test]
    fn audit_survives_replacements() {
        // Replacement rewires circuits, never cables; the bill must not
        // change.
        let mut sb = ShareBackup::build(ShareBackupConfig::new(4, 1));
        let before = CablingReport::of(&sb);
        for g in sb.group_ids() {
            let spare = sb.spares(g)[0];
            sb.replace(g.slot(0), spare);
        }
        assert_eq!(CablingReport::of(&sb), before);
    }
}
