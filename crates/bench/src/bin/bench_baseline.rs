//! Microbenchmark baseline for the flow simulator and trial harness.
//!
//! Usage: `bench_baseline [--k 8] [--trials 20] [--seed 42] [--jobs N] [--mode full|digest] [--json]`
//!
//! Three sections, written to `BENCH_flowsim.json` (and printed):
//!
//! 1. **waterfill** — µs per max-min solve on a fixed 1024-flow /
//!    2048-link instance: the reused dense [`WaterFiller`] (what the event
//!    loop does per event) vs. the reference solver's full per-call
//!    rebuild (what the event loop used to do).
//! 2. **events** — flow-sim event-loop throughput (events/second) on a
//!    loaded k=8 fat-tree trace with one mid-run failure.
//! 3. **trials** — Fig. 1(c)-style trials per second, serial vs. `--jobs`
//!    threads, plus a digest equality check exercising the determinism
//!    contract (see DESIGN.md).
//!
//! `--mode digest` instead prints *only* the deterministic per-trial
//! digest and exits; CI byte-diffs that output between `--jobs 1` and
//! `--jobs 2` to enforce jobs-invariance end to end.

#![allow(clippy::cast_possible_truncation)] // link indices are < 2048

use std::time::Instant;

use sharebackup_bench::fig1::{run_fig1c_trial, AbstractFailure, Fig1Setup, Fig1cTrial};
use sharebackup_bench::{parallel_map_indexed, Args};
use sharebackup_core::scenario::{FatTreeWorld, RecoveryMode};
use sharebackup_flowsim::{max_min_rates_reference, FlowSim, WaterFiller};
use sharebackup_sim::{Duration, SimRng, Summary, Time};
use sharebackup_topo::{FatTree, LinkId};

const WF_FLOWS: usize = 1024;
const WF_LINKS: usize = 2048;

/// Synthetic water-filling instance: every flow crosses four pseudo-random
/// links, capacities are Gb/s-scale and asymmetric (7 distinct values), so
/// the solve exercises many filling rounds.
fn waterfill_instance() -> Vec<Vec<LinkId>> {
    (0..WF_FLOWS)
        .map(|i| {
            let mut links = vec![
                i % WF_LINKS,
                (i * 7 + 3) % WF_LINKS,
                (i * 13 + 5) % WF_LINKS,
                (i * 29 + 11) % WF_LINKS,
            ];
            links.sort_unstable();
            links.dedup();
            links.into_iter().map(|l| LinkId(l as u32)).collect()
        })
        .collect()
}

fn wf_capacity(l: LinkId) -> f64 {
    10e9 * (1.0 + f64::from(l.0 % 7) / 4.0)
}

/// Mean seconds per call of `f`, measured over a ~0.2 s budget after one
/// warm-up call.
fn time_per_call<F: FnMut()>(mut f: F) -> f64 {
    f(); // warm-up
    let budget = std::time::Duration::from_millis(200);
    let start = Instant::now();
    let mut calls = 0u32;
    loop {
        f();
        calls += 1;
        if start.elapsed() >= budget {
            break;
        }
    }
    start.elapsed().as_secs_f64() / f64::from(calls)
}

/// Per-call seconds of `f` (one sample per call), measured over a ~0.2 s
/// budget after one warm-up call. Feeds [`Summary::of`] so the report
/// carries the full latency distribution, not just the mean.
fn sample_per_call<F: FnMut()>(mut f: F) -> Vec<f64> {
    f(); // warm-up
    let budget = std::time::Duration::from_millis(200);
    let start = Instant::now();
    let mut samples = Vec::new();
    loop {
        let t = Instant::now();
        f();
        samples.push(t.elapsed().as_secs_f64());
        if start.elapsed() >= budget {
            break;
        }
    }
    samples
}

/// A [`Summary`] as a JSON object, values scaled by `scale` (e.g. `1e6`
/// for seconds → microseconds).
fn summary_json(s: &Summary, scale: f64) -> minijson::Value {
    minijson::json!({
        "count": s.count,
        "mean": s.mean * scale,
        "min": s.min * scale,
        "p50": s.p50 * scale,
        "p90": s.p90 * scale,
        "p99": s.p99 * scale,
        "max": s.max * scale,
    })
}

/// Section 1: reused dense solver vs. reference rebuild on the same
/// instance; asserts the two agree before timing.
fn bench_waterfill() -> minijson::Value {
    let flows = waterfill_instance();
    let mut wf = WaterFiller::new();
    let dense: Vec<Vec<u32>> = flows
        .iter()
        .map(|ls| ls.iter().map(|&l| wf.link_index(l, wf_capacity(l))).collect())
        .collect();
    let fids: Vec<usize> = dense.into_iter().map(|ls| wf.add_flow(ls)).collect();

    wf.solve();
    let reference = max_min_rates_reference(&flows, wf_capacity);
    for (fid, r) in fids.iter().zip(&reference) {
        let d = wf.rate(*fid);
        assert!(
            (d - r).abs() <= 1e-6 * r.abs().max(1.0),
            "solvers disagree on flow {fid}: dense {d} vs reference {r}"
        );
    }

    let dense_samples = sample_per_call(|| wf.solve());
    let dense_summary = Summary::of(&dense_samples).expect("at least one solve sample");
    let s_dense = dense_summary.mean;
    let s_ref = time_per_call(|| {
        let _ = max_min_rates_reference(&flows, wf_capacity);
    });
    minijson::json!({
        "flows": WF_FLOWS,
        "links": WF_LINKS,
        "us_per_solve": s_dense * 1e6,
        "us_per_solve_summary": summary_json(&dense_summary, 1e6),
        "us_per_solve_reference": s_ref * 1e6,
        "speedup": s_ref / s_dense,
    })
}

/// Section 2: event-loop throughput on a loaded k=8 trace with one node
/// failure and repair mid-run (two reroute epochs).
fn bench_events(seed: u64) -> minijson::Value {
    let mut setup = Fig1Setup::paper(8, seed).with_load(2.0);
    setup.duration = Time::from_secs(60);
    setup.fail_at = Time::from_secs(10);
    setup.outage = Duration::from_secs(30);
    let ft = FatTree::build(setup.ft_config());
    let trace = setup.trace(&ft, 0);
    let failure = AbstractFailure::Core(1);
    let run_once = || {
        let ft = FatTree::build(setup.ft_config());
        let fail_ev = failure.to_fattree(&ft);
        let repair_ev = match fail_ev {
            sharebackup_core::scenario::TopoEvent::FailNode(n) => {
                sharebackup_core::scenario::TopoEvent::RepairNode(n)
            }
            sharebackup_core::scenario::TopoEvent::FailLink(l) => {
                sharebackup_core::scenario::TopoEvent::RepairLink(l)
            }
            _ => unreachable!("failures only"),
        };
        let mut world = FatTreeWorld::new(ft, RecoveryMode::GlobalOptimal, vec![fail_ev, repair_ev]);
        let epochs = [setup.fail_at, setup.fail_at + setup.outage];
        FlowSim::new().run(&mut world, &trace.specs, &epochs)
    };
    let events = run_once().events;
    let secs = time_per_call(|| {
        let _ = run_once();
    });
    minijson::json!({
        "flows": trace.specs.len(),
        "events": events,
        "events_per_sec": events as f64 / secs,
    })
}

/// The scaled-down Fig. 1(c) configuration the trial sweep runs.
fn trial_setup(k: usize, seed: u64) -> Fig1Setup {
    let mut setup = Fig1Setup::paper(k, seed).with_load(2.0);
    setup.duration = Time::from_secs(30);
    setup.fail_at = Time::from_secs(5);
    setup.outage = Duration::from_secs(15);
    setup
}

/// Node failures for the sweep, pre-drawn serially from a single child
/// stream (shared-stream draws must not fan out; see DESIGN.md).
fn trial_failures(k: usize, seed: u64, trials: usize) -> Vec<AbstractFailure> {
    let mut rng = SimRng::seed_from_u64(seed).child("bench-failures");
    (0..trials)
        .map(|_| AbstractFailure::sample_node(&mut rng, k))
        .collect()
}

/// Deterministic, roundtrip-precise digest of one trial's results. `{:?}`
/// on `f64` prints the shortest decimal that parses back exactly, so two
/// digests match iff the results are bit-identical.
fn digest(trial: usize, t: &Fig1cTrial) -> String {
    format!(
        "trial {trial}: ft={:?}/{} f10={:?}/{} sb={:?}/{}",
        t.ft.0, t.ft.1, t.f10.0, t.f10.1, t.sb.0, t.sb.1
    )
}

fn run_trials(setup: &Fig1Setup, ft: &FatTree, failures: &[AbstractFailure], jobs: usize) -> Vec<String> {
    let out = parallel_map_indexed(jobs, failures.len(), |trial| {
        run_fig1c_trial(setup, ft, trial, failures[trial])
    });
    out.iter()
        .enumerate()
        .map(|(i, t)| digest(i, t))
        .collect()
}

/// Section 3: trials/second serial vs. parallel, with digest comparison.
fn bench_trials(k: usize, seed: u64, trials: usize, jobs: usize) -> minijson::Value {
    let setup = trial_setup(k, seed);
    let ft = FatTree::build(setup.ft_config());
    let failures = trial_failures(k, seed, trials);

    let t0 = Instant::now();
    let serial = run_trials(&setup, &ft, &failures, 1);
    let s_serial = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let parallel = run_trials(&setup, &ft, &failures, jobs);
    let s_parallel = t0.elapsed().as_secs_f64();

    assert_eq!(
        serial, parallel,
        "determinism contract violated: --jobs {jobs} changed trial results"
    );
    minijson::json!({
        "trials": trials,
        "jobs": jobs,
        "trials_per_sec_serial": trials as f64 / s_serial,
        "trials_per_sec_parallel": trials as f64 / s_parallel,
        "speedup": s_serial / s_parallel,
        "digest_match": true,
    })
}

fn main() {
    let mut defaults = Args::paper_defaults();
    defaults.k = 8;
    defaults.trials = 20;
    defaults.mode = "full".to_string();
    let args = Args::parse(defaults);

    if args.mode == "digest" {
        // CI path: deterministic per-trial results only, byte-diffable
        // across job counts. No timing, no JSON file.
        let setup = trial_setup(args.k, args.seed);
        let ft = FatTree::build(setup.ft_config());
        let failures = trial_failures(args.k, args.seed, args.trials);
        for line in run_trials(&setup, &ft, &failures, args.jobs) {
            println!("{line}");
        }
        return;
    }

    let cores = std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get);
    eprintln!("waterfill: dense reused solver vs reference rebuild ({WF_FLOWS} flows, {WF_LINKS} links)...");
    let waterfill = bench_waterfill();
    eprintln!("events: flow-sim event loop on loaded k=8 trace...");
    let events = bench_events(args.seed);
    eprintln!(
        "trials: {} fig1c-style trials, serial vs --jobs {}...",
        args.trials, args.jobs
    );
    let trials = bench_trials(args.k, args.seed, args.trials, args.jobs);

    let report = minijson::json!({
        "machine": { "cores": cores },
        "waterfill": waterfill.clone(),
        "events": events.clone(),
        "trials": trials.clone(),
    });
    let pretty = minijson::to_string_pretty(&report).expect("json");
    std::fs::write("BENCH_flowsim.json", format!("{pretty}\n")).expect("write BENCH_flowsim.json");

    if args.json {
        println!("{pretty}");
        return;
    }
    println!("flow-simulator baseline (written to BENCH_flowsim.json, cores={cores})");
    println!(
        "waterfill  {:>10.1} us/solve dense (reused)  {:>10.1} us/solve reference  {:>6.2}x",
        waterfill["us_per_solve"].as_f64().expect("v"),
        waterfill["us_per_solve_reference"].as_f64().expect("v"),
        waterfill["speedup"].as_f64().expect("v"),
    );
    let sum = &waterfill["us_per_solve_summary"];
    println!(
        "           dense per-solve us: p50={:.1} p90={:.1} p99={:.1} max={:.1} (n={})",
        sum["p50"].as_f64().expect("v"),
        sum["p90"].as_f64().expect("v"),
        sum["p99"].as_f64().expect("v"),
        sum["max"].as_f64().expect("v"),
        sum["count"],
    );
    println!(
        "events     {:>10.0} events/sec ({} loop steps per run)",
        events["events_per_sec"].as_f64().expect("v"),
        events["events"],
    );
    println!(
        "trials     {:>10.2} trials/sec serial  {:>10.2} trials/sec --jobs {}  {:>6.2}x  digests match",
        trials["trials_per_sec_serial"].as_f64().expect("v"),
        trials["trials_per_sec_parallel"].as_f64().expect("v"),
        args.jobs,
        trials["speedup"].as_f64().expect("v"),
    );
}
