//! §4.1 recovery, event by event: the full keep-alive → detection →
//! controller → circuit-reset → ack sequence on the discrete-event engine,
//! for each circuit technology and each failure-group kind.
//!
//! Usage: `recovery_timeline [--k 6] [--json] [--trace-out <path>]`
//!
//! With `--trace-out`, each (technology, failure) case records its engine
//! events and recovery span tree onto its own chrome-trace track.

use sharebackup_bench::{write_trace_files, Args};
use sharebackup_core::{simulate_recovery_traced, Controller, ControllerConfig};
use sharebackup_sim::{Duration, Time};
use sharebackup_telemetry::{TraceBuffer, Tracer};
use sharebackup_topo::{CircuitTech, GroupId, ShareBackup, ShareBackupConfig};

fn main() {
    let mut defaults = Args::paper_defaults();
    defaults.k = 6;
    let args = Args::parse(defaults);
    let k = args.k;

    let cases = [
        ("edge switch", GroupId::edge(0).slot(0)),
        ("aggregation switch", GroupId::agg(0).slot(0)),
        ("core switch", GroupId::core(0).slot(0)),
    ];

    let mut rows = Vec::new();
    let mut buffers: Vec<TraceBuffer> = Vec::new();
    for tech in [CircuitTech::Crosspoint, CircuitTech::Mems2D] {
        for &(name, slot) in &cases {
            let sb = ShareBackup::build(ShareBackupConfig::new(k, 1).with_tech(tech));
            let mut ctl = Controller::new(sb, ControllerConfig::default());
            let (tracer, sink) = if args.trace_out.is_some() {
                let (t, s) = Tracer::recording();
                (t, Some(s))
            } else {
                (Tracer::off(), None)
            };
            let tl = simulate_recovery_traced(
                &mut ctl,
                slot,
                Time::from_millis(5),
                Duration::from_micros(321),
                &tracer,
            );
            if let Some(s) = sink {
                buffers.push(s.borrow_mut().take());
            }
            rows.push((tech, name, tl));
        }
    }

    if let Some(path) = &args.trace_out {
        let tracks: Vec<(u64, &TraceBuffer)> = buffers
            .iter()
            .enumerate()
            .map(|(i, b)| (u64::try_from(i).unwrap_or(u64::MAX), b))
            .collect();
        write_trace_files(path, &tracks);
    }

    if args.json {
        let json: Vec<minijson::Value> = rows
            .iter()
            .map(|(tech, name, tl)| {
                minijson::json!({
                    "tech": format!("{tech:?}"),
                    "failure": name,
                    "detection_us": tl.detection_latency().as_secs_f64() * 1e6,
                    "repair_us": tl.repair_latency().as_secs_f64() * 1e6,
                    "total_us": tl.total_latency().as_secs_f64() * 1e6,
                    "events": tl.events.len(),
                })
            })
            .collect();
        println!("{}", minijson::to_string_pretty(&json).expect("json"));
        return;
    }

    println!("§4.1 — event-driven recovery timelines (k={k}, n=1)");
    println!();
    println!(
        "{:<12} {:<20} {:>12} {:>12} {:>12}",
        "technology", "failure", "detection", "repair", "total"
    );
    for (tech, name, tl) in &rows {
        println!(
            "{:<12} {:<20} {:>12} {:>12} {:>12}",
            format!("{tech:?}"),
            name,
            format!("{}", tl.detection_latency()),
            format!("{}", tl.repair_latency()),
            format!("{}", tl.total_latency()),
        );
    }

    // Print one full trace as the exhibit.
    let (_, name, tl) = &rows[1];
    println!();
    println!("full trace — {name}, crosspoint (timestamps relative to the death):");
    // Skip the pre-death keep-alives except the last one.
    let death_pos = tl
        .events
        .iter()
        .position(|(_, e)| matches!(e, sharebackup_core::TimelineEvent::SwitchDied))
        .expect("died");
    for (t, ev) in tl.events.iter().skip(death_pos.saturating_sub(1)) {
        let rel = if *t >= tl.died_at {
            format!("+{}", t.since(tl.died_at))
        } else {
            format!("-{}", tl.died_at.since(*t))
        };
        println!("{rel:>14}  {ev:?}");
    }
    println!();
    println!("repair decomposition: command (100 us) + circuit reset (70 ns / 40 us,");
    println!("parallel across the group's circuit switches) + ack (100 us) + 50 us");
    println!("controller processing — detection dominates, as §5.3 argues.");
}
