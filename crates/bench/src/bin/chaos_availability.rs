//! Chaos availability: what happens to ShareBackup's "no rerouting" pitch
//! when the *recovery machinery itself* misbehaves.
//!
//! Usage: `chaos_availability [--k 4] [--n 1] [--seed 42] [--trials 3]
//! [--mode sweep|digest|demo] [--jobs N] [--json] [--trace-out <path>]`
//!
//! Sweeps chaos profiles — correlated failure bursts inside a pod's fault
//! domain, link flapping, dead-on-arrival backups, circuit-reconfiguration
//! failures, diagnosis errors, spurious keep-alive reports — crossed with
//! the two degraded-mode policies (`stall`: the paper's behavior, flows on
//! a dead slot wait for repair; `reroute`: graceful degradation to global
//! rerouting with per-flow accounting). Reports flow availability, fallback
//! counts, retry/abort counters, and degraded flow-time.
//!
//! `--mode digest` prints a deterministic one-line-per-cell digest (CI
//! byte-diffs it across `--jobs` values); `--mode demo` runs the
//! pool-exhausting burst + 5% DOA scenario that shows `reroute` restoring
//! connectivity where `stall` reproduces the old unrecovered behavior.
//! With `--trace-out`, every retry, fallback, and flow-degraded decision
//! lands in the chrome-trace as a "chaos" instant.

use sharebackup_bench::{parallel_map_indexed, write_trace_files, Args};
use sharebackup_core::scenario::{
    map_chaos_schedule, sharebackup_timeline, SbEvent, ShareBackupWorld,
};
use sharebackup_core::{ChaosConfig, Controller, ControllerConfig, ControllerStats};
use sharebackup_flowsim::{FlowSim, FlowSpec};
use sharebackup_routing::{DegradedMode, FlowKey};
use sharebackup_sim::{Duration, SimRng, Time};
use sharebackup_telemetry::{TraceBuffer, Tracer};
use sharebackup_topo::{FatTree, FatTreeConfig, GroupId, NodeId, ShareBackup, ShareBackupConfig};
use sharebackup_workload::{ChaosProfile, FailureInjector};

/// Virtual time covered by each sweep trial.
const HORIZON_SECS: u64 = 600;
/// A fresh wave of flows starts this often.
const WAVE_EVERY_SECS: u64 = 30;
/// Bytes per flow: 1 Gbit, ~0.1 s on an idle 10 G link.
const FLOW_BYTES: u64 = 125_000_000;
/// A flow finishing more than this long after arrival counts against
/// availability (an unimpeded transfer takes well under a second).
const LATE_SECS: u64 = 5;

/// One chaos scenario: a workload-side failure schedule plus
/// recovery-machinery failure rates.
struct ChaosCase {
    name: &'static str,
    profile: ChaosProfile,
    machinery: ChaosConfig,
    /// Keep-alive losses: reports about healthy switches, uniform over the
    /// horizon.
    spurious_reports: usize,
}

fn cases() -> Vec<ChaosCase> {
    let quiet = ChaosProfile::quiet();
    let off = ChaosConfig::off();
    vec![
        // Control arm: must match a chaos-free run exactly.
        ChaosCase {
            name: "quiet",
            profile: quiet,
            machinery: off,
            spurious_reports: 0,
        },
        // Correlated bursts inside one fault domain (pod power feed).
        ChaosCase {
            name: "bursts",
            profile: ChaosProfile {
                burst_interarrival: Some(Duration::from_secs(150)),
                mean_burst_size: 3.0,
                ..quiet
            },
            machinery: off,
            spurious_reports: 0,
        },
        // Two links flapping: repeated reports on the same circuit switch
        // (can trip the §5.1 escalation threshold and halt recovery).
        ChaosCase {
            name: "flapping",
            profile: ChaosProfile {
                flapping_links: 2,
                ..quiet
            },
            machinery: off,
            spurious_reports: 0,
        },
        // Node failures with an unreliable repair path: DOA backups and
        // failing circuit reconfigurations.
        ChaosCase {
            name: "doa",
            profile: ChaosProfile {
                poisson_interarrival: Some(Duration::from_secs(90)),
                poisson_node_fraction: 1.0,
                ..quiet
            },
            machinery: ChaosConfig {
                doa_rate: 0.3,
                reconfig_failure_rate: 0.15,
                ..off
            },
            spurious_reports: 0,
        },
        // Link failures with lying diagnosis: healthy switches benched,
        // faulty ones returned to poison the pool.
        ChaosCase {
            name: "misdiagnosis",
            profile: ChaosProfile {
                poisson_interarrival: Some(Duration::from_secs(90)),
                poisson_node_fraction: 0.0,
                ..quiet
            },
            machinery: ChaosConfig {
                false_conviction_rate: 0.25,
                false_exoneration_rate: 0.25,
                ..off
            },
            spurious_reports: 0,
        },
        // Everything at once, at lower rates.
        ChaosCase {
            name: "full-chaos",
            profile: ChaosProfile {
                poisson_interarrival: Some(Duration::from_secs(120)),
                poisson_node_fraction: 0.7,
                burst_interarrival: Some(Duration::from_secs(200)),
                flapping_links: 1,
                ..quiet
            },
            machinery: ChaosConfig {
                doa_rate: 0.1,
                reconfig_failure_rate: 0.1,
                false_conviction_rate: 0.1,
                false_exoneration_rate: 0.1,
                ..off
            },
            spurious_reports: 2,
        },
    ]
}

fn mode_name(mode: DegradedMode) -> &'static str {
    match mode {
        DegradedMode::Stall => "stall",
        DegradedMode::Reroute => "reroute",
    }
}

/// Generate the chaos failure schedule for one trial, phrased as the
/// physical events the controller will see (see
/// [`sharebackup_core::scenario::map_chaos_schedule`] for the stale-report
/// caveat).
fn schedule(
    sb: &ShareBackup,
    probe: &FatTree,
    injector: &FailureInjector,
    rng: &SimRng,
    case: &ChaosCase,
) -> Vec<(Time, SbEvent)> {
    let horizon = Time::from_secs(HORIZON_SECS);
    let events = injector.chaos_process(rng, &probe.net, horizon, &case.profile);
    let mut out = map_chaos_schedule(sb, &probe.net, &events);
    if case.spurious_reports > 0 {
        let mut r = rng.child("chaos-spurious");
        for _ in 0..case.spurious_reports {
            let at = Time::from_secs_f64(r.f64() * HORIZON_SECS as f64);
            let node = injector.sample_nodes(&mut r, 1)[0];
            if let Some(slot) = sb.node_slot(node) {
                out.push((at, SbEvent::SpuriousReport(sb.occupant(slot))));
            }
        }
    }
    out.sort_by_key(|&(t, _)| t);
    out
}

/// Waves of host-to-host flows covering the horizon: every
/// `WAVE_EVERY_SECS` each host sends one flow to a rotating partner, so
/// every pod keeps traffic in flight through every outage window.
fn traffic(hosts: &[NodeId], horizon_secs: u64, wave_secs: u64) -> Vec<FlowSpec> {
    let h = hosts.len();
    let waves = usize::try_from(horizon_secs / wave_secs).expect("wave count fits usize");
    let mut flows = Vec::with_capacity(waves * h);
    for w in 0..waves {
        let at = Time::from_secs(wave_secs * w as u64);
        // Rotate partners across waves; stride h/4+1 walks across pods and
        // never maps a host to itself.
        let offset = 1 + (w * (h / 4 + 1)) % (h - 1);
        for i in 0..h {
            flows.push(FlowSpec {
                key: FlowKey::new(hosts[i], hosts[(i + offset) % h], (w * h + i) as u64),
                bytes: FLOW_BYTES,
                arrival: at,
            });
        }
    }
    flows
}

/// Everything one trial reports, plain data so trials fan out across
/// threads and collect in trial order.
#[derive(Clone, Default)]
struct TrialOut {
    flows: u64,
    completed: u64,
    stalled: u64,
    /// Flows finishing more than `LATE_SECS` after arrival, or never.
    late: u64,
    degraded_flows: u64,
    degraded_secs: f64,
    /// Sum of (completion − arrival) over completed flows, seconds.
    latency_sum: f64,
    injected: u64,
    stats: ControllerStats,
    trace: Option<TraceBuffer>,
}

impl TrialOut {
    fn add(&mut self, other: &TrialOut) {
        self.flows += other.flows;
        self.completed += other.completed;
        self.stalled += other.stalled;
        self.late += other.late;
        self.degraded_flows += other.degraded_flows;
        self.degraded_secs += other.degraded_secs;
        self.latency_sum += other.latency_sum;
        self.injected += other.injected;
        let (s, o) = (&mut self.stats, &other.stats);
        s.node_failures += o.node_failures;
        s.link_failures += o.link_failures;
        s.host_link_failures += o.host_link_failures;
        s.replacements += o.replacements;
        s.fallbacks += o.fallbacks;
        s.recovery_attempts += o.recovery_attempts;
        s.doa_backups += o.doa_backups;
        s.reconfig_retries += o.reconfig_retries;
        s.reconfig_aborts += o.reconfig_aborts;
        s.pool_exhausted += o.pool_exhausted;
        s.halted_fallbacks += o.halted_fallbacks;
        s.spurious_reports += o.spurious_reports;
        s.false_convictions += o.false_convictions;
        s.false_exonerations += o.false_exonerations;
        s.escalations += o.escalations;
        s.degraded_flows += o.degraded_flows;
    }

    /// Fraction of flows that finished on time.
    fn availability(&self) -> f64 {
        if self.flows == 0 {
            return 1.0;
        }
        1.0 - self.late as f64 / self.flows as f64
    }
}

/// Run one world (already loaded with a failure schedule and a degraded
/// mode) over `flows` and tally the outcome.
fn run_world(
    mut world: ShareBackupWorld,
    failures: &[(Time, SbEvent)],
    flows: &[FlowSpec],
    tracer: &Tracer,
) -> (TrialOut, ShareBackupWorld) {
    let (events, times) = sharebackup_timeline(&world, failures);
    world.events = events;
    let sim_out = FlowSim::new().run_traced(&mut world, flows, &times, tracer);
    let horizon = Time::from_secs(HORIZON_SECS);
    let end = sim_out
        .flows
        .iter()
        .filter_map(|f| f.completed)
        .max()
        .unwrap_or(horizon)
        .max(horizon);
    // A finished flow is no longer degraded: close its spell at completion
    // so degraded time measures time *spent running* on fallback paths.
    for (spec, fo) in flows.iter().zip(&sim_out.flows) {
        if let Some(t) = fo.completed {
            world.tracker.mark_normal(spec.key.id, t);
        }
    }
    world.tracker.finalize(end);

    let late_after = Duration::from_secs(LATE_SECS);
    let mut out = TrialOut {
        flows: flows.len() as u64,
        injected: failures.len() as u64,
        ..TrialOut::default()
    };
    for (spec, fo) in flows.iter().zip(&sim_out.flows) {
        match fo.completed {
            Some(t) => {
                out.completed += 1;
                let took = t.since(spec.arrival);
                out.latency_sum += took.as_secs_f64();
                if took > late_after {
                    out.late += 1;
                }
            }
            None => out.late += 1,
        }
        if fo.ever_stalled {
            out.stalled += 1;
        }
    }
    out.degraded_flows = world.tracker.degraded_count() as u64;
    out.degraded_secs = world.tracker.total_degraded_time().as_secs_f64();
    out.stats = world.controller.stats;
    (out, world)
}

/// One sweep trial: fresh world, chaos schedule from the trial's own child
/// stream, waves of traffic, full accounting.
fn run_trial(
    k: usize,
    n: usize,
    seed: u64,
    case: &ChaosCase,
    mode: DegradedMode,
    trial: usize,
    tracing: bool,
) -> TrialOut {
    let rng = SimRng::seed_from_u64(seed)
        .child(&format!("chaos-{}-{}-{}", case.name, mode_name(mode), trial));
    let sb = ShareBackup::build(ShareBackupConfig::new(k, n));
    let cfg = ControllerConfig {
        // The chaos harness exercises the full heal path: pools refilled by
        // repair immediately retry slots stranded by exhaustion or aborts.
        retry_exhausted_on_repair: true,
        ..ControllerConfig::default()
    };
    let mut controller = Controller::with_chaos(sb, cfg, case.machinery, rng.child("machinery"));
    let (tracer, sink) = if tracing {
        let (t, s) = Tracer::recording();
        (t, Some(s))
    } else {
        (Tracer::off(), None)
    };
    controller.tracer = tracer.clone();
    let world = ShareBackupWorld::new(controller, vec![]).with_degraded_mode(mode);

    let probe = FatTree::build(FatTreeConfig::new(k));
    let injector = FailureInjector::new(&probe.net);
    let failures = schedule(
        &world.controller.sb,
        &probe,
        &injector,
        &rng.child("schedule"),
        case,
    );
    let flows = traffic(probe.hosts(), HORIZON_SECS, WAVE_EVERY_SECS);
    let (mut out, _world) = run_world(world, &failures, &flows, &tracer);
    out.trace = sink.map(|s| s.borrow_mut().take());
    out
}

/// Aggregated sweep cell: one chaos case under one degraded mode.
struct Cell {
    case: &'static str,
    mode: &'static str,
    agg: TrialOut,
}

fn sweep(args: &Args) -> Vec<Cell> {
    let case_list = cases();
    let modes = [DegradedMode::Stall, DegradedMode::Reroute];
    let trials = args.trials;
    let total = case_list.len() * modes.len() * trials;
    let tracing = args.trace_out.is_some();
    let (k, n, seed) = (args.k, args.n, args.seed);
    let results = parallel_map_indexed(args.jobs, total, |i| {
        let case = &case_list[i / (modes.len() * trials)];
        let mode = modes[(i / trials) % modes.len()];
        run_trial(k, n, seed, case, mode, i % trials, tracing)
    });
    if let Some(path) = &args.trace_out {
        let pairs: Vec<(u64, &TraceBuffer)> = results
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.trace.as_ref().map(|b| (i as u64, b)))
            .collect();
        write_trace_files(path, &pairs);
    }
    let mut cells = Vec::new();
    for (ci, case) in case_list.iter().enumerate() {
        for (mi, &mode) in modes.iter().enumerate() {
            let mut agg = TrialOut::default();
            let base = (ci * modes.len() + mi) * trials;
            for r in &results[base..base + trials] {
                agg.add(r);
            }
            cells.push(Cell {
                case: case.name,
                mode: mode_name(mode),
                agg,
            });
        }
    }
    cells
}

fn print_digest(cells: &[Cell]) {
    for c in cells {
        let a = &c.agg;
        let s = &a.stats;
        println!(
            "case={} mode={} flows={} completed={} late={} stalled={} degraded={} \
             dtime={:.6} avail={:.6} injected={} node={} link={} hostlink={} repl={} \
             fb={} doa={} retries={} aborts={} pool={} halted={} spur={} fconv={} \
             fexon={} esc={}",
            c.case,
            c.mode,
            a.flows,
            a.completed,
            a.late,
            a.stalled,
            a.degraded_flows,
            a.degraded_secs,
            a.availability(),
            a.injected,
            s.node_failures,
            s.link_failures,
            s.host_link_failures,
            s.replacements,
            s.fallbacks,
            s.doa_backups,
            s.reconfig_retries,
            s.reconfig_aborts,
            s.pool_exhausted,
            s.halted_fallbacks,
            s.spurious_reports,
            s.false_convictions,
            s.false_exonerations,
            s.escalations,
        );
    }
}

fn cells_json(cells: &[Cell]) -> String {
    let items: Vec<minijson::Value> = cells
        .iter()
        .map(|c| {
            let a = &c.agg;
            let s = &a.stats;
            minijson::json!({
                "case": c.case,
                "mode": c.mode,
                "flows": a.flows,
                "completed": a.completed,
                "late": a.late,
                "stalled": a.stalled,
                "degraded_flows": a.degraded_flows,
                "degraded_flow_seconds": a.degraded_secs,
                "availability": a.availability(),
                "failures_injected": a.injected,
                "replacements": s.replacements,
                "fallbacks": s.fallbacks,
                "doa_backups": s.doa_backups,
                "reconfig_retries": s.reconfig_retries,
                "reconfig_aborts": s.reconfig_aborts,
                "pool_exhausted": s.pool_exhausted,
                "halted_fallbacks": s.halted_fallbacks,
                "spurious_reports": s.spurious_reports,
                "false_convictions": s.false_convictions,
                "false_exonerations": s.false_exonerations,
                "escalations": s.escalations,
            })
        })
        .collect();
    minijson::to_string_pretty(&minijson::Value::Array(items)).expect("json")
}

fn print_table(args: &Args, cells: &[Cell]) {
    println!(
        "Chaos availability, k={} n={} seed={} — {} s horizon, {} trials per cell",
        args.k, args.n, args.seed, HORIZON_SECS, args.trials
    );
    println!(
        "{:<14} {:<8} {:>7} {:>6} {:>6} {:>6} {:>10} {:>5} {:>5} {:>4} {:>5} {:>5} {:>5} {:>5} {:>4}",
        "case", "mode", "avail%", "late", "stall", "degr", "d-time(s)", "repl", "fb",
        "doa", "retry", "abort", "pool", "spur", "esc"
    );
    for c in cells {
        let a = &c.agg;
        let s = &a.stats;
        println!(
            "{:<14} {:<8} {:>6.2}% {:>6} {:>6} {:>6} {:>10.2} {:>5} {:>5} {:>4} {:>5} {:>5} {:>5} {:>5} {:>4}",
            c.case,
            c.mode,
            100.0 * a.availability(),
            a.late,
            a.stalled,
            a.degraded_flows,
            a.degraded_secs,
            s.replacements,
            s.fallbacks,
            s.doa_backups,
            s.reconfig_retries,
            s.reconfig_aborts,
            s.pool_exhausted,
            s.spurious_reports,
            s.escalations,
        );
    }
    println!();
    println!("stall = the paper's behavior (flows on a dead slot wait for repair);");
    println!("reroute = graceful degradation to global rerouting, every affected flow");
    println!("counted. The quiet rows are the control: both modes identical, no chaos");
    println!("counters, availability 100%.");
}

/// The acceptance demo: a pool-exhausting burst (both agg slots of pod 0,
/// n=1 — the second failure finds the pool empty) plus 5% DOA backups.
/// Under `stall` the affected flows reproduce the old unrecovered behavior
/// (stalled until the repair crew shows up); under `reroute` they all
/// complete on time over fallback paths, explicitly accounted.
fn demo(args: &Args) {
    let modes = [DegradedMode::Stall, DegradedMode::Reroute];
    let (k, n, seed) = (args.k, args.n, args.seed);
    let tracing = args.trace_out.is_some();
    let results = parallel_map_indexed(args.jobs, modes.len(), |i| {
        let mode = modes[i];
        let rng = SimRng::seed_from_u64(seed).child(&format!("demo-{}", mode_name(mode)));
        let sb = ShareBackup::build(ShareBackupConfig::new(k, n));
        let cfg = ControllerConfig {
            retry_exhausted_on_repair: true,
            // Repairs land only after the measurement window: a stalled
            // flow stays stalled for the whole demo.
            switch_repair_time: Duration::from_secs(2 * HORIZON_SECS),
            ..ControllerConfig::default()
        };
        let machinery = ChaosConfig {
            doa_rate: 0.05,
            ..ChaosConfig::off()
        };
        let mut controller =
            Controller::with_chaos(sb, cfg, machinery, rng.child("machinery"));
        let (tracer, sink) = if tracing {
            let (t, s) = Tracer::recording();
            (t, Some(s))
        } else {
            (Tracer::off(), None)
        };
        controller.tracer = tracer.clone();
        let world = ShareBackupWorld::new(controller, vec![]).with_degraded_mode(mode);

        // The burst: both agg slots of pod 0 die 200 ms apart.
        let g = GroupId::agg(0);
        let v0 = world.controller.sb.occupant(g.slot(0));
        let v1 = world.controller.sb.occupant(g.slot(1));
        let failures = vec![
            (Time::from_secs(5), SbEvent::NodeFail(v0)),
            (Time::from_secs_f64(5.2), SbEvent::NodeFail(v1)),
        ];
        let probe = FatTree::build(FatTreeConfig::new(k));
        let flows = traffic(probe.hosts(), 60, 10);
        let (mut out, world) = run_world(world, &failures, &flows, &tracer);
        out.trace = sink.map(|s| s.borrow_mut().take());
        let degraded_slots = world.controller.degraded_slots().count() as u64;
        (out, degraded_slots)
    });
    if let Some(path) = &args.trace_out {
        let pairs: Vec<(u64, &TraceBuffer)> = results
            .iter()
            .enumerate()
            .filter_map(|(i, (r, _))| r.trace.as_ref().map(|b| (i as u64, b)))
            .collect();
        write_trace_files(path, &pairs);
    }

    if args.json {
        let items: Vec<minijson::Value> = modes
            .iter()
            .zip(&results)
            .map(|(&mode, (a, slots))| {
                minijson::json!({
                    "mode": mode_name(mode),
                    "flows": a.flows,
                    "completed": a.completed,
                    "late": a.late,
                    "stalled": a.stalled,
                    "degraded_flows": a.degraded_flows,
                    "degraded_flow_seconds": a.degraded_secs,
                    "availability": a.availability(),
                    "pool_exhausted": a.stats.pool_exhausted,
                    "doa_backups": a.stats.doa_backups,
                    "degraded_slots_open": *slots,
                })
            })
            .collect();
        println!(
            "{}",
            minijson::to_string_pretty(&minijson::Value::Array(items)).expect("json")
        );
        return;
    }

    println!(
        "Demo: pool-exhausting burst (both agg slots of pod 0, n={}) + 5% DOA backups, k={}",
        args.n, args.k
    );
    println!(
        "{:<8} {:>6} {:>9} {:>6} {:>6} {:>6} {:>10} {:>5} {:>4}",
        "mode", "flows", "completed", "late", "stall", "degr", "d-time(s)", "pool", "doa"
    );
    for (&mode, (a, _)) in modes.iter().zip(&results) {
        println!(
            "{:<8} {:>6} {:>9} {:>6} {:>6} {:>6} {:>10.2} {:>5} {:>4}",
            mode_name(mode),
            a.flows,
            a.completed,
            a.late,
            a.stalled,
            a.degraded_flows,
            a.degraded_secs,
            a.stats.pool_exhausted,
            a.stats.doa_backups,
        );
    }
    let (stall, _) = &results[0];
    let (reroute, _) = &results[1];
    println!();
    println!(
        "stall leaves {} flows waiting on the dead slot (the old unrecovered behavior);",
        stall.late
    );
    println!(
        "reroute completes all {} flows, {} of them on explicit fallback paths for {:.1} s total.",
        reroute.completed, reroute.degraded_flows, reroute.degraded_secs
    );
}

fn main() {
    let mut defaults = Args::paper_defaults();
    defaults.k = 4;
    defaults.trials = 3;
    defaults.mode = "sweep".to_string();
    let args = Args::parse(defaults);
    match args.mode.as_str() {
        "demo" => demo(&args),
        "digest" => {
            let cells = sweep(&args);
            print_digest(&cells);
        }
        _ => {
            let cells = sweep(&args);
            if args.json {
                println!("{}", cells_json(&cells));
            } else {
                print_table(&args, &cells);
            }
        }
    }
}
