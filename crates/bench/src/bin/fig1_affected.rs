//! Fig. 1(a)/(b): percentage of flows and coflows affected by failures.
//!
//! Usage: `fig1_affected [--mode node|link] [--k 16] [--trials 20] [--seed 42] [--jobs N] [--json]`
//!
//! Reproduces the paper's §2.2 observation: the coflow-level impact is
//! 3.3×–90× the flow-level impact, and the coflow curve climbs steeply at
//! small failure counts (the paper reports 29.6% of coflows affected by a
//! single node failure and 17% by a single link failure on its trace).

use sharebackup_bench::fig1::{impact_sweep, Fig1Setup};
use sharebackup_bench::Args;

fn main() {
    let mut defaults = Args::paper_defaults();
    defaults.mode = "node".to_string();
    let args = Args::parse(defaults);
    let node_mode = match args.mode.as_str() {
        "node" => true,
        "link" => false,
        other => {
            eprintln!("--mode must be node or link, got {other}");
            std::process::exit(2);
        }
    };
    let setup = Fig1Setup::paper(args.k, args.seed);
    let counts = [1usize, 2, 4, 8, 16, 32];
    let rows = impact_sweep(&setup, node_mode, &counts, args.trials, args.jobs);

    if args.json {
        let json: Vec<minijson::Value> = rows
            .iter()
            .map(|(c, f, cf)| {
                minijson::json!({
                    "failures": c,
                    "affected_flows_pct": f * 100.0,
                    "affected_coflows_pct": cf * 100.0,
                    "amplification": if *f > 0.0 { cf / f } else { 0.0 },
                })
            })
            .collect();
        println!("{}", minijson::to_string_pretty(&json).expect("json"));
        return;
    }

    println!(
        "Fig. 1({}) — affected flows/coflows vs. number of {} failures",
        if node_mode { "a" } else { "b" },
        if node_mode { "node" } else { "link" }
    );
    println!(
        "k={} oversubscription={} trials={} seed={}",
        args.k, setup.oversubscription, args.trials, args.seed
    );
    println!("{:>9} {:>16} {:>18} {:>15}", "failures", "flows affected", "coflows affected", "amplification");
    for (c, f, cf) in rows {
        println!(
            "{:>9} {:>15.2}% {:>17.2}% {:>14.1}x",
            c,
            f * 100.0,
            cf * 100.0,
            if f > 0.0 { cf / f } else { 0.0 }
        );
    }
    println!();
    println!("paper (its trace): coflow impact 3.3x-90x the flow impact;");
    println!("single node failure affects ~29.6% of coflows, single link ~17%.");
}
