//! §4.3 table-size check: the merged VLAN routing table of an edge failure
//! group has k/2 in-bound + k²/4 out-bound entries and fits commodity TCAM
//! (1056 entries at k=64).
//!
//! Usage: `table_routing_size [--json]`

use sharebackup_bench::Args;
use sharebackup_routing::impersonation::GroupTables;

fn main() {
    let args = Args::parse(Args::paper_defaults());
    let ks = [8usize, 16, 32, 48, 64];

    let rows: Vec<minijson::Value> = ks
        .iter()
        .map(|&k| {
            let gt = GroupTables::build(k);
            let merged = gt.edge_group(0);
            let built = merged.entry_count();
            let formula = GroupTables::edge_entry_count(k);
            assert_eq!(built, formula, "built table must match the formula");
            minijson::json!({
                "k": k,
                "hosts": k * k * k / 4,
                "inbound_entries": merged.inbound.len(),
                "outbound_entries": merged.outbound.len(),
                "total_entries": built,
                "agg_group_entries": gt.agg_group(0).table.entry_count(),
                "core_group_entries": gt.core_group().table.entry_count(),
            })
        })
        .collect();

    if args.json {
        println!(
            "{}",
            minijson::to_string_pretty(&minijson::Value::Array(rows)).expect("json")
        );
        return;
    }

    println!("§4.3 — merged impersonation-table sizes (entries per switch)");
    println!(
        "{:>4} {:>9} {:>14} {:>15} {:>12} {:>11} {:>11}",
        "k", "hosts", "edge in-bound", "edge out-bound", "edge total", "agg table", "core table"
    );
    for r in &rows {
        println!(
            "{:>4} {:>9} {:>14} {:>15} {:>12} {:>11} {:>11}",
            r["k"], r["hosts"], r["inbound_entries"], r["outbound_entries"],
            r["total_entries"], r["agg_group_entries"], r["core_group_entries"],
        );
    }
    println!();
    println!("paper: 1056 entries for k=64 (over 65k hosts) — within commodity TCAM.");
}
