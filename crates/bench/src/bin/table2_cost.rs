//! Table 2: cost equations of the compared architectures, evaluated at the
//! market prices the paper quotes.
//!
//! Usage: `table2_cost [--k 48] [--n 1] [--json]`

use sharebackup_bench::Args;
use sharebackup_cost::model::{
    aspen_additional, fat_tree_cost, one_to_one_additional, sharebackup_additional, Medium,
    Prices,
};

fn main() {
    let mut defaults = Args::paper_defaults();
    defaults.k = 48;
    let args = Args::parse(defaults);
    let (k, n) = (args.k, args.n);

    let mut rows = Vec::new();
    for medium in [Medium::Electrical, Medium::Optical] {
        let p = Prices::for_medium(medium);
        let base = fat_tree_cost(k, p);
        let sb = sharebackup_additional(k, n, p);
        let aspen = aspen_additional(k, p);
        let one = one_to_one_additional(k, p);
        rows.push(minijson::json!({
            "medium": format!("{medium:?}"),
            "prices": {"a": p.a, "b": p.b, "c": p.c},
            "fat_tree": base.total(),
            "sharebackup_total": base.total() + sb.total(),
            "sharebackup_additional": sb.total(),
            "sharebackup_additional_pct": 100.0 * sb.total() / base.total(),
            "aspen_total": base.total() + aspen.total(),
            "aspen_additional_pct": 100.0 * aspen.total() / base.total(),
            "one_to_one_total": base.total() + one.total(),
            "one_to_one_additional_pct": 100.0 * one.total() / base.total(),
        }));
    }

    if args.json {
        println!(
            "{}",
            minijson::to_string_pretty(&minijson::Value::Array(rows)).expect("json")
        );
        return;
    }

    println!("Table 2 — architecture costs at k={k}, n={n} (dollars)");
    println!();
    println!("Cost equations:");
    println!("  fat-tree     = (5/4)k^3*b + (k^3/2)*c");
    println!("  ShareBackup  = (3/2)k^2(k/2+n+2)*a + (5/2)k^2n*b + (5/4)k^2n*c + fat-tree");
    println!("  Aspen Tree   = (k^3/2)*b + (k^3/4)*c + fat-tree");
    println!("  1:1 Backup   = (15/4)k^3*b + (3/2)k^3*c + fat-tree");
    println!();
    for r in &rows {
        println!(
            "{} (a=${}, b=${}, c=${}):",
            r["medium"].as_str().expect("medium"),
            r["prices"]["a"],
            r["prices"]["b"],
            r["prices"]["c"]
        );
        println!("  {:<14} ${:>14.0}", "fat-tree", r["fat_tree"].as_f64().expect("v"));
        println!(
            "  {:<14} ${:>14.0}  (+{:.1}% over fat-tree)",
            "ShareBackup",
            r["sharebackup_total"].as_f64().expect("v"),
            r["sharebackup_additional_pct"].as_f64().expect("v")
        );
        println!(
            "  {:<14} ${:>14.0}  (+{:.1}%)",
            "Aspen Tree",
            r["aspen_total"].as_f64().expect("v"),
            r["aspen_additional_pct"].as_f64().expect("v")
        );
        println!(
            "  {:<14} ${:>14.0}  (+{:.1}%)",
            "1:1 Backup",
            r["one_to_one_total"].as_f64().expect("v"),
            r["one_to_one_additional_pct"].as_f64().expect("v")
        );
        println!();
    }
    println!("paper headline (k=48, n=1): ShareBackup adds 6.7% (E-DC) / 13.3% (O-DC);");
    println!("1:1 backup costs 4x fat-tree; Aspen's addition is 6.5x / 3.2x ShareBackup's.");
}
