//! §5.3: scalability under circuit-switch port limits.
//!
//! Usage: `scalability [--json]`
//!
//! A ShareBackup circuit switch needs (k/2 + n + 2) ports per side; with
//! 32-port 2D MEMS that caps k at 58 for n=1 (over 48k hosts) or n at 6
//! for k=48 (25% backup ratio). 256-port crosspoint switches are nowhere
//! near binding.

use sharebackup_bench::Args;
use sharebackup_cost::{CapacityAnalysis, ScalabilityLimits};
use sharebackup_topo::CircuitTech;

fn main() {
    let args = Args::parse(Args::paper_defaults());
    let mut rows = Vec::new();
    for tech in [CircuitTech::Mems2D, CircuitTech::Crosspoint] {
        let s = ScalabilityLimits::new(tech);
        for n in 1..=6 {
            let k = s.max_k(n);
            let cap = CapacityAnalysis::new(k, n);
            rows.push(minijson::json!({
                "tech": format!("{tech:?}"),
                "port_limit": tech.max_ports(),
                "n": n,
                "max_k": k,
                "hosts": cap.hosts(),
                "backup_ratio_pct": 100.0 * cap.backup_ratio(),
                "ports_needed": ScalabilityLimits::ports_needed(k, n),
            }));
        }
        // And the k=48 view: how much robustness fits.
        rows.push(minijson::json!({
            "tech": format!("{tech:?}"),
            "port_limit": tech.max_ports(),
            "fixed_k": 48,
            "max_n": s.max_n(48),
            "backup_ratio_pct": 100.0 * CapacityAnalysis::new(48, s.max_n(48)).backup_ratio(),
        }));
    }

    if args.json {
        println!(
            "{}",
            minijson::to_string_pretty(&minijson::Value::Array(rows)).expect("json")
        );
        return;
    }

    println!("§5.3 — scalability under circuit-switch port limits");
    println!(
        "{:>12} {:>11} {:>3} {:>7} {:>9} {:>13} {:>13}",
        "technology", "port limit", "n", "max k", "hosts", "backup ratio", "ports needed"
    );
    for r in rows.iter().filter(|r| r.get("max_k").is_some()) {
        println!(
            "{:>12} {:>11} {:>3} {:>7} {:>9} {:>12.2}% {:>13}",
            r["tech"].as_str().expect("t"),
            r["port_limit"], r["n"], r["max_k"], r["hosts"],
            r["backup_ratio_pct"].as_f64().expect("v"),
            r["ports_needed"],
        );
    }
    println!();
    for r in rows.iter().filter(|r| r.get("fixed_k").is_some()) {
        println!(
            "{} at k=48: n can reach {} (backup ratio {:.1}%)",
            r["tech"].as_str().expect("t"),
            r["max_n"],
            r["backup_ratio_pct"].as_f64().expect("v"),
        );
    }
    println!();
    println!("paper: 32-port MEMS supports k=58 at n=1 (48k+ hosts, 3.45% ratio);");
    println!("n=6 at k=48 (25% ratio).");
}
