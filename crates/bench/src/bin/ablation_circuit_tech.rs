//! Ablation: circuit-switch technology (70 ns crosspoint vs. 40 µs MEMS)
//! and its effect on packets in flight during a failover.
//!
//! Usage: `ablation_circuit_tech [--jobs N] [--json]`
//!
//! Both reconfiguration delays are far below the failure-detection time
//! (~1 ms probe interval), so the paper treats them as negligible (§5.3).
//! This ablation verifies that: it sweeps the *total* blackout window a
//! transfer experiences (detection + recovery per technology) in the
//! packet-level simulator and reports completion-time impact and drops.

use sharebackup_bench::{parallel_map_indexed, Args};
use sharebackup_core::{RecoveryLatencyModel, RecoveryScheme};
use sharebackup_packet::{PacketNetConfig, PacketSim, PktEvent, PktFlowSpec};
use sharebackup_routing::{ecmp_path, FlowKey};
use sharebackup_sim::Time;
use sharebackup_topo::{CircuitTech, FatTree, FatTreeConfig, HostAddr};

fn main() {
    let args = Args::parse(Args::paper_defaults());
    let model = RecoveryLatencyModel::default();
    let ft = FatTree::build(FatTreeConfig::new(4));
    let src = ft.host(HostAddr { pod: 0, edge: 0, host: 0 });
    let dst = ft.host(HostAddr { pod: 2, edge: 1, host: 0 });
    let flow = FlowKey::new(src, dst, 1);
    let path = ecmp_path(&ft, &flow);
    let core = path[3];
    let bytes = 25_000_000u64; // 20 ms at 10 Gbps

    // Three independent packet-level runs (clean reference + one per
    // technology) share nothing but immutable inputs, so they fan out
    // across `--jobs` threads; index order fixes the row order.
    let configs: [Option<CircuitTech>; 3] =
        [None, Some(CircuitTech::Crosspoint), Some(CircuitTech::Mems2D)];
    let rows = parallel_map_indexed(args.jobs, configs.len(), |i| {
        let (name, events) = match configs[i] {
            None => ("no failure".to_string(), vec![]),
            Some(tech) => {
                let outage = model.total(RecoveryScheme::ShareBackup(tech));
                let fail_at = Time::from_millis(5);
                (
                    format!("{tech:?} (outage {:.3} ms)", outage.as_millis_f64()),
                    vec![
                        (fail_at, PktEvent::FailNode(core)),
                        (fail_at + outage, PktEvent::RepairNode(core)),
                    ],
                )
            }
        };
        let (out, drops) = PacketSim::new(PacketNetConfig::default()).run(
            &ft.net,
            &[PktFlowSpec {
                path: path.clone(),
                bytes,
                start: Time::ZERO,
            }],
            events,
            Time::from_secs(10),
        );
        // The reference row reports 0 drops/timeouts by definition: it is
        // the no-failure yardstick, and its transport-probing losses are
        // not failover disruption.
        minijson::json!({
            "configuration": name,
            "completion_ms": out[0].completed.expect("finishes").as_secs_f64() * 1e3,
            "drops": if configs[i].is_some() { drops } else { 0 },
            "timeouts": if configs[i].is_some() { out[0].timeouts } else { 0 },
        })
    });

    if args.json {
        println!(
            "{}",
            minijson::to_string_pretty(&minijson::Value::Array(rows)).expect("json")
        );
        return;
    }

    println!("Ablation — circuit technology vs. failover disruption (25 MB transfer, core slot fails at 5 ms)");
    println!(
        "{:<34} {:>15} {:>8} {:>9}",
        "configuration", "completion", "drops", "timeouts"
    );
    for r in &rows {
        println!(
            "{:<34} {:>12.2} ms {:>8} {:>9}",
            r["configuration"].as_str().expect("name"),
            r["completion_ms"].as_f64().expect("v"),
            r["drops"],
            r["timeouts"],
        );
    }
    println!();
    println!("expected: both technologies add only the detection-dominated blackout");
    println!("(~1-2 ms); the 70 ns vs 40 us reset difference is invisible, as §5.3 argues.");
}
