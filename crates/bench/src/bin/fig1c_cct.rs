//! Fig. 1(c): CDF of coflow-completion-time slowdown under a single
//! failure, for fat-tree (global optimal rerouting), F10 (local
//! rerouting), and ShareBackup (hardware replacement).
//!
//! Usage: `fig1c_cct [--k 16] [--trials 20] [--seed 42] [--mode node|link|both] [--jobs N] [--json] [--trace-out <path>]`
//!
//! With `--trace-out`, each trial's ShareBackup run records telemetry
//! (flowsim solve spans + the controller's recovery span tree) into a
//! per-trial buffer; the buffers are collected in trial order and written
//! as one chrome-trace JSON (track = trial) plus a `<path>.digest` text
//! rendition — both byte-identical at any `--jobs` value.
//!
//! Expected shape (paper §2.2): both rerouting baselines suffer CCT
//! slowdowns of orders of magnitude for the affected tail (a single
//! failure can slow a coflow by several hundred times); F10 is *worse*
//! than fat-tree because its detours are longer and congest; ShareBackup
//! stays at ≈1× because the failed switch is replaced within milliseconds
//! and flows keep their original paths.

use sharebackup_bench::fig1::{run_fig1c_trial_traced, AbstractFailure, Fig1Setup};
use sharebackup_bench::{parallel_map_indexed, write_trace_files, Args};
use sharebackup_sim::{Cdf, SimRng};
use sharebackup_topo::{FatTree, FatTreeConfig};

fn main() {
    let mut defaults = Args::paper_defaults();
    defaults.mode = "both".to_string();
    defaults.trials = 10;
    let args = Args::parse(defaults);
    // Busy-cluster load: congestion is what separates F10's long detours
    // from fat-tree's shortest-path rerouting (paper §2.2).
    let setup = Fig1Setup::paper(args.k, args.seed).with_load(6.0);
    let ft = FatTree::build(FatTreeConfig::new(args.k).with_oversubscription(10.0));

    // Failures come from a single sequential RNG stream, so they are drawn
    // serially up front; the per-trial simulation work (which dwarfs the
    // draws) then fans out across --jobs threads. Results are folded in
    // trial order, keeping the output byte-identical to the serial run.
    let mut rng = SimRng::seed_from_u64(args.seed).child("fig1c-failures");
    let failures: Vec<AbstractFailure> = (0..args.trials)
        .map(|trial| {
            let node_failure = match args.mode.as_str() {
                "node" => true,
                "link" => false,
                _ => trial % 2 == 0,
            };
            if node_failure {
                AbstractFailure::sample_node(&mut rng, args.k)
            } else {
                AbstractFailure::sample_link(&mut rng, args.k)
            }
        })
        .collect();

    let tracing = args.trace_out.is_some();
    let trials = parallel_map_indexed(args.jobs, args.trials, |trial| {
        run_fig1c_trial_traced(&setup, &ft, trial, failures[trial], tracing)
    });

    if let Some(path) = &args.trace_out {
        let buffers: Vec<(u64, &sharebackup_telemetry::TraceBuffer)> = trials
            .iter()
            .enumerate()
            .filter_map(|(trial, t)| {
                let tid = u64::try_from(trial).unwrap_or(u64::MAX);
                t.trace.as_ref().map(|b| (tid, b))
            })
            .collect();
        write_trace_files(path, &buffers);
    }

    let mut sd_ft: Vec<f64> = Vec::new();
    let mut sd_f10: Vec<f64> = Vec::new();
    let mut sd_sb: Vec<f64> = Vec::new();
    let mut stranded = [0usize; 3];

    for (trial, t) in trials.into_iter().enumerate() {
        let (s, st) = t.ft;
        sd_ft.extend(s);
        stranded[0] += st;
        let (s, st) = t.f10;
        sd_f10.extend(s);
        stranded[1] += st;
        let (s, st) = t.sb;
        sd_sb.extend(s);
        stranded[2] += st;
        eprintln!(
            "trial {trial}: {:?} -> coflows ft={} f10={} sb={}",
            failures[trial],
            sd_ft.len(),
            sd_f10.len(),
            sd_sb.len()
        );
    }

    let quantiles = [0.5, 0.9, 0.99, 0.999, 1.0];
    let report = |name: &str, sd: &[f64], stranded: usize| -> minijson::Value {
        let cdf = Cdf::from_samples(sd.iter().copied());
        let row: Vec<(f64, f64)> = quantiles
            .iter()
            .map(|&q| (q, if cdf.is_empty() { 0.0 } else { cdf.quantile(q) }))
            .collect();
        let degraded = sd.iter().filter(|&&x| x > 1.5).count();
        minijson::json!({
            "system": name,
            "coflows": sd.len(),
            "stranded": stranded,
            "degraded_over_1p5x": degraded,
            "mean_slowdown": sd.iter().sum::<f64>() / sd.len().max(1) as f64,
            "slowdown_quantiles": row,
        })
    };
    let results = [
        report("fat-tree (global optimal reroute)", &sd_ft, stranded[0]),
        report("F10 (local reroute)", &sd_f10, stranded[1]),
        report("ShareBackup", &sd_sb, stranded[2]),
    ];

    if args.json {
        println!(
            "{}",
            minijson::to_string_pretty(&minijson::Value::Array(results.to_vec()))
                .expect("json")
        );
        return;
    }

    println!("Fig. 1(c) — CCT slowdown under a single failure (CDF quantiles)");
    println!(
        "k={} trials={} mode={} seed={}",
        args.k, args.trials, args.mode, args.seed
    );
    println!(
        "{:<36} {:>8} {:>8} {:>9} {:>9} {:>9} {:>9} {:>10} {:>9}",
        "system", "coflows", ">1.5x", "p50", "p90", "p99", "p99.9", "max", "stranded"
    );
    for r in &results {
        let q = r["slowdown_quantiles"].as_array().expect("rows");
        println!(
            "{:<36} {:>8} {:>8} {:>8.2}x {:>8.2}x {:>8.2}x {:>8.2}x {:>9.2}x {:>9}",
            r["system"].as_str().expect("name"),
            r["coflows"],
            r["degraded_over_1p5x"],
            q[0][1].as_f64().expect("q"),
            q[1][1].as_f64().expect("q"),
            q[2][1].as_f64().expect("q"),
            q[3][1].as_f64().expect("q"),
            q[4][1].as_f64().expect("q"),
            r["stranded"],
        );
    }
    println!();
    println!("expected shape: ShareBackup ≈ 1x everywhere; fat-tree's affected tail");
    println!("reaches orders of magnitude; F10's tail is worse than fat-tree's.");
}
