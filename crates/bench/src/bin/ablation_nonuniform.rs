//! Ablation (paper §6): non-uniform failure-group pools — "more backup on
//! critical devices and less backup on unimportant ones".
//!
//! Usage: `ablation_nonuniform [--k 8] [--trials 400] [--seed 42] [--jobs N] [--json]`
//!
//! Edge switches are the critical devices: an edge failure strands k/2
//! hosts that *no* rerouting can save, while agg/core failures only cost
//! bandwidth. This ablation compares backup allocations with the **same
//! total switch budget** and measures how many host-stranding minutes each
//! allocation leaves unmasked under an extreme failure drive.

use sharebackup_bench::{parallel_map_indexed, Args};
use sharebackup_core::{Controller, ControllerConfig};
use sharebackup_sim::{Duration, SimRng, Time};
use sharebackup_topo::{GroupKind, ShareBackup, ShareBackupConfig};

struct Outcome {
    edge_fallbacks: u64,
    other_fallbacks: u64,
    total_backups: usize,
}

fn run(k: usize, n_edge: usize, n_agg: usize, n_core: usize, trials: usize, seed: u64) -> Outcome {
    let cfg = ShareBackupConfig::new(k, 1).with_backups(n_edge, n_agg, n_core);
    let sb = ShareBackup::build(cfg);
    let total_backups = k * n_edge + k * n_agg + (k / 2) * n_core;
    let mut ctl = Controller::new(sb, ControllerConfig::default());
    let mut rng = SimRng::seed_from_u64(seed);
    let mut now = Time::ZERO;
    let mut edge_fallbacks = 0;
    let mut other_fallbacks = 0;
    for _ in 0..trials {
        now += Duration::from_secs_f64(rng.exponential(20.0));
        ctl.poll_repairs(now);
        // Failures hit edges more often than anything else (they are the
        // most numerous switch class facing the harshest environment).
        let groups = ctl.sb.group_ids();
        let g = *rng.choose(&groups);
        let slot = g.slot(rng.range(0..k / 2));
        let victim = ctl.sb.occupant(slot);
        if !ctl.sb.phys(victim).healthy {
            continue;
        }
        ctl.sb.set_phys_healthy(victim, false);
        let r = ctl.handle_node_failure(victim, now);
        if !r.fully_recovered() {
            match g.kind {
                GroupKind::Edge => edge_fallbacks += 1,
                _ => other_fallbacks += 1,
            }
        }
    }
    Outcome {
        edge_fallbacks,
        other_fallbacks,
        total_backups,
    }
}

fn main() {
    let mut defaults = Args::paper_defaults();
    defaults.k = 8;
    defaults.trials = 400;
    let args = Args::parse(defaults);
    let k = args.k;

    // Same total budget (5k/2 backups at n=1 uniform): uniform vs
    // edge-weighted vs fabric-weighted allocations.
    // uniform:        k·1 + k·1 + (k/2)·1        = 5k/2
    // edge-heavy:     k·2 + k·0 + (k/2)·1        = 5k/2
    // fabric-heavy:   k·0 + k·2 + (k/2)·1        = 5k/2
    let allocations = [
        ("uniform (n=1,1,1)", 1usize, 1usize, 1usize),
        ("edge-heavy (2,0,1)", 2, 0, 1),
        ("fabric-heavy (0,2,1)", 0, 2, 1),
    ];

    // Each allocation replays the identical failure drive on its own pool
    // layout — independent simulations, fanned out across `--jobs` threads
    // and collected in the fixed allocation order.
    let outcomes = parallel_map_indexed(args.jobs, allocations.len(), |i| {
        let (_, ne, na, nc) = allocations[i];
        run(k, ne, na, nc, args.trials, args.seed)
    });
    let rows: Vec<minijson::Value> = allocations
        .iter()
        .zip(&outcomes)
        .map(|(&(name, ..), o)| {
            minijson::json!({
                "allocation": name,
                "total_backups": o.total_backups,
                "edge_fallbacks": o.edge_fallbacks,
                "other_fallbacks": o.other_fallbacks,
                "host_stranding_events": o.edge_fallbacks,
            })
        })
        .collect();

    if args.json {
        println!(
            "{}",
            minijson::to_string_pretty(&minijson::Value::Array(rows)).expect("json")
        );
        return;
    }

    println!(
        "Ablation §6 — non-uniform pools at equal budget (k={k}, {} node failures, MTBF 20 s)",
        args.trials
    );
    println!(
        "{:<22} {:>13} {:>15} {:>16}",
        "allocation", "total backups", "edge fallbacks", "other fallbacks"
    );
    for r in &rows {
        println!(
            "{:<22} {:>13} {:>15} {:>16}",
            r["allocation"].as_str().expect("name"),
            r["total_backups"], r["edge_fallbacks"], r["other_fallbacks"],
        );
    }
    println!();
    println!("edge fallbacks strand hosts (nothing can reroute around a dead ToR);");
    println!("other fallbacks only cost bandwidth until repair. Weighting backups");
    println!("toward edges trades cheap bandwidth risk for scarce reachability risk —");
    println!("the §6 'more backup on critical devices' knob, quantified.");
}
