//! Longitudinal availability: a week of Poisson failures, ShareBackup vs a
//! rerouting fat-tree, measured as capacity-hours and host-reachability.
//!
//! Usage: `longrun_availability [--k 8] [--n 1] [--seed 42] [--mode hostile|realistic] [--jobs N] [--json]`
//!
//! The paper's pitch in one number: under rerouting, every failure costs
//! its *full outage duration* in lost capacity (and an edge failure
//! strands k/2 hosts for minutes); under ShareBackup each failure costs
//! ~1.3 ms. Integrated over time, the rerouting fabric runs measurably
//! degraded while ShareBackup's availability is indistinguishable from a
//! failure-free network.

use sharebackup_bench::{parallel_map_indexed, Args};
use sharebackup_core::{Controller, ControllerConfig};
use sharebackup_flowsim::properties::total_usable_capacity;
use sharebackup_sim::{Duration, SimRng, Time};
use sharebackup_topo::{
    FatTree, FatTreeConfig, NodeKind, ShareBackup, ShareBackupConfig,
};
use sharebackup_workload::{FailureInjector, FailureKind};

const WEEK: u64 = 7 * 24 * 3600;

struct Tally {
    capacity_integral: f64, // bps·s of usable capacity
    full_capacity: f64,
    stranded_host_seconds: f64,
    failures: usize,
    unmasked: usize,
}

impl Tally {
    fn availability(&self) -> f64 {
        self.capacity_integral / (self.full_capacity * WEEK as f64)
    }
}

/// Hosts currently cut off (their edge switch or host link is down).
fn stranded_hosts(net: &sharebackup_topo::Network) -> usize {
    net.node_ids()
        .filter(|&h| net.node(h).kind == NodeKind::Host)
        .filter(|&h| {
            !net
                .incident(h)
                .iter()
                .any(|&l| net.link_usable(l))
        })
        .count()
}

fn run_fattree(k: usize, seed: u64, mtbf: Duration, outage: Duration) -> Tally {
    let mut ft = FatTree::build(FatTreeConfig::new(k));
    let injector = FailureInjector::new(&ft.net);
    let mut rng = SimRng::seed_from_u64(seed);
    let events = injector.poisson_process(
        &mut rng,
        Time::from_secs(WEEK),
        mtbf,
        outage,
        0.7, // mostly node failures
    );
    let full = total_usable_capacity(&ft.net);
    // Build a merged chronological change list: (time, apply/revert).
    let mut changes: Vec<(Time, FailureKind, bool)> = Vec::new();
    for ev in &events {
        changes.push((ev.at, ev.kind, true));
        changes.push((ev.repaired_at().min(Time::from_secs(WEEK)), ev.kind, false));
    }
    changes.sort_by_key(|&(t, _, _)| t);
    let mut tally = Tally {
        capacity_integral: 0.0,
        full_capacity: full,
        stranded_host_seconds: 0.0,
        failures: events.len(),
        unmasked: events.len(), // every failure runs its full outage
    };
    let mut last = Time::ZERO;
    for (t, kind, apply) in changes {
        let dt = t.saturating_since(last).as_secs_f64();
        tally.capacity_integral += total_usable_capacity(&ft.net) * dt;
        tally.stranded_host_seconds += stranded_hosts(&ft.net) as f64 * dt;
        if apply {
            FailureInjector::apply(&mut ft.net, kind);
        } else {
            FailureInjector::repair(&mut ft.net, kind);
        }
        last = t;
    }
    let dt = Time::from_secs(WEEK).saturating_since(last).as_secs_f64();
    tally.capacity_integral += total_usable_capacity(&ft.net) * dt;
    tally.stranded_host_seconds += stranded_hosts(&ft.net) as f64 * dt;
    tally
}

fn run_sharebackup(k: usize, n: usize, seed: u64, mtbf: Duration, outage: Duration) -> Tally {
    let sb = ShareBackup::build(ShareBackupConfig::new(k, n));
    let cfg = ControllerConfig {
        switch_repair_time: outage, // same technician model as the baseline
        ..ControllerConfig::default()
    };
    let mut ctl = Controller::new(sb, cfg);
    // Same failure schedule as the baseline (same seed & process), applied
    // to physical occupants of the same structural positions.
    let probe_net = FatTree::build(FatTreeConfig::new(k));
    let injector = FailureInjector::new(&probe_net.net);
    let mut rng = SimRng::seed_from_u64(seed);
    let events = injector.poisson_process(
        &mut rng,
        Time::from_secs(WEEK),
        mtbf,
        outage,
        0.7,
    );
    let full = total_usable_capacity(&ctl.sb.slots.net);
    let mut tally = Tally {
        capacity_integral: 0.0,
        full_capacity: full,
        stranded_host_seconds: 0.0,
        failures: 0,
        unmasked: 0,
    };
    let blip = ctl
        .cfg
        .latency
        .total(sharebackup_core::RecoveryScheme::ShareBackup(
            ctl.sb.cfg.tech,
        ))
        .as_secs_f64();
    let mut last = Time::ZERO;
    for ev in &events {
        // Integrate the (healthy or degraded) capacity up to this failure.
        let dt = ev.at.saturating_since(last).as_secs_f64();
        tally.capacity_integral += total_usable_capacity(&ctl.sb.slots.net) * dt;
        tally.stranded_host_seconds += stranded_hosts(&ctl.sb.slots.net) as f64 * dt;
        last = ev.at;
        ctl.poll_repairs(ev.at);
        // Map the structural failure onto the occupant.
        let FailureKind::Node(node) = ev.kind else {
            // Link failure: break the corresponding occupant interface is
            // equivalent for capacity purposes; treat as node-level blip on
            // one link — approximate by skipping (links are a minority and
            // cost one backup just like nodes).
            continue;
        };
        let Some(slot) = ctl.sb.node_slot(node) else {
            continue;
        };
        let victim = ctl.sb.occupant(slot);
        if !ctl.sb.phys(victim).healthy {
            continue;
        }
        tally.failures += 1;
        ctl.sb.set_phys_healthy(victim, false);
        let r = ctl.handle_node_failure(victim, ev.at);
        if r.fully_recovered() {
            // Cost: the blip. Charge the slot's share of capacity for it.
            let k_links = ctl.sb.k() as f64;
            tally.capacity_integral -=
                full * (k_links / ctl.sb.slots.net.link_count() as f64) * blip;
        } else {
            tally.unmasked += 1;
            // The slot stays down until a repair refills the pool; the
            // capacity integral picks that up naturally via slot state.
        }
    }
    let dt = Time::from_secs(WEEK).saturating_since(last).as_secs_f64();
    ctl.poll_repairs(Time::from_secs(WEEK));
    tally.capacity_integral += total_usable_capacity(&ctl.sb.slots.net) * dt;
    tally.stranded_host_seconds += stranded_hosts(&ctl.sb.slots.net) as f64 * dt;
    tally
}

fn main() {
    let mut defaults = Args::paper_defaults();
    defaults.k = 8;
    defaults.mode = "hostile".to_string();
    let args = Args::parse(defaults);
    // Hostile: a failure every 2 hours somewhere in this little k=8 network
    // (per-device MTBF of ~12 days). Realistic would be weeks per device;
    // hostile makes the week eventful enough to measure.
    let (mtbf, outage) = match args.mode.as_str() {
        "hostile" => (Duration::from_secs(2 * 3600), Duration::from_secs(300)),
        _ => (Duration::from_secs(12 * 3600), Duration::from_secs(300)),
    };

    // Both systems replay the same week of failures from the same seed but
    // never share state, so the two runs fan out across `--jobs` threads.
    let mut runs = parallel_map_indexed(args.jobs, 2, |i| {
        if i == 0 {
            run_fattree(args.k, args.seed, mtbf, outage)
        } else {
            run_sharebackup(args.k, args.n, args.seed, mtbf, outage)
        }
    });
    let sb = runs.pop().expect("two runs");
    let ft = runs.pop().expect("two runs");

    if args.json {
        println!(
            "{}",
            minijson::to_string_pretty(&minijson::json!([
                {
                    "system": "fat-tree (rerouting)",
                    "failures": ft.failures,
                    "unmasked": ft.unmasked,
                    "capacity_availability": ft.availability(),
                    "stranded_host_hours": ft.stranded_host_seconds / 3600.0,
                },
                {
                    "system": "ShareBackup",
                    "failures": sb.failures,
                    "unmasked": sb.unmasked,
                    "capacity_availability": sb.availability(),
                    "stranded_host_hours": sb.stranded_host_seconds / 3600.0,
                }
            ]))
            .expect("json")
        );
        return;
    }

    println!(
        "One week, k={}, MTBF {} per network, outages {} — capacity availability",
        args.k, mtbf, outage
    );
    println!(
        "{:<24} {:>9} {:>9} {:>22} {:>20}",
        "system", "failures", "unmasked", "capacity availability", "stranded host-hours"
    );
    for (name, t) in [("fat-tree (rerouting)", &ft), ("ShareBackup", &sb)] {
        println!(
            "{:<24} {:>9} {:>9} {:>21.6}% {:>20.2}",
            name,
            t.failures,
            t.unmasked,
            100.0 * t.availability(),
            t.stranded_host_seconds / 3600.0,
        );
    }
    println!();
    println!("rerouting eats every outage in full; ShareBackup's cost is ~1.3 ms per");
    println!("failure (plus any pool-exhaustion window), and no host is ever stranded");
    println!("unless the pool runs dry.");
}
